//! Integration: fault injection, detection, recovery and fatal-error
//! machinery behave like the paper's §4–§5 across the full stack.

use cache_sim::{DetectionScheme, StrikePolicy};
use clumsy_core::{ClumsyConfig, ClumsyProcessor};
use integration_tests::{hot_config, test_trace};
use netbench::{AppKind, PlaneMask};

#[test]
fn overclocking_raises_fault_counts_superlinearly() {
    let trace = test_trace();
    let golden = ClumsyProcessor::golden(AppKind::Crc, &trace);
    let faults = |cr: f64| {
        ClumsyProcessor::new(hot_config().with_static_cycle(cr))
            .run_with_golden(AppKind::Crc, &trace, &golden)
            .stats
            .faults_injected
    };
    let f50 = faults(0.5);
    let f25 = faults(0.25);
    assert!(
        f25 > 4 * f50.max(1),
        "expected superlinear rise: {f50} -> {f25}"
    );
}

#[test]
fn parity_detects_most_faults_at_high_clock() {
    let trace = test_trace();
    let cfg = hot_config()
        .with_detection(DetectionScheme::Parity)
        .with_strikes(StrikePolicy::two_strike())
        .with_static_cycle(0.25);
    let r = ClumsyProcessor::new(cfg).run(AppKind::Md5, &trace);
    assert!(r.stats.faults_injected > 50, "need a fault population");
    let detected_ratio = r.stats.faults_detected as f64 / r.stats.faults_injected as f64;
    // Single-bit faults dominate (two-bit = 1/100), and parity catches
    // odd-weight corruption.
    // (Write faults surface only when the word is re-read, so the
    // instantaneous ratio sits a little below the parity ceiling.)
    assert!(detected_ratio > 0.8, "detected ratio {detected_ratio}");
}

#[test]
fn strike_policies_trade_retries_for_invalidations() {
    let trace = test_trace();
    let run = |strikes: StrikePolicy| {
        let cfg = hot_config()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(strikes)
            .with_static_cycle(0.25);
        ClumsyProcessor::new(cfg).run(AppKind::Md5, &trace).stats
    };
    let one = run(StrikePolicy::one_strike());
    let three = run(StrikePolicy::three_strike());
    assert_eq!(one.strike_retries, 0);
    assert!(three.strike_retries > 0);
    assert!(
        three.strike_invalidations < one.strike_invalidations,
        "retries must absorb transient faults: {} vs {}",
        three.strike_invalidations,
        one.strike_invalidations
    );
}

#[test]
fn control_plane_faults_hit_initialization_state() {
    // Figure 6(a): with faults only in the control plane, per-packet
    // data-plane state is untouched; only table-derived categories can
    // err. Use an extreme rate so table damage is certain.
    let trace = test_trace();
    let cfg = ClumsyConfig::baseline()
        .with_fault_model(fault_model::FaultProbabilityModel::new(4e-5, 0.2))
        .with_static_cycle(0.25)
        .with_planes(PlaneMask::control_only());
    let mut saw_init_damage = false;
    for seed in 0..6 {
        let r = ClumsyProcessor::new(cfg.clone().with_seed(seed)).run(AppKind::Route, &trace);
        saw_init_damage |= r.init_obs_wrong > 0 || r.erroneous_packets > 0 || r.fatal.is_some();
    }
    assert!(
        saw_init_damage,
        "control-plane fault storms must damage table state"
    );
}

#[test]
fn data_plane_masking_keeps_control_plane_clean() {
    let trace = test_trace();
    let cfg = ClumsyConfig::baseline()
        .with_fault_model(fault_model::FaultProbabilityModel::new(4e-5, 0.2))
        .with_static_cycle(0.25)
        .with_planes(PlaneMask::data_only());
    let r = ClumsyProcessor::new(cfg).run(AppKind::Route, &trace);
    assert_eq!(
        r.init_obs_wrong, 0,
        "no faults were injected during setup, so init state is golden"
    );
}

#[test]
fn fatal_errors_happen_without_detection_at_extreme_clock_rates() {
    // Push the rate until radix-walking apps die; the fatal must be a
    // runaway loop (fuel) or a crash, recorded with its packet index.
    let trace = test_trace();
    let cfg = ClumsyConfig::baseline()
        .with_fault_model(fault_model::FaultProbabilityModel::new(2e-4, 0.2))
        .with_static_cycle(0.25);
    let mut fatals = 0;
    for seed in 0..8 {
        let r = ClumsyProcessor::new(cfg.clone().with_seed(seed)).run(AppKind::Tl, &trace);
        if let Some(info) = &r.fatal {
            fatals += 1;
            assert!(info.packet_index <= trace.packets.len());
            assert_eq!(
                r.packets_completed.min(info.packet_index),
                r.packets_completed
            );
        }
    }
    assert!(fatals > 0, "extreme rates must eventually kill a run");
}

#[test]
fn detection_prevents_fatal_errors_at_paper_rates() {
    // §5.3: "during the simulations of the architectures with error
    // detection, we have never encountered a fatal error."
    let trace = test_trace();
    for kind in AppKind::all() {
        for seed in 0..3 {
            let cfg = ClumsyConfig::baseline()
                .with_detection(DetectionScheme::Parity)
                .with_strikes(StrikePolicy::two_strike())
                .with_static_cycle(0.25)
                .with_seed(seed);
            let r = ClumsyProcessor::new(cfg).run(kind, &trace);
            assert!(r.fatal.is_none(), "{kind} seed {seed}: {:?}", r.fatal);
        }
    }
}

#[test]
fn fallibility_band_matches_table_1_at_quarter_cycle() {
    let trace = netbench::TraceConfig::paper().generate();
    let mut max_fall: f64 = 1.0;
    for kind in AppKind::all() {
        // Average three fault seeds: a single unlucky nonvolatile
        // corruption (e.g. a crc-table word) can dominate one run.
        let mut fall = 0.0;
        for seed in 0..3u64 {
            let cfg = ClumsyConfig::baseline()
                .with_static_cycle(0.25)
                .with_seed(0x5EED + seed);
            let r = ClumsyProcessor::new(cfg).run(kind, &trace);
            assert!(r.fallibility() >= 1.0);
            fall += r.fallibility() / 3.0;
        }
        max_fall = max_fall.max(fall);
    }
    // Paper Table I band at Cr = 0.25: 1.008 - 1.261. Allow slack for
    // trace-size noise but fail if the model drifts out of regime.
    assert!(
        (1.01..=1.45).contains(&max_fall),
        "max fallibility {max_fall}"
    );
}
