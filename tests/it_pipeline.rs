//! Integration: every application runs end-to-end through the full
//! stack (trace generator → machine → cache simulator → fault model →
//! runner → report) on every paper design point.

use cache_sim::{DetectionScheme, StrikePolicy};
use clumsy_core::{ClumsyConfig, ClumsyProcessor, PAPER_CYCLE_TIMES};
use integration_tests::test_trace;
use netbench::AppKind;

#[test]
fn every_app_runs_on_every_static_design_point() {
    let trace = test_trace();
    for kind in AppKind::all() {
        let golden = ClumsyProcessor::golden(kind, &trace);
        for cr in PAPER_CYCLE_TIMES {
            for (detection, strikes) in [
                (DetectionScheme::None, StrikePolicy::one_strike()),
                (DetectionScheme::Parity, StrikePolicy::one_strike()),
                (DetectionScheme::Parity, StrikePolicy::two_strike()),
                (DetectionScheme::Parity, StrikePolicy::three_strike()),
            ] {
                let cfg = ClumsyConfig::baseline()
                    .with_detection(detection)
                    .with_strikes(strikes)
                    .with_static_cycle(cr);
                let r = ClumsyProcessor::new(cfg).run_with_golden(kind, &trace, &golden);
                assert_eq!(r.packets_attempted, trace.packets.len());
                assert!(r.cycles > 0.0, "{kind} @ {cr}");
                assert!(r.energy.total_nj() > 0.0, "{kind} @ {cr}");
                assert!(r.fallibility() >= 1.0 && r.fallibility() <= 2.0);
            }
        }
    }
}

#[test]
fn dynamic_plan_runs_every_app() {
    let trace = test_trace();
    for kind in AppKind::all() {
        let cfg = ClumsyConfig::baseline()
            .with_detection(DetectionScheme::Parity)
            .with_dynamic(clumsy_core::DynamicConfig::paper());
        let r = ClumsyProcessor::new(cfg).run(kind, &trace);
        assert!(!r.freq_trace.is_empty(), "{kind}");
        // The controller starts at the slowest level.
        assert_eq!(r.freq_trace[0], (0, 1.0), "{kind}");
    }
}

#[test]
fn per_app_instruction_ordering_matches_table_1() {
    // Table I: md5 and url/crc are the heavyweight applications, tl the
    // lightest.
    let trace = test_trace();
    let mut inst = std::collections::HashMap::new();
    for kind in AppKind::all() {
        let r = ClumsyProcessor::new(ClumsyConfig::baseline()).run(kind, &trace);
        inst.insert(kind.name(), r.instructions);
    }
    assert!(inst["md5"] > inst["route"]);
    assert!(inst["crc"] > inst["route"]);
    assert!(inst["url"] > inst["tl"]);
}

#[test]
fn timing_improves_monotonically_with_frequency_until_quantization() {
    let trace = test_trace();
    let golden = ClumsyProcessor::golden(AppKind::Route, &trace);
    let delay = |cr: f64| {
        let cfg = ClumsyConfig::baseline().with_static_cycle(cr);
        ClumsyProcessor::new(cfg)
            .run_with_golden(AppKind::Route, &trace, &golden)
            .delay_per_packet()
    };
    let d100 = delay(1.0);
    let d75 = delay(0.75);
    let d50 = delay(0.5);
    let d25 = delay(0.25);
    // ceil(2 * 0.75) = 2: no gain at 0.75; ceil(2 * 0.5) = 1: real gain;
    // ceil(2 * 0.25) = 1: no further gain over 0.5.
    assert!(
        (d75 - d100).abs() < d100 * 0.02,
        "quantized: {d100} vs {d75}"
    );
    assert!(d50 < d100 * 0.95, "{d50} vs {d100}");
    assert!((d25 - d50).abs() < d50 * 0.05, "{d25} vs {d50}");
}

#[test]
fn energy_shrinks_with_voltage_swing() {
    let trace = test_trace();
    let golden = ClumsyProcessor::golden(AppKind::Crc, &trace);
    let l1_energy = |cr: f64| {
        let cfg = ClumsyConfig::baseline().with_static_cycle(cr);
        ClumsyProcessor::new(cfg)
            .run_with_golden(AppKind::Crc, &trace, &golden)
            .energy
            .l1_nj
    };
    let e100 = l1_energy(1.0);
    let e25 = l1_energy(0.25);
    // §5.4: cache energy reduces by ~45 % at Cr = 0.25.
    let reduction = 1.0 - e25 / e100;
    assert!(
        (0.38..=0.50).contains(&reduction),
        "L1 energy reduction {reduction}"
    );
}
