//! Integration: the experiment drivers reproduce the paper's headline
//! shapes end-to-end (scaled-down traces; the full-scale numbers are
//! produced by the `clumsy-bench` binaries).

use clumsy_core::experiment::{
    edf_average, fatal_study, plane_error_study, table1, ExperimentOptions,
};
use netbench::{AppKind, TraceConfig};

fn opts() -> ExperimentOptions {
    ExperimentOptions {
        trace: TraceConfig::paper().with_packets(800),
        trials: 2,
        seed: 0x5EED,
    }
}

#[test]
fn table_1_shape() {
    let rows = table1(&opts());
    assert_eq!(rows.len(), 7);
    for r in &rows {
        // Fallibility grows (or stays flat) as the clock rises.
        assert!(
            r.fallibility_quarter >= r.fallibility_half - 0.02,
            "{}: {} -> {}",
            r.app,
            r.fallibility_half,
            r.fallibility_quarter
        );
        // Everything stays in the paper's regime.
        assert!(r.fallibility_half < 1.10, "{}", r.app);
        assert!(r.fallibility_quarter < 1.50, "{}", r.app);
        // Miss rates are plausible cache behaviour, not degenerate.
        assert!(r.miss_rate > 0.001 && r.miss_rate < 0.40, "{}", r.app);
    }
}

#[test]
fn figure_8_shape_fatals_only_beyond_double_clock() {
    let rows = fatal_study(&opts());
    for r in &rows {
        assert_eq!(r.per_cr[0], 0.0, "{} at Cr=1", r.app);
        assert_eq!(r.per_cr[1], 0.0, "{} at Cr=0.75", r.app);
        // (Cr = 0.5 is allowed to be zero or near-zero; 0.25 may kill.)
        assert!(r.per_cr[2] <= r.per_cr[3] + 1e-9, "{}", r.app);
    }
}

#[test]
fn figure_6_shape_error_probabilities_grow_with_clock() {
    let cells = plane_error_study(AppKind::Route, &opts());
    // For the "both planes" rows, total error probability at 0.25 must
    // be at least the one at 1.0.
    let total = |cr: f64| -> f64 {
        cells
            .iter()
            .filter(|c| c.plane == "both" && (c.cr - cr).abs() < 1e-9)
            .flat_map(|c| c.categories.iter().map(|(_, p)| *p))
            .sum()
    };
    assert!(total(0.25) >= total(1.0));
}

#[test]
fn figures_9_12_shape_headline_result() {
    let bars = edf_average(&opts());
    let get = |scheme: &str, freq: &str| {
        bars.iter()
            .find(|b| b.scheme == scheme && b.freq == freq)
            .map(|b| b.relative_edf)
            .unwrap()
    };
    // Baseline bar is 1 by construction.
    assert!((get("no detection", "1.00") - 1.0).abs() < 1e-9);
    // The paper's winner: parity + two-strike at Cr = 0.5 beats the
    // baseline by a wide margin...
    let best = get("two-strike", "0.50");
    assert!(best < 0.9, "best = {best}");
    // ... and beats the 4x clock (sharp error increase at Cr = 0.25).
    assert!(
        best < get("two-strike", "0.25"),
        "Cr=0.5 must beat Cr=0.25: {best} vs {}",
        get("two-strike", "0.25")
    );
    // No-detection collapses at the 4x clock.
    assert!(get("no detection", "0.25") > 1.0);
    // The dynamic scheme lands near (not above) the static optimum.
    let dynamic = get("two-strike", "dynamic");
    assert!(dynamic < 1.0 && dynamic > best - 0.1, "dynamic = {dynamic}");
}
