//! Integration: the whole stack is reproducible — identical seeds give
//! bit-identical reports, different seeds differ, and golden references
//! are independent of the measured design point.

use cache_sim::DetectionScheme;
use clumsy_core::{ClumsyConfig, ClumsyProcessor};
use integration_tests::{hot_config, test_trace};
use netbench::{AppKind, TraceConfig};

#[test]
fn identical_seeds_give_identical_reports() {
    let trace = test_trace();
    for kind in [AppKind::Route, AppKind::Md5, AppKind::Drr] {
        let cfg = hot_config().with_static_cycle(0.25).with_seed(11);
        let a = ClumsyProcessor::new(cfg.clone()).run(kind, &trace);
        let b = ClumsyProcessor::new(cfg).run(kind, &trace);
        assert_eq!(a, b, "{kind}");
    }
}

#[test]
fn different_fault_seeds_differ() {
    let trace = test_trace();
    let a = ClumsyProcessor::new(hot_config().with_static_cycle(0.25).with_seed(1))
        .run(AppKind::Crc, &trace);
    let b = ClumsyProcessor::new(hot_config().with_static_cycle(0.25).with_seed(2))
        .run(AppKind::Crc, &trace);
    assert_ne!(a.stats.faults_injected, b.stats.faults_injected);
}

#[test]
fn different_trace_seeds_differ() {
    let t1 = TraceConfig::small().with_seed(1).generate();
    let t2 = TraceConfig::small().with_seed(2).generate();
    let r1 = ClumsyProcessor::new(ClumsyConfig::baseline()).run(AppKind::Url, &t1);
    let r2 = ClumsyProcessor::new(ClumsyConfig::baseline()).run(AppKind::Url, &t2);
    assert_ne!(r1.instructions, r2.instructions);
}

#[test]
fn golden_reference_is_design_point_independent() {
    let trace = test_trace();
    let golden = ClumsyProcessor::golden(AppKind::Nat, &trace);
    // Two very different design points measured against one golden.
    let r1 = ClumsyProcessor::new(hot_config().with_static_cycle(0.25)).run_with_golden(
        AppKind::Nat,
        &trace,
        &golden,
    );
    let r2 = ClumsyProcessor::new(
        hot_config()
            .with_detection(DetectionScheme::Parity)
            .with_static_cycle(0.5),
    )
    .run_with_golden(AppKind::Nat, &trace, &golden);
    // Both are valid runs over the same packets.
    assert_eq!(r1.packets_attempted, r2.packets_attempted);
    // And recomputing golden internally gives the same answer.
    let r1b = ClumsyProcessor::new(hot_config().with_static_cycle(0.25)).run(AppKind::Nat, &trace);
    assert_eq!(r1, r1b);
}

#[test]
fn golden_runs_are_error_free_for_all_apps() {
    let trace = test_trace();
    for kind in AppKind::all() {
        // Running the *measured* pass with injection scaled to zero must
        // reproduce golden exactly.
        let mut cfg = ClumsyConfig::baseline();
        cfg.planes = netbench::PlaneMask::none();
        let r = ClumsyProcessor::new(cfg).run(kind, &trace);
        assert_eq!(r.erroneous_packets, 0, "{kind}");
        assert_eq!(r.init_obs_wrong, 0, "{kind}");
        assert!(r.fatal.is_none(), "{kind}");
    }
}
