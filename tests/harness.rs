//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use clumsy_core::ClumsyConfig;
use netbench::{Trace, TraceConfig};

/// A small but non-trivial trace shared by the integration tests.
pub fn test_trace() -> Trace {
    TraceConfig::small().with_packets(300).generate()
}

/// A hot fault model that produces measurable (but not catastrophic)
/// fault counts on small traces.
pub fn hot_config() -> ClumsyConfig {
    ClumsyConfig::baseline().with_fault_model(fault_model::FaultProbabilityModel::new(2e-6, 0.2))
}
