//! Flat backing store holding architectural ground truth.

use crate::error::MemError;

/// The memory behind the cache hierarchy.
///
/// Functionally this combines the level-2 cache's data array and main
/// memory: the paper assumes the L2 is correct "unless an incorrect
/// value from level-1 is written to it", so the L2 needs no data copy
/// of its own that could diverge — only its tag array matters for
/// timing (see [`TagCache`](crate::TagCache)). That assumption is now
/// *configurable* rather than baked in: the opt-in
/// [`FaultTargets::l2`](crate::FaultTargets) process corrupts words in
/// flight between this store and the L1 (refills, strike refetches and
/// writebacks) at the per-bit probability of the L2's own clock
/// ([`MemConfig::l2_cycle`](crate::MemConfig)). The store itself stays
/// the holder of whatever the hierarchy last deposited — a corrupted
/// writeback *is* the new architectural "truth", which is exactly how
/// recovery comes to refetch bad data.
///
/// # Examples
///
/// ```
/// use cache_sim::BackingStore;
///
/// let mut mem = BackingStore::new(1024);
/// mem.write_word(0x10, 0x1234_5678).unwrap();
/// assert_eq!(mem.read_word(0x10).unwrap(), 0x1234_5678);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackingStore {
    bytes: Vec<u8>,
}

impl BackingStore {
    /// Creates a zero-filled store of `capacity` bytes (rounded up to a
    /// multiple of 4).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "backing store capacity must be non-zero");
        let capacity = capacity.div_ceil(4) * 4;
        BackingStore {
            bytes: vec![0; capacity],
        }
    }

    /// Capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, MemError> {
        let end = addr as u64 + len as u64;
        if end > self.bytes.len() as u64 {
            Err(MemError::OutOfRange { addr, len })
        } else {
            Ok(addr as usize)
        }
    }

    /// Reads the aligned 32-bit word at `addr` (little-endian).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Misaligned`] if `addr` is not 4-byte aligned
    /// and [`MemError::OutOfRange`] if it is beyond capacity.
    pub fn read_word(&self, addr: u32) -> Result<u32, MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([
            self.bytes[i],
            self.bytes[i + 1],
            self.bytes[i + 2],
            self.bytes[i + 3],
        ]))
    }

    /// Writes the aligned 32-bit word at `addr` (little-endian).
    ///
    /// # Errors
    ///
    /// Same conditions as [`BackingStore::read_word`].
    pub fn write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(4) {
            return Err(MemError::Misaligned { addr, align: 4 });
        }
        let i = self.check(addr, 4)?;
        self.bytes[i..i + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies `dst.len()` bytes starting at `addr` into `dst`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds capacity.
    pub fn read_block(&self, addr: u32, dst: &mut [u8]) -> Result<(), MemError> {
        let i = self.check(addr, dst.len() as u32)?;
        dst.copy_from_slice(&self.bytes[i..i + dst.len()]);
        Ok(())
    }

    /// Writes `src` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the range exceeds capacity.
    pub fn write_block(&mut self, addr: u32, src: &[u8]) -> Result<(), MemError> {
        let i = self.check(addr, src.len() as u32)?;
        self.bytes[i..i + src.len()].copy_from_slice(src);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_up_to_word() {
        assert_eq!(BackingStore::new(5).capacity(), 8);
        assert_eq!(BackingStore::new(8).capacity(), 8);
    }

    #[test]
    fn word_round_trip() {
        let mut m = BackingStore::new(64);
        m.write_word(0, u32::MAX).unwrap();
        m.write_word(60, 7).unwrap();
        assert_eq!(m.read_word(0).unwrap(), u32::MAX);
        assert_eq!(m.read_word(60).unwrap(), 7);
    }

    #[test]
    fn words_are_little_endian() {
        let mut m = BackingStore::new(8);
        m.write_word(0, 0x0102_0304).unwrap();
        let mut b = [0u8; 4];
        m.read_block(0, &mut b).unwrap();
        assert_eq!(b, [4, 3, 2, 1]);
    }

    #[test]
    fn out_of_range_is_reported() {
        let m = BackingStore::new(16);
        assert_eq!(
            m.read_word(16),
            Err(MemError::OutOfRange { addr: 16, len: 4 })
        );
        // Near-overflow addresses must not wrap.
        assert!(m.read_word(u32::MAX - 3).is_err());
    }

    #[test]
    fn misaligned_is_reported() {
        let mut m = BackingStore::new(16);
        assert_eq!(
            m.read_word(2),
            Err(MemError::Misaligned { addr: 2, align: 4 })
        );
        assert!(m.write_word(1, 0).is_err());
    }

    #[test]
    fn block_round_trip() {
        let mut m = BackingStore::new(64);
        m.write_block(8, &[1, 2, 3, 4, 5]).unwrap();
        let mut out = [0u8; 5];
        m.read_block(8, &mut out).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5]);
    }

    #[test]
    fn fresh_store_is_zeroed() {
        let m = BackingStore::new(32);
        for a in (0..32).step_by(4) {
            assert_eq!(m.read_word(a).unwrap(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        BackingStore::new(0);
    }
}
