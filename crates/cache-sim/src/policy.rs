//! Fault-detection and recovery policies (paper §4).

use std::fmt;

/// Whether the level-1 data cache carries a fault-detection code.
///
/// The paper compares an unprotected cache against one with a single
/// even-parity bit per 32-bit word. Error *correction* (Hamming codes)
/// is explicitly out of scope — "unnecessary complication on the design
/// and energy consumption".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DetectionScheme {
    /// No detection: corrupted values flow straight into the program.
    #[default]
    None,
    /// One even-parity bit per aligned 32-bit word. Detects odd-weight
    /// corruptions; even-weight corruptions escape. Costs +23 % read /
    /// +36 % write energy on the L1 (see [`energy_model::ParityOverhead`]).
    Parity,
    /// One even-parity bit per *byte* (four per word) — a finer-grained
    /// extension: a two-bit fault is detected unless both flips land in
    /// the same byte, closing most of word-parity's even-weight hole at
    /// ~10 % extra detection energy.
    ParityPerByte,
    /// SECDED ECC: a (39,32) extended-Hamming code per aligned word
    /// (the word-sized analogue of the classic (72,64) DRAM code).
    /// Corrects any single-bit fault in place, detects any double-bit
    /// fault (which then takes the strike/refetch path); triple-bit
    /// faults can alias to a miscorrection. The paper dismisses
    /// correction as an "unnecessary complication"; this scheme prices
    /// that claim (see [`energy_model::EccOverhead`]) — and matters once
    /// the L2 refetch path is itself fallible.
    Secded,
}

impl DetectionScheme {
    /// Whether any detection hardware is present.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, DetectionScheme::None)
    }
}

impl fmt::Display for DetectionScheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectionScheme::None => write!(f, "no detection"),
            DetectionScheme::Parity => write!(f, "parity"),
            DetectionScheme::ParityPerByte => write!(f, "byte-parity"),
            DetectionScheme::Secded => write!(f, "ecc"),
        }
    }
}

/// Which SRAM arrays fault injection targets.
///
/// The paper injects into the L1 **data** array only, but the tag array
/// and the parity bits are built from the same over-clocked SRAM. A
/// flipped *tag* bit makes a resident line unreachable under its true
/// address (a false miss — and, if the line was dirty, a writeback to
/// the aliased address) or lets another address false-hit stale data. A
/// flipped *parity* bit either raises a false strike on clean data or
/// cancels a genuine data fault, turning a detectable corruption into a
/// silent one. The *l2* target makes the level-2 data array fallible at
/// its own clock's voltage swing (see [`MemConfig::l2_cycle`]
/// (crate::MemConfig)), so strike refetches and writebacks can return
/// or deposit corrupted words — recovery itself can then fail.
///
/// The default is data-only: the extra targets are opt-in so the
/// recorded reproduction numbers stay bitwise stable (no additional
/// randomness is drawn while they are off).
///
/// # Examples
///
/// ```
/// use cache_sim::FaultTargets;
///
/// let t = FaultTargets::default();
/// assert!(t.data && !t.tag && !t.parity && !t.l2);
/// let all = FaultTargets::all();
/// assert!(all.tag && all.parity && all.l2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultTargets {
    /// Inject into the data array (the paper's model).
    pub data: bool,
    /// Also inject into the tag array consulted by every lookup.
    pub tag: bool,
    /// Also inject into the stored detection code read alongside each
    /// word (only meaningful when a [`DetectionScheme`] is enabled).
    pub parity: bool,
    /// Also inject into the level-2 data array, at the per-bit
    /// probability of the L2's own clock.
    pub l2: bool,
}

impl FaultTargets {
    /// The paper's model: data array only.
    pub fn data_only() -> Self {
        FaultTargets {
            data: true,
            tag: false,
            parity: false,
            l2: false,
        }
    }

    /// Every array: data, tag, parity and the L2 data array.
    pub fn all() -> Self {
        FaultTargets {
            data: true,
            tag: true,
            parity: true,
            l2: true,
        }
    }

    /// Returns the targets with tag-array injection switched.
    pub fn with_tag(mut self, tag: bool) -> Self {
        self.tag = tag;
        self
    }

    /// Returns the targets with parity-bit injection switched.
    pub fn with_parity(mut self, parity: bool) -> Self {
        self.parity = parity;
        self
    }

    /// Returns the targets with L2 data-array injection switched.
    pub fn with_l2(mut self, l2: bool) -> Self {
        self.l2 = l2;
        self
    }
}

impl Default for FaultTargets {
    fn default() -> Self {
        FaultTargets::data_only()
    }
}

impl fmt::Display for FaultTargets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.data {
            parts.push("data");
        }
        if self.tag {
            parts.push("tag");
        }
        if self.parity {
            parts.push("parity");
        }
        if self.l2 {
            parts.push("l2");
        }
        if parts.is_empty() {
            parts.push("none");
        }
        f.write_str(&parts.join("+"))
    }
}

/// Granularity of the state discarded when the strike policy gives up
/// and restores from L2.
///
/// The paper's footnote 2: *"If the cache has sub-blocks, only the
/// corresponding portions of the cache block can be invalidated and
/// accessed from the level 2 cache. However, in this paper we do not
/// study such cache structures."* — [`RecoveryGranularity::Word`]
/// implements exactly that deferred design: only the faulty 32-bit word
/// is repaired from L2, preserving the rest of the (possibly dirty)
/// line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RecoveryGranularity {
    /// Invalidate the whole cache line (the paper's evaluated design).
    #[default]
    Line,
    /// Repair only the faulty word in place (the footnote-2 extension).
    Word,
}

impl fmt::Display for RecoveryGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoveryGranularity::Line => write!(f, "line"),
            RecoveryGranularity::Word => write!(f, "word"),
        }
    }
}

/// Recovery policy applied when parity detects a fault on a level-1
/// read (paper §4).
///
/// A fault may have happened during the read (the stored data is fine)
/// or during an earlier write (the stored data is bad); the hardware
/// cannot tell which. A *k*-strike policy re-reads the L1 up to `k − 1`
/// times; if a fault is still detected on the `k`-th attempt it assumes
/// a write fault, invalidates the block, and fetches from the level-2
/// cache:
///
/// * **one-strike** — invalidate on the first detection,
/// * **two-strike** — retry once, then invalidate,
/// * **three-strike** — retry twice, then invalidate.
///
/// # Examples
///
/// ```
/// use cache_sim::StrikePolicy;
///
/// assert_eq!(StrikePolicy::one_strike().max_attempts(), 1);
/// assert_eq!(StrikePolicy::two_strike().max_attempts(), 2);
/// assert_eq!(StrikePolicy::three_strike().retries(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrikePolicy {
    strikes: u8,
}

impl StrikePolicy {
    /// Invalidate on the first detected fault.
    pub fn one_strike() -> Self {
        StrikePolicy { strikes: 1 }
    }

    /// Retry the L1 once before invalidating.
    pub fn two_strike() -> Self {
        StrikePolicy { strikes: 2 }
    }

    /// Retry the L1 twice before invalidating.
    pub fn three_strike() -> Self {
        StrikePolicy { strikes: 3 }
    }

    /// A policy with a custom strike count.
    ///
    /// # Panics
    ///
    /// Panics if `strikes` is zero or greater than 8.
    pub fn with_strikes(strikes: u8) -> Self {
        assert!(
            (1..=8).contains(&strikes),
            "strike count must be in 1..=8, got {strikes}"
        );
        StrikePolicy { strikes }
    }

    /// Total L1 read attempts before falling back to L2.
    pub fn max_attempts(&self) -> u8 {
        self.strikes
    }

    /// Number of retries after the first detection.
    pub fn retries(&self) -> u8 {
        self.strikes - 1
    }

    /// All policies the paper evaluates, in figure order.
    pub fn paper_set() -> [StrikePolicy; 3] {
        [
            StrikePolicy::one_strike(),
            StrikePolicy::two_strike(),
            StrikePolicy::three_strike(),
        ]
    }
}

impl Default for StrikePolicy {
    fn default() -> Self {
        StrikePolicy::two_strike()
    }
}

/// Way-disabling escalation: the fourth reliability scheme, layered on
/// top of a [`StrikePolicy`].
///
/// The strike policies assume every fault is transient — a faulty word
/// is refetched from L2 forever. Under a *persistent* fault site that
/// assumption loops: the same slot strikes out on every access. This
/// policy watches strike invalidations per physical `(set, way)` slot;
/// when `strike_threshold` of them land on the same slot within a
/// window of `window_accesses` L1 accesses, the site is classified
/// permanent, its dirty contents are salvaged through the ordinary
/// writeback path, and the way is mapped out for that set
/// ([`DataCache::disable_way`](crate::DataCache)). The cache then runs
/// degraded: victim selection skips the slot, and a fully mapped-out
/// set services its accesses straight from L2 at L2 cost.
///
/// Escalation is pure bookkeeping — it draws no randomness — so
/// enabling it under a purely transient fault process leaves the fault
/// realization untouched (only slots that actually strike out
/// `strike_threshold` times behave differently).
///
/// # Examples
///
/// ```
/// use cache_sim::WayDisablePolicy;
///
/// let p = WayDisablePolicy::default_policy();
/// assert_eq!(p.strike_threshold, 3);
/// let eager = WayDisablePolicy::new(1, 1000);
/// assert_eq!(eager.strike_threshold, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayDisablePolicy {
    /// Strike invalidations on the same `(set, way)` slot that classify
    /// the site as permanent.
    pub strike_threshold: u32,
    /// Accesses (reads + writes) within which the strikes must
    /// accumulate; a strike farther than this from the slot's previous
    /// one restarts the count (the site looks transient again).
    pub window_accesses: u64,
}

impl WayDisablePolicy {
    /// A policy with the given threshold and window.
    ///
    /// # Panics
    ///
    /// Panics if `strike_threshold` is zero.
    pub fn new(strike_threshold: u32, window_accesses: u64) -> Self {
        assert!(
            strike_threshold >= 1,
            "strike threshold must be at least 1, got {strike_threshold}"
        );
        WayDisablePolicy {
            strike_threshold,
            window_accesses,
        }
    }

    /// Default escalation: three strike invalidations on the same slot
    /// within 100k accesses. Tight enough to catch a hard site within a
    /// few packets, loose enough that independent transient faults
    /// (whose per-slot recurrence within any window is vanishingly rare
    /// at paper fault rates) essentially never escalate.
    pub fn default_policy() -> Self {
        WayDisablePolicy::new(3, 100_000)
    }
}

impl Default for WayDisablePolicy {
    fn default() -> Self {
        WayDisablePolicy::default_policy()
    }
}

impl fmt::Display for WayDisablePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "way-disable({} strikes / {} accesses)",
            self.strike_threshold, self.window_accesses
        )
    }
}

impl fmt::Display for StrikePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.strikes {
            1 => write!(f, "one-strike"),
            2 => write!(f, "two-strike"),
            3 => write!(f, "three-strike"),
            n => write!(f, "{n}-strike"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_constructors_match_counts() {
        assert_eq!(StrikePolicy::one_strike().max_attempts(), 1);
        assert_eq!(StrikePolicy::two_strike().max_attempts(), 2);
        assert_eq!(StrikePolicy::three_strike().max_attempts(), 3);
    }

    #[test]
    fn retries_is_attempts_minus_one() {
        for k in 1..=8 {
            let p = StrikePolicy::with_strikes(k);
            assert_eq!(p.retries(), k - 1);
        }
    }

    #[test]
    fn paper_set_is_one_two_three() {
        let set = StrikePolicy::paper_set();
        assert_eq!(set.map(|p| p.max_attempts()), [1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "strike count")]
    fn zero_strikes_rejected() {
        StrikePolicy::with_strikes(0);
    }

    #[test]
    fn display_names() {
        assert_eq!(format!("{}", StrikePolicy::one_strike()), "one-strike");
        assert_eq!(format!("{}", StrikePolicy::two_strike()), "two-strike");
        assert_eq!(format!("{}", StrikePolicy::three_strike()), "three-strike");
        assert_eq!(format!("{}", StrikePolicy::with_strikes(5)), "5-strike");
        assert_eq!(format!("{}", DetectionScheme::None), "no detection");
        assert_eq!(format!("{}", DetectionScheme::Parity), "parity");
        assert_eq!(format!("{}", DetectionScheme::ParityPerByte), "byte-parity");
    }

    #[test]
    fn way_disable_policy_defaults_and_display() {
        let p = WayDisablePolicy::default();
        assert_eq!(p, WayDisablePolicy::default_policy());
        assert_eq!(p.strike_threshold, 3);
        assert_eq!(p.window_accesses, 100_000);
        assert_eq!(format!("{p}"), "way-disable(3 strikes / 100000 accesses)");
    }

    #[test]
    #[should_panic(expected = "strike threshold")]
    fn way_disable_rejects_zero_threshold() {
        WayDisablePolicy::new(0, 100);
    }

    #[test]
    fn recovery_granularity_default_is_line() {
        assert_eq!(RecoveryGranularity::default(), RecoveryGranularity::Line);
        assert_eq!(format!("{}", RecoveryGranularity::Line), "line");
        assert_eq!(format!("{}", RecoveryGranularity::Word), "word");
    }

    #[test]
    fn fault_targets_default_and_labels() {
        assert_eq!(FaultTargets::default(), FaultTargets::data_only());
        assert_eq!(format!("{}", FaultTargets::data_only()), "data");
        assert_eq!(
            format!("{}", FaultTargets::data_only().with_tag(true)),
            "data+tag"
        );
        assert_eq!(format!("{}", FaultTargets::all()), "data+tag+parity+l2");
        assert_eq!(
            format!("{}", FaultTargets::data_only().with_l2(true)),
            "data+l2"
        );
        let none = FaultTargets {
            data: false,
            tag: false,
            parity: false,
            l2: false,
        };
        assert_eq!(format!("{none}"), "none");
    }

    #[test]
    fn detection_default_is_none() {
        assert_eq!(DetectionScheme::default(), DetectionScheme::None);
        assert!(!DetectionScheme::None.is_enabled());
        assert!(DetectionScheme::Parity.is_enabled());
        assert!(DetectionScheme::ParityPerByte.is_enabled());
        assert!(DetectionScheme::Secded.is_enabled());
        assert_eq!(format!("{}", DetectionScheme::Secded), "ecc");
    }
}
