//! The assembled memory system: L1D + L2 + backing store, with fault
//! injection, parity detection, strike recovery, timing and energy.

use crate::backing::BackingStore;
use crate::cache::{
    parity_signature, word_parity_of_signature, CacheGeometry, DataCache, Lookup, TagCache,
    WordCode,
};
use crate::config::MemConfig;
use crate::error::MemError;
use crate::policy::{DetectionScheme, RecoveryGranularity};
use crate::secded::{secded_decode, SecdedOutcome, SECDED_CODE_BITS};
use crate::stats::MemStats;
use crate::WORD_BITS;
use energy_model::EnergyBreakdown;
use fault_model::{FaultEvent, FaultSampler};

/// Width in bits of the stored per-word parity signature (one even-parity
/// bit per byte; word parity is the XOR of the four bits).
const PARITY_SIG_BITS: u32 = 4;

/// The simulated memory hierarchy a packet program runs against.
///
/// All program data lives in the simulated address space; loads and
/// stores go through the (possibly over-clocked, possibly faulty) level-1
/// data cache exactly as in the paper's modified SimpleScalar (§5.1).
///
/// # Examples
///
/// Over-clock the cache 4× and watch faults appear:
///
/// ```
/// use cache_sim::{DetectionScheme, MemConfig, MemSystem};
///
/// let cfg = MemConfig::strongarm().with_detection(DetectionScheme::Parity);
/// let mut mem = MemSystem::new(cfg, 7);
/// mem.set_cycle(0.25);
/// for i in 0..20_000u32 {
///     let a = (i % 512) * 4;
///     mem.write_u32(a, i).unwrap();
///     let _ = mem.read_u32(a).unwrap();
/// }
/// // At Cr = 0.25 the per-access fault probability is ~1e-3, so tens of
/// // faults were injected and (mostly) detected.
/// assert!(mem.stats().faults_injected > 0);
/// assert!(mem.stats().faults_detected > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: DataCache,
    l2: TagCache,
    backing: BackingStore,
    sampler: FaultSampler,
    cr: f64,
    vsr: f64,
    stats: MemStats,
    cycles: f64,
    energy: EnergyBreakdown,
    /// Bits of the stored tag that actually address the backing store
    /// (the address space is mirrored above it), used as the sampling
    /// width for tag-array faults so an aliased writeback stays in
    /// range. 10 bits for the default 4 MiB / 4 KB-direct-mapped config.
    tag_width: u32,
    /// Per-bit fault probability of the L2 data array at its own clock
    /// ([`MemConfig::l2_cycle`]), cached at construction. Consulted only
    /// when the opt-in [`FaultTargets::l2`](crate::FaultTargets) target
    /// is on.
    l2_per_bit: f64,
}

impl MemSystem {
    /// Creates a memory system at the full-swing clock (`Cr = 1`).
    pub fn new(cfg: MemConfig, seed: u64) -> Self {
        let sampler = FaultSampler::with_mode(cfg.fault_model, seed, cfg.sampling);
        let backing_bits = (cfg.backing_bytes as u64).trailing_zeros();
        let line_bits = cfg.l1.line_size().trailing_zeros();
        let set_bits = cfg.l1.sets().trailing_zeros();
        let tag_width = backing_bits
            .saturating_sub(line_bits + set_bits)
            .clamp(1, 32);
        let l2_per_bit = cfg.fault_model.per_bit_at_cycle(cfg.l2_cycle);
        let code = match cfg.detection {
            DetectionScheme::Secded => WordCode::Secded,
            _ => WordCode::ParitySignature,
        };
        MemSystem {
            l1: DataCache::with_code(cfg.l1, code),
            l2: TagCache::new(cfg.l2),
            backing: BackingStore::new(cfg.backing_bytes),
            sampler,
            cr: 1.0,
            vsr: 1.0,
            stats: MemStats::default(),
            cycles: 0.0,
            energy: EnergyBreakdown::default(),
            tag_width,
            l2_per_bit,
            cfg,
        }
    }

    /// Width in bits of the tag-fault sampling window (the tag bits that
    /// address the backing store).
    pub fn tag_width(&self) -> u32 {
        self.tag_width
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current relative cycle time of the L1 data cache.
    pub fn cycle_time(&self) -> f64 {
        self.cr
    }

    /// Current relative voltage swing of the L1 data cache.
    pub fn voltage_swing(&self) -> f64 {
        self.vsr
    }

    /// Changes the L1 clock to relative cycle time `cr`, charging the
    /// configured switch penalty if the clock actually changes (§4:
    /// varying the cache clock needs no flush, just a 10-cycle penalty).
    ///
    /// # Panics
    ///
    /// Panics if `cr` is not in `(0, 1]`.
    pub fn set_cycle(&mut self, cr: f64) {
        if (cr - self.cr).abs() < 1e-12 {
            return;
        }
        self.sampler.set_cycle(cr);
        self.cr = cr;
        self.vsr = self.cfg.swing.relative_swing(cr);
        self.cycles += self.cfg.freq_switch_penalty;
        self.stats.freq_switches += 1;
    }

    /// Changes the L1 clock without charging the switch penalty (for
    /// configuring *static* designs before a run).
    ///
    /// # Panics
    ///
    /// Panics if `cr` is not in `(0, 1]`.
    pub fn set_cycle_free(&mut self, cr: f64) {
        self.sampler.set_cycle(cr);
        self.cr = cr;
        self.vsr = self.cfg.swing.relative_swing(cr);
    }

    /// Enables or disables fault injection (disabled ⇒ golden run).
    pub fn set_inject(&mut self, enabled: bool) {
        self.sampler.set_enabled(enabled);
    }

    /// Whether fault injection is enabled.
    pub fn inject_enabled(&self) -> bool {
        self.sampler.is_enabled()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Elapsed core cycles (memory stalls plus [`MemSystem::advance`]).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Accumulated cache/memory energy (core energy is charged by the
    /// processor layer from the final cycle count).
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy
    }

    /// Advances time by `cycles` core cycles (instruction execution).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative or not finite.
    pub fn advance(&mut self, cycles: f64) {
        assert!(
            cycles.is_finite() && cycles >= 0.0,
            "cycle charge must be non-negative and finite, got {cycles}"
        );
        self.cycles += cycles;
    }

    /// Adds control-overhead energy (e.g. the dynamic controller's
    /// bookkeeping), in nanojoules.
    pub fn add_overhead_energy(&mut self, nj: f64) {
        self.energy.overhead_nj += nj;
    }

    fn check_alignment(addr: u32, align: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(align) {
            Err(MemError::Misaligned { addr, align })
        } else {
            Ok(())
        }
    }

    /// Opt-in tag-array injection: every lookup consults the tag SRAM,
    /// so a fault here *persistently* re-labels the line the lookup
    /// lands on. The true address then false-misses (refilling a second
    /// copy — and, if the re-labelled line was dirty, eventually writing
    /// it back to the aliased address), while the alias false-hits stale
    /// data. Sampling width is [`MemSystem::tag_width`] so aliased
    /// writebacks stay inside the backing store.
    fn maybe_corrupt_tag(&mut self, addr: u32) {
        let fault = self.sampler.sample_aux(self.tag_width);
        if fault.is_fault() {
            self.stats.tag_faults_injected += 1;
            self.l1.corrupt_tag(addr, fault.mask());
        }
    }

    /// Opt-in L2 data-array injection: corrupts one word travelling to
    /// or from the L2, at the per-bit probability of the L2's own clock
    /// ([`MemConfig::l2_cycle`]). Callers gate on `cfg.targets.l2`, so
    /// the sampler draws nothing while the target is off.
    fn maybe_corrupt_l2_word(&mut self, word: u32) -> u32 {
        let fault = self.sampler.sample_aux_at(self.l2_per_bit, WORD_BITS);
        if fault.is_fault() {
            self.stats.l2_faults_injected += 1;
            word ^ fault.mask()
        } else {
            word
        }
    }

    /// Applies [`MemSystem::maybe_corrupt_l2_word`] to every aligned
    /// word of a line buffer.
    fn maybe_corrupt_l2_block(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_exact_mut(4) {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let fetched = self.maybe_corrupt_l2_word(word);
            if fetched != word {
                chunk.copy_from_slice(&fetched.to_le_bytes());
            }
        }
    }

    /// Brings the line containing `addr` into L1, charging miss costs;
    /// returns the way.
    fn ensure_resident(&mut self, addr: u32) -> Result<usize, MemError> {
        if self.cfg.targets.tag {
            self.maybe_corrupt_tag(addr);
        }
        match self.l1.lookup(addr) {
            Lookup::Hit(way) => {
                self.stats.l1_hits += 1;
                Ok(way)
            }
            Lookup::Miss(way) => {
                self.stats.l1_misses += 1;
                let base = self.cfg.l1.line_base(addr);
                self.charge_l2_access(base, true);
                let mut buf = vec![0u8; self.cfg.l1.line_size() as usize];
                self.backing.read_block(base, &mut buf)?;
                // A corrupted refill word arrives before the L1 encodes
                // its check code, so detection cannot see it — the L1's
                // code protects the L1 array, not the path below it.
                if self.cfg.targets.l2 {
                    self.maybe_corrupt_l2_block(&mut buf);
                }
                if let Some((evicted_base, data)) = self.l1.fill(base, way, &buf) {
                    self.writeback(evicted_base, &data)?;
                }
                Ok(way)
            }
        }
    }

    /// Charges one L2 access; `stall` says whether the core waits for it
    /// (refills stall; writebacks drain through a write buffer).
    fn charge_l2_access(&mut self, addr: u32, stall: bool) {
        self.stats.l2_accesses += 1;
        self.energy.l2_nj += self.cfg.energy.l2_access_energy();
        let hit = self.l2.access(addr);
        if stall {
            self.cycles += self.cfg.l2_latency;
        }
        if !hit {
            self.stats.l2_misses += 1;
            self.energy.mem_nj += self.cfg.energy.mem_access_energy();
            if stall {
                self.cycles += self.cfg.mem_latency;
            }
        }
    }

    fn writeback(&mut self, base: u32, data: &[u8]) -> Result<(), MemError> {
        self.stats.writebacks += 1;
        if self.cfg.targets.l2 {
            // The deposited copy is what later refills and strike
            // refetches will call "truth", so an L2 fault here is a
            // persistent corruption of the architectural state.
            let mut corrupted = data.to_vec();
            self.maybe_corrupt_l2_block(&mut corrupted);
            self.backing.write_block(base, &corrupted)?;
        } else {
            self.backing.write_block(base, data)?;
        }
        self.charge_l2_access(base, false);
        Ok(())
    }

    fn l1_stall(&self) -> f64 {
        let raw = self.cfg.l1_latency * self.cr;
        if self.cfg.quantize_latency {
            raw.ceil()
        } else {
            raw
        }
    }

    /// Extra detection-energy factor for byte-granularity parity (four
    /// code bits per word instead of one).
    const PER_BYTE_PARITY_FACTOR: f64 = 1.10;

    fn detection_factor(&self) -> f64 {
        match self.cfg.detection {
            DetectionScheme::ParityPerByte => Self::PER_BYTE_PARITY_FACTOR,
            _ => 1.0,
        }
    }

    fn charge_l1_read(&mut self) {
        self.cycles += self.l1_stall();
        self.energy.l1_nj += match self.cfg.detection {
            DetectionScheme::None => self.cfg.energy.l1_read_energy(self.vsr),
            DetectionScheme::Secded => self.cfg.energy.l1_read_energy_with_ecc(self.vsr),
            _ => self.cfg.energy.l1_read_energy_with_parity(self.vsr) * self.detection_factor(),
        };
    }

    fn charge_l1_write(&mut self) {
        self.cycles += self.l1_stall();
        self.energy.l1_nj += match self.cfg.detection {
            DetectionScheme::None => self.cfg.energy.l1_write_energy(self.vsr),
            DetectionScheme::Secded => self.cfg.energy.l1_write_energy_with_ecc(self.vsr),
            _ => self.cfg.energy.l1_write_energy_with_parity(self.vsr) * self.detection_factor(),
        };
    }

    /// Reads the aligned 32-bit word at `addr` through the faulty cache.
    ///
    /// This is the paper's full read path: fault sampling on the access,
    /// parity check when detection is enabled, and strike-policy recovery
    /// (retries, then invalidate + L2 fetch) on detected faults.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        Self::check_alignment(addr, 4)?;
        self.stats.reads += 1;
        let way = self.ensure_resident(addr)?;
        self.charge_l1_read();
        self.read_resident_word(addr, way)
    }

    fn read_resident_word(&mut self, addr: u32, way: usize) -> Result<u32, MemError> {
        let max_attempts = self.cfg.strikes.max_attempts();
        let mut attempt = 1u8;
        loop {
            let (stored, mut stored_parity) = self.l1.read_word(addr, way);
            let fault = if self.cfg.targets.data {
                self.sampler.sample(WORD_BITS)
            } else {
                FaultEvent::none()
            };
            if fault.is_fault() {
                self.stats.faults_injected += 1;
            }
            // Opt-in parity-bit injection: the stored signature is read
            // from the same over-clocked SRAM as the data, so it can be
            // corrupted *transiently* on this attempt — raising a false
            // strike on clean data, or cancelling a genuine data fault
            // (a missed detection). Only meaningful when detection
            // hardware actually compares the signature.
            if self.cfg.targets.parity && self.cfg.detection.is_enabled() {
                let sig_bits = match self.cfg.detection {
                    DetectionScheme::Secded => SECDED_CODE_BITS,
                    _ => PARITY_SIG_BITS,
                };
                let pfault = self.sampler.sample_aux(sig_bits);
                if pfault.is_fault() {
                    self.stats.parity_faults_injected += 1;
                    stored_parity ^= pfault.mask() as u8;
                }
            }
            let value = stored ^ fault.mask();
            match self.cfg.detection {
                DetectionScheme::None => {
                    if fault.is_fault() {
                        self.stats.faults_undetected += 1;
                    }
                    return Ok(value);
                }
                DetectionScheme::Parity | DetectionScheme::ParityPerByte => {
                    let sig = parity_signature(value);
                    let clean = match self.cfg.detection {
                        // Word parity only compares the XOR of the four
                        // byte parities.
                        DetectionScheme::Parity => {
                            word_parity_of_signature(sig) == word_parity_of_signature(stored_parity)
                        }
                        _ => sig == stored_parity,
                    };
                    if clean {
                        // Clean — or an undetectable corruption slipped
                        // by (even weight for word parity; even weight
                        // within every byte for byte parity).
                        if fault.is_fault() {
                            self.stats.faults_undetected += 1;
                        }
                        return Ok(value);
                    }
                    self.stats.faults_detected += 1;
                    if attempt < max_attempts {
                        attempt += 1;
                        self.stats.strike_retries += 1;
                        self.charge_l1_read();
                        continue;
                    }
                    // Strikes exhausted: assume a write fault, invalidate
                    // the block (its dirty data is untrusted and dropped)
                    // and fetch the word from L2/backing.
                    return self.strike_fallback(addr);
                }
                DetectionScheme::Secded => match secded_decode(value, stored_parity) {
                    SecdedOutcome::Clean => {
                        // Clean — or three-plus flips aliased to a valid
                        // codeword and slipped through.
                        if fault.is_fault() {
                            self.stats.faults_undetected += 1;
                        }
                        return Ok(value);
                    }
                    SecdedOutcome::Corrected(corrected) => {
                        // Single-bit error repaired in place — no retry,
                        // no refetch. (A triple flip can masquerade as a
                        // correctable single and miscorrect; the golden
                        // comparison upstairs catches the wrong value.)
                        self.stats.faults_corrected += 1;
                        return Ok(corrected);
                    }
                    SecdedOutcome::Detected => {
                        // Uncorrectable: fall back to the strike path,
                        // exactly like a parity detection.
                        self.stats.faults_detected += 1;
                        if attempt < max_attempts {
                            attempt += 1;
                            self.stats.strike_retries += 1;
                            self.charge_l1_read();
                            continue;
                        }
                        return self.strike_fallback(addr);
                    }
                },
            }
        }
    }

    fn strike_fallback(&mut self, addr: u32) -> Result<u32, MemError> {
        self.stats.strike_invalidations += 1;
        self.charge_l2_access(self.cfg.l1.line_base(addr), true);
        let mut truth = self.backing.read_word(addr)?;
        if self.cfg.targets.l2 {
            // The refetch that recovery leans on reads the same fallible
            // L2 array. A fault here is a *recovery failure*: the
            // corrupted word is re-deposited into the L1 as trusted
            // truth, with a fresh (consistent) check code.
            let fetched = self.maybe_corrupt_l2_word(truth);
            if fetched != truth {
                self.stats.recovery_failures += 1;
                truth = fetched;
            }
        }
        match self.cfg.recovery {
            RecoveryGranularity::Line => {
                // The paper's design: drop the whole (untrusted) block;
                // its dirty words are lost.
                if self.l1.invalidate_dirty(addr) {
                    self.stats.dirty_drops += 1;
                }
            }
            RecoveryGranularity::Word => {
                // Footnote-2 extension: repair only the faulty word in
                // place, preserving the rest of the line. The repaired
                // word's own latest store is still lost if it had one.
                self.l1.poke_word(addr, truth);
            }
        }
        Ok(truth)
    }

    /// Writes the aligned 32-bit word at `addr` through the faulty cache
    /// (write-allocate, write-back). A write fault corrupts the *stored*
    /// word while parity is generated from the intended word, so the
    /// corruption is detectable on a later read.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        self.stats.writes += 1;
        let way = self.ensure_resident(addr)?;
        self.charge_l1_write();
        self.store_word(addr, way, value)
    }

    fn store_word(&mut self, addr: u32, way: usize, intended: u32) -> Result<(), MemError> {
        let fault = if self.cfg.targets.data {
            self.sampler.sample(WORD_BITS)
        } else {
            FaultEvent::none()
        };
        let stored = intended ^ fault.mask();
        if fault.is_fault() {
            self.stats.faults_injected += 1;
            if !self.cfg.detection.is_enabled() {
                self.stats.faults_undetected += 1;
            }
        }
        // Write-back, write-allocate: the word lives only in L1 until
        // the line is evicted, so a strike invalidation of a dirty line
        // genuinely loses its latest stores — the unrecoverable hole in
        // the paper's parity-plus-L2 recovery scheme (§4: the hardware
        // cannot tell read faults from write faults).
        self.l1.write_word(addr, way, stored, intended);
        Ok(())
    }

    /// Reads the byte at `addr` (one cache access on the containing
    /// word).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] for addresses beyond capacity.
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, MemError> {
        let word = self.read_u32_inner(addr & !3)?;
        Ok((word >> ((addr & 3) * 8)) as u8)
    }

    /// Reads the 16-bit value at `addr` (must be 2-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemError> {
        Self::check_alignment(addr, 2)?;
        let word = self.read_u32_inner(addr & !3)?;
        Ok((word >> ((addr & 3) * 8)) as u16)
    }

    fn read_u32_inner(&mut self, word_addr: u32) -> Result<u32, MemError> {
        self.stats.reads += 1;
        let way = self.ensure_resident(word_addr)?;
        self.charge_l1_read();
        self.read_resident_word(word_addr, way)
    }

    /// Writes the byte at `addr` (a read-modify-write of the containing
    /// word in the store path; one cache write access).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] for addresses beyond capacity.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        self.write_subword(addr & !3, (addr & 3) * 8, 0xFF, u32::from(value))
    }

    /// Writes the 16-bit value at `addr` (must be 2-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        Self::check_alignment(addr, 2)?;
        self.write_subword(addr & !3, (addr & 3) * 8, 0xFFFF, u32::from(value))
    }

    fn write_subword(
        &mut self,
        word_addr: u32,
        shift: u32,
        mask: u32,
        value: u32,
    ) -> Result<(), MemError> {
        self.stats.writes += 1;
        let way = self.ensure_resident(word_addr)?;
        self.charge_l1_write();
        // Merge with the currently stored word (store-buffer RMW; no
        // extra architectural read access is charged).
        let (current, _) = self.l1.read_word(word_addr, way);
        let intended = (current & !(mask << shift)) | ((value & mask) << shift);
        self.store_word(word_addr, way, intended)
    }

    /// Host (debug/DMA) read of the architectural word at `addr`:
    /// bypasses timing, energy, statistics and fault injection, and sees
    /// through dirty L1 lines.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn host_read_u32(&self, addr: u32) -> Result<u32, MemError> {
        Self::check_alignment(addr, 4)?;
        if let Some(word) = self.l1.peek_word(addr) {
            return Ok(word);
        }
        self.backing.read_word(addr)
    }

    /// Host (debug/DMA) write of the architectural word at `addr`:
    /// updates both the backing store and, if resident, the L1 copy.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn host_write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        self.backing.write_word(addr, value)?;
        self.l1.poke_word(addr, value);
        Ok(())
    }

    /// Host write of a block of bytes (packet DMA). The range must be
    /// word-aligned at both ends.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range ranges.
    pub fn host_write_block(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        if !bytes.len().is_multiple_of(4) {
            return Err(MemError::Misaligned {
                addr: addr + bytes.len() as u32,
                align: 4,
            });
        }
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            self.host_write_u32(addr + 4 * i as u32, word)?;
        }
        Ok(())
    }

    /// Writes every dirty L1 line back to L2/backing (lines stay
    /// resident and clean). Packet software does this when its tables
    /// stabilize at the end of the control plane, so the static
    /// structures the strike policies restore from L2 are actually
    /// there. Charges writeback energy (write-buffer drain, no stall).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if a line address escapes the backing store.
    pub fn writeback_all(&mut self) -> Result<(), MemError> {
        for (base, data) in self.l1.drain_dirty() {
            self.writeback(base, &data)?;
        }
        Ok(())
    }

    /// Total capacity of the simulated address space, in bytes.
    pub fn capacity(&self) -> usize {
        self.backing.capacity()
    }

    /// The L1 geometry (convenience accessor).
    pub fn l1_geometry(&self) -> CacheGeometry {
        self.cfg.l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StrikePolicy;
    use fault_model::FaultProbabilityModel;

    fn quiet() -> MemSystem {
        // A system whose fault model never fires (p0 minuscule at Cr=1).
        MemSystem::new(MemConfig::strongarm(), 1)
    }

    fn noisy(detection: DetectionScheme, strikes: StrikePolicy, seed: u64) -> MemSystem {
        // Extremely high fault rate to exercise the recovery paths.
        let cfg = MemConfig::strongarm()
            .with_detection(detection)
            .with_strikes(strikes)
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        MemSystem::new(cfg, seed)
    }

    #[test]
    fn read_after_write_round_trips() {
        let mut m = quiet();
        m.write_u32(0x40, 123).unwrap();
        assert_eq!(m.read_u32(0x40).unwrap(), 123);
    }

    #[test]
    fn byte_and_halfword_accesses() {
        let mut m = quiet();
        m.write_u32(0x40, 0).unwrap();
        m.write_u8(0x41, 0xAB).unwrap();
        m.write_u16(0x42, 0xCDEF).unwrap();
        assert_eq!(m.read_u8(0x41).unwrap(), 0xAB);
        assert_eq!(m.read_u16(0x42).unwrap(), 0xCDEF);
        assert_eq!(m.read_u32(0x40).unwrap(), 0xCDEF_AB00);
    }

    #[test]
    fn misaligned_accesses_error() {
        let mut m = quiet();
        assert!(m.read_u32(2).is_err());
        assert!(m.write_u32(5, 0).is_err());
        assert!(m.read_u16(1).is_err());
    }

    #[test]
    fn miss_then_hit_counting() {
        let mut m = quiet();
        m.read_u32(0x1000).unwrap(); // cold miss
        m.read_u32(0x1004).unwrap(); // same line: hit
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l2_accesses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn timing_l1_hit_is_scaled_by_cr() {
        let mut a = quiet();
        a.read_u32(0x100).unwrap(); // warm
        let before = a.cycles();
        a.read_u32(0x100).unwrap();
        assert!((a.cycles() - before - 2.0).abs() < 1e-9);

        let mut b = quiet();
        b.set_cycle_free(0.5);
        b.read_u32(0x100).unwrap();
        let before = b.cycles();
        b.read_u32(0x100).unwrap();
        assert!((b.cycles() - before - 1.0).abs() < 1e-9, "2 cycles x 0.5");
    }

    #[test]
    fn miss_timing_includes_l2_and_memory() {
        let mut m = quiet();
        m.read_u32(0x2000).unwrap();
        // l1 (2) + l2 (15) + mem (100)
        assert!((m.cycles() - 117.0).abs() < 1e-9, "cycles = {}", m.cycles());
        // Second miss to a line already in L2's (tag) array skips memory.
        m.read_u32(0x2000 + 4096).unwrap(); // conflict miss? different L1 set? 0x3000 -> same L1 set as 0x2000? 4 KB apart => same set.
                                            // Just assert total grew by at least l2 latency.
        assert!(m.cycles() > 117.0);
    }

    #[test]
    fn writeback_preserves_dirty_data() {
        let mut m = quiet();
        m.write_u32(0x100, 0xFEED).unwrap();
        // Evict by touching the conflicting line 4 KB away.
        m.read_u32(0x100 + 4096).unwrap();
        assert_eq!(m.stats().writebacks, 1);
        // Re-read the original line: must come back from backing intact.
        assert_eq!(m.read_u32(0x100).unwrap(), 0xFEED);
    }

    #[test]
    fn frequency_switch_costs_ten_cycles() {
        let mut m = quiet();
        let c0 = m.cycles();
        m.set_cycle(0.5);
        assert!((m.cycles() - c0 - 10.0).abs() < 1e-9);
        assert_eq!(m.stats().freq_switches, 1);
        // No-op switch costs nothing.
        m.set_cycle(0.5);
        assert_eq!(m.stats().freq_switches, 1);
    }

    #[test]
    fn energy_accumulates_and_scales_with_swing() {
        let mut full = quiet();
        full.write_u32(0x100, 1).unwrap();
        full.read_u32(0x100).unwrap();
        let e_full = full.energy().l1_nj;

        let mut fast = quiet();
        fast.set_cycle_free(0.25);
        fast.write_u32(0x100, 1).unwrap();
        fast.read_u32(0x100).unwrap();
        let e_fast = fast.energy().l1_nj;
        let vsr = fast.voltage_swing();
        assert!((e_fast / e_full - vsr).abs() < 1e-9);
    }

    #[test]
    fn parity_costs_more_energy() {
        let mut plain = quiet();
        plain.read_u32(0x100).unwrap();
        let mut par = MemSystem::new(
            MemConfig::strongarm().with_detection(DetectionScheme::Parity),
            1,
        );
        par.read_u32(0x100).unwrap();
        assert!(par.energy().l1_nj > plain.energy().l1_nj);
    }

    #[test]
    fn no_detection_lets_faults_through() {
        let mut m = noisy(DetectionScheme::None, StrikePolicy::one_strike(), 3);
        let mut corrupted = 0;
        for i in 0..5_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, 0x5A5A_5A5A).unwrap();
            if m.read_u32(a).unwrap() != 0x5A5A_5A5A {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "2% fault rate must corrupt something");
        assert_eq!(m.stats().faults_detected, 0);
        assert!(m.stats().faults_undetected > 0);
    }

    #[test]
    fn parity_detects_and_recovers_single_bit_read_faults() {
        // Seed data via host writes (no write faults), then hammer reads:
        // read faults are transient, so parity + retries must recover
        // almost all of them (only even-weight flips can slip through,
        // and the model here is single-bit-only).
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::three_strike())
            .with_fault_model(FaultProbabilityModel::new(3e-4, 0.0));
        let mut m = MemSystem::new(cfg, 4);
        for i in 0..64u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        let mut wrong = 0u32;
        let n = 200_000u32;
        for i in 0..n {
            let a = i % 64;
            if m.read_u32(a * 4).unwrap() != a {
                wrong += 1;
            }
        }
        assert!(m.stats().faults_injected > 100);
        assert!(m.stats().faults_detected > 100);
        assert!(m.stats().strike_retries > 0);
        // Multi-bit faults are disabled, so only double sampling noise
        // could corrupt; essentially everything recovers.
        let raw = m.stats().faults_injected as f64 / n as f64;
        let observed = wrong as f64 / n as f64;
        assert!(observed < raw / 10.0, "observed {observed} vs raw {raw}");
    }

    #[test]
    fn write_faults_with_parity_lose_the_update_but_return_clean_data() {
        // A persistently corrupted store is detected on read; after the
        // strikes are exhausted the block is invalidated and the stale
        // (pre-write) backing value returns — the write is lost, but no
        // corrupted bits reach the program.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_fault_model(FaultProbabilityModel::new(0.9 / 32.0, 0.0));
        let mut m = MemSystem::new(cfg, 12);
        m.host_write_u32(0x100, 111).unwrap();
        m.set_inject(true);
        let mut outcomes = std::collections::HashSet::new();
        for _ in 0..50 {
            m.set_inject(true);
            m.write_u32(0x100, 222).unwrap();
            m.set_inject(false); // read cleanly to observe stored state
            outcomes.insert(m.read_u32(0x100).unwrap());
        }
        // Every observed value is the new value, the stale backing value
        // (after a faulty store + fallback), or — the one hole parity
        // has — an *even-weight* corruption of the new value. Odd-weight
        // corruptions must never reach the program.
        for v in &outcomes {
            let ok = *v == 222 || *v == 111 || (v ^ 222u32).count_ones().is_multiple_of(2);
            assert!(ok, "odd-weight corrupted value {v} escaped parity");
        }
        assert!(outcomes.contains(&222));
    }

    #[test]
    fn one_strike_invalidates_immediately() {
        let mut m = noisy(DetectionScheme::Parity, StrikePolicy::one_strike(), 5);
        for i in 0..20_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().strike_invalidations > 0);
        assert_eq!(m.stats().strike_retries, 0, "one-strike never retries");
    }

    #[test]
    fn three_strike_retries_more_and_invalidates_less_than_one_strike() {
        let run = |strikes: StrikePolicy| {
            let mut m = noisy(DetectionScheme::Parity, strikes, 6);
            for i in 0..30_000u32 {
                let a = (i % 64) * 4;
                m.write_u32(a, i).unwrap();
                let _ = m.read_u32(a).unwrap();
            }
            (m.stats().strike_retries, m.stats().strike_invalidations)
        };
        let (r1, i1) = run(StrikePolicy::one_strike());
        let (r3, i3) = run(StrikePolicy::three_strike());
        assert_eq!(r1, 0);
        assert!(r3 > 0);
        assert!(i3 < i1, "three-strike must invalidate less: {i3} vs {i1}");
    }

    #[test]
    fn strike_fallback_returns_backing_truth() {
        // Force a persistent corruption by writing with a huge fault
        // rate, then read with strikes exhausted: the L2/backing value
        // (the last written-back truth, here the fill value) comes back.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::one_strike())
            .with_fault_model(FaultProbabilityModel::new(0.9, 0.0));
        let mut m = MemSystem::new(cfg, 9);
        // Seed backing truth without faults.
        m.host_write_u32(0x100, 777).unwrap();
        let mut saw_fallback = false;
        for _ in 0..200 {
            let v = m.read_u32(0x100).unwrap();
            if m.stats().strike_invalidations > 0 {
                saw_fallback = true;
                // After a fallback the returned word is the backing truth.
                assert_eq!(v, 777);
                break;
            }
        }
        assert!(saw_fallback, "expected at least one strike fallback");
    }

    #[test]
    fn byte_parity_catches_cross_byte_double_faults() {
        // A two-bit fault spanning different bytes escapes word parity
        // but is caught by byte-granularity parity. Compare undetected
        // corruption rates under a multi-bit-heavy fault model.
        let run = |detection| {
            let cfg = MemConfig::strongarm()
                .with_detection(detection)
                .with_strikes(StrikePolicy::three_strike())
                .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
            let mut m = MemSystem::new(cfg, 33);
            for i in 0..64u32 {
                m.host_write_u32(i * 4, i).unwrap();
            }
            let mut wrong = 0u64;
            for i in 0..100_000u32 {
                let a = i % 64;
                if m.read_u32(a * 4).unwrap() != a {
                    wrong += 1;
                }
            }
            wrong
        };
        let word = run(DetectionScheme::Parity);
        let byte = run(DetectionScheme::ParityPerByte);
        assert!(
            byte < word.max(1),
            "byte parity must leak fewer corruptions: {byte} vs {word}"
        );
    }

    #[test]
    fn byte_parity_costs_more_energy_than_word_parity() {
        let energy = |detection| {
            let mut m = MemSystem::new(MemConfig::strongarm().with_detection(detection), 1);
            m.read_u32(0x100).unwrap();
            m.energy().l1_nj
        };
        assert!(energy(DetectionScheme::ParityPerByte) > energy(DetectionScheme::Parity));
    }

    #[test]
    fn word_recovery_preserves_neighbouring_dirty_words() {
        // Footnote-2 extension: with word-granularity recovery, a strike
        // fallback repairs only the faulty word; other dirty words in
        // the same line survive. With line granularity they are lost.
        let run = |granularity| {
            let cfg = MemConfig::strongarm()
                .with_detection(DetectionScheme::Parity)
                .with_strikes(StrikePolicy::one_strike())
                .with_recovery(granularity)
                .with_fault_model(FaultProbabilityModel::new(0.9 / 32.0, 0.0));
            let mut m = MemSystem::new(cfg, 21);
            // Two words in the same 32-byte line; write the neighbour
            // cleanly, then hammer word 0 with faulty writes+reads until
            // a fallback happens.
            m.set_inject(false);
            m.write_u32(0x104, 4242).unwrap();
            m.set_inject(true);
            for i in 0..200u32 {
                m.write_u32(0x100, i).unwrap();
                let _ = m.read_u32(0x100).unwrap();
                if m.stats().strike_invalidations > 0 {
                    break;
                }
            }
            assert!(m.stats().strike_invalidations > 0, "need a fallback");
            m.set_inject(false);
            m.read_u32(0x104).unwrap()
        };
        assert_eq!(
            run(RecoveryGranularity::Word),
            4242,
            "word repair must keep the neighbour's dirty data"
        );
        assert_eq!(
            run(RecoveryGranularity::Line),
            0,
            "line invalidation loses the (never written back) neighbour"
        );
    }

    #[test]
    fn host_access_sees_through_dirty_lines() {
        let mut m = quiet();
        m.write_u32(0x100, 42).unwrap(); // dirty in L1
        assert_eq!(m.host_read_u32(0x100).unwrap(), 42);
        m.host_write_u32(0x100, 43).unwrap();
        assert_eq!(m.read_u32(0x100).unwrap(), 43);
    }

    #[test]
    fn host_block_write_round_trips() {
        let mut m = quiet();
        m.host_write_block(0x200, &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        assert_eq!(m.read_u32(0x200).unwrap(), u32::from_le_bytes([1, 2, 3, 4]));
        assert_eq!(m.read_u32(0x204).unwrap(), u32::from_le_bytes([5, 6, 7, 8]));
    }

    #[test]
    fn golden_mode_injects_nothing() {
        let mut m = noisy(DetectionScheme::None, StrikePolicy::one_strike(), 8);
        m.set_inject(false);
        for i in 0..10_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            assert_eq!(m.read_u32(a).unwrap(), i);
        }
        assert_eq!(m.stats().faults_injected, 0);
    }

    #[test]
    fn advance_accumulates_instruction_time() {
        let mut m = quiet();
        m.advance(100.0);
        m.advance(0.5);
        assert!((m.cycles() - 100.5).abs() < 1e-12);
    }

    #[test]
    fn tag_width_matches_backing_and_geometry() {
        // 4 MiB backing (22 bits) − 5 line bits − 7 set bits = 10.
        assert_eq!(quiet().tag_width(), 10);
        let small = MemSystem::new(MemConfig::strongarm().with_backing_bytes(1 << 20), 1);
        assert_eq!(small.tag_width(), 8);
    }

    #[test]
    fn tag_faults_cause_extra_misses() {
        use crate::policy::FaultTargets;
        // Tag-only injection, no detection: the only disturbance is
        // lookup aliasing, so any extra misses over the golden access
        // pattern come from corrupted tags.
        let run = |tag: bool| {
            let targets = FaultTargets {
                data: false,
                tag,
                parity: false,
                l2: false,
            };
            let cfg = MemConfig::strongarm()
                .with_targets(targets)
                .with_fault_model(FaultProbabilityModel::new(0.005, 0.0));
            let mut m = MemSystem::new(cfg, 5);
            for i in 0..20_000u32 {
                let a = (i % 64) * 4;
                m.write_u32(a, i).unwrap();
                let _ = m.read_u32(a).unwrap();
            }
            (m.stats().tag_faults_injected, m.stats().l1_misses)
        };
        let (f0, m0) = run(false);
        let (f1, m1) = run(true);
        assert_eq!(f0, 0);
        assert!(f1 > 0, "tag faults must fire at this rate");
        assert!(m1 > m0, "corrupted tags must false-miss: {m1} vs {m0}");
    }

    #[test]
    fn tag_fault_writebacks_stay_in_range() {
        use crate::policy::FaultTargets;
        // Dirty lines with corrupted tags are eventually written back to
        // the aliased address; the clamped tag width must keep every
        // such base inside the backing store (no OutOfRange errors).
        let cfg = MemConfig::strongarm()
            .with_targets(FaultTargets::data_only().with_tag(true))
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut m = MemSystem::new(cfg, 11);
        for i in 0..40_000u32 {
            // Two conflicting lines force regular evictions of dirty data.
            let a = (i % 64) * 4 + if i % 2 == 0 { 0 } else { 4096 };
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().tag_faults_injected > 0);
        assert!(m.stats().writebacks > 0);
    }

    #[test]
    fn parity_bit_faults_raise_false_strikes_on_clean_data() {
        use crate::policy::FaultTargets;
        // Parity-bit injection only (data array perfect): every detected
        // fault is a false strike caused by a corrupted signature.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_targets(FaultTargets {
                data: false,
                tag: false,
                parity: true,
                l2: false,
            })
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut m = MemSystem::new(cfg, 7);
        for i in 0..64u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        for i in 0..50_000u32 {
            let a = i % 64;
            // The data array never lies, and strike fallbacks return
            // backing truth, so reads are always correct.
            assert_eq!(m.read_u32(a * 4).unwrap(), a);
        }
        assert_eq!(m.stats().faults_injected, 0, "data array is clean");
        assert!(m.stats().parity_faults_injected > 0);
        assert!(
            m.stats().faults_detected > 0,
            "corrupted signatures must raise false strikes"
        );
        assert!(m.stats().strike_retries > 0);
    }

    #[test]
    fn parity_bit_faults_are_inert_without_detection_hardware() {
        use crate::policy::FaultTargets;
        // With no comparator the stored signature is never consulted, so
        // the parity target draws nothing and changes nothing.
        let cfg = MemConfig::strongarm()
            .with_targets(FaultTargets {
                data: false,
                tag: false,
                parity: true,
                l2: false,
            })
            .with_fault_model(FaultProbabilityModel::new(0.05, 0.0));
        let mut m = MemSystem::new(cfg, 13);
        for i in 0..10_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            assert_eq!(m.read_u32(a).unwrap(), i);
        }
        assert_eq!(m.stats().parity_faults_injected, 0);
        assert_eq!(m.stats().faults_detected, 0);
    }

    #[test]
    fn default_targets_match_explicit_data_only_bitwise() {
        use crate::policy::FaultTargets;
        let run = |cfg: MemConfig| {
            let mut m = MemSystem::new(cfg, 77);
            let mut acc = 0u64;
            for i in 0..5_000u32 {
                let a = (i % 128) * 4;
                m.write_u32(a, i).unwrap();
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(m.read_u32(a).unwrap()));
            }
            (acc, m.stats().faults_injected, m.cycles().to_bits())
        };
        let noisy_cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        assert_eq!(
            run(noisy_cfg.clone()),
            run(noisy_cfg.with_targets(FaultTargets::data_only()))
        );
    }

    #[test]
    fn secded_corrects_single_bit_read_faults_in_place() {
        // Read-only hammering of host-seeded data: every *single*-bit
        // fault (99 % of events under the paper's 100:1:0.1 multi-bit
        // ratios) is corrected in place, doubles take the strike path
        // and recover, and only the rare triple can reach the program.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Secded)
            .with_strikes(StrikePolicy::two_strike())
            .with_fault_model(FaultProbabilityModel::new(3e-3, 0.0));
        let mut m = MemSystem::new(cfg, 17);
        for i in 0..64u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        let n = 100_000u32;
        let mut wrong = 0u64;
        for i in 0..n {
            let a = i % 64;
            if m.read_u32(a * 4).unwrap() != a {
                wrong += 1;
            }
        }
        let s = *m.stats();
        assert!(s.faults_injected > 100);
        assert!(
            s.faults_corrected >= s.faults_injected * 95 / 100,
            "singles dominate: {} corrected of {}",
            s.faults_corrected,
            s.faults_injected
        );
        assert!(s.faults_detected > 0, "doubles must be detect-only");
        // Doubles recover through retries (read faults are transient),
        // so wrong values can come only from ~1-per-mille triples.
        assert!(
            wrong <= s.faults_injected / 100,
            "wrong {wrong} of {} injected",
            s.faults_injected
        );
    }

    #[test]
    fn secded_detects_double_faults_and_takes_the_strike_path() {
        // A multi-bit-heavy model produces double flips that SECDED can
        // only detect; those must flow into the existing strike path.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Secded)
            .with_strikes(StrikePolicy::two_strike())
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        let mut m = MemSystem::new(cfg, 23);
        for i in 0..30_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().faults_corrected > 0);
        assert!(m.stats().faults_detected > 0, "double flips must detect");
        assert!(m.stats().strike_retries > 0);
    }

    #[test]
    fn ecc_costs_more_energy_than_byte_parity() {
        let energy = |detection| {
            let mut m = MemSystem::new(MemConfig::strongarm().with_detection(detection), 1);
            m.read_u32(0x100).unwrap();
            m.write_u32(0x104, 1).unwrap();
            m.energy().l1_nj
        };
        assert!(energy(DetectionScheme::Secded) > energy(DetectionScheme::ParityPerByte));
        assert!(energy(DetectionScheme::ParityPerByte) > energy(DetectionScheme::Parity));
    }

    #[test]
    fn l2_faults_corrupt_refills_invisibly() {
        use crate::policy::FaultTargets;
        // L2-only injection with a perfect L1: corruption rides in on
        // refills *before* the check code is computed, so even parity
        // sees nothing and wrong values reach the program.
        let targets = FaultTargets {
            data: false,
            tag: false,
            parity: false,
            l2: true,
        };
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_targets(targets)
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut m = MemSystem::new(cfg, 29);
        for i in 0..512u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        let mut wrong = 0u32;
        for round in 0..200u32 {
            for i in 0..512u32 {
                // Conflict-miss every round: two images 4 KB apart.
                let a = (i * 4) + if round % 2 == 0 { 0 } else { 4096 };
                if round % 2 == 0 && m.read_u32(a).unwrap() != i {
                    wrong += 1;
                }
                if round % 2 != 0 {
                    let _ = m.read_u32(a).unwrap();
                }
            }
        }
        assert!(m.stats().l2_faults_injected > 0);
        assert!(wrong > 0, "refill corruption must reach the program");
        assert_eq!(m.stats().faults_detected, 0, "parity cannot see it");
    }

    #[test]
    fn l2_faults_can_defeat_strike_recovery() {
        use crate::policy::FaultTargets;
        // Data faults force strike fallbacks; a flat fault model makes
        // the L2 refetch just as fallible, so some recoveries pull
        // corrupted "truth" — the recovery_failures counter.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::one_strike())
            .with_targets(FaultTargets::data_only().with_l2(true))
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        let mut m = MemSystem::new(cfg, 31);
        for i in 0..60_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().strike_invalidations > 0);
        assert!(m.stats().l2_faults_injected > 0);
        assert!(
            m.stats().recovery_failures > 0,
            "refetches at a 2% word fault rate must sometimes fail"
        );
        assert!(m.stats().recovery_failures <= m.stats().l2_faults_injected);
    }

    #[test]
    fn l2_cycle_is_inert_while_l2_target_is_off() {
        // Changing the L2 clock must not perturb a run that doesn't
        // inject into the L2 — bitwise identical behaviour.
        let run = |cfg: MemConfig| {
            let mut m = MemSystem::new(cfg, 77);
            let mut acc = 0u64;
            for i in 0..5_000u32 {
                let a = (i % 128) * 4;
                m.write_u32(a, i).unwrap();
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(m.read_u32(a).unwrap()));
            }
            (acc, m.stats().faults_injected, m.cycles().to_bits())
        };
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        assert_eq!(run(cfg.clone()), run(cfg.with_l2_cycle(0.25)));
    }

    #[test]
    fn determinism_same_seed_same_behaviour() {
        let run = |seed| {
            let mut m = noisy(DetectionScheme::Parity, StrikePolicy::two_strike(), seed);
            let mut acc = 0u64;
            for i in 0..5_000u32 {
                let a = (i % 128) * 4;
                m.write_u32(a, i).unwrap();
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(m.read_u32(a).unwrap()));
            }
            (acc, m.stats().faults_injected, m.cycles().to_bits())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1);
    }
}
