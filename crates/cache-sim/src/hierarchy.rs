//! The assembled memory system: L1D + L2 + backing store, with fault
//! injection, parity detection, strike recovery, timing and energy.

use crate::backing::BackingStore;
use crate::cache::{
    parity_signature, word_parity_of_signature, CacheGeometry, DataCache, Lookup, TagCache,
    WordCode,
};
use crate::config::MemConfig;
use crate::error::MemError;
use crate::policy::{DetectionScheme, RecoveryGranularity};
use crate::secded::{secded_decode, SecdedOutcome, SECDED_CODE_BITS};
use crate::stats::MemStats;
use crate::WORD_BITS;
use energy_model::EnergyBreakdown;
use fault_model::{FaultEvent, FaultSampler, PersistentFaultProcess, SamplingMode};

/// Width in bits of the stored per-word parity signature (one even-parity
/// bit per byte; word parity is the XOR of the four bits).
const PARITY_SIG_BITS: u32 = 4;

/// One program access in a batched run (see [`MemSystem::access_run`]).
///
/// Alignment rules match the individual entry points: `ReadU32`/
/// `WriteU32` need 4-byte alignment, `ReadU16`/`WriteU16` need 2-byte
/// alignment, byte accesses are unrestricted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Aligned 32-bit read; pushes the value onto the run's output.
    ReadU32(u32),
    /// Aligned 16-bit read; pushes the zero-extended value.
    ReadU16(u32),
    /// Byte read; pushes the zero-extended value.
    ReadU8(u32),
    /// Aligned 32-bit write.
    WriteU32(u32, u32),
    /// Aligned 16-bit write.
    WriteU16(u32, u16),
    /// Byte write.
    WriteU8(u32, u8),
}

impl Access {
    /// The byte address the access targets.
    #[inline]
    fn addr(self) -> u32 {
        match self {
            Access::ReadU32(a)
            | Access::ReadU16(a)
            | Access::ReadU8(a)
            | Access::WriteU32(a, _) => a,
            Access::WriteU16(a, _) => a,
            Access::WriteU8(a, _) => a,
        }
    }

    /// Whether the access is a read (pushes onto the run's output).
    #[inline]
    fn is_read(self) -> bool {
        matches!(
            self,
            Access::ReadU32(_) | Access::ReadU16(_) | Access::ReadU8(_)
        )
    }

    /// The entry point's required address alignment, in bytes.
    #[inline]
    fn align(self) -> u32 {
        match self {
            Access::ReadU32(_) | Access::WriteU32(_, _) => 4,
            Access::ReadU16(_) | Access::WriteU16(_, _) => 2,
            Access::ReadU8(_) | Access::WriteU8(_, _) => 1,
        }
    }
}

/// The simulated memory hierarchy a packet program runs against.
///
/// All program data lives in the simulated address space; loads and
/// stores go through the (possibly over-clocked, possibly faulty) level-1
/// data cache exactly as in the paper's modified SimpleScalar (§5.1).
///
/// # Examples
///
/// Over-clock the cache 4× and watch faults appear:
///
/// ```
/// use cache_sim::{DetectionScheme, MemConfig, MemSystem};
///
/// let cfg = MemConfig::strongarm().with_detection(DetectionScheme::Parity);
/// let mut mem = MemSystem::new(cfg, 7);
/// mem.set_cycle(0.25);
/// for i in 0..20_000u32 {
///     let a = (i % 512) * 4;
///     mem.write_u32(a, i).unwrap();
///     let _ = mem.read_u32(a).unwrap();
/// }
/// // At Cr = 0.25 the per-access fault probability is ~1e-3, so tens of
/// // faults were injected and (mostly) detected.
/// assert!(mem.stats().faults_injected > 0);
/// assert!(mem.stats().faults_detected > 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemSystem {
    cfg: MemConfig,
    l1: DataCache,
    l2: TagCache,
    backing: BackingStore,
    sampler: FaultSampler,
    cr: f64,
    vsr: f64,
    stats: MemStats,
    cycles: f64,
    energy: EnergyBreakdown,
    /// Bits of the stored tag that actually address the backing store
    /// (the address space is mirrored above it), used as the sampling
    /// width for tag-array faults so an aliased writeback stays in
    /// range. 10 bits for the default 4 MiB / 4 KB-direct-mapped config.
    tag_width: u32,
    /// Per-bit fault probability of the L2 data array at its own clock
    /// ([`MemConfig::l2_cycle`]), cached at construction. Consulted only
    /// when the opt-in [`FaultTargets::l2`](crate::FaultTargets) target
    /// is on.
    l2_per_bit: f64,
    /// Cached L1 stall per access at the current clock (recomputed by
    /// `refresh_timing`); identical to [`MemSystem::l1_stall`] so the
    /// fast path's accrual is bitwise equal to the slow path's.
    l1_stall_c: f64,
    /// Cached per-access L1 read energy at the current swing/detection.
    read_nj: f64,
    /// Cached per-access L1 write energy at the current swing/detection.
    write_nj: f64,
    /// Config-constant fast-path gate: false when an opt-in aux target
    /// (tag array, or parity bits under enabled detection) injects on
    /// every access, forcing everything through the slow path.
    fast_ok: bool,
    /// Whether fast-path reads must skip suspect lines (a detection
    /// scheme is enabled and would flag the stored mismatch).
    need_clean: bool,
    /// Master toggle for the batched fast path. On and off runs are
    /// bitwise identical (the toggle exists so benchmarks and tests can
    /// measure/verify exactly that); off means every access takes the
    /// full checking path.
    fast_path: bool,
    /// Reusable refill buffer (one L1 line) so misses allocate nothing.
    refill_buf: Box<[u8]>,
    /// Reusable same-line segment scratch for batched run commits.
    run_segs: Vec<RunSegment>,
    /// Opt-in sticky fault-site process on the L1 data array (`None`
    /// while [`MemConfig::persistent`] is off). Owns its own RNG stream,
    /// so it never perturbs the transient sampler's realization.
    persistent: Option<PersistentFaultProcess>,
    /// Per-(set,way) strike-escalation state, indexed like the L1's
    /// line array. Empty while [`MemConfig::way_disable`] is off.
    way_health: Vec<WayHealth>,
}

/// Escalation bookkeeping for one physical L1 slot (see
/// [`WayDisablePolicy`](crate::WayDisablePolicy)): how many strike
/// invalidations have landed on it within the sliding window, and the
/// access-clock reading of the most recent one.
#[derive(Debug, Clone, Copy, Default)]
struct WayHealth {
    strikes: u32,
    last: u64,
}

/// One same-line stretch of a batched fast-path group: `len` consecutive
/// run accesses that all hit the located line `(set, way)`.
#[derive(Debug, Clone, Copy)]
struct RunSegment {
    set: u32,
    way: u32,
    len: u32,
}

impl MemSystem {
    /// Creates a memory system at the full-swing clock (`Cr = 1`).
    pub fn new(cfg: MemConfig, seed: u64) -> Self {
        let sampler = FaultSampler::with_mode(cfg.fault_model, seed, cfg.sampling);
        let backing_bits = (cfg.backing_bytes as u64).trailing_zeros();
        let line_bits = cfg.l1.line_size().trailing_zeros();
        let set_bits = cfg.l1.sets().trailing_zeros();
        let tag_width = backing_bits
            .saturating_sub(line_bits + set_bits)
            .clamp(1, 32);
        let l2_per_bit = cfg.fault_model.per_bit_at_cycle(cfg.l2_cycle);
        let code = match cfg.detection {
            DetectionScheme::Secded => WordCode::Secded,
            _ => WordCode::ParitySignature,
        };
        // The aux targets below inject on *every* access (tag lookups,
        // signature reads), so any batched skip would change their
        // sampling stream: runs with those targets stay on the slow path.
        // Persistent sites likewise must be visible to every read, so
        // they too pin the system to the exact per-access path.
        let fast_ok = !cfg.targets.tag
            && (!cfg.targets.parity || !cfg.detection.is_enabled())
            && cfg.persistent.is_none();
        let need_clean = cfg.detection.is_enabled();
        let refill_buf = vec![0u8; cfg.l1.line_size() as usize].into_boxed_slice();
        let mut sys = MemSystem {
            l1: DataCache::with_code(cfg.l1, code),
            l2: TagCache::new(cfg.l2),
            backing: BackingStore::new(cfg.backing_bytes),
            sampler,
            cr: 1.0,
            vsr: 1.0,
            stats: MemStats::default(),
            cycles: 0.0,
            energy: EnergyBreakdown::default(),
            tag_width,
            l2_per_bit,
            l1_stall_c: 0.0,
            read_nj: 0.0,
            write_nj: 0.0,
            fast_ok,
            need_clean,
            fast_path: true,
            refill_buf,
            run_segs: Vec::new(),
            persistent: cfg.persistent.map(|p| PersistentFaultProcess::new(p, seed)),
            way_health: if cfg.way_disable.is_some() {
                vec![WayHealth::default(); (cfg.l1.sets() * cfg.l1.assoc()) as usize]
            } else {
                Vec::new()
            },
            cfg,
        };
        sys.refresh_timing();
        sys
    }

    /// Recomputes the cached per-access stall and energy charges after a
    /// clock change. Both the fast and the slow path add these exact
    /// values, which is what keeps the two bitwise interchangeable.
    fn refresh_timing(&mut self) {
        self.l1_stall_c = self.l1_stall();
        self.read_nj = match self.cfg.detection {
            DetectionScheme::None => self.cfg.energy.l1_read_energy(self.vsr),
            DetectionScheme::Secded => self.cfg.energy.l1_read_energy_with_ecc(self.vsr),
            _ => self.cfg.energy.l1_read_energy_with_parity(self.vsr) * self.detection_factor(),
        };
        self.write_nj = match self.cfg.detection {
            DetectionScheme::None => self.cfg.energy.l1_write_energy(self.vsr),
            DetectionScheme::Secded => self.cfg.energy.l1_write_energy_with_ecc(self.vsr),
            _ => self.cfg.energy.l1_write_energy_with_parity(self.vsr) * self.detection_factor(),
        };
    }

    /// Width in bits of the tag-fault sampling window (the tag bits that
    /// address the backing store).
    pub fn tag_width(&self) -> u32 {
        self.tag_width
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Current relative cycle time of the L1 data cache.
    pub fn cycle_time(&self) -> f64 {
        self.cr
    }

    /// Current relative voltage swing of the L1 data cache.
    pub fn voltage_swing(&self) -> f64 {
        self.vsr
    }

    /// Changes the L1 clock to relative cycle time `cr`, charging the
    /// configured switch penalty if the clock actually changes (§4:
    /// varying the cache clock needs no flush, just a 10-cycle penalty).
    ///
    /// # Panics
    ///
    /// Panics if `cr` is not in `(0, 1]`.
    pub fn set_cycle(&mut self, cr: f64) {
        if (cr - self.cr).abs() < 1e-12 {
            return;
        }
        self.sampler.set_cycle(cr);
        self.cr = cr;
        self.vsr = self.cfg.swing.relative_swing(cr);
        self.refresh_timing();
        self.cycles += self.cfg.freq_switch_penalty;
        self.stats.freq_switches += 1;
    }

    /// Changes the L1 clock without charging the switch penalty (for
    /// configuring *static* designs before a run).
    ///
    /// # Panics
    ///
    /// Panics if `cr` is not in `(0, 1]`.
    pub fn set_cycle_free(&mut self, cr: f64) {
        self.sampler.set_cycle(cr);
        self.cr = cr;
        self.vsr = self.cfg.swing.relative_swing(cr);
        self.refresh_timing();
    }

    /// Enables or disables the batched fault-free fast path. Results,
    /// timing, energy and fault statistics are bitwise identical either
    /// way (only the diagnostic `fast_forward_accesses` /
    /// `slow_path_accesses` split differs); the toggle exists so tests
    /// and benchmarks can verify and measure exactly that claim.
    pub fn set_fast_path(&mut self, enabled: bool) {
        self.fast_path = enabled;
    }

    /// Whether the batched fault-free fast path is enabled.
    pub fn fast_path_enabled(&self) -> bool {
        self.fast_path
    }

    /// Enables or disables fault injection (disabled ⇒ golden run).
    pub fn set_inject(&mut self, enabled: bool) {
        self.sampler.set_enabled(enabled);
    }

    /// Whether fault injection is enabled.
    pub fn inject_enabled(&self) -> bool {
        self.sampler.is_enabled()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Elapsed core cycles (memory stalls plus [`MemSystem::advance`]).
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Accumulated cache/memory energy (core energy is charged by the
    /// processor layer from the final cycle count).
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy
    }

    /// Advances time by `cycles` core cycles (instruction execution).
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is negative or not finite.
    pub fn advance(&mut self, cycles: f64) {
        assert!(
            cycles.is_finite() && cycles >= 0.0,
            "cycle charge must be non-negative and finite, got {cycles}"
        );
        self.cycles += cycles;
    }

    /// Adds control-overhead energy (e.g. the dynamic controller's
    /// bookkeeping), in nanojoules.
    pub fn add_overhead_energy(&mut self, nj: f64) {
        self.energy.overhead_nj += nj;
    }

    fn check_alignment(addr: u32, align: u32) -> Result<(), MemError> {
        if !addr.is_multiple_of(align) {
            Err(MemError::Misaligned { addr, align })
        } else {
            Ok(())
        }
    }

    /// Opt-in tag-array injection: every lookup consults the tag SRAM,
    /// so a fault here *persistently* re-labels the line the lookup
    /// lands on. The true address then false-misses (refilling a second
    /// copy — and, if the re-labelled line was dirty, eventually writing
    /// it back to the aliased address), while the alias false-hits stale
    /// data. Sampling width is [`MemSystem::tag_width`] so aliased
    /// writebacks stay inside the backing store.
    fn maybe_corrupt_tag(&mut self, addr: u32) {
        let fault = self.sampler.sample_aux(self.tag_width);
        if fault.is_fault() {
            self.stats.tag_faults_injected += 1;
            self.l1.corrupt_tag(addr, fault.mask());
        }
    }

    /// Opt-in L2 data-array injection: corrupts one word travelling to
    /// or from the L2, at the per-bit probability of the L2's own clock
    /// ([`MemConfig::l2_cycle`]). Callers gate on `cfg.targets.l2`, so
    /// the sampler draws nothing while the target is off.
    fn maybe_corrupt_l2_word(&mut self, word: u32) -> u32 {
        let fault = self.sampler.sample_aux_at(self.l2_per_bit, WORD_BITS);
        if fault.is_fault() {
            self.stats.l2_faults_injected += 1;
            word ^ fault.mask()
        } else {
            word
        }
    }

    /// Applies [`MemSystem::maybe_corrupt_l2_word`] to every aligned
    /// word of a line buffer.
    fn maybe_corrupt_l2_block(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_exact_mut(4) {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let fetched = self.maybe_corrupt_l2_word(word);
            if fetched != word {
                chunk.copy_from_slice(&fetched.to_le_bytes());
            }
        }
    }

    /// Brings the line containing `addr` into L1, charging miss costs;
    /// returns the way, or `None` when every way of the target set is
    /// disabled and the access must be serviced by the L2 bypass.
    fn ensure_resident(&mut self, addr: u32) -> Result<Option<usize>, MemError> {
        if self.cfg.targets.tag {
            self.maybe_corrupt_tag(addr);
        }
        match self.l1.lookup(addr) {
            Lookup::Hit(way) => {
                self.stats.l1_hits += 1;
                Ok(Some(way))
            }
            Lookup::Miss(way) => {
                self.stats.l1_misses += 1;
                let base = self.cfg.l1.line_base(addr);
                self.charge_l2_access(base, true);
                let mut buf = std::mem::take(&mut self.refill_buf);
                if let Err(e) = self.backing.read_block(base, &mut buf) {
                    self.refill_buf = buf;
                    return Err(e);
                }
                // A corrupted refill word arrives before the L1 encodes
                // its check code, so detection cannot see it — the L1's
                // code protects the L1 array, not the path below it.
                if self.cfg.targets.l2 {
                    self.maybe_corrupt_l2_block(&mut buf);
                }
                let evicted = self.l1.fill(base, way, &buf);
                self.refill_buf = buf;
                if let Some((evicted_base, data)) = evicted {
                    self.writeback(evicted_base, &data)?;
                }
                Ok(Some(way))
            }
            Lookup::Bypass => Ok(None),
        }
    }

    /// Services a word read against a fully mapped-out set straight from
    /// the L2/backing at L2 cost. The L1 array is never touched, so no
    /// L1 fault process (transient, persistent, tag or parity) applies;
    /// the opt-in L2 process still does, exactly as on a refill.
    fn bypass_read_word(&mut self, addr: u32) -> Result<u32, MemError> {
        self.stats.bypass_accesses += 1;
        self.charge_l2_access(self.cfg.l1.line_base(addr), true);
        let word = self.backing.read_word(addr)?;
        if self.cfg.targets.l2 {
            Ok(self.maybe_corrupt_l2_word(word))
        } else {
            Ok(word)
        }
    }

    /// Write half of the bypass: stores through to the L2/backing at L2
    /// cost (there is no L1 line to buffer the store in).
    fn bypass_write_word(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        self.stats.bypass_accesses += 1;
        self.charge_l2_access(self.cfg.l1.line_base(addr), true);
        let stored = if self.cfg.targets.l2 {
            self.maybe_corrupt_l2_word(value)
        } else {
            value
        };
        self.backing.write_word(addr, stored)
    }

    /// Charges one L2 access; `stall` says whether the core waits for it
    /// (refills stall; writebacks drain through a write buffer).
    fn charge_l2_access(&mut self, addr: u32, stall: bool) {
        self.stats.l2_accesses += 1;
        self.energy.l2_nj += self.cfg.energy.l2_access_energy();
        let hit = self.l2.access(addr);
        if stall {
            self.cycles += self.cfg.l2_latency;
        }
        if !hit {
            self.stats.l2_misses += 1;
            self.energy.mem_nj += self.cfg.energy.mem_access_energy();
            if stall {
                self.cycles += self.cfg.mem_latency;
            }
        }
    }

    fn writeback(&mut self, base: u32, data: &[u8]) -> Result<(), MemError> {
        self.stats.writebacks += 1;
        if self.cfg.targets.l2 {
            // The deposited copy is what later refills and strike
            // refetches will call "truth", so an L2 fault here is a
            // persistent corruption of the architectural state.
            let mut corrupted = data.to_vec();
            self.maybe_corrupt_l2_block(&mut corrupted);
            self.backing.write_block(base, &corrupted)?;
        } else {
            self.backing.write_block(base, data)?;
        }
        self.charge_l2_access(base, false);
        Ok(())
    }

    fn l1_stall(&self) -> f64 {
        let raw = self.cfg.l1_latency * self.cr;
        if self.cfg.quantize_latency {
            raw.ceil()
        } else {
            raw
        }
    }

    /// Extra detection-energy factor for byte-granularity parity (four
    /// code bits per word instead of one).
    const PER_BYTE_PARITY_FACTOR: f64 = 1.10;

    fn detection_factor(&self) -> f64 {
        match self.cfg.detection {
            DetectionScheme::ParityPerByte => Self::PER_BYTE_PARITY_FACTOR,
            _ => 1.0,
        }
    }

    fn charge_l1_read(&mut self) {
        self.cycles += self.l1_stall_c;
        self.energy.l1_nj += self.read_nj;
    }

    fn charge_l1_write(&mut self) {
        self.cycles += self.l1_stall_c;
        self.energy.l1_nj += self.write_nj;
    }

    /// Reads the aligned 32-bit word at `addr` through the faulty cache.
    ///
    /// This is the paper's full read path: fault sampling on the access,
    /// parity check when detection is enabled, and strike-policy recovery
    /// (retries, then invalidate + L2 fetch) on detected faults.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn read_u32(&mut self, addr: u32) -> Result<u32, MemError> {
        Self::check_alignment(addr, 4)?;
        self.read_u32_inner(addr)
    }

    fn read_resident_word(&mut self, addr: u32, way: usize) -> Result<u32, MemError> {
        let max_attempts = self.cfg.strikes.max_attempts();
        let mut attempt = 1u8;
        loop {
            let (stored, mut stored_parity) = self.l1.read_word(addr, way);
            let fault = if self.cfg.targets.data {
                self.sampler.sample(WORD_BITS)
            } else {
                FaultEvent::none()
            };
            if fault.is_fault() {
                self.stats.faults_injected += 1;
            }
            // Opt-in sticky fault sites: a stuck bit in this physical
            // slot corrupts every read that senses it. Gated on the
            // injection switch so golden runs stay clean, and drawing
            // from the process's own RNG stream so the transient
            // realization above is untouched.
            let mut flip = fault.mask();
            if self.persistent.is_some() && self.sampler.is_enabled() && self.cfg.targets.data {
                let slot = self.persistent_slot(addr, way);
                if let Some(p) = self.persistent.as_mut() {
                    let pmask = p.touch(slot, WORD_BITS);
                    if pmask != 0 {
                        self.stats.faults_injected += 1;
                        flip |= pmask;
                    }
                }
            }
            let faulted = flip != 0;
            // Opt-in parity-bit injection: the stored signature is read
            // from the same over-clocked SRAM as the data, so it can be
            // corrupted *transiently* on this attempt — raising a false
            // strike on clean data, or cancelling a genuine data fault
            // (a missed detection). Only meaningful when detection
            // hardware actually compares the signature.
            if self.cfg.targets.parity && self.cfg.detection.is_enabled() {
                let sig_bits = match self.cfg.detection {
                    DetectionScheme::Secded => SECDED_CODE_BITS,
                    _ => PARITY_SIG_BITS,
                };
                let pfault = self.sampler.sample_aux(sig_bits);
                if pfault.is_fault() {
                    self.stats.parity_faults_injected += 1;
                    stored_parity ^= pfault.mask() as u8;
                }
            }
            let value = stored ^ flip;
            match self.cfg.detection {
                DetectionScheme::None => {
                    if faulted {
                        self.stats.faults_undetected += 1;
                    }
                    return Ok(value);
                }
                DetectionScheme::Parity | DetectionScheme::ParityPerByte => {
                    let sig = parity_signature(value);
                    let clean = match self.cfg.detection {
                        // Word parity only compares the XOR of the four
                        // byte parities.
                        DetectionScheme::Parity => {
                            word_parity_of_signature(sig) == word_parity_of_signature(stored_parity)
                        }
                        _ => sig == stored_parity,
                    };
                    if clean {
                        // Clean — or an undetectable corruption slipped
                        // by (even weight for word parity; even weight
                        // within every byte for byte parity).
                        if faulted {
                            self.stats.faults_undetected += 1;
                        }
                        return Ok(value);
                    }
                    self.stats.faults_detected += 1;
                    if attempt < max_attempts {
                        attempt += 1;
                        self.stats.strike_retries += 1;
                        self.charge_l1_read();
                        continue;
                    }
                    // Strikes exhausted: assume a write fault, invalidate
                    // the block (its dirty data is untrusted and dropped)
                    // and fetch the word from L2/backing.
                    return self.strike_fallback(addr, way);
                }
                DetectionScheme::Secded => match secded_decode(value, stored_parity) {
                    SecdedOutcome::Clean => {
                        // Clean — or three-plus flips aliased to a valid
                        // codeword and slipped through.
                        if faulted {
                            self.stats.faults_undetected += 1;
                        }
                        return Ok(value);
                    }
                    SecdedOutcome::Corrected(corrected) => {
                        // Single-bit error repaired in place — no retry,
                        // no refetch. (A triple flip can masquerade as a
                        // correctable single and miscorrect; the golden
                        // comparison upstairs catches the wrong value.)
                        self.stats.faults_corrected += 1;
                        return Ok(corrected);
                    }
                    SecdedOutcome::Detected => {
                        // Uncorrectable: fall back to the strike path,
                        // exactly like a parity detection.
                        self.stats.faults_detected += 1;
                        if attempt < max_attempts {
                            attempt += 1;
                            self.stats.strike_retries += 1;
                            self.charge_l1_read();
                            continue;
                        }
                        return self.strike_fallback(addr, way);
                    }
                },
            }
        }
    }

    /// Physical slot id of the word `addr` maps to in way `way` (the key
    /// of the sticky fault-site process): slots are numbered over
    /// (set, way) pairs line-major and over words within the line minor,
    /// so the same id always denotes the same SRAM cells.
    fn persistent_slot(&self, addr: u32, way: usize) -> u64 {
        let g = &self.cfg.l1;
        let set = u64::from(g.set_of(addr));
        let assoc = g.assoc() as u64;
        let words = u64::from(g.line_size() / 4);
        let word = u64::from(g.offset_of(addr)) / 4;
        (set * assoc + way as u64) * words + word
    }

    fn strike_fallback(&mut self, addr: u32, way: usize) -> Result<u32, MemError> {
        self.stats.strike_invalidations += 1;
        self.charge_l2_access(self.cfg.l1.line_base(addr), true);
        let mut truth = self.backing.read_word(addr)?;
        if self.cfg.targets.l2 {
            // The refetch that recovery leans on reads the same fallible
            // L2 array. A fault here is a *recovery failure*: the
            // corrupted word is re-deposited into the L1 as trusted
            // truth, with a fresh (consistent) check code.
            let fetched = self.maybe_corrupt_l2_word(truth);
            if fetched != truth {
                self.stats.recovery_failures += 1;
                truth = fetched;
            }
        }
        // Opt-in way-disabling escalation: strike invalidations landing
        // repeatedly on the same physical slot within a short window are
        // evidence of a permanent fault that re-fetching will never fix.
        // Classify the site as broken and map the way out instead of
        // invalidating forever. Pure counter bookkeeping — no RNG.
        if let Some(policy) = self.cfg.way_disable {
            let set = self.cfg.l1.set_of(addr);
            let idx = set as usize * self.cfg.l1.assoc() as usize + way;
            let now = self.stats.reads + self.stats.writes;
            let h = &mut self.way_health[idx];
            if h.strikes > 0 && now - h.last <= policy.window_accesses {
                h.strikes += 1;
            } else {
                h.strikes = 1;
            }
            h.last = now;
            if h.strikes >= policy.strike_threshold {
                self.way_health[idx] = WayHealth::default();
                self.retire_way(set, way, addr, truth)?;
                return Ok(truth);
            }
        }
        match self.cfg.recovery {
            RecoveryGranularity::Line => {
                // The paper's design: drop the whole (untrusted) block;
                // its dirty words are lost.
                if self.l1.invalidate_dirty(addr) {
                    self.stats.dirty_drops += 1;
                }
            }
            RecoveryGranularity::Word => {
                // Footnote-2 extension: repair only the faulty word in
                // place, preserving the rest of the line. The repaired
                // word's own latest store is still lost if it had one.
                self.l1.poke_word(addr, truth);
            }
        }
        Ok(truth)
    }

    /// Maps way `way` of `set` out of service after escalation: the
    /// resident line's dirty data is salvaged through the writeback path
    /// first — with the striking word patched to the refetched `truth`,
    /// since its stored copy is exactly what detection refused to trust —
    /// so way-disabling rescues updates that strike-forever would drop.
    fn retire_way(&mut self, set: u32, way: usize, addr: u32, truth: u32) -> Result<(), MemError> {
        if let Some((base, mut data)) = self.l1.disable_way(set, way) {
            let off = self.cfg.l1.offset_of(addr) as usize & !3;
            data[off..off + 4].copy_from_slice(&truth.to_le_bytes());
            self.stats.salvage_writebacks += 1;
            self.writeback(base, &data)?;
        }
        self.stats.ways_disabled += 1;
        Ok(())
    }

    /// Maps way `way` of set `set` out of service by hand — the entry
    /// point for studies that drive an explicit manufacturing/wear fault
    /// map rather than waiting for strike escalation to find the sites.
    /// A resident dirty line is salvaged through the writeback path.
    /// Returns `true` if the way was newly disabled, `false` if it
    /// already was (nothing is charged or counted in that case).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the salvage writeback fails.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range for the L1 geometry.
    pub fn disable_way(&mut self, set: u32, way: usize) -> Result<bool, MemError> {
        if self.l1.way_disabled(set, way) {
            return Ok(false);
        }
        if let Some((base, data)) = self.l1.disable_way(set, way) {
            self.stats.salvage_writebacks += 1;
            self.writeback(base, &data)?;
        }
        self.stats.ways_disabled += 1;
        Ok(true)
    }

    /// Read access to the L1 data cache (for inspecting the disabled-way
    /// map and per-set health from benches and tests).
    pub fn l1_cache(&self) -> &DataCache {
        &self.l1
    }

    /// Writes the aligned 32-bit word at `addr` through the faulty cache
    /// (write-allocate, write-back). A write fault corrupts the *stored*
    /// word while parity is generated from the intended word, so the
    /// corruption is detectable on a later read.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        // Fault-free fast path (see `read_u32_inner`). Writes need no
        // suspect check: the slow path stores over the old word either
        // way, and `fast_write_commit` keeps any materialized code in
        // step exactly as `write_word` would.
        if self.fast_path && self.fast_ok {
            if let Some((set, way)) = self.l1.fast_locate(addr) {
                if !self.cfg.targets.data || self.sampler.fast_forward(WORD_BITS, 1) == 1 {
                    self.stats.writes += 1;
                    self.stats.l1_hits += 1;
                    self.stats.fast_forward_accesses += 1;
                    self.cycles += self.l1_stall_c;
                    self.energy.l1_nj += self.write_nj;
                    self.l1.fast_write_commit(set, way, addr, value);
                    return Ok(());
                }
            }
        }
        self.stats.slow_path_accesses += 1;
        self.stats.writes += 1;
        let Some(way) = self.ensure_resident(addr)? else {
            return self.bypass_write_word(addr, value);
        };
        self.charge_l1_write();
        self.store_word(addr, way, value)
    }

    fn store_word(&mut self, addr: u32, way: usize, intended: u32) -> Result<(), MemError> {
        let fault = if self.cfg.targets.data {
            self.sampler.sample(WORD_BITS)
        } else {
            FaultEvent::none()
        };
        let stored = intended ^ fault.mask();
        if fault.is_fault() {
            self.stats.faults_injected += 1;
            if !self.cfg.detection.is_enabled() {
                self.stats.faults_undetected += 1;
            }
        }
        // Write-back, write-allocate: the word lives only in L1 until
        // the line is evicted, so a strike invalidation of a dirty line
        // genuinely loses its latest stores — the unrecoverable hole in
        // the paper's parity-plus-L2 recovery scheme (§4: the hardware
        // cannot tell read faults from write faults).
        self.l1.write_word(addr, way, stored, intended);
        Ok(())
    }

    /// Reads the byte at `addr` (one cache access on the containing
    /// word).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] for addresses beyond capacity.
    pub fn read_u8(&mut self, addr: u32) -> Result<u8, MemError> {
        let word = self.read_u32_inner(addr & !3)?;
        Ok((word >> ((addr & 3) * 8)) as u8)
    }

    /// Reads the 16-bit value at `addr` (must be 2-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn read_u16(&mut self, addr: u32) -> Result<u16, MemError> {
        Self::check_alignment(addr, 2)?;
        let word = self.read_u32_inner(addr & !3)?;
        Ok((word >> ((addr & 3) * 8)) as u16)
    }

    fn read_u32_inner(&mut self, word_addr: u32) -> Result<u32, MemError> {
        // Batched fault-free fast path: an L1 hit on a clean line inside
        // a skip-ahead gap needs no RNG draw and no check-code work — the
        // outcome of the full path is known to be "clean read of the
        // stored word" by construction. Every no-go condition is checked
        // *before* the gap slot is consumed, so a slow-path access sees
        // the sampler in exactly the state it would have had without the
        // fast path.
        if self.fast_path && self.fast_ok {
            if let Some((set, way)) = self.l1.fast_locate(word_addr) {
                if !(self.need_clean && self.l1.is_suspect(set, way))
                    && (!self.cfg.targets.data || self.sampler.fast_forward(WORD_BITS, 1) == 1)
                {
                    self.stats.reads += 1;
                    self.stats.l1_hits += 1;
                    self.stats.fast_forward_accesses += 1;
                    self.cycles += self.l1_stall_c;
                    self.energy.l1_nj += self.read_nj;
                    return Ok(self.l1.fast_read_commit(set, way, word_addr));
                }
            }
        }
        self.stats.slow_path_accesses += 1;
        self.stats.reads += 1;
        let Some(way) = self.ensure_resident(word_addr)? else {
            return self.bypass_read_word(word_addr);
        };
        self.charge_l1_read();
        self.read_resident_word(word_addr, way)
    }

    /// Writes the byte at `addr` (a read-modify-write of the containing
    /// word in the store path; one cache write access).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] for addresses beyond capacity.
    pub fn write_u8(&mut self, addr: u32, value: u8) -> Result<(), MemError> {
        self.write_subword(addr & !3, (addr & 3) * 8, 0xFF, u32::from(value))
    }

    /// Writes the 16-bit value at `addr` (must be 2-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn write_u16(&mut self, addr: u32, value: u16) -> Result<(), MemError> {
        Self::check_alignment(addr, 2)?;
        self.write_subword(addr & !3, (addr & 3) * 8, 0xFFFF, u32::from(value))
    }

    fn write_subword(
        &mut self,
        word_addr: u32,
        shift: u32,
        mask: u32,
        value: u32,
    ) -> Result<(), MemError> {
        // Fault-free fast path: the store-buffer RMW merges with the raw
        // stored word, which is what the slow path's `read_word` returns
        // too (codes play no part in the merge).
        if self.fast_path && self.fast_ok {
            if let Some((set, way)) = self.l1.fast_locate(word_addr) {
                if !self.cfg.targets.data || self.sampler.fast_forward(WORD_BITS, 1) == 1 {
                    self.stats.writes += 1;
                    self.stats.l1_hits += 1;
                    self.stats.fast_forward_accesses += 1;
                    self.cycles += self.l1_stall_c;
                    self.energy.l1_nj += self.write_nj;
                    let current = self.l1.fast_read_commit(set, way, word_addr);
                    let intended = (current & !(mask << shift)) | ((value & mask) << shift);
                    self.l1.fast_write_commit(set, way, word_addr, intended);
                    return Ok(());
                }
            }
        }
        self.stats.slow_path_accesses += 1;
        self.stats.writes += 1;
        let Some(way) = self.ensure_resident(word_addr)? else {
            // RMW against the L2/backing copy, charged as one bypass
            // store (the merge happens in the store buffer, as in the
            // resident path).
            let current = self.backing.read_word(word_addr)?;
            let intended = (current & !(mask << shift)) | ((value & mask) << shift);
            return self.bypass_write_word(word_addr, intended);
        };
        self.charge_l1_write();
        // Merge with the currently stored word (store-buffer RMW; no
        // extra architectural read access is charged).
        let (current, _) = self.l1.read_word(word_addr, way);
        let intended = (current & !(mask << shift)) | ((value & mask) << shift);
        self.store_word(word_addr, way, intended)
    }

    /// Host (debug/DMA) read of the architectural word at `addr`:
    /// bypasses timing, energy, statistics and fault injection, and sees
    /// through dirty L1 lines.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn host_read_u32(&self, addr: u32) -> Result<u32, MemError> {
        Self::check_alignment(addr, 4)?;
        if let Some(word) = self.l1.peek_word(addr) {
            return Ok(word);
        }
        self.backing.read_word(addr)
    }

    /// Host (debug/DMA) write of the architectural word at `addr`:
    /// updates both the backing store and, if resident, the L1 copy.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range addresses.
    pub fn host_write_u32(&mut self, addr: u32, value: u32) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        self.backing.write_word(addr, value)?;
        self.l1.poke_word(addr, value);
        Ok(())
    }

    /// Host write of a block of bytes (packet DMA). The range must be
    /// word-aligned at both ends.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for misaligned or out-of-range ranges.
    pub fn host_write_block(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        if !bytes.len().is_multiple_of(4) {
            return Err(MemError::Misaligned {
                addr: addr + bytes.len() as u32,
                align: 4,
            });
        }
        self.backing.write_block(addr, bytes)?;
        self.l1.poke_range(addr, bytes);
        Ok(())
    }

    /// Runs a batch of program accesses; read results are appended to
    /// `out` in access order. Bitwise identical to issuing the same
    /// accesses through the individual entry points one by one — the
    /// batching buys the caller line-granular grouping: a stretch of
    /// accesses that stays within one resident cache line consumes its
    /// skip-ahead gap in a single sampler call and commits in a tight
    /// loop, instead of re-locating the line and re-querying the
    /// sampler per access.
    ///
    /// # Errors
    ///
    /// Returns the first access's [`MemError`]; earlier accesses in the
    /// run have already committed (exactly as in the unbatched loop).
    pub fn access_run(&mut self, run: &[Access], out: &mut Vec<u32>) -> Result<(), MemError> {
        self.access_run_masked(run, u32::MAX, out)
    }

    /// [`MemSystem::access_run`] with an address mask applied to every
    /// access: each address is `AND`-ed with `addr_mask` before it
    /// touches the hierarchy. A machine layer that mirrors program
    /// addresses modulo a power-of-two capacity passes `capacity - 1`
    /// here and skips its own per-access translation copy; `u32::MAX`
    /// is the identity.
    ///
    /// # Errors
    ///
    /// As [`MemSystem::access_run`], judged on the masked addresses.
    pub fn access_run_masked(
        &mut self,
        run: &[Access],
        addr_mask: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), MemError> {
        // Grouping only pays when a gap can actually be consumed: in
        // exact per-access sampling every gap query returns 0, so the
        // scan would be pure overhead.
        let grouping = self.grouping_pays();
        let mut i = 0;
        while i < run.len() {
            if grouping {
                i += self.fast_run_group(&run[i..], addr_mask, out);
                if i == run.len() {
                    break;
                }
            }
            self.access_one(run[i], addr_mask, out)?;
            i += 1;
        }
        Ok(())
    }

    /// Whether batched entry points should bother scanning for
    /// fast-path groups (see [`MemSystem::access_run_masked`]).
    #[inline]
    fn grouping_pays(&self) -> bool {
        self.fast_path
            && self.fast_ok
            && !(self.cfg.targets.data
                && self.sampler.is_enabled()
                && self.sampler.mode() == SamplingMode::PerAccess)
    }

    /// Issues one run access through the individual entry points.
    #[inline]
    fn access_one(
        &mut self,
        access: Access,
        mask: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), MemError> {
        match access {
            Access::ReadU32(addr) => out.push(self.read_u32(addr & mask)?),
            Access::ReadU16(addr) => out.push(u32::from(self.read_u16(addr & mask)?)),
            Access::ReadU8(addr) => out.push(u32::from(self.read_u8(addr & mask)?)),
            Access::WriteU32(addr, v) => self.write_u32(addr & mask, v)?,
            Access::WriteU16(addr, v) => self.write_u16(addr & mask, v)?,
            Access::WriteU8(addr, v) => self.write_u8(addr & mask, v)?,
        }
        Ok(())
    }

    /// Commits the longest eligible prefix of `run` — every access an
    /// L1 hit on a line the fast path may touch — consuming the whole
    /// group's skip-ahead gap in a single sampler call. The group may
    /// span many cache lines: the geometric gap is a per-*access*
    /// process, so one `fast_forward(32, k)` consumes exactly the slots
    /// k single-access probes would have. Returns how many accesses were
    /// committed (possibly 0); the caller issues the next access through
    /// the per-access entry points, which reproduces the slow-path /
    /// fault-arrival behavior exactly.
    ///
    /// The committed per-access effect sequence — LRU touch, data move,
    /// cycle and energy accrual, in order — is identical to the
    /// single-access fast paths, so everything stays bitwise equal to
    /// the unbatched loop; only the number of sampler and line-lookup
    /// calls changes.
    fn fast_run_group(&mut self, run: &[Access], mask: u32, out: &mut Vec<u32>) -> usize {
        // Scan: split the eligible prefix into same-line segments, each
        // carrying its located way so the commit pass needs no second
        // lookup.
        let mut segs = std::mem::take(&mut self.run_segs);
        segs.clear();
        let mut cur_base = u32::MAX;
        let mut writes_only = false;
        let mut k = 0usize;
        for &a in run {
            let addr = a.addr() & mask;
            if addr & (a.align() - 1) != 0 {
                break;
            }
            let base = self.cfg.l1.line_base(addr);
            if base == cur_base && k > 0 {
                if writes_only && a.is_read() {
                    break;
                }
                // Same line as the previous access: extend its segment.
                let last = segs.last_mut().expect("segment exists");
                last.len += 1;
            } else {
                let Some((set, way)) = self.l1.fast_locate(addr & !3) else {
                    break;
                };
                // Reads of a suspect line must run the detection slow
                // path; writes are eligible either way (the
                // single-access write fast paths never consult the
                // suspect flag).
                writes_only = self.need_clean && self.l1.is_suspect(set, way);
                if writes_only && a.is_read() {
                    break;
                }
                cur_base = base;
                segs.push(RunSegment {
                    set,
                    way: way as u32,
                    len: 1,
                });
            }
            k += 1;
        }
        if k == 0 {
            self.run_segs = segs;
            return 0;
        }
        let granted = if self.cfg.targets.data {
            self.sampler.fast_forward(WORD_BITS, k as u64) as usize
        } else {
            k
        };
        // Register-resident accumulators: the adds happen in the same
        // per-access order as the singles loop (f64 addition is not
        // associative, so the sequence is the contract), only the
        // store-back is batched.
        let mut cycles = self.cycles;
        let mut l1_nj = self.energy.l1_nj;
        let stall = self.l1_stall_c;
        let read_nj = self.read_nj;
        let write_nj = self.write_nj;
        let mut reads = 0u64;
        let mut i = 0usize;
        'commit: for seg in &segs {
            let mut line = self.l1.fast_group(seg.set, seg.way as usize);
            for _ in 0..seg.len {
                if i == granted {
                    break 'commit;
                }
                let a = run[i];
                let addr = a.addr() & mask;
                i += 1;
                cycles += stall;
                match a {
                    Access::ReadU32(_) => {
                        l1_nj += read_nj;
                        reads += 1;
                        out.push(line.read(addr));
                    }
                    Access::ReadU16(_) => {
                        l1_nj += read_nj;
                        reads += 1;
                        out.push(u32::from((line.read(addr) >> ((addr & 3) * 8)) as u16));
                    }
                    Access::ReadU8(_) => {
                        l1_nj += read_nj;
                        reads += 1;
                        out.push(u32::from(line.read_u8(addr)));
                    }
                    Access::WriteU32(_, v) => {
                        l1_nj += write_nj;
                        line.write(addr, v);
                    }
                    Access::WriteU16(_, v) => {
                        l1_nj += write_nj;
                        let shift = (addr & 3) * 8;
                        let cur = line.read(addr);
                        let intended =
                            (cur & !(0xFFFF << shift)) | ((u32::from(v) & 0xFFFF) << shift);
                        line.write(addr, intended);
                    }
                    Access::WriteU8(_, v) => {
                        l1_nj += write_nj;
                        line.write_u8(addr, v);
                    }
                }
            }
        }
        self.cycles = cycles;
        self.energy.l1_nj = l1_nj;
        self.run_segs = segs;
        self.stats.reads += reads;
        self.stats.writes += granted as u64 - reads;
        self.stats.l1_hits += granted as u64;
        self.stats.fast_forward_accesses += granted as u64;
        granted
    }

    /// Reads `len` bytes starting at `addr`, appending them to `out`.
    /// Bitwise identical to `len` successive [`MemSystem::read_u8`]
    /// calls on `addr..addr+len`, but the contiguous range lets whole
    /// line-sized stretches commit under one skip-ahead grant without
    /// building an [`Access`] run — the cheapest way to sweep a packet
    /// payload. Addresses are not mirrored: the caller masks `addr` and
    /// keeps the range inside capacity.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] when the range escapes the
    /// backing store; earlier bytes have already committed.
    pub fn read_block_u8(
        &mut self,
        addr: u32,
        len: u32,
        out: &mut Vec<u8>,
    ) -> Result<(), MemError> {
        let grouping = self.grouping_pays();
        let mut i = 0u32;
        while i < len {
            if grouping {
                i += self.fast_read_block(addr + i, len - i, out);
                if i == len {
                    break;
                }
            }
            out.push(self.read_u8(addr + i)?);
            i += 1;
        }
        Ok(())
    }

    /// Writes `bytes` starting at `addr`. Bitwise identical to
    /// `bytes.len()` successive [`MemSystem::write_u8`] calls (each a
    /// store-buffer read-merge-write of its containing word), with the
    /// same line-granular batching as [`MemSystem::read_block_u8`].
    /// Addresses are not mirrored: the caller masks `addr` and keeps
    /// the range inside capacity.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] when the range escapes the
    /// backing store; earlier bytes have already committed.
    pub fn write_block_u8(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let grouping = self.grouping_pays();
        let mut i = 0u32;
        while (i as usize) < bytes.len() {
            if grouping {
                i += self.fast_write_block(addr + i, &bytes[i as usize..]);
                if i as usize == bytes.len() {
                    break;
                }
            }
            self.write_u8(addr + i, bytes[i as usize])?;
            i += 1;
        }
        Ok(())
    }

    /// Scans the strided sweep of `n` accesses starting at `addr` into
    /// line segments (each `RunSegment::len` counting *accesses*),
    /// stopping at the first non-resident — or, for reads under a
    /// detection scheme, suspect — line. Returns the eligible access
    /// count; the segments land in `segs`.
    #[inline]
    fn scan_stride(
        &self,
        segs: &mut Vec<RunSegment>,
        addr: u32,
        n: u32,
        stride: u32,
        skip_suspect: bool,
    ) -> u32 {
        segs.clear();
        let line_size = self.cfg.l1.line_size();
        let mut k = 0u32;
        let mut a = addr;
        while k < n {
            let Some((set, way)) = self.l1.fast_locate(a & !3) else {
                break;
            };
            if skip_suspect && self.l1.is_suspect(set, way) {
                break;
            }
            let line_end = self.cfg.l1.line_base(a) + line_size;
            let seg_len = ((line_end - a) / stride).min(n - k);
            segs.push(RunSegment {
                set,
                way: way as u32,
                len: seg_len,
            });
            k += seg_len;
            a += seg_len * stride;
        }
        k
    }

    /// Commits the longest eligible prefix of the byte range
    /// `addr..addr+len` — resident, non-suspect lines — as fast-path
    /// reads under a single skip-ahead grant, pushing the bytes onto
    /// `out`. Returns how many bytes were committed (possibly 0).
    fn fast_read_block(&mut self, addr: u32, len: u32, out: &mut Vec<u8>) -> u32 {
        let mut segs = std::mem::take(&mut self.run_segs);
        let k = self.scan_stride(&mut segs, addr, len, 1, self.need_clean);
        if k == 0 {
            self.run_segs = segs;
            return 0;
        }
        let granted = if self.cfg.targets.data {
            self.sampler.fast_forward(WORD_BITS, u64::from(k)) as u32
        } else {
            k
        };
        // Timing/energy accrue per access in the same f64 add order as
        // the singles loop (addition is not associative, so the add
        // sequence is the contract); the functional copy of each line
        // stretch is then one bulk move.
        let mut cycles = self.cycles;
        let mut l1_nj = self.energy.l1_nj;
        let stall = self.l1_stall_c;
        let nj = self.read_nj;
        out.reserve(granted as usize);
        let mut a = addr;
        let mut i = 0u32;
        for seg in &segs {
            let take = seg.len.min(granted - i);
            if take == 0 {
                break;
            }
            for _ in 0..take {
                cycles += stall;
                l1_nj += nj;
            }
            let line = self.l1.fast_group(seg.set, seg.way as usize);
            line.read_bytes_into(a, take, out);
            i += take;
            a += take;
        }
        self.cycles = cycles;
        self.energy.l1_nj = l1_nj;
        self.run_segs = segs;
        self.stats.reads += u64::from(granted);
        self.stats.l1_hits += u64::from(granted);
        self.stats.fast_forward_accesses += u64::from(granted);
        granted
    }

    /// Write-side twin of [`MemSystem::fast_read_block`]: commits the
    /// longest resident prefix of `bytes` as fast-path byte stores
    /// (writes never consult the suspect flag, matching the
    /// single-access write fast paths). Returns the bytes committed.
    fn fast_write_block(&mut self, addr: u32, bytes: &[u8]) -> u32 {
        let mut segs = std::mem::take(&mut self.run_segs);
        let k = self.scan_stride(&mut segs, addr, bytes.len() as u32, 1, false);
        if k == 0 {
            self.run_segs = segs;
            return 0;
        }
        let granted = if self.cfg.targets.data {
            self.sampler.fast_forward(WORD_BITS, u64::from(k)) as u32
        } else {
            k
        };
        // Per-access f64 accrual, bulk functional move (see
        // `fast_read_block`).
        let mut cycles = self.cycles;
        let mut l1_nj = self.energy.l1_nj;
        let stall = self.l1_stall_c;
        let nj = self.write_nj;
        let mut a = addr;
        let mut i = 0u32;
        for seg in &segs {
            let take = seg.len.min(granted - i);
            if take == 0 {
                break;
            }
            for _ in 0..take {
                cycles += stall;
                l1_nj += nj;
            }
            let mut line = self.l1.fast_group(seg.set, seg.way as usize);
            line.write_bytes(a, &bytes[i as usize..(i + take) as usize]);
            i += take;
            a += take;
        }
        self.cycles = cycles;
        self.energy.l1_nj = l1_nj;
        self.run_segs = segs;
        self.stats.writes += u64::from(granted);
        self.stats.l1_hits += u64::from(granted);
        self.stats.fast_forward_accesses += u64::from(granted);
        granted
    }

    /// Reads `n` aligned 32-bit words starting at `addr`, appending
    /// them to `out`. Bitwise identical to `n` successive
    /// [`MemSystem::read_u32`] calls on `addr, addr+4, ..`, with whole
    /// resident lines committing under one skip-ahead grant — the
    /// cheapest way to sweep a table or message block whose addresses
    /// do not depend on loaded values. Addresses are not mirrored.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for a misaligned `addr` (before any access
    /// commits) or an out-of-range word (earlier words have committed).
    pub fn read_block_u32(
        &mut self,
        addr: u32,
        n: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        let grouping = self.grouping_pays();
        let mut i = 0u32;
        while i < n {
            if grouping {
                i += self.fast_read_block_u32(addr + 4 * i, n - i, out);
                if i == n {
                    break;
                }
            }
            out.push(self.read_u32(addr + 4 * i)?);
            i += 1;
        }
        Ok(())
    }

    /// Reads `n` aligned 16-bit half-words starting at `addr` (appended
    /// to `out` zero-extended, as a batched run would). Bitwise
    /// identical to `n` successive [`MemSystem::read_u16`] calls on
    /// `addr, addr+2, ..`. Addresses are not mirrored.
    ///
    /// # Errors
    ///
    /// As [`MemSystem::read_block_u32`], with 2-byte alignment.
    pub fn read_block_u16(
        &mut self,
        addr: u32,
        n: u32,
        out: &mut Vec<u32>,
    ) -> Result<(), MemError> {
        Self::check_alignment(addr, 2)?;
        let grouping = self.grouping_pays();
        let mut i = 0u32;
        while i < n {
            if grouping {
                i += self.fast_read_block_u16(addr + 2 * i, n - i, out);
                if i == n {
                    break;
                }
            }
            out.push(u32::from(self.read_u16(addr + 2 * i)?));
            i += 1;
        }
        Ok(())
    }

    /// Writes `words` as aligned 32-bit stores starting at `addr`.
    /// Bitwise identical to successive [`MemSystem::write_u32`] calls.
    /// Addresses are not mirrored.
    ///
    /// # Errors
    ///
    /// As [`MemSystem::read_block_u32`].
    pub fn write_block_u32(&mut self, addr: u32, words: &[u32]) -> Result<(), MemError> {
        Self::check_alignment(addr, 4)?;
        let grouping = self.grouping_pays();
        let mut i = 0u32;
        while (i as usize) < words.len() {
            if grouping {
                i += self.fast_write_block_u32(addr + 4 * i, &words[i as usize..]);
                if i as usize == words.len() {
                    break;
                }
            }
            self.write_u32(addr + 4 * i, words[i as usize])?;
            i += 1;
        }
        Ok(())
    }

    /// Word-granular twin of [`MemSystem::fast_read_block`].
    fn fast_read_block_u32(&mut self, addr: u32, n: u32, out: &mut Vec<u32>) -> u32 {
        let mut segs = std::mem::take(&mut self.run_segs);
        let k = self.scan_stride(&mut segs, addr, n, 4, self.need_clean);
        if k == 0 {
            self.run_segs = segs;
            return 0;
        }
        let granted = if self.cfg.targets.data {
            self.sampler.fast_forward(WORD_BITS, u64::from(k)) as u32
        } else {
            k
        };
        // Per-access f64 accrual, bulk functional move (see
        // `fast_read_block`).
        let mut cycles = self.cycles;
        let mut l1_nj = self.energy.l1_nj;
        let stall = self.l1_stall_c;
        let nj = self.read_nj;
        out.reserve(granted as usize);
        let mut a = addr;
        let mut i = 0u32;
        for seg in &segs {
            let take = seg.len.min(granted - i);
            if take == 0 {
                break;
            }
            for _ in 0..take {
                cycles += stall;
                l1_nj += nj;
            }
            let line = self.l1.fast_group(seg.set, seg.way as usize);
            line.read_words_into(a, take, out);
            i += take;
            a += 4 * take;
        }
        self.cycles = cycles;
        self.energy.l1_nj = l1_nj;
        self.run_segs = segs;
        self.stats.reads += u64::from(granted);
        self.stats.l1_hits += u64::from(granted);
        self.stats.fast_forward_accesses += u64::from(granted);
        granted
    }

    /// Half-word-granular twin of [`MemSystem::fast_read_block`].
    fn fast_read_block_u16(&mut self, addr: u32, n: u32, out: &mut Vec<u32>) -> u32 {
        let mut segs = std::mem::take(&mut self.run_segs);
        let k = self.scan_stride(&mut segs, addr, n, 2, self.need_clean);
        if k == 0 {
            self.run_segs = segs;
            return 0;
        }
        let granted = if self.cfg.targets.data {
            self.sampler.fast_forward(WORD_BITS, u64::from(k)) as u32
        } else {
            k
        };
        // Per-access f64 accrual, bulk functional move (see
        // `fast_read_block`).
        let mut cycles = self.cycles;
        let mut l1_nj = self.energy.l1_nj;
        let stall = self.l1_stall_c;
        let nj = self.read_nj;
        out.reserve(granted as usize);
        let mut a = addr;
        let mut i = 0u32;
        for seg in &segs {
            let take = seg.len.min(granted - i);
            if take == 0 {
                break;
            }
            for _ in 0..take {
                cycles += stall;
                l1_nj += nj;
            }
            let line = self.l1.fast_group(seg.set, seg.way as usize);
            line.read_halves_into(a, take, out);
            i += take;
            a += 2 * take;
        }
        self.cycles = cycles;
        self.energy.l1_nj = l1_nj;
        self.run_segs = segs;
        self.stats.reads += u64::from(granted);
        self.stats.l1_hits += u64::from(granted);
        self.stats.fast_forward_accesses += u64::from(granted);
        granted
    }

    /// Word-granular twin of [`MemSystem::fast_write_block`].
    fn fast_write_block_u32(&mut self, addr: u32, words: &[u32]) -> u32 {
        let mut segs = std::mem::take(&mut self.run_segs);
        let k = self.scan_stride(&mut segs, addr, words.len() as u32, 4, false);
        if k == 0 {
            self.run_segs = segs;
            return 0;
        }
        let granted = if self.cfg.targets.data {
            self.sampler.fast_forward(WORD_BITS, u64::from(k)) as u32
        } else {
            k
        };
        // Per-access f64 accrual, bulk functional move (see
        // `fast_read_block`).
        let mut cycles = self.cycles;
        let mut l1_nj = self.energy.l1_nj;
        let stall = self.l1_stall_c;
        let nj = self.write_nj;
        let mut a = addr;
        let mut i = 0u32;
        for seg in &segs {
            let take = seg.len.min(granted - i);
            if take == 0 {
                break;
            }
            for _ in 0..take {
                cycles += stall;
                l1_nj += nj;
            }
            let mut line = self.l1.fast_group(seg.set, seg.way as usize);
            line.write_words(a, &words[i as usize..(i + take) as usize]);
            i += take;
            a += 4 * take;
        }
        self.cycles = cycles;
        self.energy.l1_nj = l1_nj;
        self.run_segs = segs;
        self.stats.writes += u64::from(granted);
        self.stats.l1_hits += u64::from(granted);
        self.stats.fast_forward_accesses += u64::from(granted);
        granted
    }

    /// Writes every dirty L1 line back to L2/backing (lines stay
    /// resident and clean). Packet software does this when its tables
    /// stabilize at the end of the control plane, so the static
    /// structures the strike policies restore from L2 are actually
    /// there. Charges writeback energy (write-buffer drain, no stall).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if a line address escapes the backing store.
    pub fn writeback_all(&mut self) -> Result<(), MemError> {
        for (base, data) in self.l1.drain_dirty() {
            self.writeback(base, &data)?;
        }
        Ok(())
    }

    /// Total capacity of the simulated address space, in bytes.
    pub fn capacity(&self) -> usize {
        self.backing.capacity()
    }

    /// The L1 geometry (convenience accessor).
    pub fn l1_geometry(&self) -> CacheGeometry {
        self.cfg.l1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::StrikePolicy;
    use fault_model::FaultProbabilityModel;

    fn quiet() -> MemSystem {
        // A system whose fault model never fires (p0 minuscule at Cr=1).
        MemSystem::new(MemConfig::strongarm(), 1)
    }

    fn noisy(detection: DetectionScheme, strikes: StrikePolicy, seed: u64) -> MemSystem {
        // Extremely high fault rate to exercise the recovery paths.
        let cfg = MemConfig::strongarm()
            .with_detection(detection)
            .with_strikes(strikes)
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        MemSystem::new(cfg, seed)
    }

    #[test]
    fn read_after_write_round_trips() {
        let mut m = quiet();
        m.write_u32(0x40, 123).unwrap();
        assert_eq!(m.read_u32(0x40).unwrap(), 123);
    }

    /// A mixed read/write/subword workload with enough footprint to
    /// miss, running at a fault rate high enough to corrupt stores and
    /// exercise recovery.
    fn drive_mixed(m: &mut MemSystem) -> Vec<u32> {
        let mut out = Vec::new();
        for i in 0..60_000u32 {
            let a = (i.wrapping_mul(2_654_435_761) % 8192) & !3;
            match i % 11 {
                0..=2 => m.write_u32(a, i).unwrap(),
                3 => m.write_u8(a + (i % 4), i as u8).unwrap(),
                4 => m.write_u16(a + 2 * (i % 2), i as u16).unwrap(),
                5 => out.push(u32::from(m.read_u8(a + (i % 4)).unwrap())),
                _ => out.push(m.read_u32(a).unwrap()),
            }
        }
        out
    }

    #[test]
    fn fast_path_on_and_off_are_bitwise_identical() {
        for detection in [
            DetectionScheme::None,
            DetectionScheme::Parity,
            DetectionScheme::ParityPerByte,
            DetectionScheme::Secded,
        ] {
            let mk = || {
                let cfg = MemConfig::strongarm()
                    .with_detection(detection)
                    .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
                let mut m = MemSystem::new(cfg, 99);
                m.set_cycle_free(0.5);
                m
            };
            let mut fast = mk();
            let mut slow = mk();
            slow.set_fast_path(false);
            let values_fast = drive_mixed(&mut fast);
            let values_slow = drive_mixed(&mut slow);
            assert_eq!(values_fast, values_slow, "{detection:?}: values");
            assert_eq!(fast.cycles(), slow.cycles(), "{detection:?}: cycles");
            assert_eq!(fast.energy(), slow.energy(), "{detection:?}: energy");
            let mut sf = *fast.stats();
            let mut ss = *slow.stats();
            assert!(
                sf.fast_forward_accesses > 0,
                "{detection:?}: fast path never engaged"
            );
            assert_eq!(
                ss.fast_forward_accesses, 0,
                "{detection:?}: disabled fast path still engaged"
            );
            // Only the diagnostic path split may differ.
            sf.fast_forward_accesses = 0;
            sf.slow_path_accesses = 0;
            ss.fast_forward_accesses = 0;
            ss.slow_path_accesses = 0;
            assert_eq!(sf, ss, "{detection:?}: stats");
        }
    }

    #[test]
    fn fast_path_matches_slow_path_under_exact_sampler() {
        // The exact per-access sampler refuses fast-forward grants, so a
        // fast-path-enabled system must behave identically to a disabled
        // one with zero accesses classified as fast.
        let mk = || {
            let cfg = MemConfig::strongarm()
                .with_detection(DetectionScheme::Parity)
                .with_fault_model(FaultProbabilityModel::new(0.01, 0.0))
                .with_sampling(fault_model::SamplingMode::PerAccess);
            let mut m = MemSystem::new(cfg, 5);
            m.set_cycle_free(0.5);
            m
        };
        let mut fast = mk();
        let mut slow = mk();
        slow.set_fast_path(false);
        assert_eq!(drive_mixed(&mut fast), drive_mixed(&mut slow));
        assert_eq!(fast.stats().fast_forward_accesses, 0);
        assert_eq!(fast.cycles(), slow.cycles());
    }

    #[test]
    fn access_run_matches_the_single_access_loop() {
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Secded)
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut batched = MemSystem::new(cfg.clone(), 13);
        let mut singles = MemSystem::new(cfg, 13);
        batched.set_cycle_free(0.4);
        singles.set_cycle_free(0.4);
        let mut run = Vec::new();
        for i in 0..20_000u32 {
            let a = (i.wrapping_mul(40_503) % 8192) & !3;
            run.push(match i % 5 {
                0 => Access::WriteU32(a, i),
                1 => Access::WriteU8(a + 1, i as u8),
                2 => Access::ReadU16(a + 2),
                3 => Access::ReadU8(a + 3),
                _ => Access::ReadU32(a),
            });
        }
        let mut out_batched = Vec::new();
        batched.access_run(&run, &mut out_batched).unwrap();
        let mut out_singles = Vec::new();
        for &a in &run {
            match a {
                Access::ReadU32(addr) => out_singles.push(singles.read_u32(addr).unwrap()),
                Access::ReadU16(addr) => {
                    out_singles.push(u32::from(singles.read_u16(addr).unwrap()))
                }
                Access::ReadU8(addr) => out_singles.push(u32::from(singles.read_u8(addr).unwrap())),
                Access::WriteU32(addr, v) => singles.write_u32(addr, v).unwrap(),
                Access::WriteU16(addr, v) => singles.write_u16(addr, v).unwrap(),
                Access::WriteU8(addr, v) => singles.write_u8(addr, v).unwrap(),
            }
        }
        assert_eq!(out_batched, out_singles);
        assert_eq!(batched.stats(), singles.stats());
        assert_eq!(batched.cycles(), singles.cycles());
    }

    #[test]
    fn block_ops_match_the_single_byte_loop() {
        // Write then read sweeps, crossing many lines, at a fault rate
        // high enough that grants are cut short mid-block and the
        // singles fallback interleaves with grouped commits.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.005, 0.0));
        let mut blocked = MemSystem::new(cfg.clone(), 21);
        let mut singles = MemSystem::new(cfg, 21);
        blocked.set_cycle_free(0.4);
        singles.set_cycle_free(0.4);
        for round in 0..200u32 {
            let addr = (round * 977) % 4096;
            let len = 1 + (round * 131) % 700;
            let bytes: Vec<u8> = (0..len).map(|i| (round + i) as u8).collect();
            blocked.write_block_u8(addr, &bytes).unwrap();
            for (i, &b) in bytes.iter().enumerate() {
                singles.write_u8(addr + i as u32, b).unwrap();
            }
            let mut got_blocked = Vec::new();
            blocked.read_block_u8(addr, len, &mut got_blocked).unwrap();
            let mut got_singles = Vec::new();
            for i in 0..len {
                got_singles.push(singles.read_u8(addr + i).unwrap());
            }
            assert_eq!(got_blocked, got_singles, "round {round}");
        }
        assert_eq!(blocked.stats(), singles.stats());
        assert_eq!(blocked.cycles(), singles.cycles());
        assert_eq!(blocked.energy(), singles.energy());
        assert!(blocked.stats().fast_forward_accesses > 0);
    }

    #[test]
    fn word_block_ops_match_the_single_access_loops() {
        // Word and half-word sweeps, crossing many lines, at a fault
        // rate high enough that grants are cut short mid-block and the
        // singles fallback interleaves with grouped commits.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.005, 0.0));
        let mut blocked = MemSystem::new(cfg.clone(), 23);
        let mut singles = MemSystem::new(cfg, 23);
        blocked.set_cycle_free(0.4);
        singles.set_cycle_free(0.4);
        for round in 0..200u32 {
            let addr = ((round * 977) % 4096) & !3;
            let n = 1 + (round * 37) % 150;
            let words: Vec<u32> = (0..n).map(|i| round * 1000 + i).collect();
            blocked.write_block_u32(addr, &words).unwrap();
            for (i, &w) in words.iter().enumerate() {
                singles.write_u32(addr + 4 * i as u32, w).unwrap();
            }
            let mut got_blocked = Vec::new();
            blocked.read_block_u32(addr, n, &mut got_blocked).unwrap();
            let mut got_singles = Vec::new();
            for i in 0..n {
                got_singles.push(singles.read_u32(addr + 4 * i).unwrap());
            }
            assert_eq!(got_blocked, got_singles, "u32 round {round}");
            got_blocked.clear();
            blocked
                .read_block_u16(addr, 2 * n, &mut got_blocked)
                .unwrap();
            got_singles.clear();
            for i in 0..2 * n {
                got_singles.push(u32::from(singles.read_u16(addr + 2 * i).unwrap()));
            }
            assert_eq!(got_blocked, got_singles, "u16 round {round}");
        }
        assert_eq!(blocked.stats(), singles.stats());
        assert_eq!(blocked.cycles(), singles.cycles());
        assert_eq!(blocked.energy(), singles.energy());
        assert!(blocked.stats().fast_forward_accesses > 0);
    }

    #[test]
    fn word_block_ops_check_alignment_up_front() {
        let mut m = quiet();
        let mut out = Vec::new();
        assert!(m.read_block_u32(2, 4, &mut out).is_err());
        assert!(m.read_block_u16(1, 4, &mut out).is_err());
        assert!(m.write_block_u32(2, &[1, 2]).is_err());
        assert!(out.is_empty());
    }

    #[test]
    fn block_ops_error_out_of_range_like_singles() {
        let mut m = quiet();
        let top = m.capacity() as u32;
        let mut out = Vec::new();
        assert!(m.read_block_u8(top - 2, 8, &mut out).is_err());
        // The in-range prefix committed before the error, as the
        // singles loop would have.
        assert_eq!(out.len(), 2);
        assert!(m.write_block_u8(top - 2, &[1, 2, 3, 4]).is_err());
    }

    #[test]
    fn access_run_masked_mirrors_addresses() {
        let mut m = quiet();
        m.write_u32(0x80, 4242).unwrap();
        let mask = 0xFFF;
        let run = [Access::ReadU32(0x8000_0080)];
        let mut out = Vec::new();
        m.access_run_masked(&run, mask, &mut out).unwrap();
        assert_eq!(out, [4242]);
    }

    #[test]
    fn host_write_block_updates_backing_and_resident_lines() {
        let mut m = quiet();
        // Make two lines resident, one of them dirty.
        m.write_u32(0x100, 0xAAAA_AAAA).unwrap();
        let _ = m.read_u32(0x140).unwrap();
        let bytes: Vec<u8> = (0..96u32).map(|i| i as u8).collect();
        m.host_write_block(0xE0, &bytes).unwrap();
        // Program reads must observe the DMA'd data wherever it landed.
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let want = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            assert_eq!(m.read_u32(0xE0 + 4 * i as u32).unwrap(), want, "word {i}");
        }
    }

    #[test]
    fn byte_and_halfword_accesses() {
        let mut m = quiet();
        m.write_u32(0x40, 0).unwrap();
        m.write_u8(0x41, 0xAB).unwrap();
        m.write_u16(0x42, 0xCDEF).unwrap();
        assert_eq!(m.read_u8(0x41).unwrap(), 0xAB);
        assert_eq!(m.read_u16(0x42).unwrap(), 0xCDEF);
        assert_eq!(m.read_u32(0x40).unwrap(), 0xCDEF_AB00);
    }

    #[test]
    fn misaligned_accesses_error() {
        let mut m = quiet();
        assert!(m.read_u32(2).is_err());
        assert!(m.write_u32(5, 0).is_err());
        assert!(m.read_u16(1).is_err());
    }

    #[test]
    fn miss_then_hit_counting() {
        let mut m = quiet();
        m.read_u32(0x1000).unwrap(); // cold miss
        m.read_u32(0x1004).unwrap(); // same line: hit
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l2_accesses, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn timing_l1_hit_is_scaled_by_cr() {
        let mut a = quiet();
        a.read_u32(0x100).unwrap(); // warm
        let before = a.cycles();
        a.read_u32(0x100).unwrap();
        assert!((a.cycles() - before - 2.0).abs() < 1e-9);

        let mut b = quiet();
        b.set_cycle_free(0.5);
        b.read_u32(0x100).unwrap();
        let before = b.cycles();
        b.read_u32(0x100).unwrap();
        assert!((b.cycles() - before - 1.0).abs() < 1e-9, "2 cycles x 0.5");
    }

    #[test]
    fn miss_timing_includes_l2_and_memory() {
        let mut m = quiet();
        m.read_u32(0x2000).unwrap();
        // l1 (2) + l2 (15) + mem (100)
        assert!((m.cycles() - 117.0).abs() < 1e-9, "cycles = {}", m.cycles());
        // Second miss to a line already in L2's (tag) array skips memory.
        m.read_u32(0x2000 + 4096).unwrap(); // conflict miss? different L1 set? 0x3000 -> same L1 set as 0x2000? 4 KB apart => same set.
                                            // Just assert total grew by at least l2 latency.
        assert!(m.cycles() > 117.0);
    }

    #[test]
    fn writeback_preserves_dirty_data() {
        let mut m = quiet();
        m.write_u32(0x100, 0xFEED).unwrap();
        // Evict by touching the conflicting line 4 KB away.
        m.read_u32(0x100 + 4096).unwrap();
        assert_eq!(m.stats().writebacks, 1);
        // Re-read the original line: must come back from backing intact.
        assert_eq!(m.read_u32(0x100).unwrap(), 0xFEED);
    }

    #[test]
    fn frequency_switch_costs_ten_cycles() {
        let mut m = quiet();
        let c0 = m.cycles();
        m.set_cycle(0.5);
        assert!((m.cycles() - c0 - 10.0).abs() < 1e-9);
        assert_eq!(m.stats().freq_switches, 1);
        // No-op switch costs nothing.
        m.set_cycle(0.5);
        assert_eq!(m.stats().freq_switches, 1);
    }

    #[test]
    fn energy_accumulates_and_scales_with_swing() {
        let mut full = quiet();
        full.write_u32(0x100, 1).unwrap();
        full.read_u32(0x100).unwrap();
        let e_full = full.energy().l1_nj;

        let mut fast = quiet();
        fast.set_cycle_free(0.25);
        fast.write_u32(0x100, 1).unwrap();
        fast.read_u32(0x100).unwrap();
        let e_fast = fast.energy().l1_nj;
        let vsr = fast.voltage_swing();
        assert!((e_fast / e_full - vsr).abs() < 1e-9);
    }

    #[test]
    fn parity_costs_more_energy() {
        let mut plain = quiet();
        plain.read_u32(0x100).unwrap();
        let mut par = MemSystem::new(
            MemConfig::strongarm().with_detection(DetectionScheme::Parity),
            1,
        );
        par.read_u32(0x100).unwrap();
        assert!(par.energy().l1_nj > plain.energy().l1_nj);
    }

    #[test]
    fn no_detection_lets_faults_through() {
        let mut m = noisy(DetectionScheme::None, StrikePolicy::one_strike(), 3);
        let mut corrupted = 0;
        for i in 0..5_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, 0x5A5A_5A5A).unwrap();
            if m.read_u32(a).unwrap() != 0x5A5A_5A5A {
                corrupted += 1;
            }
        }
        assert!(corrupted > 0, "2% fault rate must corrupt something");
        assert_eq!(m.stats().faults_detected, 0);
        assert!(m.stats().faults_undetected > 0);
    }

    #[test]
    fn parity_detects_and_recovers_single_bit_read_faults() {
        // Seed data via host writes (no write faults), then hammer reads:
        // read faults are transient, so parity + retries must recover
        // almost all of them (only even-weight flips can slip through,
        // and the model here is single-bit-only).
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::three_strike())
            .with_fault_model(FaultProbabilityModel::new(3e-4, 0.0));
        let mut m = MemSystem::new(cfg, 4);
        for i in 0..64u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        let mut wrong = 0u32;
        let n = 200_000u32;
        for i in 0..n {
            let a = i % 64;
            if m.read_u32(a * 4).unwrap() != a {
                wrong += 1;
            }
        }
        assert!(m.stats().faults_injected > 100);
        assert!(m.stats().faults_detected > 100);
        assert!(m.stats().strike_retries > 0);
        // Multi-bit faults are disabled, so only double sampling noise
        // could corrupt; essentially everything recovers.
        let raw = m.stats().faults_injected as f64 / n as f64;
        let observed = wrong as f64 / n as f64;
        assert!(observed < raw / 10.0, "observed {observed} vs raw {raw}");
    }

    #[test]
    fn write_faults_with_parity_lose_the_update_but_return_clean_data() {
        // A persistently corrupted store is detected on read; after the
        // strikes are exhausted the block is invalidated and the stale
        // (pre-write) backing value returns — the write is lost, but no
        // corrupted bits reach the program.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_fault_model(FaultProbabilityModel::new(0.9 / 32.0, 0.0));
        let mut m = MemSystem::new(cfg, 12);
        m.host_write_u32(0x100, 111).unwrap();
        m.set_inject(true);
        let mut outcomes = std::collections::HashSet::new();
        for _ in 0..50 {
            m.set_inject(true);
            m.write_u32(0x100, 222).unwrap();
            m.set_inject(false); // read cleanly to observe stored state
            outcomes.insert(m.read_u32(0x100).unwrap());
        }
        // Every observed value is the new value, the stale backing value
        // (after a faulty store + fallback), or — the one hole parity
        // has — an *even-weight* corruption of the new value. Odd-weight
        // corruptions must never reach the program.
        for v in &outcomes {
            let ok = *v == 222 || *v == 111 || (v ^ 222u32).count_ones().is_multiple_of(2);
            assert!(ok, "odd-weight corrupted value {v} escaped parity");
        }
        assert!(outcomes.contains(&222));
    }

    #[test]
    fn one_strike_invalidates_immediately() {
        let mut m = noisy(DetectionScheme::Parity, StrikePolicy::one_strike(), 5);
        for i in 0..20_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().strike_invalidations > 0);
        assert_eq!(m.stats().strike_retries, 0, "one-strike never retries");
    }

    #[test]
    fn three_strike_retries_more_and_invalidates_less_than_one_strike() {
        let run = |strikes: StrikePolicy| {
            let mut m = noisy(DetectionScheme::Parity, strikes, 6);
            for i in 0..30_000u32 {
                let a = (i % 64) * 4;
                m.write_u32(a, i).unwrap();
                let _ = m.read_u32(a).unwrap();
            }
            (m.stats().strike_retries, m.stats().strike_invalidations)
        };
        let (r1, i1) = run(StrikePolicy::one_strike());
        let (r3, i3) = run(StrikePolicy::three_strike());
        assert_eq!(r1, 0);
        assert!(r3 > 0);
        assert!(i3 < i1, "three-strike must invalidate less: {i3} vs {i1}");
    }

    #[test]
    fn strike_fallback_returns_backing_truth() {
        // Force a persistent corruption by writing with a huge fault
        // rate, then read with strikes exhausted: the L2/backing value
        // (the last written-back truth, here the fill value) comes back.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::one_strike())
            .with_fault_model(FaultProbabilityModel::new(0.9, 0.0));
        let mut m = MemSystem::new(cfg, 9);
        // Seed backing truth without faults.
        m.host_write_u32(0x100, 777).unwrap();
        let mut saw_fallback = false;
        for _ in 0..200 {
            let v = m.read_u32(0x100).unwrap();
            if m.stats().strike_invalidations > 0 {
                saw_fallback = true;
                // After a fallback the returned word is the backing truth.
                assert_eq!(v, 777);
                break;
            }
        }
        assert!(saw_fallback, "expected at least one strike fallback");
    }

    #[test]
    fn byte_parity_catches_cross_byte_double_faults() {
        // A two-bit fault spanning different bytes escapes word parity
        // but is caught by byte-granularity parity. Compare undetected
        // corruption rates under a multi-bit-heavy fault model.
        let run = |detection| {
            let cfg = MemConfig::strongarm()
                .with_detection(detection)
                .with_strikes(StrikePolicy::three_strike())
                .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
            let mut m = MemSystem::new(cfg, 33);
            for i in 0..64u32 {
                m.host_write_u32(i * 4, i).unwrap();
            }
            let mut wrong = 0u64;
            for i in 0..100_000u32 {
                let a = i % 64;
                if m.read_u32(a * 4).unwrap() != a {
                    wrong += 1;
                }
            }
            wrong
        };
        let word = run(DetectionScheme::Parity);
        let byte = run(DetectionScheme::ParityPerByte);
        assert!(
            byte < word.max(1),
            "byte parity must leak fewer corruptions: {byte} vs {word}"
        );
    }

    #[test]
    fn byte_parity_costs_more_energy_than_word_parity() {
        let energy = |detection| {
            let mut m = MemSystem::new(MemConfig::strongarm().with_detection(detection), 1);
            m.read_u32(0x100).unwrap();
            m.energy().l1_nj
        };
        assert!(energy(DetectionScheme::ParityPerByte) > energy(DetectionScheme::Parity));
    }

    #[test]
    fn word_recovery_preserves_neighbouring_dirty_words() {
        // Footnote-2 extension: with word-granularity recovery, a strike
        // fallback repairs only the faulty word; other dirty words in
        // the same line survive. With line granularity they are lost.
        let run = |granularity| {
            let cfg = MemConfig::strongarm()
                .with_detection(DetectionScheme::Parity)
                .with_strikes(StrikePolicy::one_strike())
                .with_recovery(granularity)
                .with_fault_model(FaultProbabilityModel::new(0.9 / 32.0, 0.0));
            let mut m = MemSystem::new(cfg, 21);
            // Two words in the same 32-byte line; write the neighbour
            // cleanly, then hammer word 0 with faulty writes+reads until
            // a fallback happens.
            m.set_inject(false);
            m.write_u32(0x104, 4242).unwrap();
            m.set_inject(true);
            for i in 0..200u32 {
                m.write_u32(0x100, i).unwrap();
                let _ = m.read_u32(0x100).unwrap();
                if m.stats().strike_invalidations > 0 {
                    break;
                }
            }
            assert!(m.stats().strike_invalidations > 0, "need a fallback");
            m.set_inject(false);
            m.read_u32(0x104).unwrap()
        };
        assert_eq!(
            run(RecoveryGranularity::Word),
            4242,
            "word repair must keep the neighbour's dirty data"
        );
        assert_eq!(
            run(RecoveryGranularity::Line),
            0,
            "line invalidation loses the (never written back) neighbour"
        );
    }

    #[test]
    fn host_access_sees_through_dirty_lines() {
        let mut m = quiet();
        m.write_u32(0x100, 42).unwrap(); // dirty in L1
        assert_eq!(m.host_read_u32(0x100).unwrap(), 42);
        m.host_write_u32(0x100, 43).unwrap();
        assert_eq!(m.read_u32(0x100).unwrap(), 43);
    }

    #[test]
    fn host_block_write_round_trips() {
        let mut m = quiet();
        m.host_write_block(0x200, &[1, 2, 3, 4, 5, 6, 7, 8])
            .unwrap();
        assert_eq!(m.read_u32(0x200).unwrap(), u32::from_le_bytes([1, 2, 3, 4]));
        assert_eq!(m.read_u32(0x204).unwrap(), u32::from_le_bytes([5, 6, 7, 8]));
    }

    #[test]
    fn golden_mode_injects_nothing() {
        let mut m = noisy(DetectionScheme::None, StrikePolicy::one_strike(), 8);
        m.set_inject(false);
        for i in 0..10_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            assert_eq!(m.read_u32(a).unwrap(), i);
        }
        assert_eq!(m.stats().faults_injected, 0);
    }

    #[test]
    fn advance_accumulates_instruction_time() {
        let mut m = quiet();
        m.advance(100.0);
        m.advance(0.5);
        assert!((m.cycles() - 100.5).abs() < 1e-12);
    }

    #[test]
    fn tag_width_matches_backing_and_geometry() {
        // 4 MiB backing (22 bits) − 5 line bits − 7 set bits = 10.
        assert_eq!(quiet().tag_width(), 10);
        let small = MemSystem::new(MemConfig::strongarm().with_backing_bytes(1 << 20), 1);
        assert_eq!(small.tag_width(), 8);
    }

    #[test]
    fn tag_faults_cause_extra_misses() {
        use crate::policy::FaultTargets;
        // Tag-only injection, no detection: the only disturbance is
        // lookup aliasing, so any extra misses over the golden access
        // pattern come from corrupted tags.
        let run = |tag: bool| {
            let targets = FaultTargets {
                data: false,
                tag,
                parity: false,
                l2: false,
            };
            let cfg = MemConfig::strongarm()
                .with_targets(targets)
                .with_fault_model(FaultProbabilityModel::new(0.005, 0.0));
            let mut m = MemSystem::new(cfg, 5);
            for i in 0..20_000u32 {
                let a = (i % 64) * 4;
                m.write_u32(a, i).unwrap();
                let _ = m.read_u32(a).unwrap();
            }
            (m.stats().tag_faults_injected, m.stats().l1_misses)
        };
        let (f0, m0) = run(false);
        let (f1, m1) = run(true);
        assert_eq!(f0, 0);
        assert!(f1 > 0, "tag faults must fire at this rate");
        assert!(m1 > m0, "corrupted tags must false-miss: {m1} vs {m0}");
    }

    #[test]
    fn tag_fault_writebacks_stay_in_range() {
        use crate::policy::FaultTargets;
        // Dirty lines with corrupted tags are eventually written back to
        // the aliased address; the clamped tag width must keep every
        // such base inside the backing store (no OutOfRange errors).
        let cfg = MemConfig::strongarm()
            .with_targets(FaultTargets::data_only().with_tag(true))
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut m = MemSystem::new(cfg, 11);
        for i in 0..40_000u32 {
            // Two conflicting lines force regular evictions of dirty data.
            let a = (i % 64) * 4 + if i % 2 == 0 { 0 } else { 4096 };
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().tag_faults_injected > 0);
        assert!(m.stats().writebacks > 0);
    }

    #[test]
    fn parity_bit_faults_raise_false_strikes_on_clean_data() {
        use crate::policy::FaultTargets;
        // Parity-bit injection only (data array perfect): every detected
        // fault is a false strike caused by a corrupted signature.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_targets(FaultTargets {
                data: false,
                tag: false,
                parity: true,
                l2: false,
            })
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut m = MemSystem::new(cfg, 7);
        for i in 0..64u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        for i in 0..50_000u32 {
            let a = i % 64;
            // The data array never lies, and strike fallbacks return
            // backing truth, so reads are always correct.
            assert_eq!(m.read_u32(a * 4).unwrap(), a);
        }
        assert_eq!(m.stats().faults_injected, 0, "data array is clean");
        assert!(m.stats().parity_faults_injected > 0);
        assert!(
            m.stats().faults_detected > 0,
            "corrupted signatures must raise false strikes"
        );
        assert!(m.stats().strike_retries > 0);
    }

    #[test]
    fn parity_bit_faults_are_inert_without_detection_hardware() {
        use crate::policy::FaultTargets;
        // With no comparator the stored signature is never consulted, so
        // the parity target draws nothing and changes nothing.
        let cfg = MemConfig::strongarm()
            .with_targets(FaultTargets {
                data: false,
                tag: false,
                parity: true,
                l2: false,
            })
            .with_fault_model(FaultProbabilityModel::new(0.05, 0.0));
        let mut m = MemSystem::new(cfg, 13);
        for i in 0..10_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            assert_eq!(m.read_u32(a).unwrap(), i);
        }
        assert_eq!(m.stats().parity_faults_injected, 0);
        assert_eq!(m.stats().faults_detected, 0);
    }

    #[test]
    fn default_targets_match_explicit_data_only_bitwise() {
        use crate::policy::FaultTargets;
        let run = |cfg: MemConfig| {
            let mut m = MemSystem::new(cfg, 77);
            let mut acc = 0u64;
            for i in 0..5_000u32 {
                let a = (i % 128) * 4;
                m.write_u32(a, i).unwrap();
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(m.read_u32(a).unwrap()));
            }
            (acc, m.stats().faults_injected, m.cycles().to_bits())
        };
        let noisy_cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        assert_eq!(
            run(noisy_cfg.clone()),
            run(noisy_cfg.with_targets(FaultTargets::data_only()))
        );
    }

    #[test]
    fn secded_corrects_single_bit_read_faults_in_place() {
        // Read-only hammering of host-seeded data: every *single*-bit
        // fault (99 % of events under the paper's 100:1:0.1 multi-bit
        // ratios) is corrected in place, doubles take the strike path
        // and recover, and only the rare triple can reach the program.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Secded)
            .with_strikes(StrikePolicy::two_strike())
            .with_fault_model(FaultProbabilityModel::new(3e-3, 0.0));
        let mut m = MemSystem::new(cfg, 17);
        for i in 0..64u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        let n = 100_000u32;
        let mut wrong = 0u64;
        for i in 0..n {
            let a = i % 64;
            if m.read_u32(a * 4).unwrap() != a {
                wrong += 1;
            }
        }
        let s = *m.stats();
        assert!(s.faults_injected > 100);
        assert!(
            s.faults_corrected >= s.faults_injected * 95 / 100,
            "singles dominate: {} corrected of {}",
            s.faults_corrected,
            s.faults_injected
        );
        assert!(s.faults_detected > 0, "doubles must be detect-only");
        // Doubles recover through retries (read faults are transient),
        // so wrong values can come only from ~1-per-mille triples.
        assert!(
            wrong <= s.faults_injected / 100,
            "wrong {wrong} of {} injected",
            s.faults_injected
        );
    }

    #[test]
    fn secded_detects_double_faults_and_takes_the_strike_path() {
        // A multi-bit-heavy model produces double flips that SECDED can
        // only detect; those must flow into the existing strike path.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Secded)
            .with_strikes(StrikePolicy::two_strike())
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        let mut m = MemSystem::new(cfg, 23);
        for i in 0..30_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().faults_corrected > 0);
        assert!(m.stats().faults_detected > 0, "double flips must detect");
        assert!(m.stats().strike_retries > 0);
    }

    #[test]
    fn ecc_costs_more_energy_than_byte_parity() {
        let energy = |detection| {
            let mut m = MemSystem::new(MemConfig::strongarm().with_detection(detection), 1);
            m.read_u32(0x100).unwrap();
            m.write_u32(0x104, 1).unwrap();
            m.energy().l1_nj
        };
        assert!(energy(DetectionScheme::Secded) > energy(DetectionScheme::ParityPerByte));
        assert!(energy(DetectionScheme::ParityPerByte) > energy(DetectionScheme::Parity));
    }

    #[test]
    fn l2_faults_corrupt_refills_invisibly() {
        use crate::policy::FaultTargets;
        // L2-only injection with a perfect L1: corruption rides in on
        // refills *before* the check code is computed, so even parity
        // sees nothing and wrong values reach the program.
        let targets = FaultTargets {
            data: false,
            tag: false,
            parity: false,
            l2: true,
        };
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_targets(targets)
            .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
        let mut m = MemSystem::new(cfg, 29);
        for i in 0..512u32 {
            m.host_write_u32(i * 4, i).unwrap();
        }
        let mut wrong = 0u32;
        for round in 0..200u32 {
            for i in 0..512u32 {
                // Conflict-miss every round: two images 4 KB apart.
                let a = (i * 4) + if round % 2 == 0 { 0 } else { 4096 };
                if round % 2 == 0 && m.read_u32(a).unwrap() != i {
                    wrong += 1;
                }
                if round % 2 != 0 {
                    let _ = m.read_u32(a).unwrap();
                }
            }
        }
        assert!(m.stats().l2_faults_injected > 0);
        assert!(wrong > 0, "refill corruption must reach the program");
        assert_eq!(m.stats().faults_detected, 0, "parity cannot see it");
    }

    #[test]
    fn l2_faults_can_defeat_strike_recovery() {
        use crate::policy::FaultTargets;
        // Data faults force strike fallbacks; a flat fault model makes
        // the L2 refetch just as fallible, so some recoveries pull
        // corrupted "truth" — the recovery_failures counter.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::one_strike())
            .with_targets(FaultTargets::data_only().with_l2(true))
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        let mut m = MemSystem::new(cfg, 31);
        for i in 0..60_000u32 {
            let a = (i % 64) * 4;
            m.write_u32(a, i).unwrap();
            let _ = m.read_u32(a).unwrap();
        }
        assert!(m.stats().strike_invalidations > 0);
        assert!(m.stats().l2_faults_injected > 0);
        assert!(
            m.stats().recovery_failures > 0,
            "refetches at a 2% word fault rate must sometimes fail"
        );
        assert!(m.stats().recovery_failures <= m.stats().l2_faults_injected);
    }

    #[test]
    fn l2_cycle_is_inert_while_l2_target_is_off() {
        // Changing the L2 clock must not perturb a run that doesn't
        // inject into the L2 — bitwise identical behaviour.
        let run = |cfg: MemConfig| {
            let mut m = MemSystem::new(cfg, 77);
            let mut acc = 0u64;
            for i in 0..5_000u32 {
                let a = (i % 128) * 4;
                m.write_u32(a, i).unwrap();
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(m.read_u32(a).unwrap()));
            }
            (acc, m.stats().faults_injected, m.cycles().to_bits())
        };
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        assert_eq!(run(cfg.clone()), run(cfg.with_l2_cycle(0.25)));
    }

    #[test]
    fn determinism_same_seed_same_behaviour() {
        let run = |seed| {
            let mut m = noisy(DetectionScheme::Parity, StrikePolicy::two_strike(), seed);
            let mut acc = 0u64;
            for i in 0..5_000u32 {
                let a = (i % 128) * 4;
                m.write_u32(a, i).unwrap();
                acc = acc
                    .wrapping_mul(31)
                    .wrapping_add(u64::from(m.read_u32(a).unwrap()));
            }
            (acc, m.stats().faults_injected, m.cycles().to_bits())
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77).1, run(78).1);
    }

    #[test]
    fn way_disable_knob_draws_nothing_until_it_fires() {
        use crate::policy::WayDisablePolicy;
        // Arming way-disabling with a threshold the transient workload
        // never reaches must leave the run bitwise unchanged: the
        // escalation is pure counter bookkeeping, no RNG.
        let run = |arm: bool| {
            let mut cfg = MemConfig::strongarm()
                .with_detection(DetectionScheme::Parity)
                .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
            if arm {
                cfg = cfg.with_way_disable(WayDisablePolicy::new(1_000_000, 1));
            }
            let mut m = MemSystem::new(cfg, 77);
            let values = drive_mixed(&mut m);
            (values, *m.stats(), m.cycles().to_bits())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn persistent_process_never_perturbs_the_transient_stream() {
        use fault_model::PersistentSiteConfig;
        // A zero-rate persistent process spends randomness only from its
        // own RNG stream, so the transient realization — and with it
        // every value, cycle and fault counter — matches a run without
        // it. (The knob pins the system to the exact slow path, which is
        // bitwise interchangeable with the fast path by construction, so
        // only the diagnostic path split may differ.)
        let run = |persistent: bool| {
            let mut cfg = MemConfig::strongarm()
                .with_detection(DetectionScheme::Parity)
                .with_fault_model(FaultProbabilityModel::new(0.01, 0.0));
            if persistent {
                cfg = cfg.with_persistent(PersistentSiteConfig::hard(0.0));
            }
            let mut m = MemSystem::new(cfg, 99);
            let values = drive_mixed(&mut m);
            let mut stats = *m.stats();
            stats.fast_forward_accesses = 0;
            stats.slow_path_accesses = 0;
            (values, stats, m.cycles().to_bits(), m.energy())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn persistent_sites_respect_the_data_target_switch() {
        use fault_model::PersistentSiteConfig;
        // Persistent sites model stuck bits in the L1 *data* array, so
        // they are gated on the same target switch as transient data
        // faults: with `targets.data` off, even a hard always-on
        // process must never touch a read.
        let mut targets = crate::policy::FaultTargets::data_only();
        targets.data = false;
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_persistent(PersistentSiteConfig::hard(1.0))
            .with_targets(targets);
        let mut m = MemSystem::new(cfg, 7);
        for i in 0..32u32 {
            m.write_u32(0x80, i).unwrap();
            assert_eq!(m.read_u32(0x80).unwrap(), i);
        }
        assert_eq!(m.stats().faults_injected, 0);
    }

    #[test]
    fn persistent_site_escalates_to_way_disable_and_bypass() {
        use crate::policy::WayDisablePolicy;
        use fault_model::PersistentSiteConfig;
        // A hard stuck bit on one slot: every read strikes, re-fetching
        // never helps, and after three strike invalidations inside the
        // window the escalation maps the way out. From then on the
        // direct-mapped set is fully disabled and the bypass services
        // it — degraded, never wedged.
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_persistent(PersistentSiteConfig::hard(1.0))
            .with_way_disable(WayDisablePolicy::new(3, 1_000));
        let mut m = MemSystem::new(cfg, 7);
        for i in 0..32u32 {
            m.write_u32(0x80, i).unwrap();
            let _ = m.read_u32(0x80).unwrap();
        }
        let s = *m.stats();
        assert!(s.ways_disabled >= 1, "escalation never fired");
        assert!(s.salvage_writebacks >= 1, "dirty line was not salvaged");
        assert!(s.bypass_accesses > 0, "disabled set not serviced by bypass");
        assert!(m
            .l1_cache()
            .set_fully_disabled(m.l1_geometry().set_of(0x80)));
        // The broken set still round-trips through the bypass.
        m.write_u32(0x80, 0xABCD).unwrap();
        assert_eq!(m.read_u32(0x80).unwrap(), 0xABCD);
    }

    #[test]
    fn manual_disable_bypass_round_trips_all_widths() {
        let mut m = quiet();
        m.write_u32(0x100, 0xDEAD_BEEF).unwrap();
        let set = m.l1_geometry().set_of(0x100);
        assert!(m.disable_way(set, 0).unwrap());
        assert!(!m.disable_way(set, 0).unwrap(), "second call is a no-op");
        // The dirty line went out through the writeback path, so the
        // bypass reads the stored value back from the L2 side.
        assert_eq!(m.stats().salvage_writebacks, 1);
        assert_eq!(m.stats().ways_disabled, 1);
        assert_eq!(m.read_u32(0x100).unwrap(), 0xDEAD_BEEF);
        m.write_u16(0x102, 0xBEEF).unwrap();
        m.write_u8(0x101, 0x55).unwrap();
        assert_eq!(m.read_u16(0x102).unwrap(), 0xBEEF);
        assert_eq!(m.read_u8(0x101).unwrap(), 0x55);
        assert!(m.stats().bypass_accesses >= 5);
        assert!(m.l1_cache().set_fully_disabled(set));
    }
}
