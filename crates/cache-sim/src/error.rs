//! Error types for the memory-hierarchy simulator.

use std::error::Error;
use std::fmt;

/// Errors returned by [`MemSystem`](crate::MemSystem) accesses.
///
/// # Examples
///
/// ```
/// use cache_sim::{MemConfig, MemSystem, MemError};
///
/// let mut mem = MemSystem::new(MemConfig::strongarm(), 0);
/// let err = mem.read_u32(0xFFFF_FFF0).unwrap_err();
/// assert!(matches!(err, MemError::OutOfRange { .. }));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The access touches bytes beyond the configured backing store.
    OutOfRange {
        /// The offending address.
        addr: u32,
        /// Number of bytes the access needed.
        len: u32,
    },
    /// The access is not naturally aligned for its width.
    Misaligned {
        /// The offending address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, len } => {
                write!(f, "access of {len} bytes at {addr:#010x} is out of range")
            }
            MemError::Misaligned { addr, align } => {
                write!(f, "address {addr:#010x} is not {align}-byte aligned")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_specific() {
        let e = MemError::OutOfRange { addr: 16, len: 4 };
        let s = format!("{e}");
        assert!(s.contains("out of range"));
        assert!(s.contains("0x00000010"));

        let e = MemError::Misaligned { addr: 3, align: 4 };
        assert!(format!("{e}").contains("aligned"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<MemError>();
    }
}
