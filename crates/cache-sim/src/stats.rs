//! Access and fault statistics for a simulation run.

use std::fmt;

/// Counters collected by [`MemSystem`](crate::MemSystem).
///
/// All counters are cumulative from construction or the last
/// [`MemStats::reset`]. Fields are public passive data; higher layers
/// snapshot and diff them per packet/epoch.
///
/// # Examples
///
/// ```
/// use cache_sim::MemStats;
///
/// let mut s = MemStats::default();
/// s.l1_hits = 90;
/// s.l1_misses = 10;
/// assert!((s.miss_rate() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Program-visible read accesses to the L1 data cache.
    pub reads: u64,
    /// Program-visible write accesses to the L1 data cache.
    pub writes: u64,
    /// L1 lookups that hit.
    pub l1_hits: u64,
    /// L1 lookups that missed (refills from L2).
    pub l1_misses: u64,
    /// L2 accesses (refills, strike fallbacks and writebacks).
    pub l2_accesses: u64,
    /// L2 misses (served from backing memory).
    pub l2_misses: u64,
    /// Fault events injected into accesses.
    pub faults_injected: u64,
    /// Fault events injected into the tag array (opt-in
    /// [`FaultTargets::tag`](crate::FaultTargets) only).
    pub tag_faults_injected: u64,
    /// Fault events injected into stored parity signatures (opt-in
    /// [`FaultTargets::parity`](crate::FaultTargets) only).
    pub parity_faults_injected: u64,
    /// Fault events injected into words flowing to or from the level-2
    /// data array (opt-in [`FaultTargets::l2`](crate::FaultTargets)
    /// only): refills, strike refetches and writebacks.
    pub l2_faults_injected: u64,
    /// Faults flagged by the detection code.
    pub faults_detected: u64,
    /// Faults corrected in place by ECC (single-bit under
    /// [`DetectionScheme::Secded`](crate::DetectionScheme); disjoint
    /// from `faults_detected`, which counts detect-only events).
    pub faults_corrected: u64,
    /// Strike refetches that pulled a corrupted word out of the L2 —
    /// recovery itself failed and re-deposited bad data as "truth".
    pub recovery_failures: u64,
    /// Fault events that escaped detection (either no detection hardware
    /// or an even-weight corruption) and reached the program or the
    /// stored state.
    pub faults_undetected: u64,
    /// L1 retry reads performed by multi-strike recovery.
    pub strike_retries: u64,
    /// Block invalidations triggered by strike exhaustion.
    pub strike_invalidations: u64,
    /// Dirty lines written back (to L2/backing).
    pub writebacks: u64,
    /// Dirty data dropped by strike invalidations (potential lost
    /// updates, the "incorrect accesses to the level 2 cache" of §5.4).
    pub dirty_drops: u64,
    /// Cache clock-frequency switches.
    pub freq_switches: u64,
    /// Accesses served by the batched fault-free fast path (hit, line
    /// not suspect, inside a skip-ahead gap): no RNG draw, no check-code
    /// work. Timing, energy and results are bitwise identical to the
    /// slow path; the split is purely diagnostic.
    pub fast_forward_accesses: u64,
    /// Accesses that took the full checking path (misses, fault
    /// arrivals, suspect lines, opt-in aux targets, or the exact
    /// per-access sampler).
    pub slow_path_accesses: u64,
    /// Ways mapped out by the opt-in way-disabling escalation
    /// ([`WayDisablePolicy`](crate::WayDisablePolicy)) or by an explicit
    /// [`MemSystem::disable_way`](crate::MemSystem) call.
    pub ways_disabled: u64,
    /// Dirty lines rescued through the writeback path at the moment
    /// their way was mapped out (data that strike-forever would have
    /// dropped or kept corrupting).
    pub salvage_writebacks: u64,
    /// Accesses to fully mapped-out sets serviced straight from the L2
    /// at L2 cost (the degraded-but-never-wedged path).
    pub bypass_accesses: u64,
}

impl MemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        MemStats::default()
    }

    /// Total program-visible L1 accesses.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// L1 miss rate over program-visible accesses (0 if none).
    pub fn miss_rate(&self) -> f64 {
        let lookups = self.l1_hits + self.l1_misses;
        if lookups == 0 {
            0.0
        } else {
            self.l1_misses as f64 / lookups as f64
        }
    }

    /// Zeroes every counter.
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }

    /// Component-wise difference `self − earlier` (for per-epoch deltas).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` has larger counters.
    pub fn since(&self, earlier: &MemStats) -> MemStats {
        MemStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            l1_hits: self.l1_hits - earlier.l1_hits,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_accesses: self.l2_accesses - earlier.l2_accesses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            faults_injected: self.faults_injected - earlier.faults_injected,
            tag_faults_injected: self.tag_faults_injected - earlier.tag_faults_injected,
            parity_faults_injected: self.parity_faults_injected - earlier.parity_faults_injected,
            l2_faults_injected: self.l2_faults_injected - earlier.l2_faults_injected,
            faults_detected: self.faults_detected - earlier.faults_detected,
            faults_corrected: self.faults_corrected - earlier.faults_corrected,
            recovery_failures: self.recovery_failures - earlier.recovery_failures,
            faults_undetected: self.faults_undetected - earlier.faults_undetected,
            strike_retries: self.strike_retries - earlier.strike_retries,
            strike_invalidations: self.strike_invalidations - earlier.strike_invalidations,
            writebacks: self.writebacks - earlier.writebacks,
            dirty_drops: self.dirty_drops - earlier.dirty_drops,
            freq_switches: self.freq_switches - earlier.freq_switches,
            fast_forward_accesses: self.fast_forward_accesses - earlier.fast_forward_accesses,
            slow_path_accesses: self.slow_path_accesses - earlier.slow_path_accesses,
            ways_disabled: self.ways_disabled - earlier.ways_disabled,
            salvage_writebacks: self.salvage_writebacks - earlier.salvage_writebacks,
            bypass_accesses: self.bypass_accesses - earlier.bypass_accesses,
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses ({} rd, {} wr), miss rate {:.2}%, {} faults ({} detected), {} retries, {} invalidations",
            self.accesses(),
            self.reads,
            self.writes,
            self.miss_rate() * 100.0,
            self.faults_injected,
            self.faults_detected,
            self.strike_retries,
            self.strike_invalidations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_empty() {
        assert_eq!(MemStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn accesses_sum_reads_and_writes() {
        let s = MemStats {
            reads: 3,
            writes: 4,
            ..Default::default()
        };
        assert_eq!(s.accesses(), 7);
    }

    #[test]
    fn since_subtracts_fieldwise() {
        let a = MemStats {
            reads: 10,
            faults_injected: 5,
            ..Default::default()
        };
        let b = MemStats {
            reads: 4,
            faults_injected: 2,
            ..Default::default()
        };
        let d = a.since(&b);
        assert_eq!(d.reads, 6);
        assert_eq!(d.faults_injected, 3);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = MemStats {
            writes: 9,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, MemStats::default());
    }

    #[test]
    fn display_has_key_numbers() {
        let s = MemStats {
            reads: 1,
            writes: 1,
            l1_hits: 1,
            l1_misses: 1,
            ..Default::default()
        };
        let text = format!("{s}");
        assert!(text.contains("2 accesses"));
        assert!(text.contains("50.00%"));
    }
}
