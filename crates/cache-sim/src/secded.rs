//! SECDED (39,32) extended-Hamming codec for aligned 32-bit words.
//!
//! The word-sized analogue of the classic (72,64) DRAM code: six Hamming
//! check bits locate any single flipped bit, and one overall parity bit
//! distinguishes single-bit errors (correctable) from double-bit errors
//! (detectable only). The seven code bits fit the per-word signature
//! byte the data cache already stores, so enabling
//! [`DetectionScheme::Secded`](crate::DetectionScheme) changes no array
//! layout.
//!
//! Codeword layout: positions `1..=38`, where the powers of two
//! (1, 2, 4, 8, 16, 32) hold the six check bits and the remaining 32
//! positions hold the data bits in ascending order. The check field is
//! the XOR of the positions of all set data bits, so the decode
//! syndrome — recomputed checks XOR stored checks — is exactly the
//! position of a single flipped bit. An overall even-parity bit over
//! data and check bits disambiguates: syndrome ≠ 0 with odd overall
//! parity is a single (correctable) error, syndrome ≠ 0 with even
//! overall parity is a double (detect-only) error. Triple-bit flips can
//! alias to a plausible single-error syndrome and miscorrect — ECC's
//! own silent-corruption escape channel, faithfully modeled.

/// Width in bits of the stored SECDED code per 32-bit word (six Hamming
/// checks plus the overall parity bit).
pub const SECDED_CODE_BITS: u32 = 7;

/// Codeword position of each data bit: ascending positions in `1..=38`
/// that are not powers of two.
const DATA_POS: [u8; 32] = build_data_positions();

/// Reverse map: codeword position → data-bit index, or `-1` for check
/// bit positions (index 0 is unused; positions are 1-based).
const POS_TO_BIT: [i8; 39] = build_pos_to_bit();

const fn build_data_positions() -> [u8; 32] {
    let mut out = [0u8; 32];
    let mut pos = 1u8;
    let mut i = 0usize;
    while i < 32 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

const fn build_pos_to_bit() -> [i8; 39] {
    let mut out = [-1i8; 39];
    let mut i = 0usize;
    while i < 32 {
        out[DATA_POS[i] as usize] = i as i8;
        i += 1;
    }
    out
}

/// Per-byte partial check fields: `CHECKS_LUT[k][v]` is the XOR of
/// `DATA_POS[8k + i]` over the set bits `i` of `v`. The check field of a
/// word is then the XOR of four table lookups instead of a loop over its
/// set bits — the vectorized form used by the line-granular encoder.
const CHECKS_LUT: [[u8; 256]; 4] = build_checks_lut();

const fn build_checks_lut() -> [[u8; 256]; 4] {
    let mut out = [[0u8; 256]; 4];
    let mut k = 0usize;
    while k < 4 {
        let mut v = 0usize;
        while v < 256 {
            let mut checks = 0u8;
            let mut i = 0usize;
            while i < 8 {
                if v & (1 << i) != 0 {
                    checks ^= DATA_POS[8 * k + i];
                }
                i += 1;
            }
            out[k][v] = checks;
            v += 1;
        }
        k += 1;
    }
    out
}

#[inline]
fn check_field(word: u32) -> u8 {
    CHECKS_LUT[0][(word & 0xFF) as usize]
        ^ CHECKS_LUT[1][((word >> 8) & 0xFF) as usize]
        ^ CHECKS_LUT[2][((word >> 16) & 0xFF) as usize]
        ^ CHECKS_LUT[3][(word >> 24) as usize]
}

/// Computes the 7-bit SECDED code for `word`: check bits in bits 0–5,
/// overall parity in bit 6.
///
/// # Examples
///
/// ```
/// use cache_sim::{secded_decode, secded_encode, SecdedOutcome};
///
/// let word = 0xDEAD_BEEF;
/// let code = secded_encode(word);
/// assert_eq!(secded_decode(word, code), SecdedOutcome::Clean);
/// // Any single flipped data bit is corrected back.
/// assert_eq!(
///     secded_decode(word ^ (1 << 7), code),
///     SecdedOutcome::Corrected(word)
/// );
/// ```
pub fn secded_encode(word: u32) -> u8 {
    let checks = check_field(word);
    let overall = (word.count_ones() + u32::from(checks).count_ones()) & 1;
    checks | ((overall as u8) << 6)
}

/// Encodes every aligned 32-bit word of `data` into `codes` — the
/// line-granular batch encoder behind the data cache's lazy code
/// materialization. `data.len()` must be `4 * codes.len()`.
///
/// # Panics
///
/// Panics if the lengths disagree.
pub fn secded_encode_block(data: &[u8], codes: &mut [u8]) {
    assert_eq!(data.len(), codes.len() * 4, "block/code length mismatch");
    for (c, chunk) in codes.iter_mut().zip(data.chunks_exact(4)) {
        *c = secded_encode(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
    }
}

/// Outcome of a SECDED decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecdedOutcome {
    /// The codeword is consistent; the data is taken as correct.
    Clean,
    /// A single-bit error was corrected. The payload is the corrected
    /// data word (unchanged when the flipped bit was a code bit).
    Corrected(u32),
    /// An uncorrectable (double-bit) error was detected; the data
    /// cannot be trusted and recovery must refetch.
    Detected,
}

/// Checks `word` against its stored 7-bit `code`, correcting a single
/// flipped bit or flagging an uncorrectable error.
///
/// Bit 7 of `code` is ignored (the stored signature byte holds only
/// [`SECDED_CODE_BITS`] meaningful bits).
pub fn secded_decode(word: u32, code: u8) -> SecdedOutcome {
    let code = code & 0x7F;
    let syndrome = (code & 0x3F) ^ check_field(word);
    let parity_odd = (word.count_ones() + u32::from(code).count_ones()) & 1 == 1;
    match (syndrome, parity_odd) {
        (0, false) => SecdedOutcome::Clean,
        // Only the overall parity bit flipped: the data is fine.
        (0, true) => SecdedOutcome::Corrected(word),
        (s, true) => {
            if s.is_power_of_two() {
                // A check bit flipped: the data is fine.
                SecdedOutcome::Corrected(word)
            } else if (s as usize) < POS_TO_BIT.len() && POS_TO_BIT[s as usize] >= 0 {
                SecdedOutcome::Corrected(word ^ (1 << POS_TO_BIT[s as usize]))
            } else {
                // An impossible single-error position: at least three
                // bits flipped. Treat as detected rather than guess.
                SecdedOutcome::Detected
            }
        }
        (_, false) => SecdedOutcome::Detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_positions_are_the_32_non_powers() {
        assert_eq!(DATA_POS[0], 3);
        assert_eq!(DATA_POS[31], 38);
        for w in DATA_POS.windows(2) {
            assert!(w[0] < w[1]);
        }
        for p in DATA_POS {
            assert!(!p.is_power_of_two());
        }
    }

    #[test]
    fn lut_check_field_matches_bitwise_definition() {
        // The table-driven check field must agree with the defining
        // XOR-over-set-bits loop for a spread of words.
        let mut word = 0x1234_5678u32;
        for _ in 0..1000 {
            word = word.wrapping_mul(0x9E37_79B9).rotate_left(7) ^ 0xA5A5;
            let mut checks = 0u8;
            let mut w = word;
            while w != 0 {
                checks ^= DATA_POS[w.trailing_zeros() as usize];
                w &= w - 1;
            }
            assert_eq!(check_field(word), checks, "{word:#x}");
        }
    }

    #[test]
    fn block_encoder_matches_word_encoder() {
        let data: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        let mut codes = vec![0u8; 16];
        secded_encode_block(&data, &mut codes);
        for (w, chunk) in data.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            assert_eq!(codes[w], secded_encode(word), "word {w}");
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn block_encoder_rejects_mismatched_lengths() {
        secded_encode_block(&[0u8; 8], &mut [0u8; 3]);
    }

    #[test]
    fn clean_words_decode_clean() {
        for word in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x8000_0001] {
            assert_eq!(
                secded_decode(word, secded_encode(word)),
                SecdedOutcome::Clean,
                "{word:#x}"
            );
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let word = 0xA5A5_5A5A;
        let code = secded_encode(word);
        for bit in 0..32 {
            assert_eq!(
                secded_decode(word ^ (1 << bit), code),
                SecdedOutcome::Corrected(word),
                "bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_code_bit_flip_is_corrected_without_touching_data() {
        let word = 0x1234_5678;
        let code = secded_encode(word);
        for bit in 0..SECDED_CODE_BITS {
            assert_eq!(
                secded_decode(word, code ^ (1 << bit)),
                SecdedOutcome::Corrected(word),
                "code bit {bit}"
            );
        }
    }

    #[test]
    fn every_double_flip_is_detected() {
        // All 39-choose-2 double flips over data and code bits.
        let word = 0xCAFE_F00D;
        let code = secded_encode(word);
        let flip = |i: u32| -> (u32, u8) {
            if i < 32 {
                (word ^ (1 << i), code)
            } else {
                (word, code ^ (1 << (i - 32)))
            }
        };
        for a in 0..(32 + SECDED_CODE_BITS) {
            for b in (a + 1)..(32 + SECDED_CODE_BITS) {
                let (w1, c1) = flip(a);
                let (w2, c2) = (w1 ^ (flip(b).0 ^ word), c1 ^ (flip(b).1 ^ code));
                assert_eq!(
                    secded_decode(w2, c2),
                    SecdedOutcome::Detected,
                    "flips {a},{b}"
                );
            }
        }
    }

    #[test]
    fn unused_code_bit_seven_is_ignored() {
        let word = 42;
        let code = secded_encode(word);
        assert_eq!(secded_decode(word, code | 0x80), SecdedOutcome::Clean);
    }
}
