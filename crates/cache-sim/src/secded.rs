//! SECDED (39,32) extended-Hamming codec for aligned 32-bit words.
//!
//! The word-sized analogue of the classic (72,64) DRAM code: six Hamming
//! check bits locate any single flipped bit, and one overall parity bit
//! distinguishes single-bit errors (correctable) from double-bit errors
//! (detectable only). The seven code bits fit the per-word signature
//! byte the data cache already stores, so enabling
//! [`DetectionScheme::Secded`](crate::DetectionScheme) changes no array
//! layout.
//!
//! Codeword layout: positions `1..=38`, where the powers of two
//! (1, 2, 4, 8, 16, 32) hold the six check bits and the remaining 32
//! positions hold the data bits in ascending order. The check field is
//! the XOR of the positions of all set data bits, so the decode
//! syndrome — recomputed checks XOR stored checks — is exactly the
//! position of a single flipped bit. An overall even-parity bit over
//! data and check bits disambiguates: syndrome ≠ 0 with odd overall
//! parity is a single (correctable) error, syndrome ≠ 0 with even
//! overall parity is a double (detect-only) error. Triple-bit flips can
//! alias to a plausible single-error syndrome and miscorrect — ECC's
//! own silent-corruption escape channel, faithfully modeled.

/// Width in bits of the stored SECDED code per 32-bit word (six Hamming
/// checks plus the overall parity bit).
pub const SECDED_CODE_BITS: u32 = 7;

/// Codeword position of each data bit: ascending positions in `1..=38`
/// that are not powers of two.
const DATA_POS: [u8; 32] = build_data_positions();

/// Reverse map: codeword position → data-bit index, or `-1` for check
/// bit positions (index 0 is unused; positions are 1-based).
const POS_TO_BIT: [i8; 39] = build_pos_to_bit();

const fn build_data_positions() -> [u8; 32] {
    let mut out = [0u8; 32];
    let mut pos = 1u8;
    let mut i = 0usize;
    while i < 32 {
        if !pos.is_power_of_two() {
            out[i] = pos;
            i += 1;
        }
        pos += 1;
    }
    out
}

const fn build_pos_to_bit() -> [i8; 39] {
    let mut out = [-1i8; 39];
    let mut i = 0usize;
    while i < 32 {
        out[DATA_POS[i] as usize] = i as i8;
        i += 1;
    }
    out
}

/// Computes the 7-bit SECDED code for `word`: check bits in bits 0–5,
/// overall parity in bit 6.
///
/// # Examples
///
/// ```
/// use cache_sim::{secded_decode, secded_encode, SecdedOutcome};
///
/// let word = 0xDEAD_BEEF;
/// let code = secded_encode(word);
/// assert_eq!(secded_decode(word, code), SecdedOutcome::Clean);
/// // Any single flipped data bit is corrected back.
/// assert_eq!(
///     secded_decode(word ^ (1 << 7), code),
///     SecdedOutcome::Corrected(word)
/// );
/// ```
pub fn secded_encode(word: u32) -> u8 {
    let mut checks = 0u8;
    let mut w = word;
    while w != 0 {
        let bit = w.trailing_zeros() as usize;
        checks ^= DATA_POS[bit];
        w &= w - 1;
    }
    let overall = (word.count_ones() + u32::from(checks).count_ones()) & 1;
    checks | ((overall as u8) << 6)
}

/// Outcome of a SECDED decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecdedOutcome {
    /// The codeword is consistent; the data is taken as correct.
    Clean,
    /// A single-bit error was corrected. The payload is the corrected
    /// data word (unchanged when the flipped bit was a code bit).
    Corrected(u32),
    /// An uncorrectable (double-bit) error was detected; the data
    /// cannot be trusted and recovery must refetch.
    Detected,
}

/// Checks `word` against its stored 7-bit `code`, correcting a single
/// flipped bit or flagging an uncorrectable error.
///
/// Bit 7 of `code` is ignored (the stored signature byte holds only
/// [`SECDED_CODE_BITS`] meaningful bits).
pub fn secded_decode(word: u32, code: u8) -> SecdedOutcome {
    let code = code & 0x7F;
    let stored_checks = code & 0x3F;
    let mut syndrome = stored_checks;
    let mut w = word;
    while w != 0 {
        let bit = w.trailing_zeros() as usize;
        syndrome ^= DATA_POS[bit];
        w &= w - 1;
    }
    let parity_odd = (word.count_ones() + u32::from(code).count_ones()) & 1 == 1;
    match (syndrome, parity_odd) {
        (0, false) => SecdedOutcome::Clean,
        // Only the overall parity bit flipped: the data is fine.
        (0, true) => SecdedOutcome::Corrected(word),
        (s, true) => {
            if s.is_power_of_two() {
                // A check bit flipped: the data is fine.
                SecdedOutcome::Corrected(word)
            } else if (s as usize) < POS_TO_BIT.len() && POS_TO_BIT[s as usize] >= 0 {
                SecdedOutcome::Corrected(word ^ (1 << POS_TO_BIT[s as usize]))
            } else {
                // An impossible single-error position: at least three
                // bits flipped. Treat as detected rather than guess.
                SecdedOutcome::Detected
            }
        }
        (_, false) => SecdedOutcome::Detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_positions_are_the_32_non_powers() {
        assert_eq!(DATA_POS[0], 3);
        assert_eq!(DATA_POS[31], 38);
        for w in DATA_POS.windows(2) {
            assert!(w[0] < w[1]);
        }
        for p in DATA_POS {
            assert!(!p.is_power_of_two());
        }
    }

    #[test]
    fn clean_words_decode_clean() {
        for word in [0u32, 1, u32::MAX, 0xDEAD_BEEF, 0x8000_0001] {
            assert_eq!(
                secded_decode(word, secded_encode(word)),
                SecdedOutcome::Clean,
                "{word:#x}"
            );
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let word = 0xA5A5_5A5A;
        let code = secded_encode(word);
        for bit in 0..32 {
            assert_eq!(
                secded_decode(word ^ (1 << bit), code),
                SecdedOutcome::Corrected(word),
                "bit {bit}"
            );
        }
    }

    #[test]
    fn every_single_code_bit_flip_is_corrected_without_touching_data() {
        let word = 0x1234_5678;
        let code = secded_encode(word);
        for bit in 0..SECDED_CODE_BITS {
            assert_eq!(
                secded_decode(word, code ^ (1 << bit)),
                SecdedOutcome::Corrected(word),
                "code bit {bit}"
            );
        }
    }

    #[test]
    fn every_double_flip_is_detected() {
        // All 39-choose-2 double flips over data and code bits.
        let word = 0xCAFE_F00D;
        let code = secded_encode(word);
        let flip = |i: u32| -> (u32, u8) {
            if i < 32 {
                (word ^ (1 << i), code)
            } else {
                (word, code ^ (1 << (i - 32)))
            }
        };
        for a in 0..(32 + SECDED_CODE_BITS) {
            for b in (a + 1)..(32 + SECDED_CODE_BITS) {
                let (w1, c1) = flip(a);
                let (w2, c2) = (w1 ^ (flip(b).0 ^ word), c1 ^ (flip(b).1 ^ code));
                assert_eq!(
                    secded_decode(w2, c2),
                    SecdedOutcome::Detected,
                    "flips {a},{b}"
                );
            }
        }
    }

    #[test]
    fn unused_code_bit_seven_is_ignored() {
        let word = 42;
        let code = secded_encode(word);
        assert_eq!(secded_decode(word, code | 0x80), SecdedOutcome::Clean);
    }
}
