//! Analytical predictor for running degraded (INTERPLAY-style).
//!
//! Way-disabling trades capacity for availability: every mapped-out way
//! shrinks the effective associativity of one set, and a fully
//! mapped-out set degenerates to an uncached region serviced from the
//! L2. Sweeping that design space in simulation is expensive, so this
//! module estimates the cycle/energy cost of a disabled-way map
//! *without* simulating — from the cache geometry, the latency/energy
//! constants, and a small baseline profile measured once on the healthy
//! cache.
//!
//! The model is deliberately first-order, in the spirit of analytical
//! packet-processor models: it assumes accesses spread uniformly over
//! sets (true for the streaming packet workloads the paper targets,
//! whose working sets are headers laid out contiguously) and models each
//! set's miss rate from the capacity left to it:
//!
//! * a set with `c` healthy ways holding `a` competing working-set
//!   lines hits with probability `min(1, c / a)` on the capacity
//!   component, so its miss rate is `max(m₀, 1 − c / a)` where `m₀` is
//!   the healthy cache's measured miss rate (compulsory + conflict
//!   floor);
//! * a fully mapped-out set pays the bypass cost — an L2 access (plus
//!   the backing penalty for whatever fraction of the working set
//!   overflows the L2) instead of an L1 hit — on *every* access.
//!
//! With no ways disabled the prediction collapses to the measured
//! baseline exactly, so the model cannot disagree with the simulator at
//! the healthy point. The `way_disable` bench validates the rest of the
//! grid against full simulation and records the relative error.

use crate::config::MemConfig;
use crate::hierarchy::MemSystem;

/// Healthy-cache measurements the predictor extrapolates from.
///
/// Measure once per (workload, geometry) pair — e.g. with
/// [`BaselineProfile::from_run`] after a fault-free simulation — then
/// reuse for every disabled-way map on that geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaselineProfile {
    /// Program-visible L1 accesses in the profiled run.
    pub accesses: u64,
    /// Core cycles the profiled run took.
    pub cycles: f64,
    /// Total energy of the profiled run in nanojoules.
    pub energy_nj: f64,
    /// Healthy L1 miss rate (compulsory + conflict floor `m₀`).
    pub miss_rate: f64,
    /// Fraction of the profiled run's L2 accesses that fell through to
    /// backing memory. Recorded for reference; note it is dominated by
    /// compulsory misses (a healthy cache touches the L2 almost only on
    /// first-touch refills), so the predictor derives the steady-state
    /// rate of degraded traffic from capacity instead.
    pub l2_miss_rate: f64,
    /// Distinct cache lines the workload keeps live (its working set).
    pub working_set_lines: u64,
}

impl BaselineProfile {
    /// Builds a profile from a finished healthy run on `mem`.
    ///
    /// `working_set_lines` cannot be observed from the counters (the
    /// simulator does not track distinct-line footprints), so the caller
    /// supplies it from workload knowledge — for the synthetic benches,
    /// the exact buffer size divided by the line size.
    pub fn from_run(mem: &MemSystem, working_set_lines: u64) -> Self {
        let stats = mem.stats();
        let l2 = stats.l2_accesses;
        BaselineProfile {
            accesses: stats.accesses(),
            cycles: mem.cycles(),
            energy_nj: mem.energy().total_nj(),
            miss_rate: stats.miss_rate(),
            l2_miss_rate: if l2 == 0 {
                0.0
            } else {
                stats.l2_misses as f64 / l2 as f64
            },
            working_set_lines,
        }
    }
}

/// The predictor's verdict for one disabled-way map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationEstimate {
    /// Predicted core cycles for the degraded cache.
    pub cycles: f64,
    /// Predicted total energy in nanojoules.
    pub energy_nj: f64,
    /// Predicted slowdown `cycles / baseline.cycles` (≥ 1).
    pub slowdown: f64,
    /// Predicted energy–delay-squared ratio against the baseline
    /// (`E·D² / E₀·D₀²`) — the paper's figure of merit.
    pub edf2_ratio: f64,
    /// Sets running with reduced (but non-zero) associativity.
    pub degraded_sets: u32,
    /// Fully mapped-out sets serviced by the L2 bypass.
    pub bypass_sets: u32,
}

/// Analytical degraded-cache model for one [`MemConfig`].
///
/// # Examples
///
/// ```
/// use cache_sim::{BaselineProfile, DegradationModel, MemConfig};
///
/// let cfg = MemConfig::strongarm();
/// let model = DegradationModel::from_config(&cfg);
/// let base = BaselineProfile {
///     accesses: 1_000_000,
///     cycles: 2_500_000.0,
///     energy_nj: 1.0e6,
///     miss_rate: 0.02,
///     l2_miss_rate: 0.05,
///     working_set_lines: 256,
/// };
/// // Healthy map: the prediction is the baseline itself.
/// let healthy = model.predict(&base, &vec![0; cfg.l1.sets() as usize]);
/// assert_eq!(healthy.cycles, base.cycles);
/// assert_eq!(healthy.slowdown, 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationModel {
    sets: u32,
    assoc: u32,
    l1_line: u32,
    l2_bytes: u32,
    l1_stall: f64,
    l2_latency: f64,
    mem_latency: f64,
    l1_read_nj: f64,
    l2_access_nj: f64,
    mem_access_nj: f64,
}

impl DegradationModel {
    /// Builds the model from a memory configuration (full-swing clock:
    /// degraded-mode studies run the cache at its rated frequency, since
    /// the point of mapping ways out is to keep *correctness*, not to
    /// overclock further).
    pub fn from_config(cfg: &MemConfig) -> Self {
        let raw = cfg.l1_latency;
        DegradationModel {
            sets: cfg.l1.sets(),
            assoc: cfg.l1.assoc(),
            l1_line: cfg.l1.line_size(),
            l2_bytes: cfg.l2.size(),
            l1_stall: if cfg.quantize_latency {
                raw.ceil()
            } else {
                raw
            },
            l2_latency: cfg.l2_latency,
            mem_latency: cfg.mem_latency,
            // A bypassed access skips the L1 array entirely, so its
            // read energy (at full swing, including the detection
            // scheme's check overhead) is credited back.
            l1_read_nj: match cfg.detection {
                crate::DetectionScheme::None => cfg.energy.l1_read_energy(1.0),
                crate::DetectionScheme::Secded => cfg.energy.l1_read_energy_with_ecc(1.0),
                _ => cfg.energy.l1_read_energy_with_parity(1.0),
            },
            l2_access_nj: cfg.energy.l2_access_energy(),
            mem_access_nj: cfg.energy.mem_access_energy(),
        }
    }

    /// Steady-state L2 miss rate of the *degraded* traffic. The profiled
    /// [`BaselineProfile::l2_miss_rate`] cannot be extrapolated here: a
    /// healthy cache only touches the L2 on compulsory refills, so its
    /// measured rate is compulsory-dominated (often near 1.0) no matter
    /// how long the profile runs. The recurring traffic a mapped-out way
    /// generates re-touches the same working set, so its miss rate is a
    /// capacity question: zero while the working set fits the L2, the
    /// uncovered fraction beyond that.
    fn steady_l2_miss(&self, base: &BaselineProfile) -> f64 {
        let ws_bytes = base.working_set_lines as f64 * f64::from(self.l1_line);
        let l2_bytes = f64::from(self.l2_bytes);
        if ws_bytes <= l2_bytes {
            0.0
        } else {
            1.0 - l2_bytes / ws_bytes
        }
    }

    /// Average cost in cycles of one L1 miss (L2 access plus the backing
    /// penalty at the steady-state L2 miss rate).
    fn miss_penalty(&self, base: &BaselineProfile) -> f64 {
        self.l2_latency + self.steady_l2_miss(base) * self.mem_latency
    }

    /// Predicted miss rate of a set with `healthy_ways` ways left and
    /// `lines_per_set` working-set lines competing for them.
    fn set_miss_rate(&self, base: &BaselineProfile, healthy_ways: u32, lines_per_set: f64) -> f64 {
        if lines_per_set <= 0.0 {
            return base.miss_rate;
        }
        let capacity_miss = 1.0 - (f64::from(healthy_ways) / lines_per_set).min(1.0);
        capacity_miss.max(base.miss_rate)
    }

    /// Predicts the cost of running with `disabled[s]` ways of set `s`
    /// mapped out (the layout of
    /// [`DataCache::disabled_map`](crate::DataCache::disabled_map)).
    ///
    /// # Panics
    ///
    /// Panics if `disabled` does not have one entry per set, or an entry
    /// exceeds the associativity.
    pub fn predict(&self, base: &BaselineProfile, disabled: &[u32]) -> DegradationEstimate {
        assert_eq!(
            disabled.len(),
            self.sets as usize,
            "disabled-way map must have one entry per set"
        );
        let lines_per_set = base.working_set_lines as f64 / f64::from(self.sets);
        let penalty = self.miss_penalty(base);
        let per_set_accesses = base.accesses as f64 / f64::from(self.sets);
        let baseline_access_cost = self.l1_stall + base.miss_rate * penalty;
        let mut extra_cycles = 0.0;
        let mut extra_l2 = 0.0;
        let mut bypassed_accesses = 0.0;
        let mut degraded_sets = 0u32;
        let mut bypass_sets = 0u32;
        for &d in disabled {
            assert!(d <= self.assoc, "disabled count exceeds associativity");
            if d == 0 {
                continue;
            }
            if d == self.assoc {
                // Bypass: every access is an L2 access instead of an L1
                // hit (plus the backing penalty pro rata).
                bypass_sets += 1;
                extra_cycles += per_set_accesses * (penalty - baseline_access_cost);
                extra_l2 += per_set_accesses * (1.0 - base.miss_rate);
                bypassed_accesses += per_set_accesses;
            } else {
                degraded_sets += 1;
                let m = self.set_miss_rate(base, self.assoc - d, lines_per_set);
                extra_cycles += per_set_accesses * (m - base.miss_rate) * penalty;
                extra_l2 += per_set_accesses * (m - base.miss_rate);
            }
        }
        let cycles = base.cycles + extra_cycles.max(0.0);
        let energy_nj = base.energy_nj
            + extra_l2.max(0.0)
                * (self.l2_access_nj + self.steady_l2_miss(base) * self.mem_access_nj)
            - bypassed_accesses * self.l1_read_nj;
        let slowdown = if base.cycles > 0.0 {
            cycles / base.cycles
        } else {
            1.0
        };
        let energy_ratio = if base.energy_nj > 0.0 {
            energy_nj / base.energy_nj
        } else {
            1.0
        };
        DegradationEstimate {
            cycles,
            energy_nj,
            slowdown,
            edf2_ratio: energy_ratio * slowdown * slowdown,
            degraded_sets,
            bypass_sets,
        }
    }
}

/// Relative error `|predicted − actual| / actual` (0 when both are 0).
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (predicted - actual).abs() / actual.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> BaselineProfile {
        BaselineProfile {
            accesses: 1_000_000,
            cycles: 2_600_000.0,
            energy_nj: 5.0e5,
            miss_rate: 0.02,
            l2_miss_rate: 0.05,
            working_set_lines: 512,
        }
    }

    fn model() -> DegradationModel {
        DegradationModel::from_config(&MemConfig::strongarm())
    }

    #[test]
    fn healthy_map_predicts_the_baseline_exactly() {
        let m = model();
        let est = m.predict(&base(), &vec![0; m.sets as usize]);
        assert_eq!(est.cycles, base().cycles);
        assert_eq!(est.energy_nj, base().energy_nj);
        assert_eq!(est.slowdown, 1.0);
        assert_eq!(est.edf2_ratio, 1.0);
        assert_eq!(est.degraded_sets, 0);
        assert_eq!(est.bypass_sets, 0);
    }

    #[test]
    fn degradation_is_monotone_in_disabled_ways() {
        // 4-way geometry so partial degradation exists; a working set
        // that fits the healthy capacity (2 lines/set), so shrinking a
        // set only ever removes headroom. (With a pathologically
        // oversubscribed set, a near-dead 1-way set can genuinely cost
        // *more* than the bypass — the bypass skips the L1 stall — so
        // unconditional monotonicity would be wrong, in the simulator
        // as much as in the model.)
        let cfg = MemConfig {
            l1: crate::CacheGeometry::new(4 * 1024, 32, 4),
            ..MemConfig::strongarm()
        };
        let m = DegradationModel::from_config(&cfg);
        let b = BaselineProfile {
            working_set_lines: u64::from(m.sets) * 2,
            ..base()
        };
        let mut last = b.cycles;
        for d in 1..=4u32 {
            let mut map = vec![0; m.sets as usize];
            map[0] = d;
            let est = m.predict(&b, &map);
            assert!(
                est.cycles >= last,
                "disabling {d} ways should not be cheaper than {}",
                d - 1
            );
            last = est.cycles;
        }
    }

    #[test]
    fn bypass_sets_cost_more_than_degraded_sets() {
        // Working set at 2 lines/set so a half-disabled set still holds
        // its share: the partial map costs nothing beyond the baseline,
        // while the bypass pays L2 latency on every access. (With a
        // heavily oversubscribed set the comparison legitimately flips
        // — a near-dead thrashing set can cost more than the bypass.)
        let cfg = MemConfig {
            l1: crate::CacheGeometry::new(4 * 1024, 32, 4),
            ..MemConfig::strongarm()
        };
        let m = DegradationModel::from_config(&cfg);
        let b = BaselineProfile {
            working_set_lines: u64::from(m.sets) * 2,
            ..base()
        };
        let mut partial = vec![0; m.sets as usize];
        partial[3] = 2;
        let mut full = vec![0; m.sets as usize];
        full[3] = 4;
        let p = m.predict(&b, &partial);
        let f = m.predict(&b, &full);
        assert_eq!(p.degraded_sets, 1);
        assert_eq!(p.bypass_sets, 0);
        assert_eq!(f.bypass_sets, 1);
        assert!(f.cycles > p.cycles);
        assert!(f.edf2_ratio >= p.edf2_ratio);
    }

    #[test]
    fn relative_error_handles_zero() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "one entry per set")]
    fn predict_rejects_wrong_map_size() {
        let m = model();
        m.predict(&base(), &[0, 0]);
    }
}
