//! Bit-accurate memory-hierarchy simulator with fault injection.
//!
//! This crate is the substrate the paper's evaluation runs on: a
//! StrongARM-110-class hierarchy (§5.1) with
//!
//! * a **4 KB direct-mapped level-1 data cache** (32-byte lines,
//!   2-cycle latency) whose clock can be raised beyond the circuit
//!   designer's specification,
//! * a **128 KB 4-way set-associative level-2 cache** (128-byte lines,
//!   15-cycle latency), correct by default as the paper assumes — the
//!   opt-in [`FaultTargets::l2`] process makes it fallible at its own
//!   clock's voltage swing ([`MemConfig::l2_cycle`]),
//! * a flat backing store holding architectural ground truth.
//!
//! Every program load/store goes through [`MemSystem`]. On each L1 data
//! access a [`fault_model::FaultSampler`] may flip bits of the accessed
//! word — *transiently* on reads (the stored copy stays intact) and
//! *persistently* on writes (the corrupted word is stored while parity is
//! computed from the intended value, so the corruption is detectable
//! later). Detection and recovery follow §4:
//!
//! * [`DetectionScheme::None`] — corrupted values flow into the program.
//! * [`DetectionScheme::Parity`] — one even-parity bit per 32-bit word;
//!   odd-bit corruptions are detected, even-bit corruptions escape.
//! * [`DetectionScheme::ParityPerByte`] — extension: one parity bit per
//!   byte, catching cross-byte multi-bit faults too.
//! * [`DetectionScheme::Secded`] — extension: a (39,32) extended-Hamming
//!   code per word ([`secded_encode`]) that *corrects* single-bit faults
//!   in place and detects double-bit faults, pricing the correction
//!   hardware the paper dismissed.
//! * [`StrikePolicy`] — a *k*-strike policy retries the L1 read up to
//!   `k − 1` times on detected faults before invalidating the block and
//!   fetching from L2.
//! * [`RecoveryGranularity`] — what a strike-exhausted recovery
//!   discards: the whole line (the paper's design) or just the faulty
//!   word (the footnote-2 sub-block extension).
//!
//! The simulator also accounts cycles (the L1 stall shrinks with the
//! relative cycle time `Cr`) and energy (via [`energy_model`], with cache
//! energy linear in the voltage swing).
//!
//! # Examples
//!
//! ```
//! use cache_sim::{MemConfig, MemSystem};
//!
//! let mut mem = MemSystem::new(MemConfig::strongarm(), 42);
//! mem.write_u32(0x100, 0xDEAD_BEEF).unwrap();
//! assert_eq!(mem.read_u32(0x100).unwrap(), 0xDEAD_BEEF);
//! assert!(mem.stats().l1_hits >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backing;
mod cache;
mod config;
pub mod degradation;
mod error;
mod hierarchy;
mod policy;
mod secded;
mod stats;

pub use backing::BackingStore;
pub use cache::{CacheGeometry, DataCache, GeometryError, TagCache, WordCode};
pub use config::MemConfig;
pub use degradation::{relative_error, BaselineProfile, DegradationEstimate, DegradationModel};
pub use error::MemError;
pub use fault_model::SamplingMode;
pub use hierarchy::{Access, MemSystem};
pub use policy::{
    DetectionScheme, FaultTargets, RecoveryGranularity, StrikePolicy, WayDisablePolicy,
};
pub use secded::{
    secded_decode, secded_encode, secded_encode_block, SecdedOutcome, SECDED_CODE_BITS,
};
pub use stats::MemStats;

/// Standard machine word width in bits (the paper protects each 32-bit
/// word with a single parity bit).
pub const WORD_BITS: u32 = 32;
