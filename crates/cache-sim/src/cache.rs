//! Cache arrays: geometry, the data-holding L1, and the tag-only L2.

use std::error::Error;
use std::fmt;

/// Why a [`CacheGeometry`] is unbuildable.
///
/// Returned by [`CacheGeometry::try_new`] so geometry sweeps can
/// validate candidate configurations instead of aborting; the
/// [`Display`](fmt::Display) messages are the exact panic messages of
/// [`CacheGeometry::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// The total size is not a power of two.
    SizeNotPowerOfTwo {
        /// The rejected total size in bytes.
        size: u32,
    },
    /// The line size is not a power of two at least 4.
    BadLineSize {
        /// The rejected line size in bytes.
        line: u32,
    },
    /// The associativity is zero.
    ZeroAssociativity,
    /// The cache cannot hold even one full set.
    TooSmallForOneSet {
        /// Lines the cache holds.
        lines: u32,
        /// Requested ways per set.
        assoc: u32,
    },
    /// The implied set count is not a power of two.
    SetsNotPowerOfTwo {
        /// Lines the cache holds.
        lines: u32,
        /// Requested ways per set.
        assoc: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::SizeNotPowerOfTwo { size } => {
                write!(f, "cache size must be a power of two (got {size})")
            }
            GeometryError::BadLineSize { line } => {
                write!(f, "line size must be a power of two >= 4 (got {line})")
            }
            GeometryError::ZeroAssociativity => {
                write!(f, "associativity must be at least 1")
            }
            GeometryError::TooSmallForOneSet { lines, assoc } => {
                write!(
                    f,
                    "cache must hold at least one set ({lines} lines, {assoc} ways)"
                )
            }
            GeometryError::SetsNotPowerOfTwo { lines, assoc } => {
                write!(
                    f,
                    "set count must be a power of two ({lines} lines, {assoc} ways)"
                )
            }
        }
    }
}

impl Error for GeometryError {}

/// Size/shape of a cache: total bytes, line bytes, associativity.
///
/// # Examples
///
/// ```
/// use cache_sim::CacheGeometry;
///
/// // The paper's level-1 data cache: 4 KB direct-mapped, 32-byte lines.
/// let l1 = CacheGeometry::new(4 * 1024, 32, 1);
/// assert_eq!(l1.sets(), 128);
/// // The level-2: 128 KB 4-way, 128-byte lines.
/// let l2 = CacheGeometry::new(128 * 1024, 128, 4);
/// assert_eq!(l2.sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size: u32,
    line: u32,
    assoc: u32,
    /// `log2(line)` — index math on the access fast path uses shifts
    /// and masks instead of divisions.
    line_shift: u32,
    /// `line - 1`.
    offset_mask: u32,
    /// `sets - 1`.
    set_mask: u32,
    /// `log2(line) + log2(sets)`.
    tag_shift: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size`, `line` and the implied set count are powers
    /// of two, `line ≥ 4`, and `assoc ≥ 1` divides the line count.
    pub fn new(size: u32, line: u32, assoc: u32) -> Self {
        Self::try_new(size, line, assoc).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`CacheGeometry::new`]: returns the violated
    /// constraint instead of panicking, so sweeps over candidate
    /// geometries can skip unbuildable points.
    ///
    /// # Examples
    ///
    /// ```
    /// use cache_sim::{CacheGeometry, GeometryError};
    ///
    /// assert!(CacheGeometry::try_new(4 * 1024, 32, 1).is_ok());
    /// assert_eq!(
    ///     CacheGeometry::try_new(3000, 32, 1),
    ///     Err(GeometryError::SizeNotPowerOfTwo { size: 3000 })
    /// );
    /// ```
    pub fn try_new(size: u32, line: u32, assoc: u32) -> Result<Self, GeometryError> {
        if !size.is_power_of_two() {
            return Err(GeometryError::SizeNotPowerOfTwo { size });
        }
        if !line.is_power_of_two() || line < 4 {
            return Err(GeometryError::BadLineSize { line });
        }
        if assoc < 1 {
            return Err(GeometryError::ZeroAssociativity);
        }
        let lines = size / line;
        if lines < assoc {
            return Err(GeometryError::TooSmallForOneSet { lines, assoc });
        }
        if !lines.is_multiple_of(assoc) || !(lines / assoc).is_power_of_two() {
            return Err(GeometryError::SetsNotPowerOfTwo { lines, assoc });
        }
        let sets = lines / assoc;
        Ok(CacheGeometry {
            size,
            line,
            assoc,
            line_shift: line.trailing_zeros(),
            offset_mask: line - 1,
            set_mask: sets - 1,
            tag_shift: line.trailing_zeros() + sets.trailing_zeros(),
        })
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u32 {
        self.line
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / self.line / self.assoc
    }

    /// Set index of `addr`.
    #[inline]
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr >> self.line_shift) & self.set_mask
    }

    /// Tag of `addr`.
    #[inline]
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr >> self.tag_shift
    }

    /// First address of the line containing `addr`.
    #[inline]
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !self.offset_mask
    }

    /// Offset of `addr` within its line.
    #[inline]
    pub fn offset_of(&self, addr: u32) -> u32 {
        addr & self.offset_mask
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {}-byte lines",
            self.size / 1024,
            self.assoc,
            self.line
        )
    }
}

/// Which per-word check code the data cache stores alongside each word.
///
/// One byte per word is reserved either way, so switching codes changes
/// no array layout: the parity signature uses 4 of its bits, the SECDED
/// code 7 (see [`crate::secded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordCode {
    /// Per-byte parity signature; bit `i` is the even parity of byte
    /// `i`, and word parity is the XOR of the four bits, so both parity
    /// detection granularities share this encoding.
    #[default]
    ParitySignature,
    /// SECDED (39,32) extended-Hamming code
    /// ([`secded_encode`](crate::secded_encode)).
    Secded,
}

impl WordCode {
    /// Encodes the check byte for `word` under this code.
    pub fn encode(self, word: u32) -> u8 {
        match self {
            WordCode::ParitySignature => parity_signature(word),
            WordCode::Secded => crate::secded::secded_encode(word),
        }
    }
}

/// One line of the data-holding L1 cache.
///
/// The check codes are *timing/fault state*, not functional state: a
/// freshly filled line's codes are always a pure function of its data,
/// so they are not computed until a checking (slow-path) access actually
/// reads one (`codes_valid`). Only a corrupted store can make a stored
/// code disagree with its stored word; such a line is flagged `suspect`
/// and its codes are materialized *before* the mismatch is written, so
/// the invariant `suspect ⇒ codes_valid` holds and lazy materialization
/// can never erase a recorded mismatch.
#[derive(Debug, Clone)]
struct DataLine {
    tag: u32,
    valid: bool,
    dirty: bool,
    /// Some stored word's check code may disagree with its stored data
    /// (a write fault corrupted the store); checked reads must take the
    /// slow path while a detection scheme is enabled.
    suspect: bool,
    /// Whether `parity` currently holds the codes of this line's words;
    /// codes are materialized lazily on first checked access.
    codes_valid: bool,
    data: Box<[u8]>,
    /// Per-word check code computed from the *intended* data (so a
    /// corrupted store is detectable later) under the cache's
    /// [`WordCode`].
    parity: Box<[u8]>,
}

impl DataLine {
    fn new(line_size: u32) -> Self {
        DataLine {
            tag: 0,
            valid: false,
            dirty: false,
            suspect: false,
            codes_valid: false,
            data: vec![0; line_size as usize].into_boxed_slice(),
            parity: vec![0; (line_size / 4) as usize].into_boxed_slice(),
        }
    }

    /// Ensures `parity` holds the codes of the current data (a no-op
    /// once materialized — in particular on suspect lines, whose
    /// recorded mismatches must survive).
    fn materialize_codes(&mut self, code: WordCode) {
        if self.codes_valid {
            return;
        }
        encode_line(code, &self.data, &mut self.parity);
        self.codes_valid = true;
    }
}

/// A located line held open for a batched fast-path commit (see
/// [`DataCache::fast_group`]): raw word reads and writes with the
/// fast-path semantics of [`DataCache::fast_read_commit`] /
/// [`DataCache::fast_write_commit`], minus the per-access LRU touch and
/// line lookup the group already paid once.
pub(crate) struct FastLine<'a> {
    line: &'a mut DataLine,
    code: WordCode,
    offset_mask: u32,
}

impl FastLine<'_> {
    /// Reads the stored word containing `addr`.
    #[inline]
    pub(crate) fn read(&self, addr: u32) -> u32 {
        let off = (addr & self.offset_mask) as usize & !3;
        let b = &self.line.data[off..off + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Writes the aligned word at `addr`, keeping any materialized code
    /// in step and marking the line dirty.
    #[inline]
    pub(crate) fn write(&mut self, addr: u32, value: u32) {
        let off = (addr & self.offset_mask) as usize & !3;
        self.line.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
        if self.line.codes_valid {
            self.line.parity[off / 4] = self.code.encode(value);
        }
        self.line.dirty = true;
    }

    /// Reads the byte at `addr` — the little-endian byte extraction of
    /// [`FastLine::read`], without touching the other three bytes.
    #[inline]
    pub(crate) fn read_u8(&self, addr: u32) -> u8 {
        self.line.data[(addr & self.offset_mask) as usize]
    }

    /// Writes the byte at `addr`. Equivalent to the word RMW a
    /// single-byte store performs (merge into the stored word, re-encode
    /// the containing word's code): the stored bytes end up identical,
    /// and the word code is recomputed only when one is materialized.
    #[inline]
    pub(crate) fn write_u8(&mut self, addr: u32, value: u8) {
        let off = (addr & self.offset_mask) as usize;
        self.line.data[off] = value;
        if self.line.codes_valid {
            let woff = off & !3;
            let b = &self.line.data[woff..woff + 4];
            self.line.parity[woff / 4] = self
                .code
                .encode(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        self.line.dirty = true;
    }

    /// Appends the `n` aligned words starting at `addr` to `out` — one
    /// bounds check for the whole stretch instead of one per word.
    #[inline]
    pub(crate) fn read_words_into(&self, addr: u32, n: u32, out: &mut Vec<u32>) {
        let off = (addr & self.offset_mask) as usize & !3;
        let bytes = &self.line.data[off..off + 4 * n as usize];
        out.extend(
            bytes
                .chunks_exact(4)
                .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
    }

    /// Appends the `n` aligned half-words starting at `addr` to `out`,
    /// zero-extended as the batched-run convention requires.
    #[inline]
    pub(crate) fn read_halves_into(&self, addr: u32, n: u32, out: &mut Vec<u32>) {
        let off = (addr & self.offset_mask) as usize & !1;
        let bytes = &self.line.data[off..off + 2 * n as usize];
        out.extend(
            bytes
                .chunks_exact(2)
                .map(|b| u32::from(u16::from_le_bytes([b[0], b[1]]))),
        );
    }

    /// Appends the `n` bytes starting at `addr` to `out`.
    #[inline]
    pub(crate) fn read_bytes_into(&self, addr: u32, n: u32, out: &mut Vec<u8>) {
        let off = (addr & self.offset_mask) as usize;
        out.extend_from_slice(&self.line.data[off..off + n as usize]);
    }

    /// Writes `words` as sequential aligned stores starting at `addr`.
    /// The final line state is identical to word-by-word
    /// [`FastLine::write`] calls: stored data is the concatenation, and
    /// any materialized code ends up encoding the final (latest) word —
    /// which is all a code depends on.
    #[inline]
    pub(crate) fn write_words(&mut self, addr: u32, words: &[u32]) {
        let off = (addr & self.offset_mask) as usize & !3;
        for (i, &w) in words.iter().enumerate() {
            self.line.data[off + 4 * i..off + 4 * i + 4].copy_from_slice(&w.to_le_bytes());
        }
        if self.line.codes_valid {
            for (i, &w) in words.iter().enumerate() {
                self.line.parity[off / 4 + i] = self.code.encode(w);
            }
        }
        self.line.dirty = true;
    }

    /// Writes `bytes` as sequential byte stores starting at `addr`.
    /// Equivalent to byte-by-byte [`FastLine::write_u8`]: codes depend
    /// only on the final data, so any materialized codes of the touched
    /// words are recomputed once from the settled bytes.
    #[inline]
    pub(crate) fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        let off = (addr & self.offset_mask) as usize;
        self.line.data[off..off + bytes.len()].copy_from_slice(bytes);
        if self.line.codes_valid {
            let first = off & !3;
            let last = (off + bytes.len() - 1) & !3;
            for woff in (first..=last).step_by(4) {
                let b = &self.line.data[woff..woff + 4];
                self.line.parity[woff / 4] = self
                    .code
                    .encode(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            }
        }
        self.line.dirty = true;
    }
}

/// Encodes the per-word check codes of a whole line at once — the
/// line-granular (vectorized) form of [`WordCode::encode`]. Parity
/// signatures are computed eight bytes at a time with SWAR folds;
/// SECDED codes go through the table-driven block encoder.
pub(crate) fn encode_line(code: WordCode, data: &[u8], out: &mut [u8]) {
    debug_assert_eq!(data.len(), out.len() * 4);
    match code {
        WordCode::ParitySignature => {
            let mut w = 0usize;
            for chunk in data.chunks_exact(8) {
                let x = u64::from_le_bytes(chunk.try_into().unwrap());
                // Fold each byte onto its bit 0 (shifts never reach
                // across more than 7 bits, so bytes stay independent),
                // then gather the eight byte-parity bits into one byte:
                // bit j of the product's top byte is byte j's parity.
                let mut p = x ^ (x >> 4);
                p ^= p >> 2;
                p ^= p >> 1;
                let bits =
                    ((p & 0x0101_0101_0101_0101).wrapping_mul(0x0102_0408_1020_4080) >> 56) as u8;
                out[w] = bits & 0xF;
                out[w + 1] = bits >> 4;
                w += 2;
            }
            if data.len() % 8 == 4 {
                let b = &data[data.len() - 4..];
                out[w] = parity_signature(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
            }
        }
        WordCode::Secded => crate::secded::secded_encode_block(data, out),
    }
}

/// Outcome of an L1 lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lookup {
    /// The line is resident in the given way.
    Hit(usize),
    /// The line is absent; the given way is the victim for a refill.
    Miss(usize),
    /// Every way of the target set is disabled: the line can never be
    /// resident and the access must bypass the L1 entirely.
    Bypass,
}

/// The level-1 data cache: tags, data and a per-word check code.
///
/// This is a plain storage array — fault injection, detection and
/// recovery live in [`MemSystem`](crate::MemSystem), which drives it.
#[derive(Debug, Clone)]
pub struct DataCache {
    geom: CacheGeometry,
    code: WordCode,
    lines: Vec<DataLine>,
    /// Per-set LRU order: `lru[set]` lists way indices, most recent last.
    lru: Vec<Vec<u8>>,
    /// Per-(set,way) health: a disabled way holds a permanent fault site
    /// and is never filled again (indexed like `lines`). Survives
    /// [`DataCache::flush`] — mapped-out hardware stays mapped out.
    disabled: Vec<bool>,
    /// Number of `true` entries in `disabled`.
    disabled_count: u32,
}

impl DataCache {
    /// Creates an empty (all-invalid) cache storing parity signatures.
    pub fn new(geom: CacheGeometry) -> Self {
        DataCache::with_code(geom, WordCode::ParitySignature)
    }

    /// Creates an empty cache storing the given per-word check code.
    pub fn with_code(geom: CacheGeometry, code: WordCode) -> Self {
        let sets = geom.sets() as usize;
        let assoc = geom.assoc() as usize;
        DataCache {
            geom,
            code,
            lines: (0..sets * assoc)
                .map(|_| DataLine::new(geom.line_size()))
                .collect(),
            lru: (0..sets).map(|_| (0..assoc as u8).collect()).collect(),
            disabled: vec![false; sets * assoc],
            disabled_count: 0,
        }
    }

    /// The per-word check code this cache stores.
    pub fn code(&self) -> WordCode {
        self.code
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn line_index(&self, set: u32, way: usize) -> usize {
        set as usize * self.geom.assoc() as usize + way
    }

    #[inline]
    fn touch(&mut self, set: u32, way: usize) {
        // Direct-mapped caches have no LRU state to maintain.
        if self.geom.assoc() == 1 {
            return;
        }
        let order = &mut self.lru[set as usize];
        if let Some(pos) = order.iter().position(|&w| w as usize == way) {
            let w = order.remove(pos);
            order.push(w);
        }
    }

    /// Looks up `addr`, returning a hit way, the LRU victim way among
    /// the still-enabled ways, or [`Lookup::Bypass`] when the whole set
    /// is disabled.
    pub(crate) fn lookup(&self, addr: u32) -> Lookup {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for way in 0..self.geom.assoc() as usize {
            let line = &self.lines[self.line_index(set, way)];
            if line.valid && line.tag == tag {
                return Lookup::Hit(way);
            }
        }
        // Prefer an invalid enabled way, else the LRU enabled way. With
        // no disabled ways this reduces exactly to the historical
        // invalid-then-`lru[set][0]` choice.
        for way in 0..self.geom.assoc() as usize {
            let idx = self.line_index(set, way);
            if !self.lines[idx].valid && !self.disabled[idx] {
                return Lookup::Miss(way);
            }
        }
        for &way in &self.lru[set as usize] {
            if !self.disabled[self.line_index(set, way as usize)] {
                return Lookup::Miss(way as usize);
            }
        }
        Lookup::Bypass
    }

    /// Whether `addr`'s line is resident.
    pub fn contains(&self, addr: u32) -> bool {
        matches!(self.lookup(addr), Lookup::Hit(_))
    }

    /// Installs a line fetched from the next level, evicting the victim.
    ///
    /// Returns the evicted line's `(base_addr, data)` if it was dirty.
    pub(crate) fn fill(&mut self, addr: u32, way: usize, data: &[u8]) -> Option<(u32, Vec<u8>)> {
        assert_eq!(data.len() as u32, self.geom.line_size());
        let set = self.geom.set_of(addr);
        let idx = self.line_index(set, way);
        debug_assert!(!self.disabled[idx], "refill into a disabled way");
        let evicted = {
            let line = &self.lines[idx];
            if line.valid && line.dirty {
                let base = (line.tag * self.geom.sets() + set) * self.geom.line_size();
                Some((base, line.data.to_vec()))
            } else {
                None
            }
        };
        let line = &mut self.lines[idx];
        line.tag = self.geom.tag_of(addr);
        line.valid = true;
        line.dirty = false;
        // A refill's codes are by construction consistent with its data
        // (even a corrupted refill arrives before encoding), so defer
        // encoding until a checking access actually needs them.
        line.suspect = false;
        line.codes_valid = false;
        line.data.copy_from_slice(data);
        self.touch(set, way);
        evicted
    }

    /// Locates `addr` for the fast path: `Some((set, way))` on a hit,
    /// `None` on a miss. Leaves LRU state untouched — the commit
    /// methods below touch it, so a probe that falls back to the slow
    /// path costs nothing.
    #[inline]
    pub(crate) fn fast_locate(&self, addr: u32) -> Option<(u32, usize)> {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        let base = set as usize * self.geom.assoc() as usize;
        for way in 0..self.geom.assoc() as usize {
            let line = &self.lines[base + way];
            if line.valid && line.tag == tag {
                return Some((set, way));
            }
        }
        None
    }

    /// Whether the located line may hold a word whose stored check code
    /// disagrees with its data (see `DataLine::suspect`).
    #[inline]
    pub(crate) fn is_suspect(&self, set: u32, way: usize) -> bool {
        self.lines[self.line_index(set, way)].suspect
    }

    /// Fast-path read of the word containing `addr` from a located line:
    /// touches LRU and returns the stored word without materializing or
    /// consulting check codes.
    #[inline]
    pub(crate) fn fast_read_commit(&mut self, set: u32, way: usize, addr: u32) -> u32 {
        self.touch(set, way);
        let line = &self.lines[self.line_index(set, way)];
        debug_assert!(line.valid && line.tag == self.geom.tag_of(addr));
        let off = self.geom.offset_of(addr) as usize;
        let b = &line.data[off..off + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Fast-path write of `value` into a located line: touches LRU,
    /// stores the word, keeps any materialized code consistent and marks
    /// the line dirty. Equivalent to `write_word(addr, way, v, v)`.
    #[inline]
    pub(crate) fn fast_write_commit(&mut self, set: u32, way: usize, addr: u32, value: u32) {
        self.touch(set, way);
        let code = self.code;
        let idx = self.line_index(set, way);
        let line = &mut self.lines[idx];
        debug_assert!(line.valid && line.tag == self.geom.tag_of(addr));
        let off = self.geom.offset_of(addr) as usize;
        line.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
        if line.codes_valid {
            line.parity[off / 4] = code.encode(value);
        }
        line.dirty = true;
    }

    /// Opens a located line for a batched fast-path commit: touches LRU
    /// once — repeated touches of the same way are idempotent, so one
    /// touch produces exactly the state per-access commits would have —
    /// and returns a handle for raw word reads and writes against the
    /// line.
    #[inline]
    pub(crate) fn fast_group(&mut self, set: u32, way: usize) -> FastLine<'_> {
        self.touch(set, way);
        let code = self.code;
        let offset_mask = self.geom.line_size() - 1;
        let idx = self.line_index(set, way);
        FastLine {
            line: &mut self.lines[idx],
            code,
            offset_mask,
        }
    }

    /// Reads the stored (possibly corrupted) word containing `addr`,
    /// with its stored check code. `addr` must be word-aligned and
    /// resident in `way`.
    pub(crate) fn read_word(&mut self, addr: u32, way: usize) -> (u32, u8) {
        let set = self.geom.set_of(addr);
        self.touch(set, way);
        let code = self.code;
        let idx = self.line_index(set, way);
        let line = &mut self.lines[idx];
        debug_assert!(line.valid && line.tag == self.geom.tag_of(addr));
        line.materialize_codes(code);
        let off = self.geom.offset_of(addr) as usize;
        let b = &line.data[off..off + 4];
        (
            u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            line.parity[off / 4],
        )
    }

    /// Stores `stored` into the word containing `addr` while recording
    /// the check code of `intended` (they differ when a write fault
    /// corrupts the store), marking the line dirty.
    pub(crate) fn write_word(&mut self, addr: u32, way: usize, stored: u32, intended: u32) {
        let set = self.geom.set_of(addr);
        self.touch(set, way);
        let code = self.code;
        let idx = self.line_index(set, way);
        let line = &mut self.lines[idx];
        debug_assert!(line.valid && line.tag == self.geom.tag_of(addr));
        let off = self.geom.offset_of(addr) as usize;
        if stored == intended {
            // Clean store: if codes are still lazy they stay lazy (a
            // later materialization from the data gives the same code).
            line.data[off..off + 4].copy_from_slice(&stored.to_le_bytes());
            if line.codes_valid {
                line.parity[off / 4] = code.encode(intended);
            }
        } else {
            // Corrupted store: the code of the *intended* word must be
            // recorded, so the other words' codes have to be pinned from
            // their current data first.
            line.materialize_codes(code);
            line.data[off..off + 4].copy_from_slice(&stored.to_le_bytes());
            line.parity[off / 4] = code.encode(intended);
            line.suspect = true;
        }
        line.dirty = true;
    }

    /// Invalidates the line containing `addr` *without* writing it back
    /// (the strike policies assume an invalidated line is corrupt).
    ///
    /// Returns whether a valid line was dropped.
    pub fn invalidate(&mut self, addr: u32) -> bool {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for way in 0..self.geom.assoc() as usize {
            let idx = self.line_index(set, way);
            let line = &mut self.lines[idx];
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                line.suspect = false;
                return true;
            }
        }
        false
    }

    /// Invalidates like [`DataCache::invalidate`] but reports whether
    /// the dropped line was *dirty* (a potential lost update).
    pub(crate) fn invalidate_dirty(&mut self, addr: u32) -> bool {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for way in 0..self.geom.assoc() as usize {
            let idx = self.line_index(set, way);
            let line = &mut self.lines[idx];
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                line.valid = false;
                line.dirty = false;
                line.suspect = false;
                return was_dirty;
            }
        }
        false
    }

    /// XORs `mask` into the stored tag of the line the lookup of `addr`
    /// lands on — the hit line, or the (valid) victim line on a miss.
    /// Models a fault in the tag array consulted by the lookup: the
    /// corrupted line keeps its data (and dirty state) but now answers
    /// to the aliased address, so the true address false-misses and the
    /// alias false-hits stale data.
    ///
    /// Returns whether a valid line's tag was corrupted.
    pub(crate) fn corrupt_tag(&mut self, addr: u32, mask: u32) -> bool {
        if mask == 0 {
            return false;
        }
        let way = match self.lookup(addr) {
            Lookup::Hit(way) | Lookup::Miss(way) => way,
            // A fully-disabled set holds no valid line to alias.
            Lookup::Bypass => return false,
        };
        let set = self.geom.set_of(addr);
        let idx = self.line_index(set, way);
        let line = &mut self.lines[idx];
        if !line.valid {
            return false;
        }
        line.tag ^= mask;
        true
    }

    /// Host write: if the word is resident, overwrite data and check
    /// code (intended == stored) without touching LRU or dirty state.
    /// Returns whether the word was resident.
    pub(crate) fn poke_word(&mut self, addr: u32, value: u32) -> bool {
        match self.lookup(addr) {
            Lookup::Hit(way) => {
                let set = self.geom.set_of(addr);
                let code = self.code;
                let idx = self.line_index(set, way);
                let line = &mut self.lines[idx];
                let off = self.geom.offset_of(addr) as usize;
                line.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
                if line.codes_valid {
                    line.parity[off / 4] = code.encode(value);
                }
                true
            }
            Lookup::Miss(_) | Lookup::Bypass => false,
        }
    }

    /// Host write of `bytes` starting at word-aligned `addr` into any
    /// resident lines — the line-granular form of [`DataCache::poke_word`]
    /// used by packet DMA. One lookup per covered line instead of one
    /// per word; data (and materialized codes) are updated, LRU and
    /// dirty state are untouched. `bytes.len()` must be a multiple of 4.
    pub(crate) fn poke_range(&mut self, addr: u32, bytes: &[u8]) {
        debug_assert!(addr.is_multiple_of(4) && bytes.len().is_multiple_of(4));
        let line_size = self.geom.line_size();
        let code = self.code;
        let end = addr + bytes.len() as u32;
        let mut cur = addr;
        while cur < end {
            let chunk_end = (self.geom.line_base(cur) + line_size).min(end);
            if let Lookup::Hit(way) = self.lookup(cur) {
                let set = self.geom.set_of(cur);
                let idx = self.line_index(set, way);
                let line = &mut self.lines[idx];
                let off = self.geom.offset_of(cur) as usize;
                let n = (chunk_end - cur) as usize;
                let src = (cur - addr) as usize;
                line.data[off..off + n].copy_from_slice(&bytes[src..src + n]);
                if line.codes_valid {
                    for w in (off / 4)..((off + n) / 4) {
                        let b = &line.data[w * 4..w * 4 + 4];
                        line.parity[w] = code.encode(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
                    }
                }
            }
            cur = chunk_end;
        }
    }

    /// Reads a resident word *without* updating LRU or requiring a way —
    /// for host (debug) access. Returns `None` if not resident.
    pub(crate) fn peek_word(&self, addr: u32) -> Option<u32> {
        match self.lookup(addr) {
            Lookup::Hit(way) => {
                let set = self.geom.set_of(addr);
                let idx = set as usize * self.geom.assoc() as usize + way;
                let line = &self.lines[idx];
                let off = self.geom.offset_of(addr) as usize;
                let b = &line.data[off..off + 4];
                Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            Lookup::Miss(_) | Lookup::Bypass => None,
        }
    }

    /// Drops every line (used between runs).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
            line.suspect = false;
        }
    }

    /// Cleans every dirty line, returning `(base_addr, data)` pairs to
    /// write back. Lines stay valid.
    pub(crate) fn drain_dirty(&mut self) -> Vec<(u32, Vec<u8>)> {
        let mut out = Vec::new();
        let sets = self.geom.sets();
        for set in 0..sets {
            for way in 0..self.geom.assoc() as usize {
                let idx = self.line_index(set, way);
                let line = &mut self.lines[idx];
                if line.valid && line.dirty {
                    let base = (line.tag * sets + set) * self.geom.line_size();
                    out.push((base, line.data.to_vec()));
                    line.dirty = false;
                }
            }
        }
        out
    }

    /// Maps out way `way` of set `set`: the slot is invalidated and
    /// never filled again ([`DataCache::lookup`] skips it; a set with
    /// every way mapped out answers [`Lookup::Bypass`]). Idempotent.
    ///
    /// Returns the slot's `(base_addr, data)` if it held a valid dirty
    /// line, so the caller can salvage the contents through its
    /// writeback path before the storage is abandoned.
    ///
    /// # Panics
    ///
    /// Panics if `set` or `way` is out of range.
    pub fn disable_way(&mut self, set: u32, way: usize) -> Option<(u32, Vec<u8>)> {
        assert!(set < self.geom.sets(), "set {set} out of range");
        assert!(way < self.geom.assoc() as usize, "way {way} out of range");
        let idx = self.line_index(set, way);
        if self.disabled[idx] {
            return None;
        }
        self.disabled[idx] = true;
        self.disabled_count += 1;
        let line = &mut self.lines[idx];
        let salvage = if line.valid && line.dirty {
            let base = (line.tag * self.geom.sets() + set) * self.geom.line_size();
            Some((base, line.data.to_vec()))
        } else {
            None
        };
        line.valid = false;
        line.dirty = false;
        line.suspect = false;
        salvage
    }

    /// Whether way `way` of set `set` has been mapped out.
    pub fn way_disabled(&self, set: u32, way: usize) -> bool {
        self.disabled[self.line_index(set, way)]
    }

    /// Number of mapped-out ways in set `set`.
    pub fn disabled_ways_in_set(&self, set: u32) -> u32 {
        (0..self.geom.assoc() as usize)
            .filter(|&w| self.disabled[self.line_index(set, w)])
            .count() as u32
    }

    /// Whether every way of set `set` is mapped out (accesses to the set
    /// bypass the L1 entirely).
    pub fn set_fully_disabled(&self, set: u32) -> bool {
        self.disabled_ways_in_set(set) == self.geom.assoc()
    }

    /// Total mapped-out ways across all sets.
    pub fn disabled_way_count(&self) -> u32 {
        self.disabled_count
    }

    /// Per-set disabled-way counts — the degradation map consumed by
    /// [`crate::degradation`].
    pub fn disabled_map(&self) -> Vec<u32> {
        (0..self.geom.sets())
            .map(|set| self.disabled_ways_in_set(set))
            .collect()
    }
}

/// Even parity of a 32-bit word: `true` if the popcount is odd.
/// (The specification function for [`parity_signature`]; production
/// code derives word parity from the signature.)
#[cfg(test)]
pub(crate) fn word_parity(word: u32) -> bool {
    word.count_ones() % 2 == 1
}

/// Per-byte parity signature of a word: bit `i` is the even parity of
/// byte `i`. The word parity is the XOR of the four bits.
pub(crate) fn parity_signature(word: u32) -> u8 {
    let mut sig = 0u8;
    for i in 0..4 {
        let byte = (word >> (8 * i)) as u8;
        sig |= u8::from(byte.count_ones() % 2 == 1) << i;
    }
    sig
}

/// Word parity derived from a per-byte signature.
pub(crate) fn word_parity_of_signature(sig: u8) -> bool {
    (sig & 0xF).count_ones() % 2 == 1
}

/// A tag-only set-associative cache used for level-2 timing.
///
/// The L2's data contents live in the [`BackingStore`](crate::BackingStore)
/// (correct by default; fallible when the opt-in
/// [`FaultTargets::l2`](crate::FaultTargets) process corrupts words in
/// flight); this array only answers hit/miss for latency and energy
/// accounting.
#[derive(Debug, Clone)]
pub struct TagCache {
    geom: CacheGeometry,
    tags: Vec<(u32, bool)>,
    lru: Vec<Vec<u8>>,
}

impl TagCache {
    /// Creates an empty tag array.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets() as usize;
        let assoc = geom.assoc() as usize;
        TagCache {
            geom,
            tags: vec![(0, false); sets * assoc],
            lru: (0..sets).map(|_| (0..assoc as u8).collect()).collect(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accesses `addr`: returns `true` on hit; on miss, allocates the
    /// line (evicting LRU).
    pub fn access(&mut self, addr: u32) -> bool {
        let set = self.geom.set_of(addr) as usize;
        let tag = self.geom.tag_of(addr);
        let assoc = self.geom.assoc() as usize;
        for way in 0..assoc {
            let (t, valid) = self.tags[set * assoc + way];
            if valid && t == tag {
                let order = &mut self.lru[set];
                let pos = order.iter().position(|&w| w as usize == way).unwrap();
                let w = order.remove(pos);
                order.push(w);
                return true;
            }
        }
        // Miss: fill the LRU (or first invalid) way.
        let victim = (0..assoc)
            .find(|&w| !self.tags[set * assoc + w].1)
            .unwrap_or(self.lru[set][0] as usize);
        self.tags[set * assoc + victim] = (tag, true);
        let order = &mut self.lru[set];
        let pos = order.iter().position(|&w| w as usize == victim).unwrap();
        let w = order.remove(pos);
        order.push(w);
        false
    }

    /// Drops every line.
    pub fn flush(&mut self) {
        for t in &mut self.tags {
            t.1 = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheGeometry {
        CacheGeometry::new(4 * 1024, 32, 1)
    }

    #[test]
    fn geometry_of_paper_caches() {
        let g = l1();
        assert_eq!(g.sets(), 128);
        assert_eq!(g.line_size(), 32);
        let l2 = CacheGeometry::new(128 * 1024, 128, 4);
        assert_eq!(l2.sets(), 256);
    }

    #[test]
    fn geometry_index_math() {
        let g = l1();
        let addr = 0x0001_2345;
        assert_eq!(g.line_base(addr), addr & !31);
        assert_eq!(g.offset_of(addr), addr & 31);
        assert_eq!(g.set_of(addr), (addr / 32) % 128);
        assert_eq!(g.tag_of(addr), addr / 32 / 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two() {
        CacheGeometry::new(3000, 32, 1);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = DataCache::new(l1());
        assert!(matches!(c.lookup(0x100), Lookup::Miss(_)));
        c.fill(0x100, 0, &[0xAB; 32]);
        assert!(matches!(c.lookup(0x100), Lookup::Hit(0)));
        assert!(c.contains(0x11F)); // same line
        assert!(!c.contains(0x120)); // next line
    }

    #[test]
    fn word_read_back_and_parity() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x104, 0, 0x7, 0x7);
        let (v, sig) = c.read_word(0x104, 0);
        assert_eq!(v, 0x7);
        assert_eq!(sig, parity_signature(0x7));
        assert!(word_parity_of_signature(sig)); // 3 ones = odd
    }

    #[test]
    fn corrupted_store_mismatches_parity() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        // Intended 0x7 but a single-bit fault stored 0x5.
        c.write_word(0x104, 0, 0x5, 0x7);
        let (v, stored_sig) = c.read_word(0x104, 0);
        assert_eq!(v, 0x5);
        assert_ne!(
            word_parity(v),
            word_parity_of_signature(stored_sig),
            "parity must flag this"
        );
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = DataCache::new(l1());
        // Two addresses 4 KB apart map to the same set in a 4 KB DM cache.
        c.fill(0x100, 0, &[1; 32]);
        let Lookup::Miss(way) = c.lookup(0x100 + 4096) else {
            panic!("expected conflict miss");
        };
        c.fill(0x100 + 4096, way, &[2; 32]);
        assert!(!c.contains(0x100));
        assert!(c.contains(0x100 + 4096));
    }

    #[test]
    fn dirty_eviction_returns_data() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x100, 0, 42, 42);
        let Lookup::Miss(way) = c.lookup(0x100 + 4096) else {
            panic!()
        };
        let evicted = c.fill(0x100 + 4096, way, &[0; 32]);
        let (base, data) = evicted.expect("dirty line must be written back");
        assert_eq!(base, 0x100);
        assert_eq!(u32::from_le_bytes(data[0..4].try_into().unwrap()), 42);
    }

    #[test]
    fn clean_eviction_returns_none() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        let Lookup::Miss(way) = c.lookup(0x100 + 4096) else {
            panic!()
        };
        assert!(c.fill(0x100 + 4096, way, &[0; 32]).is_none());
    }

    #[test]
    fn invalidate_drops_line_without_writeback() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x100, 0, 99, 99);
        assert!(c.invalidate(0x100));
        assert!(!c.contains(0x100));
        assert!(!c.invalidate(0x100), "second invalidate is a no-op");
    }

    #[test]
    fn corrupt_tag_aliases_a_resident_line() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[7; 32]);
        // Flip tag bit 0: the line now answers to 0x100 + 4 KB.
        assert!(c.corrupt_tag(0x100, 1));
        assert!(!c.contains(0x100), "true address must false-miss");
        assert!(c.contains(0x100 + 4096), "alias must false-hit");
        // A second corruption through the alias flips it back.
        assert!(c.corrupt_tag(0x100 + 4096, 1));
        assert!(c.contains(0x100));
    }

    #[test]
    fn corrupt_tag_ignores_invalid_lines_and_zero_masks() {
        let mut c = DataCache::new(l1());
        assert!(!c.corrupt_tag(0x100, 1), "empty cache: nothing to corrupt");
        c.fill(0x100, 0, &[0; 32]);
        assert!(!c.corrupt_tag(0x100, 0), "zero mask is a no-op");
        assert!(c.contains(0x100));
    }

    #[test]
    fn peek_does_not_disturb_state() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[7; 32]);
        assert_eq!(c.peek_word(0x100), Some(u32::from_le_bytes([7; 4])));
        assert_eq!(c.peek_word(0x2000), None);
    }

    #[test]
    fn lru_in_set_associative_cache() {
        let g = CacheGeometry::new(1024, 32, 2); // 16 sets, 2 ways
        let mut c = DataCache::new(g);
        let a = 0x0; // set 0
        let b = 16 * 32; // set 0, different tag
        let d = 2 * 16 * 32; // set 0, third tag
        let Lookup::Miss(w) = c.lookup(a) else {
            panic!()
        };
        c.fill(a, w, &[0; 32]);
        let Lookup::Miss(w) = c.lookup(b) else {
            panic!()
        };
        c.fill(b, w, &[0; 32]);
        // Touch `a` so `b` becomes LRU.
        let Lookup::Hit(w) = c.lookup(a) else {
            panic!()
        };
        c.read_word(a, w);
        let Lookup::Miss(w) = c.lookup(d) else {
            panic!()
        };
        c.fill(d, w, &[0; 32]);
        assert!(c.contains(a), "recently used line must survive");
        assert!(!c.contains(b), "LRU line must be evicted");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.flush();
        assert!(!c.contains(0x100));
    }

    #[test]
    fn word_parity_is_even_parity() {
        assert!(!word_parity(0));
        assert!(word_parity(1));
        assert!(!word_parity(3));
        assert!(word_parity(7));
        assert!(!word_parity(u32::MAX));
    }

    #[test]
    fn secded_coded_cache_stores_secded_signatures() {
        let mut c = DataCache::with_code(l1(), WordCode::Secded);
        assert_eq!(c.code(), WordCode::Secded);
        c.fill(0x100, 0, &[0xAB; 32]);
        let word = u32::from_le_bytes([0xAB; 4]);
        let (v, sig) = c.read_word(0x100, 0);
        assert_eq!(v, word);
        assert_eq!(sig, crate::secded::secded_encode(word));
        c.write_word(0x104, 0, 0x7, 0x7);
        let (_, sig) = c.read_word(0x104, 0);
        assert_eq!(sig, crate::secded::secded_encode(0x7));
        assert!(c.poke_word(0x108, 0xDEAD_BEEF));
        let (_, sig) = c.read_word(0x108, 0);
        assert_eq!(sig, crate::secded::secded_encode(0xDEAD_BEEF));
    }

    #[test]
    fn parity_signature_tracks_bytes() {
        assert_eq!(parity_signature(0), 0);
        assert_eq!(parity_signature(0x0000_0001), 0b0001);
        assert_eq!(parity_signature(0x0100_0000), 0b1000);
        assert_eq!(parity_signature(0x0101_0101), 0b1111);
        // Word parity is the XOR of byte parities.
        for w in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x8000_0001] {
            assert_eq!(
                word_parity(w),
                word_parity_of_signature(parity_signature(w))
            );
        }
    }

    #[test]
    fn encode_line_matches_per_word_encode() {
        let mut data = [0u8; 32];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(37).wrapping_add(101) ^ ((i as u8) << 3);
        }
        for code in [WordCode::ParitySignature, WordCode::Secded] {
            let mut out = [0u8; 8];
            encode_line(code, &data, &mut out);
            for (w, chunk) in data.chunks_exact(4).enumerate() {
                let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                assert_eq!(out[w], code.encode(word), "word {w} under {code:?}");
            }
        }
        // The 4-byte tail path (minimum line size).
        let mut out = [0u8; 1];
        encode_line(WordCode::ParitySignature, &data[..4], &mut out);
        let word = u32::from_le_bytes([data[0], data[1], data[2], data[3]]);
        assert_eq!(out[0], parity_signature(word));
    }

    #[test]
    fn suspect_flag_tracks_corrupted_stores() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        let (set, way) = c.fast_locate(0x100).expect("resident");
        assert!(!c.is_suspect(set, way));
        // A clean store keeps the line trustworthy.
        c.write_word(0x104, 0, 0x7, 0x7);
        assert!(!c.is_suspect(set, way));
        // A corrupted store (stored != intended) taints it, and the
        // recorded mismatch survives later reads.
        c.write_word(0x104, 0, 0x5, 0x7);
        assert!(c.is_suspect(set, way));
        let (v, sig) = c.read_word(0x104, 0);
        assert_eq!((v, sig), (0x5, parity_signature(0x7)));
        // A refill restores trust.
        c.fill(0x100, 0, &[0; 32]);
        assert!(!c.is_suspect(set, way));
    }

    #[test]
    fn fast_path_accessors_match_slow_accessors() {
        let mut c = DataCache::new(l1());
        assert!(c.fast_locate(0x100).is_none(), "miss before fill");
        c.fill(0x100, 0, &[0x21; 32]);
        let (set, way) = c.fast_locate(0x104).expect("hit after fill");
        assert_eq!(
            c.fast_read_commit(set, way, 0x104),
            u32::from_le_bytes([0x21; 4])
        );
        c.fast_write_commit(set, way, 0x104, 0xABCD_1234);
        let (v, sig) = c.read_word(0x104, way);
        assert_eq!(v, 0xABCD_1234);
        assert_eq!(sig, parity_signature(0xABCD_1234));
    }

    #[test]
    fn fast_write_keeps_materialized_codes_consistent() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        // Materialize codes via a checked read, then fast-write.
        let _ = c.read_word(0x100, 0);
        let (set, way) = c.fast_locate(0x108).unwrap();
        c.fast_write_commit(set, way, 0x108, 0xFEED_F00D);
        let (v, sig) = c.read_word(0x108, 0);
        assert_eq!(v, 0xFEED_F00D);
        assert_eq!(sig, parity_signature(0xFEED_F00D));
    }

    #[test]
    fn poke_range_matches_word_pokes() {
        let bytes: Vec<u8> = (0..96u32).map(|i| (i * 13 + 7) as u8).collect();
        // Two caches: one poked per word, one per range; only one of the
        // three covered lines is resident.
        let mut per_word = DataCache::new(l1());
        let mut ranged = DataCache::new(l1());
        for c in [&mut per_word, &mut ranged] {
            c.fill(0x120, 0, &[0xEE; 32]);
        }
        for (i, chunk) in bytes.chunks_exact(4).enumerate() {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            per_word.poke_word(0x100 + 4 * i as u32, word);
        }
        ranged.poke_range(0x100, &bytes);
        for addr in (0x120..0x140).step_by(4) {
            assert_eq!(
                per_word.peek_word(addr),
                ranged.peek_word(addr),
                "{addr:#x}"
            );
            let (a, b) = (per_word.read_word(addr, 0), ranged.read_word(addr, 0));
            assert_eq!(a, b, "{addr:#x}");
        }
    }

    #[test]
    fn tag_cache_hits_after_fill() {
        let mut t = TagCache::new(CacheGeometry::new(128 * 1024, 128, 4));
        assert!(!t.access(0x4000));
        assert!(t.access(0x4000));
        assert!(t.access(0x4010)); // same 128-byte line
    }

    #[test]
    fn tag_cache_lru_eviction() {
        let g = CacheGeometry::new(512, 64, 2); // 4 sets, 2 ways
        let mut t = TagCache::new(g);
        let stride = g.sets() * g.line_size(); // same-set stride
        assert!(!t.access(0));
        assert!(!t.access(stride));
        assert!(t.access(0)); // touch 0: stride becomes LRU
        assert!(!t.access(2 * stride)); // evicts `stride`
        assert!(t.access(0));
        assert!(!t.access(stride), "evicted line must miss");
    }

    #[test]
    fn tag_cache_flush() {
        let mut t = TagCache::new(CacheGeometry::new(128 * 1024, 128, 4));
        t.access(0x4000);
        t.flush();
        assert!(!t.access(0x4000));
    }

    #[test]
    fn try_new_names_each_violated_constraint() {
        assert_eq!(
            CacheGeometry::try_new(3000, 32, 1),
            Err(GeometryError::SizeNotPowerOfTwo { size: 3000 })
        );
        assert_eq!(
            CacheGeometry::try_new(4096, 3, 1),
            Err(GeometryError::BadLineSize { line: 3 })
        );
        assert_eq!(
            CacheGeometry::try_new(4096, 2, 1),
            Err(GeometryError::BadLineSize { line: 2 })
        );
        assert_eq!(
            CacheGeometry::try_new(4096, 32, 0),
            Err(GeometryError::ZeroAssociativity)
        );
        assert_eq!(
            CacheGeometry::try_new(64, 32, 4),
            Err(GeometryError::TooSmallForOneSet { lines: 2, assoc: 4 })
        );
        assert_eq!(
            CacheGeometry::try_new(1024, 32, 12),
            Err(GeometryError::SetsNotPowerOfTwo {
                lines: 32,
                assoc: 12
            })
        );
        // The Ok path matches the panicking constructor bit for bit.
        assert_eq!(
            CacheGeometry::try_new(4 * 1024, 32, 1).unwrap(),
            CacheGeometry::new(4 * 1024, 32, 1)
        );
    }

    #[test]
    fn disable_way_skips_victim_selection() {
        let g = CacheGeometry::new(1024, 32, 2); // 16 sets, 2 ways
        let mut c = DataCache::new(g);
        let set = g.set_of(0x0);
        assert_eq!(c.disable_way(set, 0), None, "empty slot: nothing dirty");
        assert!(c.way_disabled(set, 0));
        assert_eq!(c.disabled_ways_in_set(set), 1);
        assert!(!c.set_fully_disabled(set));
        // Fills to this set must now land in way 1 only.
        let Lookup::Miss(w) = c.lookup(0x0) else {
            panic!("expected a miss")
        };
        assert_eq!(w, 1, "victim selection must skip the disabled way");
        c.fill(0x0, w, &[0xAA; 32]);
        let stride = g.sets() * g.line_size();
        let Lookup::Miss(w) = c.lookup(stride) else {
            panic!("expected a conflict miss")
        };
        assert_eq!(w, 1, "LRU fallback must also skip the disabled way");
    }

    #[test]
    fn disable_way_salvages_dirty_data_and_is_idempotent() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x104, 0, 0xFACE, 0xFACE);
        let (base, data) = c.disable_way(c.geometry().set_of(0x100), 0).unwrap();
        assert_eq!(base, 0x100);
        assert_eq!(u32::from_le_bytes(data[4..8].try_into().unwrap()), 0xFACE);
        assert!(!c.contains(0x100), "the mapped-out slot is invalidated");
        assert_eq!(
            c.disable_way(c.geometry().set_of(0x100), 0),
            None,
            "second disable is a no-op"
        );
        assert_eq!(c.disabled_way_count(), 1);
    }

    #[test]
    fn fully_disabled_set_answers_bypass() {
        let mut c = DataCache::new(l1()); // direct-mapped: one way per set
        let set = c.geometry().set_of(0x100);
        c.disable_way(set, 0);
        assert!(c.set_fully_disabled(set));
        assert_eq!(c.lookup(0x100), Lookup::Bypass);
        assert!(!c.contains(0x100));
        assert_eq!(c.peek_word(0x100), None);
        assert!(!c.poke_word(0x100, 1));
        assert!(!c.corrupt_tag(0x100, 1));
        // Other sets are untouched.
        assert!(matches!(c.lookup(0x100 + 32), Lookup::Miss(_)));
        assert_eq!(c.disabled_map()[set as usize], 1);
    }

    #[test]
    fn disabled_ways_survive_flush() {
        let mut c = DataCache::new(l1());
        let set = c.geometry().set_of(0x100);
        c.disable_way(set, 0);
        c.flush();
        assert!(
            c.way_disabled(set, 0),
            "mapped-out hardware stays mapped out"
        );
        assert_eq!(c.lookup(0x100), Lookup::Bypass);
    }
}
