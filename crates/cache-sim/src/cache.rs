//! Cache arrays: geometry, the data-holding L1, and the tag-only L2.

use std::fmt;

/// Size/shape of a cache: total bytes, line bytes, associativity.
///
/// # Examples
///
/// ```
/// use cache_sim::CacheGeometry;
///
/// // The paper's level-1 data cache: 4 KB direct-mapped, 32-byte lines.
/// let l1 = CacheGeometry::new(4 * 1024, 32, 1);
/// assert_eq!(l1.sets(), 128);
/// // The level-2: 128 KB 4-way, 128-byte lines.
/// let l2 = CacheGeometry::new(128 * 1024, 128, 4);
/// assert_eq!(l2.sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size: u32,
    line: u32,
    assoc: u32,
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `size`, `line` and the implied set count are powers
    /// of two, `line ≥ 4`, and `assoc ≥ 1` divides the line count.
    pub fn new(size: u32, line: u32, assoc: u32) -> Self {
        assert!(size.is_power_of_two(), "cache size must be a power of two");
        assert!(
            line.is_power_of_two() && line >= 4,
            "line size must be a power of two >= 4"
        );
        assert!(assoc >= 1, "associativity must be at least 1");
        let lines = size / line;
        assert!(lines >= assoc, "cache must hold at least one set");
        assert!(
            lines.is_multiple_of(assoc) && (lines / assoc).is_power_of_two(),
            "set count must be a power of two"
        );
        CacheGeometry { size, line, assoc }
    }

    /// Total capacity in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> u32 {
        self.line
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.size / self.line / self.assoc
    }

    /// Set index of `addr`.
    pub fn set_of(&self, addr: u32) -> u32 {
        (addr / self.line) & (self.sets() - 1)
    }

    /// Tag of `addr`.
    pub fn tag_of(&self, addr: u32) -> u32 {
        addr / self.line / self.sets()
    }

    /// First address of the line containing `addr`.
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.line - 1)
    }

    /// Offset of `addr` within its line.
    pub fn offset_of(&self, addr: u32) -> u32 {
        addr & (self.line - 1)
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB, {}-way, {}-byte lines",
            self.size / 1024,
            self.assoc,
            self.line
        )
    }
}

/// Which per-word check code the data cache stores alongside each word.
///
/// One byte per word is reserved either way, so switching codes changes
/// no array layout: the parity signature uses 4 of its bits, the SECDED
/// code 7 (see [`crate::secded`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WordCode {
    /// Per-byte parity signature; bit `i` is the even parity of byte
    /// `i`, and word parity is the XOR of the four bits, so both parity
    /// detection granularities share this encoding.
    #[default]
    ParitySignature,
    /// SECDED (39,32) extended-Hamming code
    /// ([`secded_encode`](crate::secded_encode)).
    Secded,
}

impl WordCode {
    /// Encodes the check byte for `word` under this code.
    pub fn encode(self, word: u32) -> u8 {
        match self {
            WordCode::ParitySignature => parity_signature(word),
            WordCode::Secded => crate::secded::secded_encode(word),
        }
    }
}

/// One line of the data-holding L1 cache.
#[derive(Debug, Clone)]
struct DataLine {
    tag: u32,
    valid: bool,
    dirty: bool,
    data: Box<[u8]>,
    /// Per-word check code computed from the *intended* data (so a
    /// corrupted store is detectable later) under the cache's
    /// [`WordCode`].
    parity: Box<[u8]>,
}

impl DataLine {
    fn new(line_size: u32) -> Self {
        DataLine {
            tag: 0,
            valid: false,
            dirty: false,
            data: vec![0; line_size as usize].into_boxed_slice(),
            parity: vec![0; (line_size / 4) as usize].into_boxed_slice(),
        }
    }
}

/// Outcome of an L1 lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lookup {
    /// The line is resident in the given way.
    Hit(usize),
    /// The line is absent; the given way is the victim for a refill.
    Miss(usize),
}

/// The level-1 data cache: tags, data and a per-word check code.
///
/// This is a plain storage array — fault injection, detection and
/// recovery live in [`MemSystem`](crate::MemSystem), which drives it.
#[derive(Debug, Clone)]
pub struct DataCache {
    geom: CacheGeometry,
    code: WordCode,
    lines: Vec<DataLine>,
    /// Per-set LRU order: `lru[set]` lists way indices, most recent last.
    lru: Vec<Vec<u8>>,
}

impl DataCache {
    /// Creates an empty (all-invalid) cache storing parity signatures.
    pub fn new(geom: CacheGeometry) -> Self {
        DataCache::with_code(geom, WordCode::ParitySignature)
    }

    /// Creates an empty cache storing the given per-word check code.
    pub fn with_code(geom: CacheGeometry, code: WordCode) -> Self {
        let sets = geom.sets() as usize;
        let assoc = geom.assoc() as usize;
        DataCache {
            geom,
            code,
            lines: (0..sets * assoc)
                .map(|_| DataLine::new(geom.line_size()))
                .collect(),
            lru: (0..sets).map(|_| (0..assoc as u8).collect()).collect(),
        }
    }

    /// The per-word check code this cache stores.
    pub fn code(&self) -> WordCode {
        self.code
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn line_index(&self, set: u32, way: usize) -> usize {
        set as usize * self.geom.assoc() as usize + way
    }

    fn touch(&mut self, set: u32, way: usize) {
        let order = &mut self.lru[set as usize];
        if let Some(pos) = order.iter().position(|&w| w as usize == way) {
            let w = order.remove(pos);
            order.push(w);
        }
    }

    /// Looks up `addr`, returning a hit way or the LRU victim way.
    pub(crate) fn lookup(&self, addr: u32) -> Lookup {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for way in 0..self.geom.assoc() as usize {
            let line = &self.lines[self.line_index(set, way)];
            if line.valid && line.tag == tag {
                return Lookup::Hit(way);
            }
        }
        // Prefer an invalid way, else the LRU way.
        for way in 0..self.geom.assoc() as usize {
            if !self.lines[self.line_index(set, way)].valid {
                return Lookup::Miss(way);
            }
        }
        Lookup::Miss(self.lru[set as usize][0] as usize)
    }

    /// Whether `addr`'s line is resident.
    pub fn contains(&self, addr: u32) -> bool {
        matches!(self.lookup(addr), Lookup::Hit(_))
    }

    /// Installs a line fetched from the next level, evicting the victim.
    ///
    /// Returns the evicted line's `(base_addr, data)` if it was dirty.
    pub(crate) fn fill(&mut self, addr: u32, way: usize, data: &[u8]) -> Option<(u32, Vec<u8>)> {
        assert_eq!(data.len() as u32, self.geom.line_size());
        let set = self.geom.set_of(addr);
        let idx = self.line_index(set, way);
        let evicted = {
            let line = &self.lines[idx];
            if line.valid && line.dirty {
                let base = (line.tag * self.geom.sets() + set) * self.geom.line_size();
                Some((base, line.data.to_vec()))
            } else {
                None
            }
        };
        let line = &mut self.lines[idx];
        line.tag = self.geom.tag_of(addr);
        line.valid = true;
        line.dirty = false;
        line.data.copy_from_slice(data);
        for w in 0..line.parity.len() {
            let b = &line.data[w * 4..w * 4 + 4];
            line.parity[w] = self
                .code
                .encode(u32::from_le_bytes([b[0], b[1], b[2], b[3]]));
        }
        self.touch(set, way);
        evicted
    }

    /// Reads the stored (possibly corrupted) word containing `addr`,
    /// with its stored check code. `addr` must be word-aligned and
    /// resident in `way`.
    pub(crate) fn read_word(&mut self, addr: u32, way: usize) -> (u32, u8) {
        let set = self.geom.set_of(addr);
        self.touch(set, way);
        let idx = self.line_index(set, way);
        let line = &self.lines[idx];
        debug_assert!(line.valid && line.tag == self.geom.tag_of(addr));
        let off = self.geom.offset_of(addr) as usize;
        let b = &line.data[off..off + 4];
        (
            u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            line.parity[off / 4],
        )
    }

    /// Stores `stored` into the word containing `addr` while recording
    /// the check code of `intended` (they differ when a write fault
    /// corrupts the store), marking the line dirty.
    pub(crate) fn write_word(&mut self, addr: u32, way: usize, stored: u32, intended: u32) {
        let set = self.geom.set_of(addr);
        self.touch(set, way);
        let idx = self.line_index(set, way);
        let line = &mut self.lines[idx];
        debug_assert!(line.valid && line.tag == self.geom.tag_of(addr));
        let off = self.geom.offset_of(addr) as usize;
        line.data[off..off + 4].copy_from_slice(&stored.to_le_bytes());
        line.parity[off / 4] = self.code.encode(intended);
        line.dirty = true;
    }

    /// Invalidates the line containing `addr` *without* writing it back
    /// (the strike policies assume an invalidated line is corrupt).
    ///
    /// Returns whether a valid line was dropped.
    pub fn invalidate(&mut self, addr: u32) -> bool {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for way in 0..self.geom.assoc() as usize {
            let idx = self.line_index(set, way);
            let line = &mut self.lines[idx];
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Invalidates like [`DataCache::invalidate`] but reports whether
    /// the dropped line was *dirty* (a potential lost update).
    pub(crate) fn invalidate_dirty(&mut self, addr: u32) -> bool {
        let set = self.geom.set_of(addr);
        let tag = self.geom.tag_of(addr);
        for way in 0..self.geom.assoc() as usize {
            let idx = self.line_index(set, way);
            let line = &mut self.lines[idx];
            if line.valid && line.tag == tag {
                let was_dirty = line.dirty;
                line.valid = false;
                line.dirty = false;
                return was_dirty;
            }
        }
        false
    }

    /// XORs `mask` into the stored tag of the line the lookup of `addr`
    /// lands on — the hit line, or the (valid) victim line on a miss.
    /// Models a fault in the tag array consulted by the lookup: the
    /// corrupted line keeps its data (and dirty state) but now answers
    /// to the aliased address, so the true address false-misses and the
    /// alias false-hits stale data.
    ///
    /// Returns whether a valid line's tag was corrupted.
    pub(crate) fn corrupt_tag(&mut self, addr: u32, mask: u32) -> bool {
        if mask == 0 {
            return false;
        }
        let way = match self.lookup(addr) {
            Lookup::Hit(way) | Lookup::Miss(way) => way,
        };
        let set = self.geom.set_of(addr);
        let idx = self.line_index(set, way);
        let line = &mut self.lines[idx];
        if !line.valid {
            return false;
        }
        line.tag ^= mask;
        true
    }

    /// Host write: if the word is resident, overwrite data and check
    /// code (intended == stored) without touching LRU or dirty state.
    /// Returns whether the word was resident.
    pub(crate) fn poke_word(&mut self, addr: u32, value: u32) -> bool {
        match self.lookup(addr) {
            Lookup::Hit(way) => {
                let set = self.geom.set_of(addr);
                let idx = self.line_index(set, way);
                let line = &mut self.lines[idx];
                let off = self.geom.offset_of(addr) as usize;
                line.data[off..off + 4].copy_from_slice(&value.to_le_bytes());
                let code = self.code;
                line.parity[off / 4] = code.encode(value);
                true
            }
            Lookup::Miss(_) => false,
        }
    }

    /// Reads a resident word *without* updating LRU or requiring a way —
    /// for host (debug) access. Returns `None` if not resident.
    pub(crate) fn peek_word(&self, addr: u32) -> Option<u32> {
        match self.lookup(addr) {
            Lookup::Hit(way) => {
                let set = self.geom.set_of(addr);
                let idx = set as usize * self.geom.assoc() as usize + way;
                let line = &self.lines[idx];
                let off = self.geom.offset_of(addr) as usize;
                let b = &line.data[off..off + 4];
                Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            Lookup::Miss(_) => None,
        }
    }

    /// Drops every line (used between runs).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
            line.dirty = false;
        }
    }

    /// Cleans every dirty line, returning `(base_addr, data)` pairs to
    /// write back. Lines stay valid.
    pub(crate) fn drain_dirty(&mut self) -> Vec<(u32, Vec<u8>)> {
        let mut out = Vec::new();
        let sets = self.geom.sets();
        for set in 0..sets {
            for way in 0..self.geom.assoc() as usize {
                let idx = self.line_index(set, way);
                let line = &mut self.lines[idx];
                if line.valid && line.dirty {
                    let base = (line.tag * sets + set) * self.geom.line_size();
                    out.push((base, line.data.to_vec()));
                    line.dirty = false;
                }
            }
        }
        out
    }
}

/// Even parity of a 32-bit word: `true` if the popcount is odd.
/// (The specification function for [`parity_signature`]; production
/// code derives word parity from the signature.)
#[cfg(test)]
pub(crate) fn word_parity(word: u32) -> bool {
    word.count_ones() % 2 == 1
}

/// Per-byte parity signature of a word: bit `i` is the even parity of
/// byte `i`. The word parity is the XOR of the four bits.
pub(crate) fn parity_signature(word: u32) -> u8 {
    let mut sig = 0u8;
    for i in 0..4 {
        let byte = (word >> (8 * i)) as u8;
        sig |= u8::from(byte.count_ones() % 2 == 1) << i;
    }
    sig
}

/// Word parity derived from a per-byte signature.
pub(crate) fn word_parity_of_signature(sig: u8) -> bool {
    (sig & 0xF).count_ones() % 2 == 1
}

/// A tag-only set-associative cache used for level-2 timing.
///
/// The L2's data contents live in the [`BackingStore`](crate::BackingStore)
/// (correct by default; fallible when the opt-in
/// [`FaultTargets::l2`](crate::FaultTargets) process corrupts words in
/// flight); this array only answers hit/miss for latency and energy
/// accounting.
#[derive(Debug, Clone)]
pub struct TagCache {
    geom: CacheGeometry,
    tags: Vec<(u32, bool)>,
    lru: Vec<Vec<u8>>,
}

impl TagCache {
    /// Creates an empty tag array.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets() as usize;
        let assoc = geom.assoc() as usize;
        TagCache {
            geom,
            tags: vec![(0, false); sets * assoc],
            lru: (0..sets).map(|_| (0..assoc as u8).collect()).collect(),
        }
    }

    /// The cache geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Accesses `addr`: returns `true` on hit; on miss, allocates the
    /// line (evicting LRU).
    pub fn access(&mut self, addr: u32) -> bool {
        let set = self.geom.set_of(addr) as usize;
        let tag = self.geom.tag_of(addr);
        let assoc = self.geom.assoc() as usize;
        for way in 0..assoc {
            let (t, valid) = self.tags[set * assoc + way];
            if valid && t == tag {
                let order = &mut self.lru[set];
                let pos = order.iter().position(|&w| w as usize == way).unwrap();
                let w = order.remove(pos);
                order.push(w);
                return true;
            }
        }
        // Miss: fill the LRU (or first invalid) way.
        let victim = (0..assoc)
            .find(|&w| !self.tags[set * assoc + w].1)
            .unwrap_or(self.lru[set][0] as usize);
        self.tags[set * assoc + victim] = (tag, true);
        let order = &mut self.lru[set];
        let pos = order.iter().position(|&w| w as usize == victim).unwrap();
        let w = order.remove(pos);
        order.push(w);
        false
    }

    /// Drops every line.
    pub fn flush(&mut self) {
        for t in &mut self.tags {
            t.1 = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> CacheGeometry {
        CacheGeometry::new(4 * 1024, 32, 1)
    }

    #[test]
    fn geometry_of_paper_caches() {
        let g = l1();
        assert_eq!(g.sets(), 128);
        assert_eq!(g.line_size(), 32);
        let l2 = CacheGeometry::new(128 * 1024, 128, 4);
        assert_eq!(l2.sets(), 256);
    }

    #[test]
    fn geometry_index_math() {
        let g = l1();
        let addr = 0x0001_2345;
        assert_eq!(g.line_base(addr), addr & !31);
        assert_eq!(g.offset_of(addr), addr & 31);
        assert_eq!(g.set_of(addr), (addr / 32) % 128);
        assert_eq!(g.tag_of(addr), addr / 32 / 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_power_of_two() {
        CacheGeometry::new(3000, 32, 1);
    }

    #[test]
    fn fill_then_hit() {
        let mut c = DataCache::new(l1());
        assert!(matches!(c.lookup(0x100), Lookup::Miss(_)));
        c.fill(0x100, 0, &[0xAB; 32]);
        assert!(matches!(c.lookup(0x100), Lookup::Hit(0)));
        assert!(c.contains(0x11F)); // same line
        assert!(!c.contains(0x120)); // next line
    }

    #[test]
    fn word_read_back_and_parity() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x104, 0, 0x7, 0x7);
        let (v, sig) = c.read_word(0x104, 0);
        assert_eq!(v, 0x7);
        assert_eq!(sig, parity_signature(0x7));
        assert!(word_parity_of_signature(sig)); // 3 ones = odd
    }

    #[test]
    fn corrupted_store_mismatches_parity() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        // Intended 0x7 but a single-bit fault stored 0x5.
        c.write_word(0x104, 0, 0x5, 0x7);
        let (v, stored_sig) = c.read_word(0x104, 0);
        assert_eq!(v, 0x5);
        assert_ne!(
            word_parity(v),
            word_parity_of_signature(stored_sig),
            "parity must flag this"
        );
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = DataCache::new(l1());
        // Two addresses 4 KB apart map to the same set in a 4 KB DM cache.
        c.fill(0x100, 0, &[1; 32]);
        let Lookup::Miss(way) = c.lookup(0x100 + 4096) else {
            panic!("expected conflict miss");
        };
        c.fill(0x100 + 4096, way, &[2; 32]);
        assert!(!c.contains(0x100));
        assert!(c.contains(0x100 + 4096));
    }

    #[test]
    fn dirty_eviction_returns_data() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x100, 0, 42, 42);
        let Lookup::Miss(way) = c.lookup(0x100 + 4096) else {
            panic!()
        };
        let evicted = c.fill(0x100 + 4096, way, &[0; 32]);
        let (base, data) = evicted.expect("dirty line must be written back");
        assert_eq!(base, 0x100);
        assert_eq!(u32::from_le_bytes(data[0..4].try_into().unwrap()), 42);
    }

    #[test]
    fn clean_eviction_returns_none() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        let Lookup::Miss(way) = c.lookup(0x100 + 4096) else {
            panic!()
        };
        assert!(c.fill(0x100 + 4096, way, &[0; 32]).is_none());
    }

    #[test]
    fn invalidate_drops_line_without_writeback() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.write_word(0x100, 0, 99, 99);
        assert!(c.invalidate(0x100));
        assert!(!c.contains(0x100));
        assert!(!c.invalidate(0x100), "second invalidate is a no-op");
    }

    #[test]
    fn corrupt_tag_aliases_a_resident_line() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[7; 32]);
        // Flip tag bit 0: the line now answers to 0x100 + 4 KB.
        assert!(c.corrupt_tag(0x100, 1));
        assert!(!c.contains(0x100), "true address must false-miss");
        assert!(c.contains(0x100 + 4096), "alias must false-hit");
        // A second corruption through the alias flips it back.
        assert!(c.corrupt_tag(0x100 + 4096, 1));
        assert!(c.contains(0x100));
    }

    #[test]
    fn corrupt_tag_ignores_invalid_lines_and_zero_masks() {
        let mut c = DataCache::new(l1());
        assert!(!c.corrupt_tag(0x100, 1), "empty cache: nothing to corrupt");
        c.fill(0x100, 0, &[0; 32]);
        assert!(!c.corrupt_tag(0x100, 0), "zero mask is a no-op");
        assert!(c.contains(0x100));
    }

    #[test]
    fn peek_does_not_disturb_state() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[7; 32]);
        assert_eq!(c.peek_word(0x100), Some(u32::from_le_bytes([7; 4])));
        assert_eq!(c.peek_word(0x2000), None);
    }

    #[test]
    fn lru_in_set_associative_cache() {
        let g = CacheGeometry::new(1024, 32, 2); // 16 sets, 2 ways
        let mut c = DataCache::new(g);
        let a = 0x0; // set 0
        let b = 16 * 32; // set 0, different tag
        let d = 2 * 16 * 32; // set 0, third tag
        let Lookup::Miss(w) = c.lookup(a) else {
            panic!()
        };
        c.fill(a, w, &[0; 32]);
        let Lookup::Miss(w) = c.lookup(b) else {
            panic!()
        };
        c.fill(b, w, &[0; 32]);
        // Touch `a` so `b` becomes LRU.
        let Lookup::Hit(w) = c.lookup(a) else {
            panic!()
        };
        c.read_word(a, w);
        let Lookup::Miss(w) = c.lookup(d) else {
            panic!()
        };
        c.fill(d, w, &[0; 32]);
        assert!(c.contains(a), "recently used line must survive");
        assert!(!c.contains(b), "LRU line must be evicted");
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = DataCache::new(l1());
        c.fill(0x100, 0, &[0; 32]);
        c.flush();
        assert!(!c.contains(0x100));
    }

    #[test]
    fn word_parity_is_even_parity() {
        assert!(!word_parity(0));
        assert!(word_parity(1));
        assert!(!word_parity(3));
        assert!(word_parity(7));
        assert!(!word_parity(u32::MAX));
    }

    #[test]
    fn secded_coded_cache_stores_secded_signatures() {
        let mut c = DataCache::with_code(l1(), WordCode::Secded);
        assert_eq!(c.code(), WordCode::Secded);
        c.fill(0x100, 0, &[0xAB; 32]);
        let word = u32::from_le_bytes([0xAB; 4]);
        let (v, sig) = c.read_word(0x100, 0);
        assert_eq!(v, word);
        assert_eq!(sig, crate::secded::secded_encode(word));
        c.write_word(0x104, 0, 0x7, 0x7);
        let (_, sig) = c.read_word(0x104, 0);
        assert_eq!(sig, crate::secded::secded_encode(0x7));
        assert!(c.poke_word(0x108, 0xDEAD_BEEF));
        let (_, sig) = c.read_word(0x108, 0);
        assert_eq!(sig, crate::secded::secded_encode(0xDEAD_BEEF));
    }

    #[test]
    fn parity_signature_tracks_bytes() {
        assert_eq!(parity_signature(0), 0);
        assert_eq!(parity_signature(0x0000_0001), 0b0001);
        assert_eq!(parity_signature(0x0100_0000), 0b1000);
        assert_eq!(parity_signature(0x0101_0101), 0b1111);
        // Word parity is the XOR of byte parities.
        for w in [0u32, 1, 0xDEAD_BEEF, u32::MAX, 0x8000_0001] {
            assert_eq!(
                word_parity(w),
                word_parity_of_signature(parity_signature(w))
            );
        }
    }

    #[test]
    fn tag_cache_hits_after_fill() {
        let mut t = TagCache::new(CacheGeometry::new(128 * 1024, 128, 4));
        assert!(!t.access(0x4000));
        assert!(t.access(0x4000));
        assert!(t.access(0x4010)); // same 128-byte line
    }

    #[test]
    fn tag_cache_lru_eviction() {
        let g = CacheGeometry::new(512, 64, 2); // 4 sets, 2 ways
        let mut t = TagCache::new(g);
        let stride = g.sets() * g.line_size(); // same-set stride
        assert!(!t.access(0));
        assert!(!t.access(stride));
        assert!(t.access(0)); // touch 0: stride becomes LRU
        assert!(!t.access(2 * stride)); // evicts `stride`
        assert!(t.access(0));
        assert!(!t.access(stride), "evicted line must miss");
    }

    #[test]
    fn tag_cache_flush() {
        let mut t = TagCache::new(CacheGeometry::new(128 * 1024, 128, 4));
        t.access(0x4000);
        t.flush();
        assert!(!t.access(0x4000));
    }
}
