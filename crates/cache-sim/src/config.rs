//! Memory-system configuration.

use crate::cache::CacheGeometry;
use crate::policy::{
    DetectionScheme, FaultTargets, RecoveryGranularity, StrikePolicy, WayDisablePolicy,
};
use energy_model::EnergyModel;
use fault_model::{FaultProbabilityModel, PersistentSiteConfig, SamplingMode, VoltageSwingCurve};

/// Configuration of a [`MemSystem`](crate::MemSystem).
///
/// [`MemConfig::strongarm`] reproduces the paper's simulated platform
/// (§5.1): 4 KB direct-mapped L1D with 32-byte lines and 2-cycle
/// latency; 128 KB 4-way L2 with 128-byte lines and 15-cycle latency; a
/// 10-cycle penalty per dynamic frequency change (§4).
///
/// # Examples
///
/// ```
/// use cache_sim::{DetectionScheme, MemConfig, StrikePolicy};
///
/// let cfg = MemConfig::strongarm()
///     .with_detection(DetectionScheme::Parity)
///     .with_strikes(StrikePolicy::two_strike());
/// assert_eq!(cfg.l1.sets(), 128);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemConfig {
    /// Level-1 data-cache geometry.
    pub l1: CacheGeometry,
    /// Level-2 cache geometry.
    pub l2: CacheGeometry,
    /// L1 hit latency in core cycles at the full-swing clock.
    pub l1_latency: f64,
    /// L2 access latency in core cycles.
    pub l2_latency: f64,
    /// Backing-memory latency in core cycles.
    pub mem_latency: f64,
    /// Penalty in cycles for each cache clock change (§4: 10 cycles).
    pub freq_switch_penalty: f64,
    /// Quantize the visible L1 stall to whole core cycles (the core
    /// samples returning data at core-clock edges, so a cache answering
    /// in 0.5 core cycles is still seen after 1). Disable to model a
    /// fully decoupled interface (ablation).
    pub quantize_latency: bool,
    /// Fault-detection hardware on the L1.
    pub detection: DetectionScheme,
    /// Recovery policy on detected faults.
    pub strikes: StrikePolicy,
    /// Which SRAM arrays injection targets. The default (data only)
    /// is the paper's model; tag/parity/l2 targets are opt-in and draw
    /// no randomness while off, keeping default runs bitwise stable.
    pub targets: FaultTargets,
    /// Relative cycle time of the level-2 clock, in the same `(0, 1]`
    /// scale as the L1's `Cr`. Sets the per-bit fault probability of the
    /// opt-in [`FaultTargets::l2`] process via the shared
    /// [`FaultProbabilityModel`] — the L2 runs on its own (normally
    /// full-swing, hence fault-free-in-practice) clock and does not
    /// follow the L1's dynamic scaling. Unused while `targets.l2` is
    /// off.
    pub l2_cycle: f64,
    /// How much state a strike-exhausted recovery discards.
    pub recovery: RecoveryGranularity,
    /// Opt-in way-disabling escalation on top of the strike policy
    /// (`None` reproduces the paper's strike-forever behavior exactly).
    pub way_disable: Option<WayDisablePolicy>,
    /// Opt-in persistent/intermittent fault-site process on the L1 data
    /// array (`None` = the paper's purely transient model). Draws from
    /// its own RNG stream, so even when on it leaves the transient
    /// realization untouched; it does force every access onto the exact
    /// slow path, since a stuck bit must be visible to each read.
    pub persistent: Option<PersistentSiteConfig>,
    /// Per-bit fault probability model.
    pub fault_model: FaultProbabilityModel,
    /// How the fault sampler spends randomness. The default
    /// [`SamplingMode::PerAccess`] is the exact reproduction path;
    /// [`SamplingMode::SkipAhead`] is a statistically identical fast
    /// path whose per-seed realizations differ.
    pub sampling: SamplingMode,
    /// Voltage-swing curve (for energy scaling).
    pub swing: VoltageSwingCurve,
    /// Energy constants.
    pub energy: EnergyModel,
    /// Backing-store capacity in bytes.
    pub backing_bytes: usize,
}

impl MemConfig {
    /// The paper's StrongARM-110-like platform with no detection (the
    /// baseline of every figure).
    pub fn strongarm() -> Self {
        MemConfig {
            l1: CacheGeometry::new(4 * 1024, 32, 1),
            l2: CacheGeometry::new(128 * 1024, 128, 4),
            l1_latency: 2.0,
            l2_latency: 15.0,
            mem_latency: 100.0,
            freq_switch_penalty: 10.0,
            quantize_latency: true,
            detection: DetectionScheme::None,
            strikes: StrikePolicy::two_strike(),
            targets: FaultTargets::data_only(),
            l2_cycle: 1.0,
            recovery: RecoveryGranularity::Line,
            way_disable: None,
            persistent: None,
            fault_model: FaultProbabilityModel::calibrated(),
            sampling: SamplingMode::default(),
            swing: VoltageSwingCurve::paper(),
            energy: EnergyModel::strongarm(),
            backing_bytes: 4 * 1024 * 1024,
        }
    }

    /// Returns the config with a different detection scheme.
    pub fn with_detection(mut self, detection: DetectionScheme) -> Self {
        self.detection = detection;
        self
    }

    /// Returns the config with a different strike policy.
    pub fn with_strikes(mut self, strikes: StrikePolicy) -> Self {
        self.strikes = strikes;
        self
    }

    /// Returns the config with a different recovery granularity.
    pub fn with_recovery(mut self, recovery: RecoveryGranularity) -> Self {
        self.recovery = recovery;
        self
    }

    /// Returns the config with different injection targets.
    pub fn with_targets(mut self, targets: FaultTargets) -> Self {
        self.targets = targets;
        self
    }

    /// Returns the config with a different L2 clock cycle time.
    ///
    /// # Panics
    ///
    /// Panics unless `l2_cycle` is in `(0, 1]`.
    pub fn with_l2_cycle(mut self, l2_cycle: f64) -> Self {
        assert!(
            l2_cycle > 0.0 && l2_cycle <= 1.0,
            "L2 cycle time must be in (0, 1], got {l2_cycle}"
        );
        self.l2_cycle = l2_cycle;
        self
    }

    /// Returns the config with way-disabling escalation enabled.
    pub fn with_way_disable(mut self, policy: WayDisablePolicy) -> Self {
        self.way_disable = Some(policy);
        self
    }

    /// Returns the config with the persistent fault-site process
    /// enabled.
    pub fn with_persistent(mut self, persistent: PersistentSiteConfig) -> Self {
        self.persistent = Some(persistent);
        self
    }

    /// Returns the config with a different fault model.
    pub fn with_fault_model(mut self, model: FaultProbabilityModel) -> Self {
        self.fault_model = model;
        self
    }

    /// Returns the config with a different backing capacity.
    pub fn with_backing_bytes(mut self, bytes: usize) -> Self {
        self.backing_bytes = bytes;
        self
    }

    /// Returns the config with a different fault-sampling mode.
    pub fn with_sampling(mut self, sampling: SamplingMode) -> Self {
        self.sampling = sampling;
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::strongarm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strongarm_matches_paper_section_5_1() {
        let cfg = MemConfig::strongarm();
        assert_eq!(cfg.l1.size(), 4 * 1024);
        assert_eq!(cfg.l1.assoc(), 1);
        assert_eq!(cfg.l1.line_size(), 32);
        assert_eq!(cfg.l2.size(), 128 * 1024);
        assert_eq!(cfg.l2.assoc(), 4);
        assert_eq!(cfg.l2.line_size(), 128);
        assert_eq!(cfg.l1_latency, 2.0);
        assert_eq!(cfg.l2_latency, 15.0);
        assert_eq!(cfg.freq_switch_penalty, 10.0);
    }

    #[test]
    fn builder_style_setters() {
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::three_strike())
            .with_targets(FaultTargets::all())
            .with_backing_bytes(1 << 20);
        assert_eq!(cfg.detection, DetectionScheme::Parity);
        assert_eq!(cfg.strikes.max_attempts(), 3);
        assert_eq!(cfg.targets, FaultTargets::all());
        assert_eq!(cfg.backing_bytes, 1 << 20);
    }

    #[test]
    fn default_targets_are_data_only() {
        assert_eq!(MemConfig::strongarm().targets, FaultTargets::data_only());
    }

    #[test]
    fn default_l2_cycle_is_full_swing() {
        assert_eq!(MemConfig::strongarm().l2_cycle, 1.0);
        assert_eq!(MemConfig::strongarm().with_l2_cycle(0.5).l2_cycle, 0.5);
    }

    #[test]
    #[should_panic(expected = "L2 cycle time")]
    fn l2_cycle_rejects_zero() {
        MemConfig::strongarm().with_l2_cycle(0.0);
    }

    #[test]
    fn degradation_knobs_are_off_by_default() {
        let cfg = MemConfig::strongarm();
        assert_eq!(cfg.way_disable, None);
        assert_eq!(cfg.persistent, None);
        let on = cfg
            .with_way_disable(WayDisablePolicy::default_policy())
            .with_persistent(PersistentSiteConfig::hard(1e-4));
        assert_eq!(on.way_disable, Some(WayDisablePolicy::default_policy()));
        assert_eq!(on.persistent, Some(PersistentSiteConfig::hard(1e-4)));
    }
}
