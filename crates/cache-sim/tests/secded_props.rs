//! Property-based tests for the SECDED (39,32) codec: any single-bit
//! flip (data or code) decodes back to the original word, and any
//! double-bit flip is detected.

use cache_sim::{secded_decode, secded_encode, SecdedOutcome, SECDED_CODE_BITS};
use proptest::prelude::*;

/// Total flippable codeword bits: 32 data + 7 stored code bits.
const CODEWORD_BITS: u32 = 32 + SECDED_CODE_BITS;

/// Flips codeword bit `i` (data bits first, then code bits) of a
/// `(word, code)` pair.
fn flip(word: u32, code: u8, i: u32) -> (u32, u8) {
    if i < 32 {
        (word ^ (1 << i), code)
    } else {
        (word, code ^ (1 << (i - 32)))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Round trip: every word encodes to a codeword that decodes clean.
    #[test]
    fn encode_decode_round_trips(word in any::<u32>()) {
        prop_assert_eq!(
            secded_decode(word, secded_encode(word)),
            SecdedOutcome::Clean
        );
    }

    /// Any single flipped bit — data or code — is corrected back to the
    /// original word.
    #[test]
    fn single_bit_flips_are_corrected(word in any::<u32>(), bit in 0u32..CODEWORD_BITS) {
        let code = secded_encode(word);
        let (w, c) = flip(word, code, bit);
        prop_assert_eq!(secded_decode(w, c), SecdedOutcome::Corrected(word));
    }

    /// Any two distinct flipped bits are detected (never miscorrected,
    /// never passed as clean).
    #[test]
    fn double_bit_flips_are_detected(
        word in any::<u32>(),
        a in 0u32..CODEWORD_BITS,
        b in 0u32..CODEWORD_BITS,
    ) {
        prop_assume!(a != b);
        let code = secded_encode(word);
        let (w, c) = flip(word, code, a);
        let (w, c) = flip(w, c, b);
        prop_assert_eq!(secded_decode(w, c), SecdedOutcome::Detected);
    }

    /// The stored byte's unused top bit never affects decoding.
    #[test]
    fn unused_code_bit_is_ignored(word in any::<u32>()) {
        let code = secded_encode(word);
        prop_assert_eq!(secded_decode(word, code | 0x80), SecdedOutcome::Clean);
    }
}
