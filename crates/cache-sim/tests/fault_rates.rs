//! Statistical acceptance tests for the opt-in tag/parity fault
//! targets: the observed per-access fault rates must match the
//! configured per-bit probability (via the sampler's own event
//! probabilities) under a chi-square goodness-of-fit test.

use cache_sim::{DetectionScheme, FaultTargets, MemConfig, MemSystem, StrikePolicy};
use fault_model::{FaultProbabilityModel, FaultSampler};

/// Chi-square statistic for a two-bin (fault / no-fault) experiment,
/// one degree of freedom.
fn chi_square_2bin(observed: u64, trials: u64, p: f64) -> f64 {
    let exp_hit = trials as f64 * p;
    let exp_miss = trials as f64 - exp_hit;
    let obs_hit = observed as f64;
    let obs_miss = (trials - observed) as f64;
    (obs_hit - exp_hit).powi(2) / exp_hit + (obs_miss - exp_miss).powi(2) / exp_miss
}

/// Critical value at p = 0.001 with 1 degree of freedom: a correct
/// implementation fails this roughly once per thousand seeds.
const CHI2_CRIT: f64 = 10.83;

#[test]
fn tag_fault_rate_matches_configured_probability() {
    // Tag-only injection: exactly one tag-width sample per access.
    let model = FaultProbabilityModel::new(0.002, 0.0);
    let cfg = MemConfig::strongarm()
        .with_targets(FaultTargets {
            data: false,
            tag: true,
            parity: false,
            l2: false,
        })
        .with_fault_model(model);
    let sampling = cfg.sampling;
    let mut m = MemSystem::new(cfg, 0xACCE55);
    assert_eq!(m.tag_width(), 10);
    let reference = FaultSampler::with_mode(model, 0, sampling);
    let p = reference.aux_fault_probability(10);
    assert!(p > 0.0);

    let trials = 200_000u64;
    for i in 0..trials {
        let a = ((i % 64) * 4) as u32;
        let _ = m.read_u32(a).unwrap();
    }
    let observed = m.stats().tag_faults_injected;
    let chi2 = chi_square_2bin(observed, trials, p);
    assert!(
        chi2 < CHI2_CRIT,
        "tag rate off: observed {observed}/{trials}, expected p={p}, chi2={chi2}"
    );
}

#[test]
fn parity_bit_fault_rate_matches_configured_probability() {
    // Parity-only injection under a one-strike policy: the read loop
    // runs exactly once per access (a detected fault falls straight
    // back to L2), so there is exactly one 4-bit signature sample per
    // read.
    let model = FaultProbabilityModel::new(0.005, 0.0);
    let cfg = MemConfig::strongarm()
        .with_detection(DetectionScheme::Parity)
        .with_strikes(StrikePolicy::one_strike())
        .with_targets(FaultTargets {
            data: false,
            tag: false,
            parity: true,
            l2: false,
        })
        .with_fault_model(model);
    let sampling = cfg.sampling;
    let mut m = MemSystem::new(cfg, 0x5160);
    let reference = FaultSampler::with_mode(model, 0, sampling);
    let p = reference.aux_fault_probability(4);
    assert!(p > 0.0);

    for i in 0..64u32 {
        m.host_write_u32(i * 4, i).unwrap();
    }
    let trials = 200_000u64;
    for i in 0..trials {
        let a = ((i % 64) * 4) as u32;
        let _ = m.read_u32(a).unwrap();
    }
    let observed = m.stats().parity_faults_injected;
    let chi2 = chi_square_2bin(observed, trials, p);
    assert!(
        chi2 < CHI2_CRIT,
        "parity rate off: observed {observed}/{trials}, expected p={p}, chi2={chi2}"
    );
}

#[test]
fn l2_fault_rate_matches_configured_probability() {
    // L2-only injection driven purely by writebacks: each round dirties
    // one 32-byte line (8 words) and drains it, so every round draws
    // exactly 8 word-width L2 samples at the L2 clock's per-bit rate.
    let model = FaultProbabilityModel::new(0.002, 0.0);
    let l2_cycle = 0.5;
    let cfg = MemConfig::strongarm()
        .with_targets(FaultTargets {
            data: false,
            tag: false,
            parity: false,
            l2: true,
        })
        .with_l2_cycle(l2_cycle)
        .with_fault_model(model);
    let sampling = cfg.sampling;
    let mut m = MemSystem::new(cfg, 0x12C4);
    let reference = FaultSampler::with_mode(model, 0, sampling);
    let per_bit = model.per_bit_at_cycle(l2_cycle);
    let p = reference.aux_fault_probability_at(per_bit, 32);
    assert!(p > 0.0);

    let rounds = 25_000u64;
    let words_per_line = 8u64;
    for i in 0..rounds {
        m.write_u32(0x100, i as u32).unwrap();
        m.writeback_all().unwrap();
    }
    let trials = rounds * words_per_line;
    let observed = m.stats().l2_faults_injected;
    let chi2 = chi_square_2bin(observed, trials, p);
    assert!(
        chi2 < CHI2_CRIT,
        "l2 rate off: observed {observed}/{trials}, expected p={p}, chi2={chi2}"
    );
}
