//! Property-based tests for running degraded: a cache with ways — or
//! whole sets — mapped out must never wedge, only slow down.

use cache_sim::{
    DetectionScheme, FaultTargets, MemConfig, MemSystem, StrikePolicy, WayDisablePolicy,
};
use fault_model::{FaultProbabilityModel, PersistentSiteConfig};
use proptest::prelude::*;
use std::collections::HashMap;

/// One program-visible memory operation.
#[derive(Debug, Clone)]
enum Op {
    ReadW(u32),
    WriteW(u32, u32),
    ReadB(u32),
    WriteB(u32, u8),
    ReadH(u32),
    WriteH(u32, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A 16 KB window over a 4 KB L1: plenty of conflict traffic in and
    // out of the disabled sets.
    let addr = 0u32..16384;
    prop_oneof![
        addr.clone().prop_map(|a| Op::ReadW(a & !3)),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::WriteW(a & !3, v)),
        addr.clone().prop_map(Op::ReadB),
        (addr.clone(), any::<u8>()).prop_map(|(a, v)| Op::WriteB(a, v)),
        addr.clone().prop_map(|a| Op::ReadH(a & !1)),
        (addr, any::<u16>()).prop_map(|(a, v)| Op::WriteH(a & !1, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// With every way of an arbitrary subset of sets disabled — up to
    /// the entire cache — a fault-free system still completes arbitrary
    /// access runs through the bypass and stays functionally a flat
    /// memory. No panic, no wedge, no lost data.
    #[test]
    fn fully_disabled_sets_complete_runs_via_bypass(
        dead_sets in prop::collection::vec(0u32..128, 0..129),
        ops in prop::collection::vec(op_strategy(), 1..250),
    ) {
        let dead_sets: std::collections::BTreeSet<u32> = dead_sets.into_iter().collect();
        let mut mem = MemSystem::new(MemConfig::strongarm(), 0);
        mem.set_inject(false);
        for &set in &dead_sets {
            mem.disable_way(set, 0).unwrap();
        }
        let mut model: HashMap<u32, u8> = HashMap::new();
        let rd = |m: &HashMap<u32, u8>, a: u32| *m.get(&a).unwrap_or(&0);
        for op in &ops {
            match *op {
                Op::ReadW(a) => {
                    let want = u32::from_le_bytes([
                        rd(&model, a), rd(&model, a + 1), rd(&model, a + 2), rd(&model, a + 3),
                    ]);
                    prop_assert_eq!(mem.read_u32(a).unwrap(), want);
                }
                Op::WriteW(a, v) => {
                    mem.write_u32(a, v).unwrap();
                    for (i, b) in v.to_le_bytes().iter().enumerate() {
                        model.insert(a + i as u32, *b);
                    }
                }
                Op::ReadB(a) => {
                    prop_assert_eq!(mem.read_u8(a).unwrap(), rd(&model, a));
                }
                Op::WriteB(a, v) => {
                    mem.write_u8(a, v).unwrap();
                    model.insert(a, v);
                }
                Op::ReadH(a) => {
                    let want = u16::from_le_bytes([rd(&model, a), rd(&model, a + 1)]);
                    prop_assert_eq!(mem.read_u16(a).unwrap(), want);
                }
                Op::WriteH(a, v) => {
                    mem.write_u16(a, v).unwrap();
                    for (i, b) in v.to_le_bytes().iter().enumerate() {
                        model.insert(a + i as u32, *b);
                    }
                }
            }
        }
        // Every access to a dead set must have gone through the bypass.
        if !dead_sets.is_empty() {
            let g = mem.l1_geometry();
            let touched_dead = ops.iter().any(|op| {
                let a = match *op {
                    Op::ReadW(a) | Op::WriteW(a, _) | Op::ReadB(a)
                    | Op::WriteB(a, _) | Op::ReadH(a) | Op::WriteH(a, _) => a,
                };
                dead_sets.contains(&g.set_of(a))
            });
            prop_assert_eq!(touched_dead, mem.stats().bypass_accesses > 0);
        }
    }

    /// Robustness under the full degraded stack: brutal transient rates
    /// on every target, sticky fault sites, strike escalation actively
    /// mapping ways out — arbitrary (including misaligned and
    /// out-of-range) accesses may error but never panic or wedge.
    #[test]
    fn degrading_system_never_panics(
        seed in any::<u64>(),
        p_site in 0.0f64..0.5,
        threshold in 1u32..4,
        ops in prop::collection::vec((0u32..3, any::<u32>(), any::<u32>()), 1..250),
    ) {
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_targets(FaultTargets::all())
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0))
            .with_persistent(PersistentSiteConfig::hard(p_site))
            .with_way_disable(WayDisablePolicy::new(threshold, 10_000));
        let mut mem = MemSystem::new(cfg, seed);
        for &(kind, addr, value) in &ops {
            match kind {
                0 => { let _ = mem.read_u32(addr); }
                1 => { let _ = mem.write_u32(addr, value); }
                _ => { let _ = mem.read_u8(addr); }
            }
        }
        let s = mem.stats();
        prop_assert!(s.l1_hits + s.l1_misses <= s.accesses());
        prop_assert!(s.salvage_writebacks <= s.writebacks);
    }
}
