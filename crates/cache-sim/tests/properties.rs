//! Property-based tests: the fault-free memory system is functionally a
//! flat memory, counters stay consistent, and geometry math inverts.

use cache_sim::{CacheGeometry, DetectionScheme, MemConfig, MemSystem, StrikePolicy};
use fault_model::FaultProbabilityModel;
use proptest::prelude::*;
use std::collections::HashMap;

/// One program-visible memory operation.
#[derive(Debug, Clone)]
enum Op {
    ReadW(u32),
    WriteW(u32, u32),
    ReadB(u32),
    WriteB(u32, u8),
    ReadH(u32),
    WriteH(u32, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keep addresses inside a 64 KB window so sequences collide in the
    // 4 KB L1 and exercise eviction/writeback.
    let addr = 0u32..65536;
    prop_oneof![
        addr.clone().prop_map(|a| Op::ReadW(a & !3)),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::WriteW(a & !3, v)),
        addr.clone().prop_map(Op::ReadB),
        (addr.clone(), any::<u8>()).prop_map(|(a, v)| Op::WriteB(a, v)),
        addr.clone().prop_map(|a| Op::ReadH(a & !1)),
        (addr, any::<u16>()).prop_map(|(a, v)| Op::WriteH(a & !1, v)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Without faults the cache hierarchy is an invisible performance
    /// artifact: any operation sequence matches a flat byte store.
    #[test]
    fn fault_free_system_equals_flat_memory(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut mem = MemSystem::new(MemConfig::strongarm(), 0);
        mem.set_inject(false);
        let mut model: HashMap<u32, u8> = HashMap::new();
        let rd = |m: &HashMap<u32, u8>, a: u32| *m.get(&a).unwrap_or(&0);
        for op in &ops {
            match *op {
                Op::ReadW(a) => {
                    let want = u32::from_le_bytes([
                        rd(&model, a), rd(&model, a + 1), rd(&model, a + 2), rd(&model, a + 3),
                    ]);
                    prop_assert_eq!(mem.read_u32(a).unwrap(), want);
                }
                Op::WriteW(a, v) => {
                    mem.write_u32(a, v).unwrap();
                    for (i, b) in v.to_le_bytes().iter().enumerate() {
                        model.insert(a + i as u32, *b);
                    }
                }
                Op::ReadB(a) => {
                    prop_assert_eq!(mem.read_u8(a).unwrap(), rd(&model, a));
                }
                Op::WriteB(a, v) => {
                    mem.write_u8(a, v).unwrap();
                    model.insert(a, v);
                }
                Op::ReadH(a) => {
                    let want = u16::from_le_bytes([rd(&model, a), rd(&model, a + 1)]);
                    prop_assert_eq!(mem.read_u16(a).unwrap(), want);
                }
                Op::WriteH(a, v) => {
                    mem.write_u16(a, v).unwrap();
                    for (i, b) in v.to_le_bytes().iter().enumerate() {
                        model.insert(a + i as u32, *b);
                    }
                }
            }
        }
    }

    /// With parity + strikes and single-bit-only faults, reads of
    /// host-seeded (clean) data always return the written value: every
    /// odd-weight transient is caught and recovered.
    #[test]
    fn parity_recovers_all_single_bit_read_faults(
        seed in any::<u64>(),
        addrs in prop::collection::vec(0u32..256, 1..50),
    ) {
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::three_strike())
            .with_fault_model(FaultProbabilityModel::new(0.005, 0.0));
        let mut mem = MemSystem::new(cfg, seed);
        let addrs: Vec<u32> = {
            let mut v = addrs;
            v.sort_unstable();
            v.dedup();
            v
        };
        for (i, a) in addrs.iter().enumerate() {
            mem.host_write_u32(a * 4, i as u32).unwrap();
        }
        // Multi-bit faults occur at 1/100 of singles; with these few
        // accesses a double is vanishingly unlikely but possible, so
        // tolerate one mismatch only if it is even-weight.
        for (i, a) in addrs.iter().enumerate() {
            let got = mem.read_u32(a * 4).unwrap();
            let diff = (got ^ i as u32).count_ones();
            prop_assert!(diff == 0 || diff.is_multiple_of(2), "odd corruption escaped: {diff} bits");
        }
    }

    /// Counter consistency: every program access performs exactly one
    /// L1 lookup, and energy/cycles grow monotonically.
    #[test]
    fn counters_stay_consistent(ops in prop::collection::vec(op_strategy(), 1..200), seed in any::<u64>()) {
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_fault_model(FaultProbabilityModel::new(0.001, 0.0));
        let mut mem = MemSystem::new(cfg, seed);
        let mut last_cycles = 0.0;
        for op in &ops {
            match *op {
                Op::ReadW(a) => { let _ = mem.read_u32(a).unwrap(); }
                Op::WriteW(a, v) => mem.write_u32(a, v).unwrap(),
                Op::ReadB(a) => { let _ = mem.read_u8(a).unwrap(); }
                Op::WriteB(a, v) => mem.write_u8(a, v).unwrap(),
                Op::ReadH(a) => { let _ = mem.read_u16(a).unwrap(); }
                Op::WriteH(a, v) => mem.write_u16(a, v).unwrap(),
            }
            prop_assert!(mem.cycles() > last_cycles);
            last_cycles = mem.cycles();
        }
        let s = mem.stats();
        prop_assert_eq!(s.l1_hits + s.l1_misses, s.accesses());
        prop_assert!(s.faults_detected + s.faults_undetected <= s.faults_injected + s.strike_retries);
        prop_assert!(mem.energy().total_nj() > 0.0);
    }

    /// Robustness: with injection enabled on *every* target (data, tag
    /// and parity) at a brutal fault rate, arbitrary access sequences —
    /// including misaligned and out-of-range addresses — may return
    /// errors but must never panic the simulator.
    #[test]
    fn injecting_system_never_panics(
        seed in any::<u64>(),
        strikes in 1u8..4,
        detection in prop_oneof![
            Just(DetectionScheme::None),
            Just(DetectionScheme::Parity),
            Just(DetectionScheme::ParityPerByte),
        ],
        ops in prop::collection::vec(
            (0u32..3, any::<u32>(), any::<u32>()),
            1..200,
        ),
    ) {
        let cfg = MemConfig::strongarm()
            .with_detection(detection)
            .with_strikes(StrikePolicy::with_strikes(strikes))
            .with_targets(cache_sim::FaultTargets::all())
            .with_fault_model(FaultProbabilityModel::new(0.02, 0.0));
        let mut mem = MemSystem::new(cfg, seed);
        for &(kind, addr, value) in &ops {
            // Raw addresses: misaligned and out-of-range on purpose.
            match kind {
                0 => { let _ = mem.read_u32(addr); }
                1 => { let _ = mem.write_u32(addr, value); }
                _ => { let _ = mem.read_u8(addr); }
            }
        }
        // The run must stay internally consistent even after errors.
        let s = mem.stats();
        prop_assert_eq!(s.l1_hits + s.l1_misses <= s.accesses(), true);
    }

    /// Geometry round-trip: (tag, set, offset) reconstructs the address.
    #[test]
    fn geometry_decomposition_inverts(
        size_log in 10u32..18,
        line_log in 2u32..8,
        assoc_log in 0u32..3,
        addr in any::<u32>(),
    ) {
        prop_assume!(line_log < size_log);
        let size = 1u32 << size_log;
        let line = 1u32 << line_log;
        let assoc = 1u32 << assoc_log;
        prop_assume!(size / line >= assoc);
        let g = CacheGeometry::new(size, line, assoc);
        let rebuilt =
            (g.tag_of(addr) * g.sets() + g.set_of(addr)) * g.line_size() + g.offset_of(addr);
        prop_assert_eq!(rebuilt, addr);
        prop_assert_eq!(g.line_base(addr) + g.offset_of(addr), addr);
    }
}
