//! End-to-end tests for `clumsy serve`, spawning the actual binary.
//!
//! These run out of process on purpose: the serve path installs the
//! global interrupt handler and reacts to real signals, and sharing
//! that flag with in-process tests (the durable campaign tests flip it
//! too) would race. A child process gives each test its own flag, its
//! own handler, and a real SIGTERM.

use std::collections::BTreeMap;
use std::process::Command;

/// Serve flags shared by every test: small app, few shards, and a shed
/// timeout far beyond any scheduler hiccup so runs are deterministic
/// (zero shed) regardless of machine load.
const COMMON: &[&str] = &[
    "serve",
    "--app",
    "crc",
    "--shards",
    "3",
    "--queue-depth",
    "64",
    "--shed-timeout-ms",
    "60000",
];

fn serve_bounded(extra: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(COMMON)
        .args(["--packets", "400"])
        .args(extra)
        .output()
        .expect("binary spawns");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// Extracts the per-shard summary rows: `(shard, processed, dropped,
/// abandoned, restarts, digest)`.
fn shard_rows(stdout: &str) -> Vec<(usize, u64, u64, u64, u64, String)> {
    stdout
        .lines()
        .filter_map(|l| {
            let f: Vec<&str> = l.split_whitespace().collect();
            if f.len() != 10 {
                return None;
            }
            Some((
                f[0].parse().ok()?,
                f[1].parse().ok()?,
                f[3].parse().ok()?,
                f[4].parse().ok()?,
                f[5].parse().ok()?,
                f[9].to_string(),
            ))
        })
        .collect()
}

/// Minimal tolerant reader for the metrics JSON: every `"key": <int>`
/// leaf (mirrors `clumsy_core::telemetry::parse_metrics`).
fn parse_metrics(text: &str) -> BTreeMap<String, u64> {
    let mut map = BTreeMap::new();
    let segs: Vec<&str> = text.split('"').collect();
    // In well-formed JSON, quotes alternate open/close, so quoted
    // tokens sit at odd indices and segs[k + 1] is the text that
    // follows token k: a key when it starts with `: <digits>`.
    for k in (1..segs.len()).step_by(2) {
        let Some(follow) = segs.get(k + 1) else { break };
        if let Some(rest) = follow.trim_start().strip_prefix(':') {
            let digits: String = rest
                .trim_start()
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            if let Ok(v) = digits.parse::<u64>() {
                map.insert(segs[k].to_string(), v);
            }
        }
    }
    map
}

#[cfg(unix)]
#[test]
fn sigterm_mid_stream_drains_and_exits_zero() {
    let dir = std::env::temp_dir().join(format!("clumsy-serve-term-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("serve-metrics.json");

    // Unbounded stream: only the signal can end it.
    let child = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(COMMON)
        .args(["--metrics", &metrics.display().to_string()])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");
    std::thread::sleep(std::time::Duration::from_millis(700));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let out = child.wait_with_output().expect("child joins");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();

    // The robustness contract: a drained serve is a success.
    assert_eq!(out.status.code(), Some(0), "expected exit 0\n{stdout}");
    assert!(stdout.contains("accounting ok"), "{stdout}");
    assert!(
        stdout.contains("drained all queues and exited cleanly"),
        "{stdout}"
    );

    // The final metrics snapshot is schema-stable and its accounting
    // identity proves no packet was lost untracked or processed twice:
    // everything ingested was processed, dropped, or abandoned.
    let text = std::fs::read_to_string(&metrics).expect("final metrics written");
    assert!(text.contains("clumsy-metrics-v1"), "{text}");
    let map = parse_metrics(&text);
    let get = |k: &str| *map.get(k).unwrap_or_else(|| panic!("metrics lost {k}"));
    assert!(get("packets_ingested") > 0, "{text}");
    assert_eq!(
        get("packets_ingested"),
        get("packets_processed") + get("packets_dropped") + get("packets_abandoned"),
        "drain accounting broken: {text}"
    );
    assert_eq!(get("shard_panics"), 0, "{text}");
    assert!(get("queue_highwater") >= 1, "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bounded_serve_is_deterministic_and_accounts_for_every_packet() {
    let (a, stderr, ok) = serve_bounded(&[]);
    assert!(ok, "serve failed: {stderr}");
    assert!(a.contains("served 400 packets"), "{a}");
    assert!(a.contains("accounting ok"), "{a}");
    let rows = shard_rows(&a);
    assert_eq!(rows.len(), 3, "expected one row per shard: {a}");
    assert_eq!(rows.iter().map(|r| r.1).sum::<u64>(), 400, "{a}");

    let (b, _, ok) = serve_bounded(&[]);
    assert!(ok);
    assert_eq!(
        rows,
        shard_rows(&b),
        "same stream + seeds must serve bit-identically"
    );
}

/// Pulls `key=value` integer fields out of a summary line like
/// `flow shed: elephant=... elephant_shed=12 mice_shed=0 ...`.
fn summary_fields(stdout: &str, line_prefix: &str) -> BTreeMap<String, u64> {
    let line = stdout
        .lines()
        .find(|l| l.starts_with(line_prefix))
        .unwrap_or_else(|| panic!("no `{line_prefix}` line in:\n{stdout}"));
    line.split_whitespace()
        .filter_map(|tok| {
            let (k, v) = tok.split_once('=')?;
            Some((k.to_string(), v.parse().ok()?))
        })
        .collect()
}

#[test]
fn default_serve_output_carries_no_overload_lines() {
    // Bitwise-stability contract: with every overload feature off the
    // summary must look exactly as it did before the overload layer
    // existed — no report lines, no schema drift.
    let (out, stderr, ok) = serve_bounded(&[]);
    assert!(ok, "{stderr}");
    assert!(!out.contains("overload:"), "{out}");
    assert!(!out.contains("flow shed:"), "{out}");
    assert!(!out.contains("class:"), "{out}");
    assert!(!out.contains("slo:"), "{out}");
}

#[test]
fn class_aware_overload_spares_control_while_data_absorbs_it() {
    let dir = std::env::temp_dir().join(format!("clumsy-serve-class-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("class-metrics.json");

    // An elephant mix under a tight per-flow cap, with a small slice
    // of the flow population marked control and an unmeetable 1 µs
    // p99 budget: the SLO trigger must fire, data flows must absorb
    // every shed, and not one control packet may be lost.
    //
    // The queue depth is chosen deliberately: control packets can only
    // shed when a full queue holds *nothing but* control (they preempt
    // data otherwise, and are exempt from the flow cap), so a depth
    // above the run's whole control packet count (~32 of 4000 with 6
    // of 256 flows marked) makes a control shed structurally impossible
    // regardless of machine speed. The flow population is deliberately
    // large relative to the queue depth so the aggregate of the
    // per-flow caps exceeds the queue: the ingress queues actually
    // fill, backpressure paces the pump against the shards, and every
    // p99 window observes real queueing delay — the trigger fires
    // deterministically instead of racing a fast build to the end of
    // the bounded stream. The overload lands on the elephant's
    // flow-cap sheds.
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args([
            "serve",
            "--app",
            "crc",
            "--shards",
            "2",
            "--queue-depth",
            "256",
            "--packets",
            "4000",
            "--flows",
            "256",
            "--pattern",
            "elephant",
            "--flow-queue-cap",
            "4",
            "--shed-policy",
            "adaptive",
            "--shed-timeout-ms",
            "60000",
            "--control-flows",
            "6",
            "--slo-p99-us",
            "1",
            "--metrics",
            &metrics.display().to_string(),
        ])
        .output()
        .expect("binary spawns");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("accounting ok"), "{stdout}");

    // No shard wedged under the class-aware admission path.
    let rows = shard_rows(&stdout);
    assert_eq!(rows.len(), 2, "{stdout}");
    assert!(rows.iter().all(|r| r.1 > 0), "a shard wedged: {stdout}");

    // Zero control sheds; the data class absorbed the overload. Both
    // class identities are exact: offered splits the generated total,
    // shed splits the shed total.
    let c = summary_fields(&stdout, "class:");
    let cget = |k: &str| *c.get(k).unwrap_or_else(|| panic!("missing {k}: {stdout}"));
    assert_eq!(cget("control_shed"), 0, "{stdout}");
    assert!(cget("control_offered") > 0, "{stdout}");
    assert!(cget("data_shed") > 0, "overload never bit: {stdout}");
    assert_eq!(
        cget("control_offered") + cget("data_offered"),
        4000,
        "{stdout}"
    );
    // `served ... : N processed, M shed, ...` — the class split must
    // sum exactly to the head line's shed total.
    let head = stdout
        .lines()
        .find(|l| l.starts_with("served 4000 packets"))
        .unwrap_or_else(|| panic!("no head line: {stdout}"));
    let words: Vec<&str> = head.split_whitespace().collect();
    let shed_total: u64 = words
        .iter()
        .position(|&w| w.starts_with("shed"))
        .and_then(|i| words[i - 1].parse().ok())
        .unwrap_or_else(|| panic!("no shed count in head line: {head}"));
    assert_eq!(
        cget("control_shed") + cget("data_shed"),
        shed_total,
        "{stdout}"
    );

    // The SLO trigger fired and said so in both the summary and the
    // metrics JSON; the control-shed counter stayed at zero there too.
    let s = summary_fields(&stdout, "slo:");
    assert!(s.get("activations").copied().unwrap_or(0) > 0, "{stdout}");
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let map = parse_metrics(&text);
    let mget = |k: &str| {
        *map.get(k)
            .unwrap_or_else(|| panic!("metrics lost {k}: {text}"))
    };
    assert!(mget("slo_trigger_activations") > 0, "{text}");
    assert_eq!(mget("packets_shed_control"), 0, "{text}");
    assert!(mget("packets_shed_data") > 0, "{text}");
    assert_eq!(mget("queue_invariant_repairs"), 0, "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn overload_mode_sheds_the_elephant_and_keeps_accounting() {
    let dir = std::env::temp_dir().join(format!("clumsy-serve-over-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let metrics = dir.join("overload-metrics.json");

    // A small queue and a tight per-flow cap under an elephant mix
    // (one flow carries half the stream): the cap must bind on the
    // elephant while the mice ride in the headroom it can't hog.
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args([
            "serve",
            "--app",
            "crc",
            "--shards",
            "2",
            "--queue-depth",
            "32",
            "--packets",
            "4000",
            "--flows",
            "1024",
            "--pattern",
            "elephant",
            "--flow-queue-cap",
            "4",
            "--shed-policy",
            "adaptive",
            "--rebalance",
            "--shed-timeout-ms",
            "60000",
            "--metrics",
            &metrics.display().to_string(),
        ])
        .output()
        .expect("binary spawns");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(out.status.success(), "{stdout}\n{stderr}");
    assert!(stdout.contains("accounting ok"), "{stdout}");
    assert!(stdout.contains("overload: shed_flow_cap="), "{stdout}");

    // No shard wedged: both made progress.
    let rows = shard_rows(&stdout);
    assert_eq!(rows.len(), 2, "{stdout}");
    assert!(rows.iter().all(|r| r.1 > 0), "a shard wedged: {stdout}");

    // The elephant really is the top talker, and its shed *rate* is at
    // least the mice's (integer cross-multiplication, no float ratios).
    let f = summary_fields(&stdout, "flow shed:");
    let get = |k: &str| *f.get(k).unwrap_or_else(|| panic!("missing {k}: {stdout}"));
    let (e_shed, e_off) = (get("elephant_shed"), get("elephant_offered"));
    let (m_shed, m_off) = (get("mice_shed"), get("mice_offered"));
    assert!(
        e_off * 10 >= (e_off + m_off) * 4,
        "not an elephant: {stdout}"
    );
    assert!(
        e_shed * m_off >= m_shed * e_off,
        "mice shed harder than the elephant: {stdout}"
    );

    // The latency histogram made it into the serve metrics group.
    let text = std::fs::read_to_string(&metrics).expect("metrics written");
    let map = parse_metrics(&text);
    let mget = |k: &str| {
        *map.get(k)
            .unwrap_or_else(|| panic!("metrics lost {k}: {text}"))
    };
    assert!(mget("serve_latency_us_count") > 0, "{text}");
    assert!(text.contains("\"serve_latency_us_buckets\""), "{text}");
    assert!(map.contains_key("packets_shed_flow_cap"), "{text}");
    assert!(map.contains_key("packets_diverted"), "{text}");
    assert!(map.contains_key("drr_deficit_topups"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_panic_restarts_the_shard_and_leaves_siblings_untouched() {
    let (clean, _, ok) = serve_bounded(&[]);
    assert!(ok);
    let clean_rows = shard_rows(&clean);

    let (faulty, stderr, ok) = serve_bounded(&["--inject-panic", "200"]);
    assert!(ok, "a supervised panic must not fail the run: {stderr}");
    assert!(faulty.contains("accounting ok"), "{faulty}");
    assert!(faulty.contains("1 restarts"), "{faulty}");
    let faulty_rows = shard_rows(&faulty);

    // Exactly one shard caught the panic: it abandoned the in-flight
    // packet, restarted, and its post-restart digest diverged (reseeded
    // fault streams). Every sibling is bitwise untouched.
    let mut victims = 0;
    for (c, f) in clean_rows.iter().zip(&faulty_rows) {
        assert_eq!(c.0, f.0, "row order");
        if f.4 > 0 {
            victims += 1;
            assert_eq!(f.4, 1, "one restart: {faulty}");
            assert_eq!(f.3, 1, "one abandoned packet: {faulty}");
            // Consumed = processed + dropped + abandoned: the victim
            // ate the same queue contents, one of them abandoned.
            assert_eq!(c.1 + c.2 + c.3, f.1 + f.2 + f.3, "{faulty}");
        } else {
            assert_eq!(c, f, "sibling shard perturbed by the restart");
        }
    }
    assert_eq!(victims, 1, "exactly one shard owns packet 200: {faulty}");
}
