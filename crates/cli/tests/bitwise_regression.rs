//! Bitwise-reproducibility regression: with every opt-in knob off (no
//! `--fault-targets l2`, no `--detection ecc`, no `--safe-mode`), the
//! simulator must reproduce these exact recorded numbers. The opt-in
//! targets draw *zero* RNG samples when disabled, so the digests must
//! match to the last digit. Any drift here means a disabled knob
//! leaked a random draw or an energy term into the default path.
//!
//! Digest epochs: the pins were re-recorded when the geometric
//! skip-ahead sampler became the default (`--sampler exact` recovers
//! the old per-access stream) and the hot apps moved to batched access
//! runs — both deliberately change the fault arrival stream. The
//! statistical equivalence of the two samplers is asserted separately
//! by `sampler_equivalence.rs`; the batched fast path itself is proven
//! bitwise-inert by `cache_sim`'s fast-on-vs-off tests, so within an
//! epoch these digests still pin every default-path bit.

use std::process::Command;

fn run_json(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(args)
        .output()
        .expect("binary spawns");
    assert!(out.status.success(), "{args:?} failed");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn assert_digest(args: &[&str], pinned: &[&str]) {
    let json = run_json(args);
    for needle in pinned {
        assert!(
            json.contains(needle),
            "pinned digest {needle:?} missing from {args:?}:\n{json}"
        );
    }
}

#[test]
fn undetected_quarter_clock_route_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--json",
        ],
        &[
            "\"erroneous_packets\":120",
            "\"fallibility\":1.4",
            "\"cycles_per_packet\":716.6366666666667",
            "\"nj_per_packet\":2169.226243868281",
            "\"relative_edf2\":1.254073225893946",
            "\"faults_injected\":7,\"faults_detected\":0,\"outcome\":\"sdc\"",
        ],
    );
}

#[test]
fn parity_two_strike_route_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--detection",
            "parity",
            "--strikes",
            "2",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":710.8966666666666",
            "\"nj_per_packet\":2179.871649498062",
            "\"relative_edf2\":0.6496993931314583",
            "\"faults_injected\":7,\"faults_detected\":3,\"outcome\":\"sdc\"",
        ],
    );
}

#[test]
fn dynamic_parity_tl_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "tl",
            "--packets",
            "300",
            "--cr",
            "dynamic",
            "--detection",
            "parity",
            "--strikes",
            "2",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":778.4433333333334",
            "\"nj_per_packet\":2432.0510878481423",
            "\"relative_edf2\":0.9493261181690025",
            "\"faults_injected\":0,\"faults_detected\":0,\"outcome\":\"masked\"",
        ],
    );
}

#[test]
fn byte_parity_three_strike_crc_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "crc",
            "--packets",
            "300",
            "--cr",
            "0.5",
            "--detection",
            "byte-parity",
            "--strikes",
            "3",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":2391.0033333333336",
            "\"nj_per_packet\":7266.0234551058675",
            "\"relative_edf2\":0.5554709090464428",
            "\"faults_injected\":6,\"faults_detected\":5,\"outcome\":\"sdc\"",
        ],
    );
}

#[test]
fn word_recovery_one_strike_md5_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "md5",
            "--packets",
            "200",
            "--cr",
            "0.25",
            "--detection",
            "parity",
            "--strikes",
            "1",
            "--recovery",
            "word",
            "--json",
        ],
        &[
            "\"erroneous_packets\":20",
            "\"fallibility\":1.1",
            "\"cycles_per_packet\":6455.095",
            "\"nj_per_packet\":18471.51202700688",
            "\"relative_edf2\":0.664143538759867",
            "\"faults_injected\":45,\"faults_detected\":35,\"outcome\":\"sdc\"",
        ],
    );
}

#[test]
fn an_inert_l2_cycle_is_rejected_up_front() {
    // `--l2-cycle` without the l2 target used to be a silent no-op,
    // which cost debugging time; it is now a typed error before any
    // simulation runs, so it can never perturb a digest.
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args([
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--l2-cycle",
            "0.25",
            "--json",
        ])
        .output()
        .expect("binary spawns");
    assert!(!out.status.success(), "an inert --l2-cycle must be refused");
    let msg = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        msg.contains("--l2-cycle has no effect without the l2 fault target"),
        "rejection must name the missing target: {msg}"
    );
}

#[test]
fn way_disable_with_persistent_sites_off_matches_the_pinned_digest() {
    // The way-disable escalation machinery is pure bookkeeping: with no
    // persistent-fault process there are no repeated strikes on one
    // slot, zero extra RNG draws, and the digest is bit-for-bit the
    // parity/two-strike pin above.
    assert_digest(
        &[
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--detection",
            "parity",
            "--strikes",
            "way-disable",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":710.8966666666666",
            "\"nj_per_packet\":2179.871649498062",
            "\"relative_edf2\":0.6496993931314583",
            "\"faults_injected\":7,\"faults_detected\":3,\"outcome\":\"sdc\"",
            "\"ways_disabled\":0,\"salvage_writebacks\":0,\"bypass_accesses\":0",
        ],
    );
}
