//! Bitwise-reproducibility regression: with every PR-4 knob off (no
//! `--fault-targets l2`, no `--detection ecc`, no `--safe-mode`), the
//! simulator must reproduce the exact numbers recorded before the L2
//! fault process existed. The opt-in targets draw *zero* RNG samples
//! when disabled, so these digests — captured from the pre-change
//! binary at the default seed — must match to the last digit. Any
//! drift here means a disabled knob leaked a random draw or an energy
//! term into the default path.

use std::process::Command;

fn run_json(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(args)
        .output()
        .expect("binary spawns");
    assert!(out.status.success(), "{args:?} failed");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn assert_digest(args: &[&str], pinned: &[&str]) {
    let json = run_json(args);
    for needle in pinned {
        assert!(
            json.contains(needle),
            "pinned digest {needle:?} missing from {args:?}:\n{json}"
        );
    }
}

#[test]
fn undetected_quarter_clock_route_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--json",
        ],
        &[
            "\"erroneous_packets\":4",
            "\"fallibility\":1.0133333333333334",
            "\"cycles_per_packet\":710.89",
            "\"nj_per_packet\":2151.5514571527433",
            "\"relative_edf2\":0.641246680113165",
            "\"faults_injected\":5,\"faults_detected\":0,\"outcome\":\"sdc\"",
        ],
    );
}

#[test]
fn parity_two_strike_route_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--detection",
            "parity",
            "--strikes",
            "2",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":711.41",
            "\"nj_per_packet\":2181.4405372685374",
            "\"relative_edf2\":0.6340846427547654",
            "\"faults_injected\":5,\"faults_detected\":4,\"outcome\":\"detected_recovered\"",
        ],
    );
}

#[test]
fn dynamic_parity_tl_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "tl",
            "--packets",
            "300",
            "--cr",
            "dynamic",
            "--detection",
            "parity",
            "--strikes",
            "2",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":778.4433333333334",
            "\"nj_per_packet\":2432.0510878481423",
            "\"relative_edf2\":0.9493261181690025",
            "\"faults_injected\":0,\"faults_detected\":0,\"outcome\":\"masked\"",
        ],
    );
}

#[test]
fn byte_parity_three_strike_crc_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "crc",
            "--packets",
            "300",
            "--cr",
            "0.5",
            "--detection",
            "byte-parity",
            "--strikes",
            "3",
            "--json",
        ],
        &[
            "\"cycles_per_packet\":2390.9933333333333",
            "\"nj_per_packet\":7265.980612431873",
            "\"relative_edf2\":0.5481302231981153",
            "\"faults_injected\":2,\"faults_detected\":2,\"outcome\":\"detected_recovered\"",
        ],
    );
}

#[test]
fn word_recovery_one_strike_md5_is_unchanged() {
    assert_digest(
        &[
            "run",
            "--app",
            "md5",
            "--packets",
            "200",
            "--cr",
            "0.25",
            "--detection",
            "parity",
            "--strikes",
            "1",
            "--recovery",
            "word",
            "--json",
        ],
        &[
            "\"erroneous_packets\":14",
            "\"fallibility\":1.07",
            "\"cycles_per_packet\":6454.72",
            "\"nj_per_packet\":18470.35265200688",
            "\"relative_edf2\":0.6345044545408399",
            "\"faults_injected\":43,\"faults_detected\":30,\"outcome\":\"sdc\"",
        ],
    );
}

#[test]
fn an_inert_l2_cycle_does_not_perturb_the_digest() {
    // `--l2-cycle` without the l2 target must be a pure no-op: same
    // digest as the pinned run above.
    assert_digest(
        &[
            "run",
            "--app",
            "route",
            "--packets",
            "300",
            "--cr",
            "0.25",
            "--l2-cycle",
            "0.25",
            "--json",
        ],
        &[
            "\"nj_per_packet\":2151.5514571527433",
            "\"relative_edf2\":0.641246680113165",
            "\"faults_injected\":5,\"faults_detected\":0,\"outcome\":\"sdc\"",
        ],
    );
}
