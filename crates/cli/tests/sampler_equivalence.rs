//! Statistical equivalence of the two fault samplers.
//!
//! The geometric skip-ahead sampler (the default) draws inter-arrival
//! gaps and fast-forwards fault-free stretches; `--sampler exact` keeps
//! the original per-access Bernoulli stream. The two consume the RNG
//! differently, so individual runs differ bit-for-bit — but they model
//! the same per-access fault probability, so over many fixed-seed
//! trials every outcome-taxonomy rate (masked / corrected / recovered /
//! fatal / SDC / recovery-failed) must agree to within binomial noise.
//!
//! The bound is a pooled two-proportion z-test at z = 3.29 (two-sided
//! p ≈ 0.001) plus a two-count absolute slack, evaluated at fixed
//! seeds: the test is deterministic, and the margin was checked against
//! the recorded counts when the pins were laid down. A real sampler bug
//! (dropped arrivals, a doubled rate, a width mix-up) shifts rates by
//! far more than this margin at these fault rates.

use std::process::Command;

const TRIALS: u64 = 80;

/// Outcome-taxonomy counts parsed from one multi-trial `run --json`.
#[derive(Debug)]
struct Taxonomy {
    counts: Vec<(&'static str, u64)>,
}

const CATEGORIES: [&str; 6] = [
    "trials_masked",
    "trials_corrected",
    "trials_detected_recovered",
    "trials_detected_fatal",
    "trials_sdc",
    "trials_recovery_failed",
];

fn run_taxonomy(app_args: &[&str], sampler: &str) -> Taxonomy {
    let mut args = vec!["run"];
    args.extend_from_slice(app_args);
    args.extend_from_slice(&[
        "--packets",
        "200",
        "--trials",
        "80",
        "--sampler",
        sampler,
        "--json",
    ]);
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(&args)
        .output()
        .expect("binary spawns");
    assert!(out.status.success(), "{args:?} failed");
    let json = String::from_utf8_lossy(&out.stdout).into_owned();
    let counts = CATEGORIES
        .iter()
        .map(|cat| {
            let needle = format!("\"{cat}\":");
            let at = json.find(&needle).unwrap_or_else(|| {
                panic!("{cat} missing from {args:?} output:\n{json}");
            });
            let digits: String = json[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            (*cat, digits.parse::<u64>().expect("count parses"))
        })
        .collect();
    Taxonomy { counts }
}

/// Asserts each category's rate matches between the two samplers to
/// within a pooled binomial bound.
fn assert_rates_agree(config: &str, skip_ahead: &Taxonomy, exact: &Taxonomy) {
    let n = TRIALS as f64;
    for ((cat, a), (_, b)) in skip_ahead.counts.iter().zip(&exact.counts) {
        let (x1, x2) = (*a as f64, *b as f64);
        let pooled = (x1 + x2) / (2.0 * n);
        let sd = (pooled * (1.0 - pooled) * 2.0 / n).sqrt();
        // z = 3.29 (~0.1% two-sided) plus two trials of absolute slack
        // so all-or-nothing categories with a single stray count pass.
        let bound = 3.29 * sd * n + 2.0;
        let diff = (x1 - x2).abs();
        assert!(
            diff <= bound,
            "{config}: {cat} rates diverge between samplers: \
             skip-ahead {a}/{TRIALS} vs exact {b}/{TRIALS} \
             (|diff| {diff:.0} > bound {bound:.1})"
        );
    }
    // Both samplers must classify every trial: the counts partition the
    // trial set, so a lost trial shows up here even if rates agree.
    for t in [skip_ahead, exact] {
        let total: u64 = t.counts.iter().map(|(_, c)| c).sum();
        assert_eq!(total, TRIALS, "{config}: taxonomy does not sum to trials");
    }
}

fn check(config_name: &str, app_args: &[&str]) {
    let skip_ahead = run_taxonomy(app_args, "skip-ahead");
    let exact = run_taxonomy(app_args, "exact");
    assert_rates_agree(config_name, &skip_ahead, &exact);
}

#[test]
fn route_parity_two_strike_rates_agree() {
    check(
        "route parity/two-strike @ 0.25",
        &[
            "--app",
            "route",
            "--cr",
            "0.25",
            "--detection",
            "parity",
            "--strikes",
            "2",
        ],
    );
}

#[test]
fn crc_byte_parity_three_strike_rates_agree() {
    check(
        "crc byte-parity/three-strike @ 0.25",
        &[
            "--app",
            "crc",
            "--cr",
            "0.25",
            "--detection",
            "byte-parity",
            "--strikes",
            "3",
        ],
    );
}

#[test]
fn md5_word_recovery_rates_agree() {
    check(
        "md5 parity/one-strike word recovery @ 0.5",
        &[
            "--app",
            "md5",
            "--cr",
            "0.5",
            "--detection",
            "parity",
            "--strikes",
            "1",
            "--recovery",
            "word",
        ],
    );
}
