//! End-to-end tests spawning the actual `clumsy` binary.

use std::process::Command;

fn clumsy(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(args)
        .output()
        .expect("binary spawns");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_help() {
    let (stdout, _, ok) = clumsy(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn run_produces_a_report() {
    let (stdout, _, ok) = clumsy(&[
        "run",
        "--app",
        "tl",
        "--packets",
        "80",
        "--cr",
        "0.5",
        "--detection",
        "parity",
    ]);
    assert!(ok);
    assert!(stdout.contains("relative EDF^2"));
    assert!(stdout.contains("80/80 packets"));
}

#[test]
fn run_json_is_machine_readable() {
    let (stdout, _, ok) = clumsy(&["run", "--app", "crc", "--packets", "40", "--json"]);
    assert!(ok);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"app\":\"crc\""));
    assert!(line.contains("\"packets_completed\":40"));
}

#[test]
fn bad_option_exits_nonzero_with_message() {
    let (_, stderr, ok) = clumsy(&["run", "--cr", "2.0"]);
    assert!(!ok);
    assert!(stderr.contains("--cr"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let (_, stderr, ok) = clumsy(&["explode"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn model_command_prints_operating_points() {
    let (stdout, _, ok) = clumsy(&["model"]);
    assert!(ok);
    assert!(stdout.contains("P_E/bit"));
}

#[test]
fn watchdog_flag_is_accepted() {
    let (stdout, _, ok) = clumsy(&[
        "run",
        "--app",
        "tl",
        "--packets",
        "60",
        "--cr",
        "0.25",
        "--watchdog",
    ]);
    assert!(ok, "{stdout}");
}
