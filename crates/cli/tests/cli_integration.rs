//! End-to-end tests spawning the actual `clumsy` binary.

use std::process::Command;

fn clumsy(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(args)
        .output()
        .expect("binary spawns");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_arguments_prints_help() {
    let (stdout, _, ok) = clumsy(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn run_produces_a_report() {
    let (stdout, _, ok) = clumsy(&[
        "run",
        "--app",
        "tl",
        "--packets",
        "80",
        "--cr",
        "0.5",
        "--detection",
        "parity",
    ]);
    assert!(ok);
    assert!(stdout.contains("relative EDF^2"));
    assert!(stdout.contains("80/80 packets"));
}

#[test]
fn run_json_is_machine_readable() {
    let (stdout, _, ok) = clumsy(&["run", "--app", "crc", "--packets", "40", "--json"]);
    assert!(ok);
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'));
    assert!(line.contains("\"app\":\"crc\""));
    assert!(line.contains("\"packets_completed\":40"));
}

#[test]
fn bad_option_exits_nonzero_with_message() {
    let (_, stderr, ok) = clumsy(&["run", "--cr", "2.0"]);
    assert!(!ok);
    assert!(stderr.contains("--cr"));
}

#[test]
fn unknown_command_exits_nonzero() {
    let (_, stderr, ok) = clumsy(&["explode"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
}

#[test]
fn model_command_prints_operating_points() {
    let (stdout, _, ok) = clumsy(&["model"]);
    assert!(ok);
    assert!(stdout.contains("P_E/bit"));
}

/// Kill a durable campaign mid-run with SIGTERM, resume it, and require
/// the final CSV to be byte-for-byte what an uninterrupted run writes.
/// Timing-tolerant: if the campaign wins the race and finishes before
/// the signal lands, the bitwise comparison still applies.
#[cfg(unix)]
#[test]
fn durable_campaign_survives_sigterm_and_resumes_bitwise_identically() {
    let dir = std::env::temp_dir().join(format!("clumsy-kill-resume-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let journal = dir.join("campaign.jsonl");
    let clean_csv = dir.join("clean.csv");
    let resumed_csv = dir.join("resumed.csv");
    let base = |csv: &std::path::Path| -> Vec<String> {
        [
            "campaign",
            "--app",
            "route",
            "--packets",
            "900",
            "--trials",
            "2",
            "--jobs",
            "2",
            "--csv",
        ]
        .iter()
        .map(ToString::to_string)
        .chain([csv.display().to_string()])
        .collect()
    };

    // Reference: one uninterrupted, non-durable run.
    let clean_args = base(&clean_csv);
    let (_, stderr, ok) = clumsy(&clean_args.iter().map(String::as_str).collect::<Vec<_>>());
    assert!(ok, "clean run failed: {stderr}");
    let clean = std::fs::read(&clean_csv).unwrap();

    // The same grid, journaled, with a SIGTERM landing mid-run.
    let mut args = base(&resumed_csv);
    args.extend([
        "--durable".to_string(),
        "--journal".to_string(),
        journal.display().to_string(),
    ]);
    let mut child = Command::new(env!("CARGO_BIN_EXE_clumsy"))
        .args(&args)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary spawns");
    std::thread::sleep(std::time::Duration::from_millis(300));
    let _ = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status();
    let status = child.wait().unwrap();

    match status.code() {
        Some(3) => {
            // Interrupted and resumable: finish it with --resume.
            assert!(journal.exists(), "interrupt must leave the journal");
            args.push("--resume".to_string());
            let out = Command::new(env!("CARGO_BIN_EXE_clumsy"))
                .args(&args)
                .output()
                .unwrap();
            assert!(
                out.status.success(),
                "resume failed: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(!journal.exists(), "a completed run retires its journal");
        }
        Some(0) => {} // finished before the signal; the comparison below still holds
        other => panic!("unexpected exit status {other:?}"),
    }
    let resumed = std::fs::read(&resumed_csv).unwrap();
    assert_eq!(
        clean, resumed,
        "resumed CSV must be bitwise identical to a clean run"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watchdog_flag_is_accepted() {
    let (stdout, _, ok) = clumsy(&[
        "run",
        "--app",
        "tl",
        "--packets",
        "60",
        "--cr",
        "0.25",
        "--watchdog",
    ]);
    assert!(ok, "{stdout}");
}
