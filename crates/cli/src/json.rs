//! A tiny JSON writer (the workspace deliberately avoids a JSON
//! dependency; reports are flat and simple).

use std::fmt::Write as _;

/// Builds one JSON object from typed fields, correctly escaped.
///
/// # Examples
///
/// ```ignore
/// let mut o = JsonObject::new();
/// o.string("app", "route").number("fallibility", 1.01);
/// assert_eq!(o.finish(), r#"{"app":"route","fallibility":1.01}"#);
/// ```
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// Creates an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn sep(&mut self) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
    }

    /// Adds a string field.
    pub fn string(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", escape(key), escape(value));
        self
    }

    /// Adds a numeric field (floats print shortest-round-trip; NaN and
    /// infinities become `null` per JSON rules).
    pub fn number(&mut self, key: &str, value: f64) -> &mut Self {
        self.sep();
        if value.is_finite() {
            let _ = write!(self.body, "{}:{}", escape(key), value);
        } else {
            let _ = write!(self.body, "{}:null", escape(key));
        }
        self
    }

    /// Adds an integer field.
    pub fn integer(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", escape(key), value);
        self
    }

    /// Adds a boolean field.
    pub fn boolean(&mut self, key: &str, value: bool) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", escape(key), value);
        self
    }

    /// Adds a raw (pre-serialized) field — for nested objects/arrays.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.sep();
        let _ = write!(self.body, "{}:{}", escape(key), json);
        self
    }

    /// Serializes the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Serializes a list of pre-serialized values as a JSON array.
pub fn array<I: IntoIterator<Item = String>>(items: I) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

/// Escapes a string per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let mut o = JsonObject::new();
        o.string("app", "route")
            .number("fallibility", 1.25)
            .integer("packets", 2000)
            .boolean("fatal", false);
        assert_eq!(
            o.finish(),
            r#"{"app":"route","fallibility":1.25,"packets":2000,"fatal":false}"#
        );
    }

    #[test]
    fn escapes_special_characters() {
        let mut o = JsonObject::new();
        o.string("k", "a\"b\\c\nd\te\u{1}");
        assert_eq!(o.finish(), r#"{"k":"a\"b\\c\nd\te\u0001"}"#);
    }

    #[test]
    fn non_finite_numbers_become_null() {
        let mut o = JsonObject::new();
        o.number("x", f64::NAN).number("y", f64::INFINITY);
        assert_eq!(o.finish(), r#"{"x":null,"y":null}"#);
    }

    #[test]
    fn arrays_join_items() {
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(Vec::<String>::new()), "[]");
    }

    #[test]
    fn nested_raw_fields() {
        let mut inner = JsonObject::new();
        inner.integer("a", 1);
        let mut outer = JsonObject::new();
        outer.raw("inner", &inner.finish());
        assert_eq!(outer.finish(), r#"{"inner":{"a":1}}"#);
    }

    #[test]
    fn empty_object_is_braces() {
        assert_eq!(JsonObject::new().finish(), "{}");
    }
}
