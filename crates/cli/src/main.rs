//! `clumsy` — command-line interface to the clumsy packet-processor
//! simulator (reproduction of MICRO-37 2004's "A Case for Clumsy Packet
//! Processors").
//!
//! ```text
//! clumsy run --app route --cr 0.5 --detection parity --strikes 2
//! clumsy sweep --app md5 --packets 5000
//! clumsy model --beta 0.2
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod json;

use args::Args;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let parsed = if argv.is_empty() {
        Ok(Args::parse(["help".to_string()]).expect("help parses"))
    } else {
        Args::parse(argv)
    };
    let result = parsed
        .map_err(commands::CliError::from)
        .and_then(|args| commands::dispatch(&args));
    match result {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("error: {e}");
            // Shared exit-code contract (see clumsy_bench): 1 is a
            // runtime failure, 2 a usage error, and 3 an interrupted
            // durable campaign — not a usage error, since it left a
            // resumable journal behind and scripts driving the CLI
            // distinguish "resume me" (3) from "you did it wrong" (2).
            let code = match &e {
                commands::CliError::Interrupted { .. } => clumsy_bench::EXIT_INTERRUPTED,
                commands::CliError::Io { .. } => clumsy_bench::EXIT_FAILURES,
                commands::CliError::Journal(err) => clumsy_bench::journal_exit_code(err),
                commands::CliError::Args(_)
                | commands::CliError::UnknownCommand(_)
                | commands::CliError::InertOption { .. } => clumsy_bench::EXIT_USAGE,
            };
            std::process::exit(code);
        }
    }
}
