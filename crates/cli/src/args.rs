//! Minimal dependency-free argument parsing for the `clumsy` CLI.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors produced while parsing or interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand was given.
    MissingCommand,
    /// An option was given without a value.
    MissingValue(String),
    /// A value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An option is not recognized by the subcommand.
    Unknown(String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand (try `clumsy help`)"),
            ArgError::MissingValue(o) => write!(f, "option --{o} needs a value"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => write!(f, "--{option} {value:?}: expected {expected}"),
            ArgError::Unknown(o) => write!(f, "unknown option --{o}"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Option names that are boolean flags (no value).
const FLAGS: &[&str] = &[
    "watchdog",
    "json",
    "quantize-off",
    "extended",
    "durable",
    "resume",
    "safe-mode",
    "progress",
    "rebalance",
];

impl Args {
    /// Parses a raw argument vector (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on a missing subcommand or a dangling
    /// option.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ArgError> {
        let mut it = argv.into_iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(ArgError::Unknown(arg));
            };
            if FLAGS.contains(&name) {
                flags.push(name.to_string());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
            options.insert(name.to_string(), value);
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// The subcommand.
    pub fn command(&self) -> &str {
        &self.command
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A raw string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A parsed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: name.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }

    /// Rejects options outside `allowed` (flags are checked too).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Unknown`] for the first unexpected option.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError::Unknown(key.clone()));
            }
        }
        for flag in &self.flags {
            if !allowed.contains(&flag.as_str()) {
                return Err(ArgError::Unknown(flag.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, ArgError> {
        Args::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse(&["run", "--app", "route", "--cr", "0.5", "--json"]).unwrap();
        assert_eq!(a.command(), "run");
        assert_eq!(a.get("app"), Some("route"));
        assert_eq!(a.get("cr"), Some("0.5"));
        assert!(a.flag("json"));
        assert!(!a.flag("watchdog"));
    }

    #[test]
    fn missing_command_is_an_error() {
        assert_eq!(parse(&[]), Err(ArgError::MissingCommand));
    }

    #[test]
    fn dangling_option_is_an_error() {
        assert_eq!(
            parse(&["run", "--app"]),
            Err(ArgError::MissingValue("app".into()))
        );
    }

    #[test]
    fn positional_after_command_is_rejected() {
        assert!(matches!(
            parse(&["run", "route"]),
            Err(ArgError::Unknown(_))
        ));
    }

    #[test]
    fn get_parsed_defaults_and_validates() {
        let a = parse(&["run", "--packets", "12"]).unwrap();
        assert_eq!(a.get_parsed("packets", 5usize, "a count").unwrap(), 12);
        assert_eq!(a.get_parsed("trials", 3u32, "a count").unwrap(), 3);
        let bad = parse(&["run", "--packets", "dog"]).unwrap();
        assert!(bad.get_parsed("packets", 5usize, "a count").is_err());
    }

    #[test]
    fn expect_only_flags_unknown_options() {
        let a = parse(&["run", "--bogus", "1"]).unwrap();
        assert_eq!(
            a.expect_only(&["app"]),
            Err(ArgError::Unknown("bogus".into()))
        );
    }

    #[test]
    fn errors_display_helpfully() {
        let e = ArgError::BadValue {
            option: "cr".into(),
            value: "fast".into(),
            expected: "a cycle time",
        };
        assert!(format!("{e}").contains("--cr"));
        assert!(format!("{e}").contains("cycle time"));
    }
}
