//! The `clumsy` subcommands.

use crate::args::{ArgError, Args};
use crate::json::{array, JsonObject};
use cache_sim::{
    DetectionScheme, FaultTargets, RecoveryGranularity, StrikePolicy, WayDisablePolicy,
};
use clumsy_core::campaign::grid_hash;
use clumsy_core::experiment::{paper_schemes, run_config_on_trace, ExperimentOptions, GridPoint};
use clumsy_core::{
    interrupt, run_campaign_durable, run_campaign_instrumented, run_campaign_on, run_serve,
    CampaignConfig, ClumsyConfig, DurableOptions, DynamicConfig, FrequencyPlan, JournalError,
    ProgressReporter, RebalanceConfig, SafeModeConfig, ServeConfig, ShedPolicy, Stopwatch,
    Telemetry, PAPER_CYCLE_TIMES,
};
use energy_model::EdfMetric;
use fault_model::{FaultProbabilityModel, PersistentSiteConfig, VoltageSwingCurve};
use netbench::{AppKind, Trace, TraceConfig, TrafficPattern};

/// Top-level CLI error.
#[derive(Debug)]
pub enum CliError {
    /// Argument problem.
    Args(ArgError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// An output file could not be written.
    Io {
        /// The path that failed.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// The campaign journal could not be read, written, or matched
    /// against the requested run.
    Journal(JournalError),
    /// An option was given that the rest of the command line makes
    /// unobservable. Accepting it silently has already cost debugging
    /// time (an `--l2-cycle` with the `l2` target off changes nothing),
    /// so an inert option is an error, not a shrug.
    InertOption {
        /// The option that would have no effect.
        option: String,
        /// What the command line must also say for it to matter.
        requires: String,
    },
    /// A durable campaign was interrupted (SIGINT/SIGTERM) before all
    /// jobs ran; the journal makes it resumable. `main` prints the
    /// partial output and exits with status 3 rather than 2.
    Interrupted {
        /// Progress summary for the user (`done/total jobs`).
        partial: String,
        /// The journal to resume from.
        journal: String,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown command {c:?} (try `clumsy help`)")
            }
            CliError::Io { path, source } => write!(f, "cannot write {path:?}: {source}"),
            CliError::InertOption { option, requires } => write!(
                f,
                "--{option} has no effect without {requires}; drop the flag or enable the target"
            ),
            CliError::Journal(e) => write!(f, "{e}"),
            CliError::Interrupted { partial, journal } => write!(
                f,
                "interrupted after {partial} jobs; rerun with --resume to finish ({journal})"
            ),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Dispatches a parsed command line, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands or invalid options.
pub fn dispatch(args: &Args) -> Result<String, CliError> {
    match args.command() {
        "run" => run(args),
        "sweep" => sweep(args),
        "campaign" => campaign(args),
        "serve" => serve(args),
        "trace" => trace_info(args),
        "model" => model(args),
        "apps" => Ok(apps_listing()),
        "repro" => repro(args),
        "help" | "--help" | "-h" => Ok(help_text()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

/// The `help` text.
pub fn help_text() -> String {
    "\
clumsy — reliability-aware cache over-clocking simulator (MICRO-37 2004)

USAGE:
    clumsy <COMMAND> [OPTIONS]

COMMANDS:
    run      run one application on one design point
    sweep    design-space grid (schemes x clocks) for one application
    campaign crash-isolated outcome-taxonomy sweep
             (masked/corrected/recovered/fatal/SDC/recovery-failed)
    serve    supervised, sharded packet service over an unbounded stream:
             never wedges — sheds under backpressure, restarts panicked
             shards, drains cleanly on SIGTERM (exit 0)
    repro    regenerate a paper experiment (table1 | fig8 | fig12b)
    trace    describe the synthetic packet trace
    model    print the fault-model operating points
    apps     list available applications
    help     show this text

RUN OPTIONS:
    --app <name>          application (default route; see `clumsy apps`)
    --cr <0..1|dynamic>   relative cycle time or the dynamic plan (default 1.0)
    --detection <d>       none | parity | byte-parity | ecc (default none)
    --strikes <n>         strike policy: a count in 1..=8 (default 2), or
                          way-disable to escalate repeated strikes on one
                          slot into mapping the way out and running degraded
    --recovery <g>        line | word (default line)
    --watchdog            contain fatal errors by dropping the packet
    --fault-targets <t>   '+'-joined subset of data/tag/parity/l2, or all
                          (default data; l2 makes recovery itself fallible)
    --l2-cycle <0..1>     relative L2 cycle time; rejected unless the l2
                          fault target is on (default 1.0)
    --persistent <p>      sticky fault-site activation probability in (0, 1];
                          opt-in permanent-fault process (default off)
    --safe-mode           absolute fault-rate clamp for --cr dynamic: storm
                          epochs drop to Cr=1 and hold before re-climbing
    --packets <n>         trace length (default 2000)
    --trials <n>          fault-seed trials (default 1)
    --seed <n>            base fault seed (default 24301)
    --sampler <m>         skip-ahead (geometric fast path; default) | exact
    --metrics <path>      write telemetry counters as JSON (atomic; results
                          stay bitwise identical with or without it)
    --json                machine-readable output

SWEEP OPTIONS: --app, --packets, --trials, --seed, --json

CAMPAIGN OPTIONS:
    --app <name|all>      one application or the whole Table I set (default all)
    --fault-targets <t>   '+'-joined subset of data/tag/parity/l2, or all
                          (default data)
    --l2-cycle <0..1>     relative L2 cycle time; rejected unless the l2
                          fault target is on (default 1.0)
    --strikes way-disable add the way-disable degraded scheme as a fifth
                          row of the recovery-scheme grid
    --persistent <p>      sticky fault-site probability applied to every cell
    --deadline-ms <n>     per-trial wall-clock budget (default: none)
    --retries <n>         reseeded retries per failing trial (default 1)
    --csv <path>          also write the per-cell counts as CSV (atomic)
    --durable             journal completed trials; SIGINT/SIGTERM exits 3
                          leaving a resumable journal
    --resume              replay the journal, run only the remaining jobs
                          (refused if seed/trials/packets/grid changed)
    --journal <path>      journal file (default results/journal/campaign-<grid>.jsonl)
    --metrics <path>      write telemetry counters as JSON (atomic; results
                          stay bitwise identical with or without it)
    --metrics-interval <s> also rewrite the --metrics file atomically every
                          s seconds while the campaign runs
    --progress            periodic progress/ETA lines on stderr
    --packets/--trials/--seed/--jobs/--json as for repro

SERVE OPTIONS:
    --shards <n>          parallel shards, one machine pair + controller +
                          fault streams each, selected by flow hash (default 4)
    --queue-depth <n>     bounded ingress queue per shard (default 1024)
    --packets <n>         stop after n generated packets; 0 = serve until
                          SIGINT/SIGTERM (default 0)
    --flows <n>           synthetic flow population (default: paper trace)
    --shed-timeout-ms <n> how long a full queue exerts backpressure before
                          the packet is shed instead (default 100)
    --shed-policy <p>     fixed | adaptive: adaptive scales the shed deadline
                          by smoothed queue occupancy, so a persistently full
                          queue sheds early instead of stacking the pump a
                          full timeout deep (default fixed)
    --flow-queue-cap <n>  per-flow slots inside each ingress queue; enables
                          deficit-round-robin dequeue so an elephant flow is
                          shed at its cap instead of starving the mice (must
                          be below --queue-depth; default off)
    --rebalance           divert flows making their first appearance away
                          from persistently hot shards to the least-loaded
                          one (needs --shards >= 2; per-flow ordering is
                          preserved — only never-seen flows move)
    --rebalance-window <n> consecutive hot observations before diversion
                          starts (needs --rebalance; default 64)
    --rebalance-highwater <f> occupancy fraction in (0,1] at which a shard
                          counts as hot (needs --rebalance; default 0.875)
    --control-flows <n>   mark the n numerically lowest flow hashes as
                          control class: exempt from the flow cap, admitted
                          on a full queue by shedding the newest data-class
                          entry, never the reverse (must be below --flows)
    --slo-p99-us <n>      latency SLO: while the sliding p99 of the
                          enqueue→verdict histogram exceeds n microseconds,
                          data-class packets shed immediately on a full
                          queue instead of riding out the backpressure
                          timeout (control keeps the full budget)
    --pattern <m>         traffic mix: skewed | uniform | single-flow |
                          elephant (one flow carries half the stream;
                          default skewed)
    --inject-panic <id>   test hook: the owning shard panics once on this
                          packet id, exercising supervisor restart
    --app/--cr/--detection/--strikes/--recovery/--fault-targets/--l2-cycle/
    --persistent/--safe-mode/--sampler/--seed as for run (fatal packet
    errors always drop the packet: serving never wedges)
    --metrics/--metrics-interval/--progress as for campaign (progress lines
    report rate without ETA: the stream is unbounded)
    first SIGINT/SIGTERM drains and exits 0; a second aborts immediately

TRACE OPTIONS: --packets, --seed
MODEL OPTIONS: --beta <f> (default calibrated 0.20)
REPRO OPTIONS: --experiment <table1|fig8|fig12b>, --packets, --trials, --seed,
               --jobs <n> (parallel workers; default CLUMSY_JOBS or all cores)
"
    .to_string()
}

fn apps_listing() -> String {
    let mut out = String::from("paper applications (Table I):\n");
    for k in AppKind::all() {
        out.push_str(&format!("  {k}\n"));
    }
    out.push_str("extensions:\n  adpcm (media codec, §4 generality claim)\n");
    out
}

/// Parses the `--jobs` option into an engine: an explicit worker count
/// when given, otherwise the `CLUMSY_JOBS`/machine-size default.
fn parse_engine(args: &Args) -> Result<clumsy_core::Engine, CliError> {
    match args.get("jobs") {
        None => Ok(clumsy_core::Engine::from_env()),
        Some(v) => {
            let jobs: usize = v.parse().map_err(|_| {
                CliError::Args(ArgError::BadValue {
                    option: "jobs".into(),
                    value: v.into(),
                    expected: "a worker count of at least 1",
                })
            })?;
            if jobs == 0 {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "jobs".into(),
                    value: v.into(),
                    expected: "a worker count of at least 1",
                }));
            }
            Ok(clumsy_core::Engine::with_jobs(jobs))
        }
    }
}

fn repro(args: &Args) -> Result<String, CliError> {
    use clumsy_core::experiment::{edf_average_on, fatal_study_on, table1_on};
    args.expect_only(&["experiment", "packets", "trials", "seed", "jobs"])?;
    let (trace, opts) = parse_trace(args)?;
    let engine = parse_engine(args)?;
    let which = args.get("experiment").unwrap_or("table1");
    let mut out = String::new();
    match which {
        "table1" => {
            for row in table1_on(&engine, &trace, &opts) {
                out.push_str(&format!("{row}\n"));
            }
        }
        "fig8" => {
            out.push_str("fatal error probability (no detection):\n");
            out.push_str(&format!(
                "{:>6} {:>10} {:>10} {:>10} {:>10}\n",
                "app", "Cr=1.00", "Cr=0.75", "Cr=0.50", "Cr=0.25"
            ));
            for r in fatal_study_on(&engine, &trace, &opts) {
                out.push_str(&format!(
                    "{:>6} {:>10.2e} {:>10.2e} {:>10.2e} {:>10.2e}\n",
                    r.app, r.per_cr[0], r.per_cr[1], r.per_cr[2], r.per_cr[3]
                ));
            }
        }
        "fig12b" => {
            out.push_str("average relative energy-delay^2-fallibility^2:\n");
            for b in edf_average_on(&engine, &opts) {
                out.push_str(&format!(
                    "{:>13} {:>8} {:.3} (+/-{:.3})\n",
                    b.scheme, b.freq, b.relative_edf, b.relative_edf_stddev
                ));
            }
        }
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "experiment".into(),
                value: other.into(),
                expected: "table1 | fig8 | fig12b",
            }))
        }
    }
    Ok(out)
}

fn parse_app(args: &Args) -> Result<AppKind, CliError> {
    let name = args.get("app").unwrap_or("route");
    AppKind::extended()
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| {
            CliError::Args(ArgError::BadValue {
                option: "app".into(),
                value: name.into(),
                expected: "one of crc/tl/route/drr/nat/md5/url/adpcm",
            })
        })
}

fn parse_config(args: &Args) -> Result<ClumsyConfig, CliError> {
    let mut cfg = ClumsyConfig::baseline();
    cfg = match args.get("detection").unwrap_or("none") {
        "none" => cfg.with_detection(DetectionScheme::None),
        "parity" => cfg.with_detection(DetectionScheme::Parity),
        "byte-parity" => cfg.with_detection(DetectionScheme::ParityPerByte),
        "ecc" => cfg.with_detection(DetectionScheme::Secded),
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "detection".into(),
                value: other.into(),
                expected: "none | parity | byte-parity | ecc",
            }))
        }
    };
    cfg = match args.get("strikes") {
        // The fourth reliability scheme: keep the two-strike refetch
        // policy, but escalate repeated strikes on one physical slot to
        // mapping the way out and running degraded.
        Some("way-disable") => cfg
            .with_strikes(StrikePolicy::two_strike())
            .with_way_disable(WayDisablePolicy::default_policy()),
        _ => {
            let strikes: u8 =
                args.get_parsed("strikes", 2, "a strike count in 1..=8, or way-disable")?;
            if !(1..=8).contains(&strikes) {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "strikes".into(),
                    value: strikes.to_string(),
                    expected: "a strike count in 1..=8, or way-disable",
                }));
            }
            cfg.with_strikes(StrikePolicy::with_strikes(strikes))
        }
    };
    cfg = match args.get("recovery").unwrap_or("line") {
        "line" => cfg.with_recovery(RecoveryGranularity::Line),
        "word" => cfg.with_recovery(RecoveryGranularity::Word),
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "recovery".into(),
                value: other.into(),
                expected: "line | word",
            }))
        }
    };
    cfg = match args.get("cr").unwrap_or("1.0") {
        "dynamic" => cfg.with_dynamic(DynamicConfig::paper()),
        v => {
            let cr: f64 = v.parse().map_err(|_| {
                CliError::Args(ArgError::BadValue {
                    option: "cr".into(),
                    value: v.into(),
                    expected: "a cycle time in (0, 1] or `dynamic`",
                })
            })?;
            if !(cr > 0.0 && cr <= 1.0) {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "cr".into(),
                    value: v.into(),
                    expected: "a cycle time in (0, 1] or `dynamic`",
                }));
            }
            cfg.with_static_cycle(cr)
        }
    };
    if args.flag("watchdog") {
        cfg = cfg.with_watchdog();
    }
    if args.flag("quantize-off") {
        cfg.mem.quantize_latency = false;
    }
    cfg = match args.get("sampler").unwrap_or("skip-ahead") {
        "exact" => cfg.with_sampling(fault_model::SamplingMode::PerAccess),
        "skip-ahead" => cfg.with_sampling(fault_model::SamplingMode::SkipAhead),
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "sampler".into(),
                value: other.into(),
                expected: "exact | skip-ahead",
            }))
        }
    };
    let targets = parse_targets(args)?;
    cfg = cfg.with_fault_targets(targets);
    cfg = cfg.with_l2_cycle(parse_l2_cycle(args, targets)?);
    if let Some(p) = parse_persistent(args, targets)? {
        cfg = cfg.with_persistent(p);
    }
    if args.flag("safe-mode") {
        if !matches!(cfg.frequency, FrequencyPlan::Dynamic(_)) {
            return Err(CliError::Args(ArgError::BadValue {
                option: "safe-mode".into(),
                value: args.get("cr").unwrap_or("1.0").into(),
                expected: "--cr dynamic (safe mode extends the dynamic controller)",
            }));
        }
        cfg = cfg.with_dynamic(DynamicConfig::paper().with_safe_mode(SafeModeConfig::default()));
    }
    cfg = cfg.with_seed(args.get_parsed("seed", 24301u64, "an integer seed")?);
    Ok(cfg)
}

fn parse_trace(args: &Args) -> Result<(Trace, ExperimentOptions), CliError> {
    let packets: usize = args.get_parsed("packets", 2000, "a packet count")?;
    let trials: u32 = args.get_parsed("trials", 1, "a trial count")?;
    let seed: u64 = args.get_parsed("seed", 24301, "an integer seed")?;
    let trace_cfg = TraceConfig::paper().with_packets(packets.max(1));
    let opts = ExperimentOptions {
        trace: trace_cfg.clone(),
        trials: trials.max(1),
        seed,
    };
    Ok((trace_cfg.generate(), opts))
}

const RUN_OPTIONS: &[&str] = &[
    "app",
    "cr",
    "detection",
    "strikes",
    "recovery",
    "watchdog",
    "packets",
    "trials",
    "seed",
    "json",
    "quantize-off",
    "sampler",
    "fault-targets",
    "l2-cycle",
    "safe-mode",
    "persistent",
    "metrics",
];

/// A telemetry block when `--metrics` or `--progress` asked for one.
/// Created here (not inside the simulation) so the default path runs
/// with telemetry entirely absent — bitwise inertness by construction.
fn parse_telemetry(args: &Args) -> Option<std::sync::Arc<Telemetry>> {
    (args.get("metrics").is_some() || args.flag("progress"))
        .then(|| std::sync::Arc::new(Telemetry::new()))
}

/// Writes the schema-stable metrics JSON to the `--metrics` path via
/// [`clumsy_core::atomic_write`], if both the flag and a telemetry
/// block are present.
fn write_metrics(
    args: &Args,
    telemetry: Option<&std::sync::Arc<Telemetry>>,
) -> Result<(), CliError> {
    if let (Some(path), Some(t)) = (args.get("metrics"), telemetry) {
        clumsy_core::atomic_write(std::path::Path::new(path), t.metrics_json().as_bytes())
            .map_err(|source| CliError::Io {
                path: path.to_string(),
                source,
            })?;
    }
    Ok(())
}

/// `--metrics-interval <secs>`: starts a background
/// [`clumsy_core::MetricsFlusher`] rewriting the `--metrics` file
/// atomically every interval, so long campaigns and serves can be
/// watched (and post-mortemed) mid-flight. Inert without `--metrics`,
/// so that combination is a typed [`CliError::InertOption`].
fn parse_metrics_flusher(
    args: &Args,
    telemetry: Option<&std::sync::Arc<Telemetry>>,
) -> Result<Option<clumsy_core::MetricsFlusher>, CliError> {
    let Some(v) = args.get("metrics-interval") else {
        return Ok(None);
    };
    let Some(path) = args.get("metrics") else {
        return Err(CliError::InertOption {
            option: "metrics-interval".into(),
            requires: "--metrics <path> (there is no metrics file to rewrite without it)".into(),
        });
    };
    let expected = "a flush interval in whole seconds, at least 1";
    let secs: u64 = v.parse().map_err(|_| {
        CliError::Args(ArgError::BadValue {
            option: "metrics-interval".into(),
            value: v.into(),
            expected,
        })
    })?;
    if secs == 0 {
        return Err(CliError::Args(ArgError::BadValue {
            option: "metrics-interval".into(),
            value: v.into(),
            expected,
        }));
    }
    let t = telemetry.expect("--metrics implies a telemetry block");
    Ok(Some(clumsy_core::MetricsFlusher::start(
        std::sync::Arc::clone(t),
        std::path::PathBuf::from(path),
        std::time::Duration::from_secs(secs),
    )))
}

fn run(args: &Args) -> Result<String, CliError> {
    args.expect_only(RUN_OPTIONS)?;
    let kind = parse_app(args)?;
    let cfg = parse_config(args)?;
    let (trace, opts) = parse_trace(args)?;
    let telemetry = parse_telemetry(args);
    let span = telemetry.as_ref().map(|_| Stopwatch::start());
    let agg = run_config_on_trace(kind, &cfg, &trace, &opts);
    if let (Some(t), Some(span)) = (&telemetry, span) {
        // `run` executes its trials serially in one call, so charge
        // each trial the average wall time of the batch.
        let trials = agg.runs.len().max(1);
        t.add_total_jobs(trials as u64);
        let per_trial = span.elapsed() / trials as u32;
        for (i, r) in agg.runs.iter().enumerate() {
            t.record_report(i, r);
            t.job_completed(i, per_trial);
        }
    }
    write_metrics(args, telemetry.as_ref())?;
    let baseline = run_config_on_trace(kind, &ClumsyConfig::baseline(), &trace, &opts);
    let metric = EdfMetric::paper();
    let rel = agg.edf(&metric) / baseline.edf(&metric);

    if args.flag("json") {
        let r = &agg.runs[0];
        let mut o = JsonObject::new();
        o.string("app", kind.name())
            .string("config", &cfg.label())
            .integer("packets_attempted", r.packets_attempted as u64)
            .integer("packets_completed", r.packets_completed as u64)
            .integer("dropped_packets", r.dropped_packets as u64)
            .integer("erroneous_packets", r.erroneous_packets as u64)
            .boolean("fatal", r.fatal.is_some())
            .number("fallibility", agg.fallibility())
            .number("cycles_per_packet", agg.delay_per_packet())
            .number("nj_per_packet", agg.energy_per_packet())
            .number("relative_edf2", rel)
            .integer("faults_injected", r.stats.faults_injected)
            .integer("faults_detected", r.stats.faults_detected)
            .string("outcome", r.outcome().label())
            .integer("faults_corrected", r.stats.faults_corrected)
            .integer("l2_faults_injected", r.stats.l2_faults_injected)
            .integer("recovery_failures", r.stats.recovery_failures)
            .integer("ways_disabled", r.stats.ways_disabled)
            .integer("salvage_writebacks", r.stats.salvage_writebacks)
            .integer("bypass_accesses", r.stats.bypass_accesses);
        let oc = agg.outcome_counts();
        o.integer("trials_masked", oc.masked)
            .integer("trials_corrected", oc.corrected)
            .integer("trials_detected_recovered", oc.detected_recovered)
            .integer("trials_detected_fatal", oc.detected_fatal)
            .integer("trials_sdc", oc.sdc)
            .integer("trials_recovery_failed", oc.recovery_failed);
        return Ok(o.finish());
    }

    let mut out = String::new();
    out.push_str(&format!("{kind} on {}\n", cfg.label()));
    for r in &agg.runs {
        out.push_str(&format!("  {r}\n"));
    }
    out.push_str(&format!(
        "fallibility {:.4} | {:.0} cycles/pkt | {:.0} nJ/pkt | relative EDF^2 {:.3}\n",
        agg.fallibility(),
        agg.delay_per_packet(),
        agg.energy_per_packet(),
        rel
    ));
    Ok(out)
}

/// Parses `--fault-targets` into the opt-in injection target set: a
/// `+`-joined list of arrays (`data`, `tag`, `parity`, `l2`), or `all`.
fn parse_targets(args: &Args) -> Result<FaultTargets, CliError> {
    let spec = args.get("fault-targets").unwrap_or("data");
    if spec == "all" {
        return Ok(FaultTargets::all());
    }
    let mut targets = FaultTargets {
        data: false,
        tag: false,
        parity: false,
        l2: false,
    };
    for part in spec.split('+') {
        match part {
            "data" => targets.data = true,
            "tag" => targets.tag = true,
            "parity" => targets.parity = true,
            "l2" => targets.l2 = true,
            _ => {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "fault-targets".into(),
                    value: spec.into(),
                    expected: "a '+'-joined subset of data/tag/parity/l2 (e.g. data+l2), or all",
                }))
            }
        }
    }
    Ok(targets)
}

/// Parses `--l2-cycle`, the relative L2 cycle time in (0, 1]. The knob
/// is only observable when the `l2` fault target is on, so giving it
/// without that target is a typed [`CliError::InertOption`] rather
/// than a silent no-op.
fn parse_l2_cycle(args: &Args, targets: FaultTargets) -> Result<f64, CliError> {
    let l2_cycle: f64 = args.get_parsed("l2-cycle", 1.0, "an L2 cycle time in (0, 1]")?;
    if !(l2_cycle > 0.0 && l2_cycle <= 1.0) {
        return Err(CliError::Args(ArgError::BadValue {
            option: "l2-cycle".into(),
            value: l2_cycle.to_string(),
            expected: "an L2 cycle time in (0, 1]",
        }));
    }
    if args.get("l2-cycle").is_some() && !targets.l2 {
        return Err(CliError::InertOption {
            option: "l2-cycle".into(),
            requires: "the l2 fault target (e.g. --fault-targets data+l2)".into(),
        });
    }
    Ok(l2_cycle)
}

/// Parses `--persistent`, the opt-in sticky fault-site activation
/// probability. `None` when the flag is absent — the persistent
/// process then never exists and draws zero RNG. Persistent sites live
/// in the L1 data array, so asking for them with the `data` fault
/// target disabled is a typed [`CliError::InertOption`] rather than a
/// silent no-op.
fn parse_persistent(
    args: &Args,
    targets: FaultTargets,
) -> Result<Option<PersistentSiteConfig>, CliError> {
    let Some(v) = args.get("persistent") else {
        return Ok(None);
    };
    if !targets.data {
        return Err(CliError::InertOption {
            option: "persistent".into(),
            requires: "the data fault target (e.g. --fault-targets data+l2)".into(),
        });
    }
    let expected = "a per-access site-activation probability in (0, 1]";
    let p: f64 = v.parse().map_err(|_| {
        CliError::Args(ArgError::BadValue {
            option: "persistent".into(),
            value: v.into(),
            expected,
        })
    })?;
    if !(p > 0.0 && p <= 1.0) {
        return Err(CliError::Args(ArgError::BadValue {
            option: "persistent".into(),
            value: v.into(),
            expected,
        }));
    }
    Ok(Some(PersistentSiteConfig::hard(p)))
}

const SERVE_OPTIONS: &[&str] = &[
    "app",
    "cr",
    "detection",
    "strikes",
    "recovery",
    "seed",
    "quantize-off",
    "sampler",
    "fault-targets",
    "l2-cycle",
    "safe-mode",
    "persistent",
    "shards",
    "queue-depth",
    "packets",
    "flows",
    "shed-timeout-ms",
    "shed-policy",
    "flow-queue-cap",
    "rebalance",
    "rebalance-window",
    "rebalance-highwater",
    "control-flows",
    "slo-p99-us",
    "pattern",
    "inject-panic",
    "stats-interval",
    "metrics",
    "metrics-interval",
    "progress",
];

/// The `serve` subcommand: the stream-granularity engine. N supervised
/// shards behind bounded flow-hash queues eat an unbounded synthetic
/// stream; the contract is never wedge — shed under backpressure, drop
/// on fatal, restart on panic, drain and exit 0 on the first signal.
fn serve(args: &Args) -> Result<String, CliError> {
    args.expect_only(SERVE_OPTIONS)?;
    let kind = parse_app(args)?;
    let design = parse_config(args)?;

    let shards: usize = args.get_parsed("shards", 4, "a shard count of at least 1")?;
    let queue_depth: usize = args.get_parsed("queue-depth", 1024, "a queue depth of at least 1")?;
    for (option, value) in [("shards", shards), ("queue-depth", queue_depth)] {
        if value == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                option: option.into(),
                value: "0".into(),
                expected: "a count of at least 1",
            }));
        }
    }
    let budget: u64 = args.get_parsed("packets", 0u64, "a packet budget (0 = unbounded)")?;
    let shed_ms: u64 =
        args.get_parsed("shed-timeout-ms", 100u64, "a shed timeout in milliseconds")?;
    let stats_interval: u32 =
        args.get_parsed("stats-interval", 256u32, "a publish interval in packets")?;

    let mut traffic = TraceConfig::paper();
    if args.get("flows").is_some() {
        let flows: usize = args.get_parsed("flows", 0, "a flow count of at least 1")?;
        if flows == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                option: "flows".into(),
                value: "0".into(),
                expected: "a flow count of at least 1",
            }));
        }
        traffic.flows = flows;
    }
    if let Some(v) = args.get("pattern") {
        traffic.pattern = match v {
            "skewed" => TrafficPattern::Skewed,
            "uniform" => TrafficPattern::Uniform,
            "single-flow" => TrafficPattern::SingleFlow,
            "elephant" => TrafficPattern::Elephant,
            _ => {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "pattern".into(),
                    value: v.into(),
                    expected: "skewed | uniform | single-flow | elephant",
                }))
            }
        };
    }

    let shed_policy = match args.get("shed-policy").unwrap_or("fixed") {
        "fixed" => ShedPolicy::Fixed,
        "adaptive" => ShedPolicy::Adaptive,
        v => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "shed-policy".into(),
                value: v.into(),
                expected: "fixed | adaptive",
            }))
        }
    };

    let mut cfg = ServeConfig::new(kind, design)
        .with_shards(shards)
        .with_queue_depth(queue_depth)
        .with_packet_budget(budget)
        .with_shed_timeout(std::time::Duration::from_millis(shed_ms))
        .with_shed_policy(shed_policy)
        .with_traffic(traffic);
    cfg.stats_interval = stats_interval.max(1);
    if let Some(v) = args.get("flow-queue-cap") {
        let cap: usize = args.get_parsed("flow-queue-cap", 0, "a per-flow cap of at least 1")?;
        if cap == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                option: "flow-queue-cap".into(),
                value: v.into(),
                expected: "a per-flow cap of at least 1",
            }));
        }
        if cap >= queue_depth {
            // A cap the queue bound already enforces can never bind.
            return Err(CliError::InertOption {
                option: "flow-queue-cap".into(),
                requires: "a --queue-depth larger than the cap".into(),
            });
        }
        cfg = cfg.with_flow_queue_cap(cap);
    }
    if args.flag("rebalance") {
        if shards < 2 {
            return Err(CliError::InertOption {
                option: "rebalance".into(),
                requires: "at least two shards (--shards 2) to divert flows between".into(),
            });
        }
        let mut rb = RebalanceConfig::default();
        if let Some(v) = args.get("rebalance-window") {
            let window: u32 =
                args.get_parsed("rebalance-window", 0u32, "a hot-observation window >= 1")?;
            if window == 0 {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "rebalance-window".into(),
                    value: v.into(),
                    expected: "a hot-observation window >= 1",
                }));
            }
            rb.window = window;
        }
        if let Some(v) = args.get("rebalance-highwater") {
            let expected = "an occupancy fraction in (0, 1]";
            let frac: f64 = v.parse().map_err(|_| {
                CliError::Args(ArgError::BadValue {
                    option: "rebalance-highwater".into(),
                    value: v.into(),
                    expected,
                })
            })?;
            if !(frac > 0.0 && frac <= 1.0) {
                return Err(CliError::Args(ArgError::BadValue {
                    option: "rebalance-highwater".into(),
                    value: v.into(),
                    expected,
                }));
            }
            rb.highwater_frac = frac;
        }
        cfg = cfg.with_rebalance(rb);
    } else {
        for opt in ["rebalance-window", "rebalance-highwater"] {
            if args.get(opt).is_some() {
                return Err(CliError::InertOption {
                    option: opt.into(),
                    requires: "--rebalance to tune".into(),
                });
            }
        }
    }
    if let Some(v) = args.get("control-flows") {
        let expected = "a control-flow count in 1..flows (strictly below the flow population)";
        let n: usize = args.get_parsed("control-flows", 0, expected)?;
        if n == 0 || n >= cfg.traffic.flows {
            return Err(CliError::Args(ArgError::BadValue {
                option: "control-flows".into(),
                value: v.into(),
                expected,
            }));
        }
        cfg = cfg.with_control_flows(n);
    }
    if let Some(v) = args.get("slo-p99-us") {
        let budget: u64 = args.get_parsed("slo-p99-us", 0u64, "a p99 budget in microseconds")?;
        if budget == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                option: "slo-p99-us".into(),
                value: v.into(),
                expected: "a p99 budget of at least 1 microsecond",
            }));
        }
        cfg = cfg.with_slo_p99_us(budget);
    }
    if args.get("inject-panic").is_some() {
        let id: u32 = args.get_parsed("inject-panic", 0u32, "a packet id")?;
        cfg = cfg.with_panic_on_packet(id);
    }

    let telemetry = parse_telemetry(args);
    let flusher = parse_metrics_flusher(args, telemetry.as_ref())?;
    let reporter = telemetry
        .as_ref()
        .filter(|_| args.flag("progress"))
        .map(|t| {
            ProgressReporter::start_open_ended(
                std::sync::Arc::clone(t),
                "serve",
                std::time::Duration::from_secs(2),
            )
        });

    // First signal → `interrupted()` turns true → the pump stops, every
    // queue closes, shards drain and join; a second signal aborts the
    // process (as in durable campaigns). A drained serve is a *success*
    // — unlike an interrupted campaign there is no remaining work, so
    // this path returns Ok and the process exits 0.
    interrupt::install();
    let report = run_serve(&cfg, telemetry.as_deref(), &interrupt::interrupted);
    drop(reporter);
    // Stop the flusher explicitly at drain time: its final snapshot is
    // taken after every shard has joined, so the last interval's
    // counters are never lost.
    if let Some(f) = flusher {
        f.stop();
    }
    write_metrics(args, telemetry.as_ref())?;
    let mut out = report.summary();
    if report.interrupted {
        out.push_str("signal received: drained all queues and exited cleanly\n");
    }
    Ok(out)
}

const CAMPAIGN_OPTIONS: &[&str] = &[
    "app",
    "packets",
    "trials",
    "seed",
    "jobs",
    "fault-targets",
    "l2-cycle",
    "strikes",
    "persistent",
    "deadline-ms",
    "retries",
    "csv",
    "json",
    "durable",
    "resume",
    "journal",
    "metrics",
    "metrics-interval",
    "progress",
];

/// Default journal location for `--durable`: keyed by the grid hash so
/// campaigns over different design spaces never clobber each other's
/// resume state. Lives under `CLUMSY_RESULTS` (or `./results`) next to
/// the harness CSVs.
fn default_journal_path(points: &[GridPoint]) -> std::path::PathBuf {
    let base = std::env::var("CLUMSY_RESULTS")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| std::path::PathBuf::from("results"));
    base.join("journal")
        .join(format!("campaign-{:016x}.jsonl", grid_hash(points)))
}

/// One (app, scheme, Cr) cell of the campaign grid.
struct CampaignCell {
    app: &'static str,
    scheme: &'static str,
    cr: f64,
    counts: clumsy_core::OutcomeCounts,
}

fn campaign(args: &Args) -> Result<String, CliError> {
    args.expect_only(CAMPAIGN_OPTIONS)?;
    let (trace, opts) = parse_trace(args)?;
    let telemetry = parse_telemetry(args);
    let flusher = parse_metrics_flusher(args, telemetry.as_ref())?;
    let mut reporter = telemetry
        .as_ref()
        .filter(|_| args.flag("progress"))
        .map(|t| {
            ProgressReporter::start(
                std::sync::Arc::clone(t),
                "campaign",
                std::time::Duration::from_secs(2),
            )
        });
    let mut engine = parse_engine(args)?;
    if let Some(t) = &telemetry {
        engine = engine.with_telemetry(std::sync::Arc::clone(t));
    }
    let targets = parse_targets(args)?;
    let l2_cycle = parse_l2_cycle(args, targets)?;
    let persistent = parse_persistent(args, targets)?;
    // The campaign grid already sweeps the paper's strike policies;
    // `--strikes way-disable` adds the degraded scheme as a fifth row.
    let way_disable = match args.get("strikes") {
        None => false,
        Some("way-disable") => true,
        Some(other) => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "strikes".into(),
                value: other.into(),
                expected: "way-disable (the grid already sweeps the paper strike policies)",
            }))
        }
    };
    let apps: Vec<AppKind> = match args.get("app") {
        None | Some("all") => AppKind::all().to_vec(),
        Some(_) => vec![parse_app(args)?],
    };
    let mut ccfg = CampaignConfig::default().with_retries(args.get_parsed(
        "retries",
        1u32,
        "a retry count",
    )?);
    if args.get("deadline-ms").is_some() {
        let ms: u64 = args.get_parsed("deadline-ms", 0, "a millisecond budget of at least 1")?;
        if ms == 0 {
            return Err(CliError::Args(ArgError::BadValue {
                option: "deadline-ms".into(),
                value: "0".into(),
                expected: "a millisecond budget of at least 1",
            }));
        }
        ccfg = ccfg.with_deadline(std::time::Duration::from_millis(ms));
    }

    // The paper's design space: every recovery scheme x static clock,
    // with the requested injection targets.
    let mut labels: Vec<(&'static str, &'static str, f64)> = Vec::new();
    let mut points: Vec<GridPoint> = Vec::new();
    let mut schemes: Vec<(&'static str, DetectionScheme, StrikePolicy, bool)> = paper_schemes()
        .into_iter()
        .map(|(scheme, detection, strikes)| (scheme, detection, strikes, false))
        .collect();
    if way_disable {
        schemes.push((
            "way-disable",
            DetectionScheme::Parity,
            StrikePolicy::two_strike(),
            true,
        ));
    }
    for app in &apps {
        for &(scheme, detection, strikes, disable) in &schemes {
            for cr in PAPER_CYCLE_TIMES {
                labels.push((app.name(), scheme, cr));
                let mut cfg = ClumsyConfig::baseline()
                    .with_detection(detection)
                    .with_strikes(strikes)
                    .with_static_cycle(cr)
                    .with_fault_targets(targets)
                    .with_l2_cycle(l2_cycle);
                if disable {
                    cfg = cfg.with_way_disable(WayDisablePolicy::default_policy());
                }
                if let Some(p) = persistent {
                    cfg = cfg.with_persistent(p);
                }
                points.push(GridPoint::new(*app, cfg));
            }
        }
    }

    let durable_requested =
        args.flag("durable") || args.flag("resume") || args.get("journal").is_some();
    let report = if durable_requested {
        interrupt::install();
        let journal = match args.get("journal") {
            Some(p) => std::path::PathBuf::from(p),
            None => default_journal_path(&points),
        };
        let mut durable = DurableOptions::new(journal.clone())
            .with_resume(args.flag("resume"))
            .with_stop(std::sync::Arc::new(interrupt::interrupted));
        if let Some(t) = &telemetry {
            durable = durable.with_telemetry(std::sync::Arc::clone(t));
        }
        let outcome = run_campaign_durable(&engine, &points, &trace, &opts, &ccfg, &durable)
            .map_err(CliError::Journal)?;
        if outcome.replayed_jobs > 0 {
            eprintln!(
                "resumed: {} of {} jobs replayed from {}",
                outcome.replayed_jobs,
                outcome.report.total_jobs,
                journal.display()
            );
        }
        if outcome.interrupted {
            // Flush the metrics even on the resumable-exit path so an
            // interrupted campaign still leaves its telemetry behind.
            drop(reporter.take());
            drop(flusher);
            write_metrics(args, telemetry.as_ref())?;
            return Err(CliError::Interrupted {
                partial: format!(
                    "{}/{}",
                    outcome.report.completed_jobs(),
                    outcome.report.total_jobs
                ),
                journal: journal.display().to_string(),
            });
        }
        // Finished: the journal has served its purpose.
        std::fs::remove_file(&journal).ok();
        outcome.report
    } else if let Some(t) = &telemetry {
        run_campaign_instrumented(&engine, &points, &trace, &opts, &ccfg, t)
    } else {
        run_campaign_on(&engine, &points, &trace, &opts, &ccfg)
    };
    drop(reporter.take());
    drop(flusher);
    write_metrics(args, telemetry.as_ref())?;
    let cells: Vec<CampaignCell> = labels
        .iter()
        .zip(&report.aggregates)
        .map(|(&(app, scheme, cr), agg)| CampaignCell {
            app,
            scheme,
            cr,
            counts: agg.outcome_counts(),
        })
        .collect();

    if let Some(path) = args.get("csv") {
        let mut csv = String::from(
            "app,cr,scheme,trials,masked,corrected,detected_recovered,detected_fatal,sdc,recovery_failed,sdc_rate\n",
        );
        for c in &cells {
            csv.push_str(&format!(
                "{},{:.2},{},{},{},{},{},{},{},{},{:.6}\n",
                c.app,
                c.cr,
                c.scheme,
                c.counts.total(),
                c.counts.masked,
                c.counts.corrected,
                c.counts.detected_recovered,
                c.counts.detected_fatal,
                c.counts.sdc,
                c.counts.recovery_failed,
                c.counts.sdc_rate()
            ));
        }
        clumsy_core::atomic_write(std::path::Path::new(path), csv.as_bytes()).map_err(
            |source| CliError::Io {
                path: path.to_string(),
                source,
            },
        )?;
    }

    if args.flag("json") {
        let cell_items = cells.iter().map(|c| {
            let mut o = JsonObject::new();
            o.string("app", c.app)
                .string("scheme", c.scheme)
                .number("cr", c.cr)
                .integer("trials", c.counts.total())
                .integer("masked", c.counts.masked)
                .integer("corrected", c.counts.corrected)
                .integer("detected_recovered", c.counts.detected_recovered)
                .integer("detected_fatal", c.counts.detected_fatal)
                .integer("sdc", c.counts.sdc)
                .integer("recovery_failed", c.counts.recovery_failed)
                .number("sdc_rate", c.counts.sdc_rate());
            o.finish()
        });
        let failure_items = report.failures.iter().map(|f| {
            let mut o = JsonObject::new();
            o.integer("point", f.point as u64)
                .integer("trial", u64::from(f.trial))
                .integer("attempts", u64::from(f.attempts))
                .string("failure", &f.failure.to_string());
            o.finish()
        });
        let mut o = JsonObject::new();
        o.string("fault_targets", &targets.to_string())
            .integer("total_jobs", report.total_jobs as u64)
            .integer("completed_jobs", report.completed_jobs() as u64)
            .raw("cells", &array(cell_items))
            .raw("failures", &array(failure_items));
        return Ok(o.finish());
    }

    let mut out = format!(
        "fault-outcome campaign (targets {targets}, {} trials/cell, {}/{} jobs done)\n",
        opts.trials,
        report.completed_jobs(),
        report.total_jobs
    );
    out.push_str(&format!(
        "{:>6} {:>13} {:>6} {:>7} {:>5} {:>7} {:>7} {:>5} {:>8} {:>9}\n",
        "app", "scheme", "Cr", "masked", "corr", "recov", "fatal", "sdc", "rec_fail", "sdc_rate"
    ));
    for c in &cells {
        out.push_str(&format!(
            "{:>6} {:>13} {:>6.2} {:>7} {:>5} {:>7} {:>7} {:>5} {:>8} {:>9.4}\n",
            c.app,
            c.scheme,
            c.cr,
            c.counts.masked,
            c.counts.corrected,
            c.counts.detected_recovered,
            c.counts.detected_fatal,
            c.counts.sdc,
            c.counts.recovery_failed,
            c.counts.sdc_rate()
        ));
    }
    if report.is_complete() {
        out.push_str("failures: none\n");
    } else {
        out.push_str("failures:\n");
        for f in &report.failures {
            let (app, scheme, cr) = labels[f.point];
            out.push_str(&format!("  {app}/{scheme}/Cr={cr:.2}: {f}\n"));
        }
    }
    Ok(out)
}

fn sweep(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["app", "packets", "trials", "seed", "json"])?;
    let kind = parse_app(args)?;
    let (trace, opts) = parse_trace(args)?;
    let metric = EdfMetric::paper();
    let baseline = run_config_on_trace(kind, &ClumsyConfig::baseline(), &trace, &opts);
    let base = baseline.edf(&metric);

    let schemes: [(&str, DetectionScheme, StrikePolicy); 4] = [
        ("none", DetectionScheme::None, StrikePolicy::one_strike()),
        (
            "1-strike",
            DetectionScheme::Parity,
            StrikePolicy::one_strike(),
        ),
        (
            "2-strike",
            DetectionScheme::Parity,
            StrikePolicy::two_strike(),
        ),
        (
            "3-strike",
            DetectionScheme::Parity,
            StrikePolicy::three_strike(),
        ),
    ];
    let mut cells = Vec::new();
    for (label, det, strikes) in schemes {
        for cr in PAPER_CYCLE_TIMES {
            let cfg = ClumsyConfig::baseline()
                .with_detection(det)
                .with_strikes(strikes)
                .with_static_cycle(cr);
            let rel = run_config_on_trace(kind, &cfg, &trace, &opts).edf(&metric) / base;
            cells.push((label, cr, rel));
        }
    }

    if args.flag("json") {
        let items = cells.iter().map(|(s, cr, rel)| {
            let mut o = JsonObject::new();
            o.string("scheme", s)
                .number("cr", *cr)
                .number("relative_edf2", *rel);
            o.finish()
        });
        let mut o = JsonObject::new();
        o.string("app", kind.name()).raw("cells", &array(items));
        return Ok(o.finish());
    }

    let mut out = format!("design space for {kind} (relative EDF^2)\n{:>10}", "scheme");
    for cr in PAPER_CYCLE_TIMES {
        out.push_str(&format!("{:>9}", format!("Cr={cr}")));
    }
    out.push('\n');
    let mut best: (f64, String) = (f64::INFINITY, String::new());
    for (label, _, _) in schemes {
        out.push_str(&format!("{label:>10}"));
        for &(s, cr, rel) in cells.iter().filter(|(s, ..)| *s == label) {
            out.push_str(&format!("{rel:>9.3}"));
            if rel < best.0 {
                best = (rel, format!("{s} @ Cr={cr}"));
            }
        }
        out.push('\n');
    }
    out.push_str(&format!("optimum: {} ({:.3})\n", best.1, best.0));
    Ok(out)
}

fn trace_info(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["packets", "seed", "json"])?;
    let (trace, _) = parse_trace(args)?;
    if args.flag("json") {
        let mut o = JsonObject::new();
        o.integer("packets", trace.packets.len() as u64)
            .integer("prefixes", trace.prefixes.len() as u64)
            .integer("urls", trace.urls.len() as u64)
            .integer("flows", trace.flow_count as u64);
        return Ok(o.finish());
    }
    let mut out = format!("{trace}\nfirst packets:\n");
    for p in trace.packets.iter().take(5) {
        out.push_str(&format!("  {p}\n"));
    }
    Ok(out)
}

fn model(args: &Args) -> Result<String, CliError> {
    args.expect_only(&["beta", "json"])?;
    let beta: f64 = args.get_parsed(
        "beta",
        fault_model::CALIBRATED_BETA,
        "a non-negative exponent",
    )?;
    if !(beta >= 0.0 && beta.is_finite()) {
        return Err(CliError::Args(ArgError::BadValue {
            option: "beta".into(),
            value: beta.to_string(),
            expected: "a non-negative exponent",
        }));
    }
    let m = FaultProbabilityModel::with_beta(beta);
    let swing = VoltageSwingCurve::paper();
    if args.flag("json") {
        let items = PAPER_CYCLE_TIMES.iter().map(|&cr| {
            let mut o = JsonObject::new();
            o.number("cr", cr)
                .number("voltage_swing", swing.relative_swing(cr))
                .number("per_bit_fault_probability", m.per_bit_at_cycle(cr));
            o.finish()
        });
        let mut o = JsonObject::new();
        o.number("beta", beta).raw("points", &array(items));
        return Ok(o.finish());
    }
    let mut out = format!("{m}\n{:>6} {:>8} {:>14}\n", "Cr", "Vsr", "P_E/bit");
    for cr in PAPER_CYCLE_TIMES {
        out.push_str(&format!(
            "{cr:>6.2} {:>8.3} {:>14.3e}\n",
            swing.relative_swing(cr),
            m.per_bit_at_cycle(cr)
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch_line(line: &[&str]) -> Result<String, CliError> {
        let args = Args::parse(line.iter().map(|s| s.to_string())).unwrap();
        dispatch(&args)
    }

    #[test]
    fn help_lists_commands() {
        let h = dispatch_line(&["help"]).unwrap();
        for cmd in ["run", "sweep", "trace", "model", "apps"] {
            assert!(h.contains(cmd), "missing {cmd}");
        }
    }

    #[test]
    fn apps_lists_the_table_1_set() {
        let a = dispatch_line(&["apps"]).unwrap();
        for name in ["crc", "tl", "route", "drr", "nat", "md5", "url", "adpcm"] {
            assert!(a.contains(name));
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(matches!(
            dispatch_line(&["frobnicate"]),
            Err(CliError::UnknownCommand(_))
        ));
    }

    #[test]
    fn model_prints_paper_operating_points() {
        let out = dispatch_line(&["model"]).unwrap();
        assert!(out.contains("0.25"));
        assert!(out.contains("2.590e-7") || out.contains("2.59e-7"));
    }

    #[test]
    fn model_json_is_parsable_shape() {
        let out = dispatch_line(&["model", "--json"]).unwrap();
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"points\":["));
    }

    #[test]
    fn trace_summary_mentions_counts() {
        let out = dispatch_line(&["trace", "--packets", "10"]).unwrap();
        assert!(out.contains("10 packets"));
    }

    #[test]
    fn run_small_config_works() {
        let out = dispatch_line(&[
            "run",
            "--app",
            "tl",
            "--packets",
            "50",
            "--cr",
            "0.5",
            "--detection",
            "parity",
        ])
        .unwrap();
        assert!(out.contains("tl"));
        assert!(out.contains("relative EDF^2"));
    }

    #[test]
    fn run_json_contains_metrics() {
        let out = dispatch_line(&["run", "--app", "crc", "--packets", "30", "--json"]).unwrap();
        assert!(out.contains("\"fallibility\":"));
        assert!(out.contains("\"packets_completed\":30"));
    }

    #[test]
    fn run_accepts_ecc_detection() {
        let out = dispatch_line(&[
            "run",
            "--app",
            "crc",
            "--packets",
            "30",
            "--detection",
            "ecc",
        ])
        .unwrap();
        assert!(out.contains("ecc/"), "config label should show ecc: {out}");
    }

    #[test]
    fn run_rejects_bad_detection_listing_accepted_values() {
        let err = dispatch_line(&["run", "--detection", "hamming"]).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("none | parity | byte-parity | ecc"),
            "unknown-variant error must list accepted values: {msg}"
        );
    }

    #[test]
    fn run_parses_fault_target_combinations() {
        let out = dispatch_line(&[
            "run",
            "--app",
            "crc",
            "--packets",
            "30",
            "--fault-targets",
            "data+l2",
            "--l2-cycle",
            "0.5",
        ])
        .unwrap();
        assert!(out.contains("relative EDF^2"));
        let err = dispatch_line(&["run", "--fault-targets", "data+ll2"]).unwrap_err();
        let msg = format!("{err}");
        assert!(
            msg.contains("data/tag/parity/l2"),
            "unknown-target error must list accepted values: {msg}"
        );
        assert!(dispatch_line(&["run", "--l2-cycle", "0"]).is_err());
    }

    #[test]
    fn safe_mode_requires_the_dynamic_plan() {
        let err = dispatch_line(&["run", "--safe-mode", "--cr", "0.5"]).unwrap_err();
        assert!(format!("{err}").contains("--cr dynamic"), "{err}");
        let out = dispatch_line(&[
            "run",
            "--app",
            "tl",
            "--packets",
            "120",
            "--cr",
            "dynamic",
            "--safe-mode",
        ])
        .unwrap();
        assert!(out.contains("dynamic"));
    }

    #[test]
    fn run_accepts_way_disable_strikes_and_persistent_sites() {
        let out = dispatch_line(&[
            "run",
            "--app",
            "crc",
            "--packets",
            "30",
            "--detection",
            "parity",
            "--strikes",
            "way-disable",
            "--persistent",
            "0.01",
        ])
        .unwrap();
        assert!(
            out.contains("way-disable"),
            "config label should show the degraded scheme: {out}"
        );
        assert!(dispatch_line(&["run", "--strikes", "way-fix"]).is_err());
        assert!(dispatch_line(&["run", "--persistent", "1.5"]).is_err());
        assert!(dispatch_line(&["run", "--persistent", "0"]).is_err());
    }

    #[test]
    fn an_inert_l2_cycle_is_a_typed_error() {
        let err = dispatch_line(&["run", "--l2-cycle", "0.5"]).unwrap_err();
        assert!(
            matches!(err, CliError::InertOption { .. }),
            "expected InertOption, got {err:?}"
        );
        assert!(format!("{err}").contains("l2 fault target"), "{err}");
        let err = dispatch_line(&["campaign", "--l2-cycle", "0.5"]).unwrap_err();
        assert!(matches!(err, CliError::InertOption { .. }), "{err:?}");
    }

    #[test]
    fn an_inert_persistent_is_a_typed_error() {
        // Persistent sites live in the L1 data array: with the data
        // target off, the process could never fire, so asking for it
        // is a typed error in every command that accepts the flag.
        for cmd in ["run", "campaign", "serve"] {
            let err =
                dispatch_line(&[cmd, "--persistent", "0.01", "--fault-targets", "l2"]).unwrap_err();
            assert!(
                matches!(err, CliError::InertOption { .. }),
                "{cmd}: expected InertOption, got {err:?}"
            );
            assert!(format!("{err}").contains("data fault target"), "{err}");
        }
        // With the data target on (explicitly or via default/all), the
        // flag is accepted.
        assert!(dispatch_line(&[
            "run",
            "--app",
            "crc",
            "--packets",
            "20",
            "--persistent",
            "0.01",
            "--fault-targets",
            "data+l2",
        ])
        .is_ok());
    }

    #[test]
    fn an_inert_metrics_interval_is_a_typed_error() {
        for cmd in ["campaign", "serve"] {
            let err = dispatch_line(&[cmd, "--metrics-interval", "5"]).unwrap_err();
            assert!(
                matches!(err, CliError::InertOption { .. }),
                "{cmd}: expected InertOption, got {err:?}"
            );
            assert!(format!("{err}").contains("--metrics"), "{err}");
        }
        // Zero and garbage intervals are plain argument errors.
        assert!(
            dispatch_line(&["campaign", "--metrics", "m.json", "--metrics-interval", "0"]).is_err()
        );
        assert!(dispatch_line(&[
            "campaign",
            "--metrics",
            "m.json",
            "--metrics-interval",
            "soon"
        ])
        .is_err());
    }

    #[test]
    fn campaign_way_disable_adds_the_fifth_scheme_row() {
        let out = dispatch_line(&[
            "campaign",
            "--app",
            "crc",
            "--packets",
            "40",
            "--strikes",
            "way-disable",
            "--persistent",
            "0.001",
        ])
        .unwrap();
        assert!(out.contains("way-disable"), "{out}");
        // 5 schemes x 4 clocks for one app.
        assert_eq!(out.lines().filter(|l| l.contains("crc")).count(), 20);
        assert!(dispatch_line(&["campaign", "--strikes", "3"]).is_err());
    }

    #[test]
    fn help_pins_the_recovery_flags() {
        let h = help_text();
        for needle in [
            "none | parity | byte-parity | ecc",
            "--fault-targets <t>   '+'-joined subset of data/tag/parity/l2, or all",
            "--l2-cycle <0..1>",
            "--safe-mode",
            "way-disable",
            "--persistent <p>",
        ] {
            assert!(h.contains(needle), "help lost {needle:?}");
        }
    }

    #[test]
    fn help_pins_the_serve_surface() {
        let h = help_text();
        for needle in [
            "serve    supervised, sharded packet service",
            "--shards <n>",
            "--queue-depth <n>",
            "--shed-timeout-ms <n>",
            "--shed-policy <p>",
            "--flow-queue-cap <n>",
            "--rebalance",
            "--pattern <m>",
            "--inject-panic <id>",
            "--metrics-interval <s>",
            "drains and exits 0",
        ] {
            assert!(h.contains(needle), "help lost {needle:?}");
        }
    }

    #[test]
    fn serve_rejects_zero_shards_and_zero_depth() {
        assert!(dispatch_line(&["serve", "--shards", "0"]).is_err());
        assert!(dispatch_line(&["serve", "--queue-depth", "0"]).is_err());
        assert!(dispatch_line(&["serve", "--flows", "0"]).is_err());
    }

    #[test]
    fn serve_rejects_bad_overload_values() {
        assert!(dispatch_line(&["serve", "--shed-policy", "psychic"]).is_err());
        assert!(dispatch_line(&["serve", "--pattern", "bursty"]).is_err());
        assert!(dispatch_line(&["serve", "--flow-queue-cap", "0"]).is_err());
    }

    #[test]
    fn an_unbindable_flow_cap_is_a_typed_error() {
        // A per-flow cap at or above the queue depth can never bind:
        // the queue bound itself already sheds first.
        for cap in ["64", "100"] {
            let err = dispatch_line(&["serve", "--queue-depth", "64", "--flow-queue-cap", cap])
                .unwrap_err();
            assert!(
                matches!(err, CliError::InertOption { .. }),
                "cap {cap}: expected InertOption, got {err:?}"
            );
            assert!(format!("{err}").contains("--queue-depth"), "{err}");
        }
    }

    #[test]
    fn rebalance_with_one_shard_is_a_typed_error() {
        let err = dispatch_line(&["serve", "--shards", "1", "--rebalance"]).unwrap_err();
        assert!(
            matches!(err, CliError::InertOption { .. }),
            "expected InertOption, got {err:?}"
        );
        assert!(format!("{err}").contains("two shards"), "{err}");
    }

    #[test]
    fn serve_accepts_the_overload_surface() {
        let out = dispatch_line(&[
            "serve",
            "--app",
            "crc",
            "--packets",
            "120",
            "--shards",
            "2",
            "--queue-depth",
            "32",
            "--flow-queue-cap",
            "8",
            "--shed-policy",
            "adaptive",
            "--rebalance",
            "--pattern",
            "elephant",
        ])
        .unwrap();
        assert!(out.contains("accounting ok"), "{out}");
        assert!(out.contains("overload: shed_flow_cap="), "{out}");
        assert!(out.contains("flow shed: elephant="), "{out}");
    }

    #[test]
    fn serve_rejects_bad_class_and_slo_values() {
        // 0 and flow-population-or-above control counts are typed
        // BadValue errors, as is a zero SLO budget.
        assert!(dispatch_line(&["serve", "--control-flows", "0"]).is_err());
        let err = dispatch_line(&["serve", "--flows", "8", "--control-flows", "8"]).unwrap_err();
        assert!(matches!(err, CliError::Args(_)), "{err:?}");
        assert!(dispatch_line(&["serve", "--flows", "8", "--control-flows", "9"]).is_err());
        assert!(dispatch_line(&["serve", "--slo-p99-us", "0"]).is_err());
        assert!(dispatch_line(&["serve", "--slo-p99-us", "soon"]).is_err());
    }

    #[test]
    fn rebalance_tuning_without_rebalance_is_a_typed_error() {
        for opt in ["--rebalance-window", "--rebalance-highwater"] {
            let err = dispatch_line(&["serve", "--shards", "2", opt, "1"]).unwrap_err();
            assert!(
                matches!(err, CliError::InertOption { .. }),
                "{opt}: expected InertOption, got {err:?}"
            );
            assert!(format!("{err}").contains("--rebalance"), "{err}");
        }
    }

    #[test]
    fn serve_rejects_bad_rebalance_tuning_values() {
        let base = &["serve", "--shards", "2", "--rebalance"][..];
        assert!(dispatch_line(&[base, &["--rebalance-window", "0"][..]].concat()).is_err());
        assert!(dispatch_line(&[base, &["--rebalance-highwater", "0"][..]].concat()).is_err());
        assert!(dispatch_line(&[base, &["--rebalance-highwater", "1.5"][..]].concat()).is_err());
        assert!(dispatch_line(&[base, &["--rebalance-highwater", "hot"][..]].concat()).is_err());
    }

    #[test]
    fn serve_accepts_the_class_surface() {
        let out = dispatch_line(&[
            "serve",
            "--app",
            "crc",
            "--packets",
            "200",
            "--shards",
            "2",
            "--queue-depth",
            "16",
            "--flows",
            "16",
            "--pattern",
            "elephant",
            "--flow-queue-cap",
            "3",
            "--control-flows",
            "4",
            "--slo-p99-us",
            "1",
            "--rebalance",
            "--rebalance-window",
            "8",
            "--rebalance-highwater",
            "0.75",
        ])
        .unwrap();
        assert!(out.contains("accounting ok"), "{out}");
        assert!(out.contains("class: control_offered="), "{out}");
        assert!(out.contains("control_shed=0"), "{out}");
        assert!(out.contains("slo: budget_us=1"), "{out}");
    }

    #[test]
    fn help_pins_the_class_flags() {
        let h = help_text();
        for needle in [
            "--control-flows <n>",
            "--slo-p99-us <n>",
            "--rebalance-window <n>",
            "--rebalance-highwater <f>",
        ] {
            assert!(h.contains(needle), "help lost {needle:?}");
        }
    }

    #[test]
    fn run_accepts_skip_ahead_sampler_and_rejects_unknown() {
        let out = dispatch_line(&[
            "run",
            "--app",
            "crc",
            "--packets",
            "30",
            "--sampler",
            "skip-ahead",
        ])
        .unwrap();
        assert!(out.contains("relative EDF^2"));
        assert!(dispatch_line(&["run", "--sampler", "uniform"]).is_err());
    }

    #[test]
    fn run_rejects_out_of_range_cr() {
        assert!(dispatch_line(&["run", "--cr", "1.5"]).is_err());
        assert!(dispatch_line(&["run", "--cr", "0"]).is_err());
    }

    #[test]
    fn run_accepts_dynamic_plan() {
        let out =
            dispatch_line(&["run", "--app", "tl", "--packets", "120", "--cr", "dynamic"]).unwrap();
        assert!(out.contains("dynamic"));
    }

    #[test]
    fn repro_table1_lists_all_apps() {
        let out = dispatch_line(&["repro", "--experiment", "table1", "--packets", "60"]).unwrap();
        for app in ["crc", "md5", "url"] {
            assert!(out.contains(app), "missing {app} in {out}");
        }
    }

    #[test]
    fn repro_rejects_unknown_experiment() {
        assert!(dispatch_line(&["repro", "--experiment", "fig99"]).is_err());
    }

    #[test]
    fn repro_jobs_matches_serial_output() {
        let base = &["repro", "--experiment", "table1", "--packets", "40"];
        let serial = dispatch_line(&[base, &["--jobs", "1"][..]].concat()).unwrap();
        let parallel = dispatch_line(&[base, &["--jobs", "3"][..]].concat()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn repro_rejects_zero_jobs() {
        assert!(dispatch_line(&["repro", "--jobs", "0"]).is_err());
        assert!(dispatch_line(&["repro", "--jobs", "many"]).is_err());
    }

    #[test]
    fn campaign_emits_all_six_outcome_columns() {
        let out = dispatch_line(&[
            "campaign",
            "--app",
            "crc",
            "--packets",
            "40",
            "--trials",
            "1",
        ])
        .unwrap();
        for col in [
            "masked", "corr", "recov", "fatal", "sdc", "rec_fail", "sdc_rate",
        ] {
            assert!(out.contains(col), "missing column {col}:\n{out}");
        }
        // 4 schemes x 4 clocks for one app.
        assert_eq!(out.lines().filter(|l| l.contains("crc")).count(), 16);
        assert!(out.contains("failures: none"));
    }

    #[test]
    fn campaign_json_lists_cells_and_failures() {
        let out =
            dispatch_line(&["campaign", "--app", "crc", "--packets", "30", "--json"]).unwrap();
        assert!(out.starts_with('{') && out.ends_with('}'));
        assert!(out.contains("\"cells\":["));
        assert!(out.contains("\"failures\":[]"));
        assert!(out.contains("\"scheme\":\"no detection\""));
        assert!(out.contains("\"fault_targets\":"));
    }

    #[test]
    fn campaign_accepts_extended_fault_targets() {
        let out = dispatch_line(&[
            "campaign",
            "--app",
            "crc",
            "--packets",
            "30",
            "--fault-targets",
            "all",
        ])
        .unwrap();
        assert!(out.contains("data+tag+parity"));
        assert!(dispatch_line(&["campaign", "--fault-targets", "ecc"]).is_err());
        let degraded = dispatch_line(&[
            "campaign",
            "--app",
            "crc",
            "--packets",
            "30",
            "--fault-targets",
            "data+l2",
            "--l2-cycle",
            "0.5",
        ])
        .unwrap();
        assert!(degraded.contains("data+l2"));
        assert!(dispatch_line(&["campaign", "--l2-cycle", "1.5"]).is_err());
    }

    #[test]
    fn campaign_csv_write_failure_is_a_nonzero_io_error() {
        let r = dispatch_line(&[
            "campaign",
            "--app",
            "crc",
            "--packets",
            "30",
            "--csv",
            "/nonexistent-dir-for-sure/out.csv",
        ]);
        assert!(matches!(r, Err(CliError::Io { .. })), "got {r:?}");
    }

    #[test]
    fn campaign_durable_interrupt_then_mismatched_resume_is_refused() {
        let dir = std::env::temp_dir().join(format!("clumsy-cli-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("campaign.jsonl");
        let jpath = journal.to_str().unwrap();
        let base = &["campaign", "--app", "crc", "--packets", "30"];
        // Interrupt before any job launches: zero jobs run, the journal
        // stays behind, and the error carries resume context.
        interrupt::set_interrupted(true);
        let r = dispatch_line(&[base, &["--durable", "--journal", jpath][..]].concat());
        interrupt::set_interrupted(false);
        match &r {
            Err(CliError::Interrupted { journal: j, .. }) => assert!(j.contains("campaign.jsonl")),
            other => panic!("expected an interrupt, got {other:?}"),
        }
        assert!(journal.exists(), "interrupt must leave the journal");
        // Resuming at a different seed must refuse, naming the field.
        let r =
            dispatch_line(&[base, &["--seed", "7", "--resume", "--journal", jpath][..]].concat());
        match r {
            Err(CliError::Journal(JournalError::HeaderMismatch { field, .. })) => {
                assert_eq!(field, "seed");
            }
            other => panic!("expected a header mismatch, got {other:?}"),
        }
        assert!(
            journal.exists(),
            "a refused resume must not destroy the journal"
        );
        // Resuming unchanged finishes the run and retires the journal.
        let done = dispatch_line(&[base, &["--resume", "--journal", jpath][..]].concat()).unwrap();
        assert!(done.contains("failures: none"), "{done}");
        assert!(!journal.exists(), "a completed run removes its journal");
        let clean = dispatch_line(base).unwrap();
        assert_eq!(
            done, clean,
            "resumed output must match an uninterrupted run"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn campaign_rejects_zero_deadline() {
        assert!(dispatch_line(&["campaign", "--deadline-ms", "0"]).is_err());
    }

    #[test]
    fn sweep_reports_an_optimum() {
        let out = dispatch_line(&["sweep", "--app", "tl", "--packets", "60"]).unwrap();
        assert!(out.contains("optimum:"));
    }

    #[test]
    fn unknown_option_is_rejected_per_command() {
        assert!(dispatch_line(&["trace", "--app", "tl"]).is_err());
    }
}
