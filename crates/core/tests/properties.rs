//! Property-based tests for the dynamic controller and the run metrics.

use clumsy_core::{Decision, DynamicConfig, DynamicController};
use proptest::prelude::*;

proptest! {
    /// The controller's cycle time always stays within the configured
    /// levels, for arbitrary fault streams.
    #[test]
    fn controller_stays_within_levels(faults in prop::collection::vec(0u64..50, 0..2000)) {
        let cfg = DynamicConfig::paper();
        let levels = cfg.levels.clone();
        let mut ctl = DynamicController::new(cfg);
        for f in faults {
            let _ = ctl.on_packet(f);
            prop_assert!(levels.contains(&ctl.cycle_time()));
        }
    }

    /// Decisions only appear at epoch boundaries.
    #[test]
    fn decisions_only_at_epoch_boundaries(
        faults in prop::collection::vec(0u64..10, 0..1000),
        epoch in 1u32..200,
    ) {
        let cfg = DynamicConfig { epoch_packets: epoch, ..DynamicConfig::paper() };
        let mut ctl = DynamicController::new(cfg);
        for (i, f) in faults.iter().enumerate() {
            let decision = ctl.on_packet(*f);
            let at_boundary = (i as u32 + 1).is_multiple_of(epoch);
            prop_assert_eq!(decision.is_some(), at_boundary, "packet {}", i);
        }
    }

    /// A switch decision always reports the new cycle time, and switch
    /// counting matches emitted Switch decisions.
    #[test]
    fn switch_decisions_are_consistent(faults in prop::collection::vec(0u64..100, 0..3000)) {
        let mut ctl = DynamicController::new(DynamicConfig::paper());
        let mut switches_seen = 0;
        for f in faults {
            if let Some(Decision::Switch(cr)) = ctl.on_packet(f) {
                switches_seen += 1;
                prop_assert_eq!(cr, ctl.cycle_time());
            }
        }
        prop_assert_eq!(switches_seen, ctl.switches());
    }

    /// Under a sustained all-quiet stream the controller reaches the
    /// fastest level and stays there. A *constant* fault storm only
    /// backs off one level — the paper's scheme compares against the
    /// rate stored at the last change, so it reacts to rate *changes* —
    /// but an escalating storm (rate more than doubling every epoch)
    /// drives it all the way back to the safest level.
    #[test]
    fn controller_converges_at_extremes(epochs in 4u32..20) {
        let mut ctl = DynamicController::new(DynamicConfig::paper());
        for _ in 0..(epochs * 100) {
            let _ = ctl.on_packet(0);
        }
        prop_assert_eq!(ctl.cycle_time(), 0.25, "quiet stream climbs to 4x");

        // Constant storm: exactly one back-off, then hold.
        for _ in 0..(epochs * 100) {
            let _ = ctl.on_packet(1000);
        }
        prop_assert_eq!(ctl.cycle_time(), 0.5, "constant storm backs off once");

        // Escalating storm: every epoch more than doubles the rate.
        let mut rate = 10_000u64;
        for _ in 0..epochs {
            for _ in 0..100 {
                let _ = ctl.on_packet(rate);
            }
            rate *= 4;
        }
        prop_assert_eq!(ctl.cycle_time(), 1.0, "escalating storm falls back to 1x");
    }
}
