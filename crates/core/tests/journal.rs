//! Durable-campaign integration tests: the resume-equals-uninterrupted
//! invariant, torn-tail recovery, header verification, and graceful
//! interruption.

use clumsy_core::experiment::{run_grid_on, ExperimentOptions, GridPoint};
use clumsy_core::journal::{self, Record};
use clumsy_core::{
    campaign, run_campaign_durable, CampaignConfig, ClumsyConfig, DurableOptions, Engine,
};
use netbench::{AppKind, TraceConfig};
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

fn tmp_journal(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "clumsy-journal-it-{}-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed),
        tag
    ))
}

fn small_setup() -> (ExperimentOptions, netbench::Trace, Vec<GridPoint>) {
    let opts = ExperimentOptions {
        trace: TraceConfig::small().with_packets(60),
        trials: 2,
        seed: 0x5EED,
    };
    let trace = opts.trace.generate();
    let points = vec![
        GridPoint::new(AppKind::Crc, ClumsyConfig::baseline()),
        GridPoint::new(AppKind::Tl, ClumsyConfig::baseline().with_static_cycle(0.5)),
        GridPoint::new(AppKind::Route, ClumsyConfig::paper_best()),
    ];
    (opts, trace, points)
}

fn durable(journal: PathBuf, resume: bool) -> DurableOptions {
    DurableOptions::new(journal).with_resume(resume)
}

#[test]
fn durable_campaign_matches_run_grid_on_bitwise() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(2);
    let grid = run_grid_on(&engine, &points, &trace, &opts);
    let path = tmp_journal("clean");
    let out = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), false),
    )
    .expect("durable run succeeds");
    assert!(!out.interrupted);
    assert_eq!(out.replayed_jobs, 0);
    assert!(out.report.is_complete());
    assert_eq!(
        out.report.aggregates, grid,
        "journaling must not perturb results"
    );
    fs::remove_file(&path).ok();
}

/// The tentpole invariant: resume from every possible journal prefix
/// and require the final report to be bitwise identical to the
/// uninterrupted reference.
#[test]
fn resume_from_any_prefix_is_bitwise_identical() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(2);
    let reference = run_grid_on(&engine, &points, &trace, &opts);

    // Record one complete journal to harvest real record lines from.
    let full_path = tmp_journal("full");
    run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(full_path.clone(), false),
    )
    .expect("recording run succeeds");
    let full = fs::read_to_string(&full_path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let total_jobs = points.len() * 2;
    assert_eq!(lines.len(), 1 + total_jobs, "header plus one line per job");

    for keep in 1..=lines.len() {
        let path = tmp_journal(&format!("prefix{keep}"));
        let mut f = fs::File::create(&path).unwrap();
        for line in &lines[..keep] {
            writeln!(f, "{line}").unwrap();
        }
        drop(f);
        let out = run_campaign_durable(
            &engine,
            &points,
            &trace,
            &opts,
            &CampaignConfig::default(),
            &durable(path.clone(), true),
        )
        .expect("resume succeeds");
        assert_eq!(out.replayed_jobs, keep - 1, "prefix pre-fills its jobs");
        assert!(out.report.is_complete());
        assert_eq!(
            out.report.aggregates, reference,
            "resume from {keep} lines diverged from the uninterrupted run"
        );
        fs::remove_file(&path).ok();
    }
    fs::remove_file(&full_path).ok();
}

#[test]
fn resume_tolerates_a_torn_tail_and_garbage_lines() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(2);
    let reference = run_grid_on(&engine, &points, &trace, &opts);

    let path = tmp_journal("torn");
    run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), false),
    )
    .unwrap();

    // Keep header + one record, corrupt a second record in place, then
    // append half a line as a simulated crash mid-write.
    let full = fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = full.lines().collect();
    let mut broken = String::new();
    broken.push_str(lines[0]);
    broken.push('\n');
    broken.push_str(lines[1]);
    broken.push('\n');
    broken.push_str(&lines[2].replace("\"kind\":\"job\"", "\"kind\":\"jXb\""));
    broken.push('\n');
    broken.push_str(&lines[3][..lines[3].len() / 2]);
    fs::write(&path, broken).unwrap();

    let out = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), true),
    )
    .expect("resume survives corruption");
    assert_eq!(out.replayed_jobs, 1, "only the intact record replays");
    assert_eq!(out.skipped_records, 1, "the corrupted line is counted");
    assert!(out.report.is_complete());
    assert_eq!(out.report.aggregates, reference);

    // The resumed journal must itself replay to a full, clean run.
    let final_replay = journal::replay(&path).unwrap();
    assert!(!final_replay.torn_tail);
    let jobs = final_replay
        .records
        .iter()
        .filter(|r| matches!(r, Record::Job { .. }))
        .count();
    assert_eq!(jobs, points.len() * 2);
    fs::remove_file(&path).ok();
}

#[test]
fn resume_refuses_a_mismatched_config_naming_the_field() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(2);
    let path = tmp_journal("mismatch");
    run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), false),
    )
    .unwrap();

    // A different seed must be refused, naming `seed`.
    let reseeded = ExperimentOptions {
        seed: 0xBAD,
        ..opts.clone()
    };
    let err = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &reseeded,
        &CampaignConfig::default(),
        &durable(path.clone(), true),
    )
    .expect_err("seed mismatch must refuse");
    match &err {
        journal::JournalError::HeaderMismatch {
            field,
            journal,
            expected,
        } => {
            assert_eq!(*field, "seed");
            assert_eq!(journal, &0x5EED.to_string());
            assert_eq!(expected, &0xBAD.to_string());
        }
        other => panic!("wrong error: {other:?}"),
    }
    assert!(err.to_string().contains("seed"));

    // A different grid (dropped point) must be refused via the grid hash.
    let fewer = &points[..2];
    let err = run_campaign_durable(
        &engine,
        fewer,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), true),
    )
    .expect_err("grid mismatch must refuse");
    assert!(matches!(
        err,
        journal::JournalError::HeaderMismatch {
            field: "points",
            ..
        } | journal::JournalError::HeaderMismatch { field: "grid", .. }
    ));

    // A *changed design point* with the same shape trips the grid hash.
    let mut tweaked = points.clone();
    tweaked[1] = GridPoint::new(
        AppKind::Tl,
        ClumsyConfig::baseline().with_static_cycle(0.25),
    );
    let err = run_campaign_durable(
        &engine,
        &tweaked,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), true),
    )
    .expect_err("design-point change must refuse");
    assert!(matches!(
        err,
        journal::JournalError::HeaderMismatch { field: "grid", .. }
    ));
    fs::remove_file(&path).ok();
}

/// A journal synthesized in the retired v1 format must be refused with
/// a `HeaderMismatch` naming the `version` field — both by a direct
/// replay-plus-check and end-to-end through `run_campaign_durable`.
#[test]
fn synthesized_v1_journal_is_refused_naming_the_version_field() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(2);
    let path = tmp_journal("v1");

    // Hand-frame a v1 header line: the wire format is
    // {"crc":<crc32(body)>,"body":<body>}\n with the version inside the
    // body, so the frame itself verifies — only the version is stale.
    let body = format!(
        "{{\"kind\":\"header\",\"version\":1,\"seed\":{},\"trials\":{},\"scale\":7,\"points\":{},\"grid\":9}}",
        opts.seed,
        opts.trials,
        points.len(),
    );
    let framed = format!(
        "{{\"crc\":{},\"body\":{}}}\n",
        journal::crc32(body.as_bytes()),
        body
    );
    fs::write(&path, framed).unwrap();

    // The replayer still parses the v1 header (so it can name what it
    // found), and check() refuses it on the version field first.
    let replay = journal::replay(&path).expect("a v1 header line still parses");
    assert_eq!(replay.header.version, 1);
    let expected = journal::JournalHeader {
        version: journal::JOURNAL_VERSION,
        ..replay.header
    };
    let err = replay
        .header
        .check(&expected)
        .expect_err("a v1 journal must be refused");
    match &err {
        journal::JournalError::HeaderMismatch {
            field,
            journal,
            expected,
        } => {
            assert_eq!(*field, "version");
            assert_eq!(journal, "1");
            assert_eq!(expected, &journal::JOURNAL_VERSION.to_string());
        }
        other => panic!("wrong error: {other:?}"),
    }
    assert!(err.to_string().contains("version"));

    // End-to-end: a resume against the v1 file refuses before running
    // anything, with the same structured error.
    let err = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), true),
    )
    .expect_err("resume from a v1 journal must refuse");
    assert!(matches!(
        err,
        journal::JournalError::HeaderMismatch {
            field: "version",
            ..
        }
    ));
    fs::remove_file(&path).ok();
}

#[test]
fn stop_interrupts_gracefully_and_resume_completes_identically() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(2);
    let reference = run_grid_on(&engine, &points, &trace, &opts);

    // Stop immediately: the poll fires before any job is launched on
    // the first loop iteration, so nothing at all gets scheduled...
    let path = tmp_journal("stop");
    let out = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &DurableOptions::new(path.clone()).with_stop(Arc::new(|| true)),
    )
    .unwrap();
    assert!(out.interrupted, "work remained, so the run is resumable");
    assert!(!out.report.is_complete());
    assert!(
        out.report.failures.is_empty(),
        "interruption is not failure"
    );

    // ...and a resume finishes the whole campaign bitwise-identically.
    let out = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &durable(path.clone(), true),
    )
    .unwrap();
    assert!(!out.interrupted);
    assert!(out.report.is_complete());
    assert_eq!(out.report.aggregates, reference);
    fs::remove_file(&path).ok();
}

#[test]
fn stop_after_some_results_leaves_a_resumable_journal() {
    let (opts, trace, points) = small_setup();
    let engine = Engine::with_jobs(1);
    let reference = run_grid_on(&engine, &points, &trace, &opts);
    let total_jobs = points.len() * 2;

    // Stop once at least one result has been journaled (the counter is
    // bumped by the stop closure itself observing the journal file).
    let path = tmp_journal("midstop");
    let polls = Arc::new(AtomicUsize::new(0));
    let polls_in_stop = Arc::clone(&polls);
    let out = run_campaign_durable(
        &engine,
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
        &DurableOptions::new(path.clone()).with_stop(Arc::new(move || {
            // Let the campaign make some progress first.
            polls_in_stop.fetch_add(1, Ordering::Relaxed) >= 2
        })),
    )
    .unwrap();

    if out.interrupted {
        let replay = journal::replay(&path).unwrap();
        let done = replay
            .records
            .iter()
            .filter(|r| matches!(r, Record::Job { .. }))
            .count();
        assert!(done < total_jobs, "interrupted run must not be complete");
        let resumed = run_campaign_durable(
            &engine,
            &points,
            &trace,
            &opts,
            &CampaignConfig::default(),
            &durable(path.clone(), true),
        )
        .unwrap();
        assert_eq!(resumed.replayed_jobs, done);
        assert!(resumed.report.is_complete());
        assert_eq!(resumed.report.aggregates, reference);
    } else {
        // On a very fast machine every job may finish between polls;
        // then the run must simply be complete and correct.
        assert_eq!(out.report.aggregates, reference);
    }
    fs::remove_file(&path).ok();
}

#[test]
fn grid_hash_is_sensitive_to_kind_and_config() {
    let a = vec![GridPoint::new(AppKind::Crc, ClumsyConfig::baseline())];
    let b = vec![GridPoint::new(AppKind::Tl, ClumsyConfig::baseline())];
    let c = vec![GridPoint::new(
        AppKind::Crc,
        ClumsyConfig::baseline().with_static_cycle(0.5),
    )];
    assert_ne!(campaign::grid_hash(&a), campaign::grid_hash(&b));
    assert_ne!(campaign::grid_hash(&a), campaign::grid_hash(&c));
    assert_eq!(campaign::grid_hash(&a), campaign::grid_hash(&a));
}
