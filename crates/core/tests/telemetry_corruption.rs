//! Property-based tests for the telemetry metrics reader:
//! [`parse_metrics`] consumes whatever a half-written, truncated or
//! corrupted `--metrics` file contains and must never panic — it
//! returns `None` (unrecognizable) or a subset of the recorded
//! counters, never garbage presented as data.

use clumsy_core::telemetry::{parse_metrics, METRICS_SCHEMA};
use clumsy_core::Telemetry;
use proptest::prelude::*;
use std::time::Duration;

/// A telemetry block with some activity in every counter family, so
/// its JSON exercises all key groups.
fn busy_telemetry() -> Telemetry {
    let t = Telemetry::with_shards(2);
    t.add_total_jobs(10);
    t.add_replayed_jobs(3);
    for job in 0..5 {
        t.job_completed(job, Duration::from_micros(150 + job as u64 * 40));
    }
    t.job_retried();
    t.job_failed();
    let _ = t.abandoned_attempt();
    t.abandoned_cap_hit();
    t.journal_records(4);
    t.journal_fsync(Duration::from_micros(900));
    t.engine_job(0, Duration::from_micros(75));
    t
}

#[test]
fn clean_metrics_json_round_trips_every_counter() {
    let t = busy_telemetry();
    let json = t.metrics_json();
    assert!(json.contains(METRICS_SCHEMA));
    let map = parse_metrics(&json).expect("own output must parse");
    let snap = t.snapshot();
    assert_eq!(map["jobs_total"], snap.jobs_total);
    assert_eq!(map["jobs_completed"], snap.jobs_completed);
    assert_eq!(map["jobs_replayed"], snap.jobs_replayed);
    assert_eq!(map["jobs_retried"], snap.jobs_retried);
    assert_eq!(map["jobs_abandoned"], snap.jobs_abandoned);
    assert_eq!(map["jobs_failed"], snap.jobs_failed);
    assert_eq!(map["abandoned_cap_hits"], snap.abandoned_cap_hits);
    assert_eq!(map["journal_records"], snap.journal_records);
    assert_eq!(map["journal_fsyncs"], snap.journal_fsyncs);
    assert_eq!(map["engine_jobs"], snap.engine_jobs);
    assert_eq!(map["job_us_count"], snap.job_us_count);
}

#[test]
fn text_without_the_schema_marker_is_rejected() {
    assert_eq!(parse_metrics(""), None);
    assert_eq!(parse_metrics("{\"jobs_total\": 5}"), None);
    assert_eq!(parse_metrics("clumsy-metrics-v0"), None);
}

proptest! {
    /// Arbitrary garbage never panics the reader.
    #[test]
    fn arbitrary_text_never_panics(bytes in collection::vec(any::<u8>(), 0..400)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_metrics(&text);
    }

    /// Truncating a real metrics file at any byte boundary never
    /// panics, and every key the reader does recover carries the value
    /// the intact file recorded — truncation can lose counters but
    /// must not invent or corrupt them.
    #[test]
    fn truncation_never_panics_and_never_corrupts(cut in 0usize..2000) {
        let json = busy_telemetry().metrics_json();
        let full = parse_metrics(&json).expect("intact file parses");
        let cut = cut.min(json.len());
        let Some(prefix) = json.get(..cut) else {
            return Ok(()); // cut landed inside a multi-byte char
        };
        if let Some(partial) = parse_metrics(prefix) {
            for (key, value) in &partial {
                // The final key before the cut may have lost trailing
                // digits; it must still be a prefix of the real value.
                let real = full[key].to_string();
                prop_assert!(
                    real.starts_with(&value.to_string()),
                    "key {key} read {value}, intact file has {real}"
                );
            }
        }
    }

    /// Flipping one byte anywhere in a real metrics file never panics
    /// the reader.
    #[test]
    fn single_byte_flips_never_panic(pos in 0usize..2000, flip in 1u8..=255) {
        let json = busy_telemetry().metrics_json();
        let mut bytes = json.into_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_metrics(&text);
    }

    /// Appending garbage after a valid file never panics and keeps the
    /// valid prefix readable.
    #[test]
    fn appended_garbage_keeps_the_valid_prefix_readable(
        bytes in collection::vec(any::<u8>(), 0..100),
    ) {
        let json = busy_telemetry().metrics_json();
        let full = parse_metrics(&json).expect("intact file parses");
        let tail = String::from_utf8_lossy(&bytes);
        let map = parse_metrics(&format!("{json}{tail}"));
        let map = map.expect("schema marker still present");
        for (key, value) in &full {
            prop_assert_eq!(map.get(key), Some(value), "key {}", key);
        }
    }
}
