//! Graceful-degradation regression: when the watchdog contains a fatal
//! error it must drop exactly the offending packet, keep processing the
//! rest of the trace, and the outcome taxonomy must report the run as a
//! *visible* failure ([`TrialOutcome::DetectedFatal`]) rather than
//! silent corruption — unless some other packet also went silently
//! wrong, in which case SDC correctly wins.

use clumsy_core::{ClumsyConfig, ClumsyProcessor, TrialOutcome};
use fault_model::FaultProbabilityModel;
use netbench::{AppKind, PlaneMask, TraceConfig};

#[test]
fn contained_fatals_drop_one_packet_and_classify_as_detected_fatal() {
    let trace = TraceConfig::small().with_packets(60).generate();
    // Data-plane faults only (footnote 3 covers packet processing),
    // quarter cycle, no detection hardware. The rate is tuned low so
    // some realizations kill one packet's radix walk without touching
    // any other packet — the pure DetectedFatal case (the hot setting
    // of the processor's watchdog unit test corrupts so much state
    // that every dropping run is also silently wrong, i.e. SDC).
    let base = ClumsyConfig::baseline()
        .with_fault_model(FaultProbabilityModel::new(1e-6, 0.2))
        .with_planes(PlaneMask::data_only())
        .with_static_cycle(0.25)
        .with_watchdog();

    let mut detected_fatal_seen = false;
    let mut drops_seen = 0usize;
    for seed in 0..40u64 {
        let run = ClumsyProcessor::new(base.clone().with_seed(seed)).run(AppKind::Tl, &trace);

        // Containment: no fatal escapes, and every packet of the trace
        // is accounted for — the run continued past each drop.
        assert!(run.fatal.is_none(), "seed {seed}: watchdog must contain");
        assert_eq!(run.packets_attempted, trace.packets.len());
        assert_eq!(
            run.packets_completed + run.dropped_packets,
            trace.packets.len(),
            "seed {seed}: dropped packets must not end the trace"
        );

        drops_seen += run.dropped_packets;
        match run.outcome() {
            TrialOutcome::DetectedFatal => {
                assert!(run.dropped_packets > 0);
                assert_eq!(run.erroneous_packets, 0);
                assert_eq!(run.init_obs_wrong, 0);
                detected_fatal_seen = true;
            }
            TrialOutcome::SilentDataCorruption => {
                // Most-severe-wins: silent wrong output outranks the
                // visible drop.
                assert!(run.erroneous_packets > 0 || run.init_obs_wrong > 0);
            }
            TrialOutcome::Masked | TrialOutcome::Corrected | TrialOutcome::DetectedRecovered => {
                assert_eq!(run.dropped_packets, 0);
            }
            TrialOutcome::RecoveryFailed => {
                unreachable!("no L2 fault target configured, so refetches cannot fail");
            }
        }
    }
    assert!(drops_seen > 0, "the fault rate must actually cause drops");
    assert!(
        detected_fatal_seen,
        "at least one run must be a pure contained-fatal (DetectedFatal)"
    );
}
