//! Property-based journal-corruption tests: arbitrary byte flips and
//! truncations must never panic the replayer, never double-count a
//! trial, and always yield either a valid subset of the recorded jobs
//! or a structured error.

use clumsy_core::journal::{
    self, JournalError, JournalHeader, JournalWriter, Record, JOURNAL_VERSION,
};
use clumsy_core::RunReport;
use netbench::ErrorCategory;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_path() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "clumsy-journal-prop-{}-{}.jsonl",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A hand-built report whose fields all depend on `tag`, so reports
/// for different jobs are distinguishable after replay.
fn report(tag: u64) -> RunReport {
    let mut error_counts = BTreeMap::new();
    if tag.is_multiple_of(2) {
        error_counts.insert(ErrorCategory::Ttl, (tag % 7) as usize);
    }
    if tag.is_multiple_of(3) {
        error_counts.insert(ErrorCategory::Checksum, 1);
    }
    RunReport {
        app: "crc",
        packets_attempted: 100 + tag as usize,
        packets_completed: 90 + tag as usize,
        fatal: None,
        dropped_packets: (tag % 5) as usize,
        erroneous_packets: (tag % 11) as usize,
        error_counts,
        init_obs_total: 8,
        init_obs_wrong: (tag % 3) as usize,
        instructions: tag.wrapping_mul(0x1234_5678),
        cycles: tag as f64 * 1.75 + 0.125,
        energy: energy_model::EnergyBreakdown {
            core_nj: tag as f64,
            l1_nj: tag as f64 / 3.0,
            l2_nj: 0.0,
            mem_nj: 1e-9 * tag as f64,
            overhead_nj: 0.0,
        },
        stats: cache_sim::MemStats {
            reads: tag,
            faults_injected: tag % 13,
            ..Default::default()
        },
        freq_trace: vec![(tag as usize, 0.5)],
        epoch_faults: vec![tag % 4, tag % 6],
    }
}

/// Records a journal of `n` jobs and returns its raw bytes.
fn recorded_journal(n: usize) -> Vec<u8> {
    let path = tmp_path();
    let header = JournalHeader {
        version: JOURNAL_VERSION,
        seed: 7,
        trials: 4,
        scale: 99,
        points: n as u64,
        grid: 0xABCD,
    };
    let w = JournalWriter::create(&path, &header).expect("create");
    for job in 0..n {
        w.append_job(job, &report(job as u64));
    }
    w.finish().expect("finish");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();
    bytes
}

/// Replays raw journal bytes from a temp file.
fn replay_bytes(bytes: &[u8]) -> Result<journal::Replay, JournalError> {
    let path = tmp_path();
    std::fs::write(&path, bytes).expect("write corrupted journal");
    let out = journal::replay(&path);
    std::fs::remove_file(&path).ok();
    out
}

/// Every replayed job must be bitwise identical to what was recorded
/// for that index, and no index may appear twice.
fn assert_valid_subset(replay: &journal::Replay) {
    let mut seen = std::collections::HashSet::new();
    for rec in &replay.records {
        let Record::Job { job, report: got } = rec else {
            panic!("marker record in a job-only journal");
        };
        assert!(seen.insert(*job), "job {job} double-counted");
        assert_eq!(
            got.as_ref(),
            &report(*job as u64),
            "job {job} content mutated"
        );
    }
}

proptest! {
    /// Flipping one byte anywhere must never panic; the result is
    /// either a structured error (header damage) or a valid subset of
    /// the recorded jobs with at most one record lost.
    #[test]
    fn single_byte_flip_never_panics_or_corrupts(
        n in 1usize..8,
        offset_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut bytes = recorded_journal(n);
        let offset = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[offset] ^= xor;
        match replay_bytes(&bytes) {
            Ok(replay) => {
                assert_valid_subset(&replay);
                // A flip inside a line loses that record; a flipped
                // newline merges two lines and loses both.
                prop_assert!(
                    replay.records.len() >= n.saturating_sub(2),
                    "one flip may cost at most two records"
                );
            }
            Err(JournalError::MissingHeader { .. }) => {
                // The flip landed in the header line: structured refusal.
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    /// Truncating at any byte must yield exactly a prefix of the
    /// recorded jobs (jobs are appended in order here, so the survivor
    /// set is `0..k`), or a structured error if the header is cut.
    #[test]
    fn truncation_yields_a_strict_prefix(n in 1usize..8, cut_frac in 0.0f64..1.0) {
        let bytes = recorded_journal(n);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        match replay_bytes(&bytes[..cut]) {
            Ok(replay) => {
                assert_valid_subset(&replay);
                for (i, rec) in replay.records.iter().enumerate() {
                    let Record::Job { job, .. } = rec else { unreachable!() };
                    prop_assert_eq!(*job, i, "truncation must keep a prefix in order");
                }
                // Everything the replay accepted must lie inside the
                // valid region a resume would keep.
                prop_assert!(replay.valid_len <= cut as u64);
            }
            Err(JournalError::MissingHeader { .. }) => {
                prop_assert!(
                    cut < bytes.len(),
                    "an untruncated journal must always replay"
                );
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    /// Appending arbitrary garbage after a valid journal is at worst a
    /// skipped record or torn tail — every original job survives.
    #[test]
    fn trailing_garbage_never_loses_recorded_jobs(
        n in 1usize..6,
        garbage in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        let mut bytes = recorded_journal(n);
        bytes.extend_from_slice(&garbage);
        let replay = replay_bytes(&bytes).expect("header is intact");
        assert_valid_subset(&replay);
        prop_assert!(replay.records.len() >= n, "recorded jobs must all survive");
    }
}
