//! Crash-isolation integration tests: a campaign with deliberately
//! failing design points must complete, keep every healthy point's
//! results, and report the failures structurally.

use clumsy_core::experiment::{ExperimentOptions, GridPoint};
use clumsy_core::{
    run_campaign_on, run_isolated_jobs, run_isolated_jobs_with, BatchControl, CampaignConfig,
    ClumsyConfig, ClumsyProcessor, DynamicConfig, Engine, JobFailure, Telemetry, TrialOutcome,
};
use netbench::AppKind;
use std::sync::Arc;
use std::time::Duration;

/// A design point that passes grid construction but panics inside the
/// measured run: the dynamic controller rejects an empty level table.
fn poison_point() -> GridPoint {
    GridPoint::new(
        AppKind::Tl,
        ClumsyConfig::baseline().with_dynamic(DynamicConfig {
            levels: Vec::new(),
            ..DynamicConfig::paper()
        }),
    )
}

#[test]
fn campaign_survives_a_panicking_design_point() {
    let opts = ExperimentOptions {
        trials: 2,
        ..ExperimentOptions::quick()
    };
    let trace = opts.trace.generate();
    let points = vec![
        GridPoint::new(AppKind::Crc, ClumsyConfig::baseline()),
        poison_point(),
        GridPoint::new(AppKind::Route, ClumsyConfig::paper_best()),
    ];
    let report = run_campaign_on(
        &Engine::with_jobs(3),
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
    );

    assert_eq!(report.total_jobs, 6);
    assert_eq!(report.completed_jobs(), 4);
    assert!(!report.is_complete());

    // Healthy points keep every trial; the poisoned point keeps none.
    assert_eq!(report.aggregates.len(), 3);
    assert_eq!(report.aggregates[0].runs.len(), 2);
    assert!(report.aggregates[1].runs.is_empty());
    assert_eq!(report.aggregates[2].runs.len(), 2);
    for run in report.aggregates.iter().flat_map(|a| a.runs.iter()) {
        assert!(run.packets_completed > 0);
        // The classifier works on campaign output too.
        let _ = run.outcome();
    }

    // Both trials of the poisoned point are reported, in order, with the
    // retry budget spent and the panic message captured.
    assert_eq!(report.failures.len(), 2);
    for (f, trial) in report.failures.iter().zip(0u32..) {
        assert_eq!(f.point, 1);
        assert_eq!(f.trial, trial);
        assert_eq!(f.attempts, 2, "default budget is one try plus one retry");
        match &f.failure {
            JobFailure::Panicked(msg) => {
                assert!(
                    msg.contains("frequency level"),
                    "panic message should survive isolation: {msg:?}"
                );
            }
            other => panic!("expected a panic failure, got {other}"),
        }
    }
}

#[test]
fn mixed_batch_reports_panic_and_deadline_failures_with_partial_results() {
    let opts = ExperimentOptions::quick();
    let trace = opts.trace.generate();
    let cfg = CampaignConfig::default()
        .with_deadline(Duration::from_secs(5))
        .with_retries(0);
    const PANICS: usize = 2;
    const SLEEPS: usize = 4;

    let out = run_isolated_jobs(4, 6, &cfg, move |job, _attempt| {
        match job {
            PANICS => panic!("deliberate casualty"),
            SLEEPS => std::thread::sleep(Duration::from_secs(30)),
            _ => {}
        }
        let run = ClumsyProcessor::new(ClumsyConfig::baseline().with_seed(0x5EED + job as u64))
            .run(AppKind::Crc, &trace);
        (run.packets_completed, run.outcome())
    });

    // Every other job produced a real processor result.
    for (job, slot) in out.results.iter().enumerate() {
        if job == PANICS || job == SLEEPS {
            assert!(slot.is_none(), "job {job} must have no result");
        } else {
            let (packets, outcome) = slot.as_ref().expect("healthy job lost");
            assert!(*packets > 0);
            assert_eq!(*outcome, TrialOutcome::Masked, "baseline run is clean");
        }
    }

    // Both failures are listed, sorted, and correctly typed.
    assert_eq!(out.failures.len(), 2);
    assert_eq!(out.failures[0].job, PANICS);
    assert!(matches!(
        &out.failures[0].failure,
        JobFailure::Panicked(msg) if msg.contains("deliberate casualty")
    ));
    assert_eq!(out.failures[1].job, SLEEPS);
    assert!(matches!(
        out.failures[1].failure,
        JobFailure::DeadlineExceeded(d) if d == Duration::from_secs(5)
    ));
}

/// Abandoned-deadline attempts keep their threads alive after the
/// coordinator gives up on them. The cap must (a) pause new launches
/// while too many stragglers are still running, (b) count the episode
/// in telemetry, and (c) never wedge the batch — every other job still
/// completes once a straggler exits.
#[test]
fn abandoned_attempt_cap_pauses_launches_and_is_counted() {
    const SLEEPERS: usize = 2;
    const JOBS: usize = 5;
    let cfg = CampaignConfig::default()
        .with_deadline(Duration::from_millis(50))
        .with_retries(0)
        .with_max_abandoned(1);
    let telemetry = Arc::new(Telemetry::new());
    let control = BatchControl {
        telemetry: Some(Arc::clone(&telemetry)),
        ..BatchControl::default()
    };

    // Two workers immediately pick up the two sleepers; both overrun
    // the 50 ms deadline and are abandoned while their threads sleep
    // on, pinning the live-abandoned count at 2 > cap = 1.
    let out = run_isolated_jobs_with(2, JOBS, &cfg, control, move |job, _attempt| {
        if job < SLEEPERS {
            std::thread::sleep(Duration::from_millis(400));
        }
        job
    });

    for job in SLEEPERS..JOBS {
        assert_eq!(out.results[job], Some(job), "fast job {job} must finish");
    }
    assert_eq!(out.failures.len(), SLEEPERS);
    for f in &out.failures {
        assert!(f.job < SLEEPERS);
        assert!(matches!(f.failure, JobFailure::DeadlineExceeded(_)));
    }

    let snap = telemetry.snapshot();
    assert_eq!(snap.jobs_abandoned, SLEEPERS as u64);
    assert_eq!(snap.jobs_completed, (JOBS - SLEEPERS) as u64);
    assert!(snap.abandoned_peak >= 2, "both sleepers were live at once");
    assert!(
        snap.abandoned_cap_hits >= 1,
        "the cap must have paused launches at least once: {snap:?}"
    );
    assert_eq!(snap.jobs_failed, SLEEPERS as u64);
}
