//! Crash-isolated experiment campaigns.
//!
//! [`crate::experiment::run_grid_on`] is fast but brittle: one panicking
//! job (a mis-specified design point tripping a config assertion, a bug
//! in an app under an exotic fault mode) unwinds through the scoped pool
//! and takes the whole grid — hours of completed trials — down with it.
//!
//! This module is the hardened driver used for large exploratory sweeps:
//! every job runs on its own detached thread behind
//! [`std::panic::catch_unwind`], with an optional per-job deadline and a
//! bounded retry budget. A retried trial is *reseeded* (a fresh fault
//! realization) so a deterministic crash is distinguished from an
//! unlucky one; attempt 0 always uses the original trial seed, so a
//! failure-free campaign is bitwise identical to [`run_grid_on`].
//! Instead of aborting, the campaign returns a [`CampaignReport`]:
//! aggregates over the trials that survived plus a structured list of
//! every job that did not.
//!
//! A job that exceeds its deadline is *abandoned*, not killed — safe
//! Rust cannot cancel a wedged thread. The abandoned thread leaks (its
//! late result is discarded by generation tag) and its worker slot is
//! handed to the next job, so a campaign with `n` deadline failures
//! strands at most `n` threads. Campaigns without a deadline can still
//! hang on a genuinely wedged job, exactly like the plain engine.
//!
//! [`run_grid_on`]: crate::experiment::run_grid_on

use crate::engine::{golden_for, Engine};
use crate::experiment::{Aggregate, ExperimentOptions, GridPoint};
use crate::processor::{ClumsyProcessor, GoldenData};
use netbench::AppKind;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Seed stride between retry attempts of the same trial (a large odd
/// constant, so attempt seeds never collide with neighbouring trials).
/// Attempt 0 keeps the original trial seed.
pub const RESEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Isolation and retry policy for a campaign.
///
/// # Examples
///
/// ```
/// use clumsy_core::CampaignConfig;
/// use std::time::Duration;
///
/// let cfg = CampaignConfig::default()
///     .with_deadline(Duration::from_secs(60))
///     .with_retries(2);
/// assert_eq!(cfg.retries, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Wall-clock budget per job attempt. `None` (the default) trusts
    /// jobs to terminate, like the plain engine.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure; each retry reseeds the
    /// trial by [`RESEED_STRIDE`].
    pub retries: u32,
}

impl CampaignConfig {
    /// Returns the config with a per-attempt wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the config with a different retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            deadline: None,
            retries: 1,
        }
    }
}

/// Why a job was abandoned after its attempts were exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// Every attempt panicked; the payload message of the last one.
    Panicked(String),
    /// Every attempt overran the per-attempt deadline.
    DeadlineExceeded(Duration),
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobFailure::DeadlineExceeded(d) => {
                write!(f, "exceeded {} ms deadline", d.as_millis())
            }
        }
    }
}

/// One exhausted job of a generic [`run_isolated_jobs`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolatedFailure {
    /// Flat job index.
    pub job: usize,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// The last attempt's failure.
    pub failure: JobFailure,
}

/// Outcome of [`run_isolated_jobs`]: one slot per job (`None` where
/// every attempt failed) plus the structured failure list, sorted by
/// job index.
#[derive(Debug)]
pub struct IsolatedRun<R> {
    /// Per-job results in job order.
    pub results: Vec<Option<R>>,
    /// Jobs whose every attempt failed.
    pub failures: Vec<IsolatedFailure>,
}

/// Turns a panic payload into a displayable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// An in-flight attempt: job index, attempt number, optional deadline.
type InFlight = HashMap<u64, (usize, u32, Option<Instant>)>;

/// Runs `n_jobs` independent jobs with crash isolation: each attempt of
/// `run(job, attempt)` executes on its own detached thread behind
/// `catch_unwind`, bounded by `workers` concurrent attempts.
///
/// A panicking or deadline-overrunning attempt is retried up to
/// `cfg.retries` times with an incremented `attempt`; a job whose
/// attempts are all spent is recorded in
/// [`IsolatedRun::failures`] and leaves `None` in its result slot.
/// Late results from abandoned (timed-out) attempts are discarded.
pub fn run_isolated_jobs<R, F>(
    workers: usize,
    n_jobs: usize,
    cfg: &CampaignConfig,
    run: F,
) -> IsolatedRun<R>
where
    R: Send + 'static,
    F: Fn(usize, u32) -> R + Send + Sync + 'static,
{
    let workers = workers.max(1);
    let run = Arc::new(run);
    let (tx, rx) = mpsc::channel::<(u64, Result<R, String>)>();

    let mut pending: VecDeque<(usize, u32)> = (0..n_jobs).map(|j| (j, 0)).collect();
    let mut results: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
    let mut failures: Vec<IsolatedFailure> = Vec::new();
    let mut in_flight: InFlight = HashMap::new();
    let mut next_gen: u64 = 0;

    let mut give_up = |job: usize, attempt: u32, failure: JobFailure| {
        failures.push(IsolatedFailure {
            job,
            attempts: attempt + 1,
            failure,
        });
    };

    while !pending.is_empty() || !in_flight.is_empty() {
        // Launch until every worker slot is busy.
        while in_flight.len() < workers {
            let Some((job, attempt)) = pending.pop_front() else {
                break;
            };
            let gen = next_gen;
            next_gen += 1;
            let deadline = cfg.deadline.map(|d| Instant::now() + d);
            in_flight.insert(gen, (job, attempt, deadline));
            let tx = tx.clone();
            let run = Arc::clone(&run);
            std::thread::spawn(move || {
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run(job, attempt)))
                    .map_err(panic_message);
                // The receiver may have moved on (abandoned attempt
                // after campaign end); a dead channel is fine.
                let _ = tx.send((gen, outcome));
            });
        }

        // Wait for the next completion, or until the earliest deadline.
        let earliest = in_flight.iter().filter_map(|(_, (_, _, d))| *d).min();
        let message = match earliest {
            Some(at) => {
                let now = Instant::now();
                if at <= now {
                    Err(mpsc::RecvTimeoutError::Timeout)
                } else {
                    rx.recv_timeout(at - now)
                }
            }
            None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };

        match message {
            Ok((gen, outcome)) => {
                // An unknown generation is a late result from an attempt
                // already abandoned on deadline: drop it.
                let Some((job, attempt, _)) = in_flight.remove(&gen) else {
                    continue;
                };
                match outcome {
                    Ok(r) => results[job] = Some(r),
                    Err(msg) => {
                        if attempt < cfg.retries {
                            pending.push_back((job, attempt + 1));
                        } else {
                            give_up(job, attempt, JobFailure::Panicked(msg));
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Abandon every attempt past its deadline; the threads
                // keep running but their results will be ignored.
                let now = Instant::now();
                let expired: Vec<u64> = in_flight
                    .iter()
                    .filter(|(_, (_, _, d))| d.is_some_and(|at| at <= now))
                    .map(|(gen, _)| *gen)
                    .collect();
                for gen in expired {
                    let (job, attempt, _) = in_flight.remove(&gen).expect("expired gen");
                    if attempt < cfg.retries {
                        pending.push_back((job, attempt + 1));
                    } else {
                        let d = cfg.deadline.expect("timeout implies a deadline");
                        give_up(job, attempt, JobFailure::DeadlineExceeded(d));
                    }
                }
            }
            // The main loop owns a sender, so the channel cannot close.
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx held by caller"),
        }
    }

    failures.sort_by_key(|f| f.job);
    IsolatedRun { results, failures }
}

/// One exhausted (point, trial) job of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedJob {
    /// Index into the campaign's grid points.
    pub point: usize,
    /// Trial number within the point.
    pub trial: u32,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// The last attempt's failure.
    pub failure: JobFailure,
}

impl std::fmt::Display for FailedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {} trial {} ({} attempts): {}",
            self.point, self.trial, self.attempts, self.failure
        )
    }
}

/// Partial results of a crash-isolated campaign.
///
/// `aggregates[i]` holds the trials of `points[i]` that survived; a
/// point whose every trial failed has an empty `runs` vector. Metric
/// methods on an empty [`Aggregate`] are meaningless — check
/// [`Aggregate::runs`] (or [`CampaignReport::failures`]) first.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Surviving trials per grid point, in point order.
    pub aggregates: Vec<Aggregate>,
    /// Every job whose attempts were exhausted, sorted by (point, trial).
    pub failures: Vec<FailedJob>,
    /// Total (point × trial) jobs submitted.
    pub total_jobs: usize,
}

impl CampaignReport {
    /// Jobs that produced a result.
    pub fn completed_jobs(&self) -> usize {
        self.total_jobs - self.failures.len()
    }

    /// Whether every job completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Runs an experiment grid like
/// [`run_grid_on`](crate::experiment::run_grid_on), but crash-isolated:
/// a panicking or deadline-overrunning job is retried with a reseeded
/// trial and, if it keeps failing, recorded in the report instead of
/// aborting the campaign.
///
/// Golden passes are warmed on the plain engine first (they depend only
/// on the application and trace, not on any design point, so they
/// cannot be crashed by a bad configuration). With no failures the
/// aggregates are bitwise identical to `run_grid_on` on the same
/// inputs.
pub fn run_campaign_on(
    engine: &Engine,
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
    cfg: &CampaignConfig,
) -> CampaignReport {
    let mut kinds: Vec<AppKind> = points.iter().map(|p| p.kind).collect();
    kinds.sort();
    kinds.dedup();
    let goldens: Arc<HashMap<AppKind, Arc<GoldenData>>> = Arc::new(
        kinds
            .iter()
            .copied()
            .zip(engine.map(&kinds, |k| golden_for(*k, trace)))
            .collect(),
    );

    let trials = opts.trials.max(1) as usize;
    let total_jobs = points.len() * trials;
    let base_seed = opts.seed;
    let points_shared: Arc<Vec<GridPoint>> = Arc::new(points.to_vec());
    let trace_shared = Arc::new(trace.clone());

    let isolated = run_isolated_jobs(
        engine.jobs(),
        total_jobs,
        cfg,
        move |job: usize, attempt: u32| {
            let point = &points_shared[job / trials];
            let t = (job % trials) as u64;
            let seed = base_seed
                .wrapping_add(t)
                .wrapping_add(u64::from(attempt).wrapping_mul(RESEED_STRIDE));
            let run_cfg = point.cfg.clone().with_seed(seed);
            ClumsyProcessor::new(run_cfg).run_with_golden(
                point.kind,
                &trace_shared,
                &goldens[&point.kind],
            )
        },
    );

    let mut slots = isolated.results.into_iter();
    let aggregates = points
        .iter()
        .map(|_| Aggregate {
            runs: (0..trials)
                .filter_map(|_| slots.next().expect("job count"))
                .collect(),
        })
        .collect();
    let failures = isolated
        .failures
        .into_iter()
        .map(|f| FailedJob {
            point: f.job / trials,
            trial: (f.job % trials) as u32,
            attempts: f.attempts,
            failure: f.failure,
        })
        .collect();

    CampaignReport {
        aggregates,
        failures,
        total_jobs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClumsyConfig;
    use crate::experiment::run_grid_on;

    #[test]
    fn all_jobs_succeed_in_order() {
        let out = run_isolated_jobs(4, 16, &CampaignConfig::default(), |job, _| job * 2);
        assert!(out.failures.is_empty());
        let got: Vec<usize> = out.results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..16).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_is_recorded_and_the_rest_complete() {
        let cfg = CampaignConfig::default().with_retries(1);
        let out = run_isolated_jobs(3, 10, &cfg, |job, _| {
            assert!(job != 4, "job four always dies");
            job
        });
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.job, 4);
        assert_eq!(f.attempts, 2, "one try plus one retry");
        assert!(
            matches!(&f.failure, JobFailure::Panicked(msg) if msg.contains("job four")),
            "panic message must be captured: {f:?}"
        );
        for (j, r) in out.results.iter().enumerate() {
            if j == 4 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(j));
            }
        }
    }

    #[test]
    fn a_retry_can_succeed_after_a_flaky_panic() {
        let cfg = CampaignConfig::default().with_retries(2);
        let out = run_isolated_jobs(2, 5, &cfg, |job, attempt| {
            // Job 1 fails on its first two attempts only.
            assert!(job != 1 || attempt >= 2, "flaky");
            (job, attempt)
        });
        assert!(out.failures.is_empty());
        assert_eq!(out.results[1], Some((1, 2)), "third attempt succeeded");
        assert_eq!(out.results[0], Some((0, 0)), "others never retried");
    }

    #[test]
    fn a_sleeping_job_exceeds_its_deadline() {
        let cfg = CampaignConfig::default()
            .with_deadline(Duration::from_millis(60))
            .with_retries(1);
        let out = run_isolated_jobs(4, 6, &cfg, |job, _| {
            if job == 2 {
                std::thread::sleep(Duration::from_millis(600));
            }
            job
        });
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.job, 2);
        assert_eq!(f.attempts, 2);
        assert!(matches!(f.failure, JobFailure::DeadlineExceeded(_)));
        for (j, r) in out.results.iter().enumerate() {
            if j != 2 {
                assert_eq!(*r, Some(j), "fast jobs must not be harmed");
            }
        }
    }

    #[test]
    fn failure_free_campaign_matches_run_grid_on() {
        let opts = ExperimentOptions {
            trials: 2,
            ..ExperimentOptions::quick()
        };
        let trace = opts.trace.generate();
        let points = vec![
            GridPoint::new(AppKind::Crc, ClumsyConfig::baseline()),
            GridPoint::new(
                AppKind::Tl,
                ClumsyConfig::baseline().with_static_cycle(0.25),
            ),
        ];
        let engine = Engine::with_jobs(2);
        let grid = run_grid_on(&engine, &points, &trace, &opts);
        let campaign = run_campaign_on(&engine, &points, &trace, &opts, &CampaignConfig::default());
        assert!(campaign.is_complete());
        assert_eq!(campaign.total_jobs, 4);
        assert_eq!(campaign.completed_jobs(), 4);
        assert_eq!(campaign.aggregates, grid, "must be bitwise identical");
    }

    #[test]
    fn campaign_config_display_and_defaults() {
        let cfg = CampaignConfig::default();
        assert_eq!(cfg.deadline, None);
        assert_eq!(cfg.retries, 1);
        let p = JobFailure::Panicked("boom".into());
        assert!(format!("{p}").contains("boom"));
        let d = JobFailure::DeadlineExceeded(Duration::from_millis(250));
        assert!(format!("{d}").contains("250 ms"));
        let fj = FailedJob {
            point: 3,
            trial: 1,
            attempts: 2,
            failure: p,
        };
        assert!(format!("{fj}").contains("point 3 trial 1"));
    }
}
