//! Crash-isolated experiment campaigns.
//!
//! [`crate::experiment::run_grid_on`] is fast but brittle: one panicking
//! job (a mis-specified design point tripping a config assertion, a bug
//! in an app under an exotic fault mode) unwinds through the scoped pool
//! and takes the whole grid — hours of completed trials — down with it.
//!
//! This module is the hardened driver used for large exploratory sweeps:
//! every job runs on its own detached thread behind
//! [`std::panic::catch_unwind`], with an optional per-job deadline and a
//! bounded retry budget. A retried trial is *reseeded* (a fresh fault
//! realization) so a deterministic crash is distinguished from an
//! unlucky one; attempt 0 always uses the original trial seed, so a
//! failure-free campaign is bitwise identical to [`run_grid_on`].
//! Instead of aborting, the campaign returns a [`CampaignReport`]:
//! aggregates over the trials that survived plus a structured list of
//! every job that did not.
//!
//! A job that exceeds its deadline is *abandoned*, not killed — safe
//! Rust cannot cancel a wedged thread. The abandoned thread leaks (its
//! late result is discarded by generation tag) and its worker slot is
//! handed to the next job, so a campaign with `n` deadline failures
//! strands at most `n` threads. Campaigns without a deadline can still
//! hang on a genuinely wedged job, exactly like the plain engine.
//!
//! [`run_grid_on`]: crate::experiment::run_grid_on

use crate::engine::{golden_for, Engine};
use crate::experiment::{Aggregate, ExperimentOptions, GridPoint};
use crate::journal::{self, JournalError, JournalHeader, JournalWriter, Record, JOURNAL_VERSION};
use crate::processor::{ClumsyProcessor, GoldenData};
use crate::report::RunReport;
use crate::telemetry::Telemetry;
use netbench::AppKind;
use std::collections::{HashMap, VecDeque};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// How often the coordinator polls the stop condition while a
/// [`BatchControl::stop`] closure is installed.
const STOP_POLL: Duration = Duration::from_millis(100);

/// Seed stride between retry attempts of the same trial (a large odd
/// constant, so attempt seeds never collide with neighbouring trials).
/// Attempt 0 keeps the original trial seed.
pub const RESEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Isolation and retry policy for a campaign.
///
/// # Examples
///
/// ```
/// use clumsy_core::CampaignConfig;
/// use std::time::Duration;
///
/// let cfg = CampaignConfig::default()
///     .with_deadline(Duration::from_secs(60))
///     .with_retries(2);
/// assert_eq!(cfg.retries, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignConfig {
    /// Wall-clock budget per job attempt. `None` (the default) trusts
    /// jobs to terminate, like the plain engine.
    pub deadline: Option<Duration>,
    /// Extra attempts after the first failure; each retry reseeds the
    /// trial by [`RESEED_STRIDE`].
    pub retries: u32,
    /// Cap on concurrently *live abandoned* attempts — deadline-overrun
    /// threads that are still running because safe Rust cannot kill
    /// them. At the cap the coordinator pauses new launches (bounded
    /// ~100 ms re-checks) until a stranded thread finishes, so a storm
    /// of slow points cannot pile up unbounded threads. Scheduling
    /// order never affects results (each job's seed depends only on its
    /// index and attempt), so the cap is always armed.
    pub max_abandoned: usize,
}

impl CampaignConfig {
    /// Returns the config with a per-attempt wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Returns the config with a different retry budget.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Returns the config with a different live-abandoned-attempt cap
    /// (clamped to at least 1).
    pub fn with_max_abandoned(mut self, max_abandoned: usize) -> Self {
        self.max_abandoned = max_abandoned.max(1);
        self
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            deadline: None,
            retries: 1,
            max_abandoned: 32,
        }
    }
}

/// Why a job was abandoned after its attempts were exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobFailure {
    /// Every attempt panicked; the payload message of the last one.
    Panicked(String),
    /// Every attempt overran the per-attempt deadline.
    DeadlineExceeded(Duration),
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFailure::Panicked(msg) => write!(f, "panicked: {msg}"),
            JobFailure::DeadlineExceeded(d) => {
                write!(f, "exceeded {} ms deadline", d.as_millis())
            }
        }
    }
}

/// One exhausted job of a generic [`run_isolated_jobs`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolatedFailure {
    /// Flat job index.
    pub job: usize,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// The last attempt's failure.
    pub failure: JobFailure,
}

/// Outcome of [`run_isolated_jobs`]: one slot per job (`None` where
/// every attempt failed) plus the structured failure list, sorted by
/// job index.
#[derive(Debug)]
pub struct IsolatedRun<R> {
    /// Per-job results in job order.
    pub results: Vec<Option<R>>,
    /// Jobs whose every attempt failed.
    pub failures: Vec<IsolatedFailure>,
    /// Whether the batch was cut short by [`BatchControl::stop`]. Jobs
    /// with neither a result nor a failure were never run.
    pub interrupted: bool,
}

/// Completion callback invoked on the coordinator thread with the job
/// index and its fresh result.
pub type OnResult<'a, R> = &'a mut dyn FnMut(usize, &R);

/// Extra batch behaviour for [`run_isolated_jobs_with`]: results known
/// in advance (replayed from a journal), a cooperative stop condition,
/// and a completion callback (to journal fresh results).
pub struct BatchControl<'a, R> {
    /// Results to pre-fill by job index: these jobs are never
    /// scheduled and do not reach [`BatchControl::on_result`].
    pub prefilled: HashMap<usize, R>,
    /// Polled (roughly every 100 ms) by the coordinator; once it
    /// returns `true`, no further job is launched, pending jobs are
    /// dropped, and in-flight attempts are drained under the normal
    /// deadline machinery.
    pub stop: Option<&'a dyn Fn() -> bool>,
    /// Called on the coordinator thread for every freshly completed
    /// job, before its result is stored.
    pub on_result: Option<OnResult<'a, R>>,
    /// Optional passive instrumentation: job completions, retries,
    /// abandonments and per-attempt wall times are recorded here.
    /// Telemetry never influences scheduling or results.
    pub telemetry: Option<Arc<Telemetry>>,
}

// Manual impl: `derive(Default)` would demand `R: Default`, which the
// fields do not actually need.
impl<R> Default for BatchControl<'_, R> {
    fn default() -> Self {
        BatchControl {
            prefilled: HashMap::new(),
            stop: None,
            on_result: None,
            telemetry: None,
        }
    }
}

/// Turns a panic payload into a displayable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Attempt-thread handshake states (see [`InFlight`]): the coordinator
/// swaps RUNNING → ABANDONED on deadline expiry, the thread swaps
/// whatever it finds → DONE when it finishes. Exactly one side observes
/// the other's transition, which keeps the live-abandoned count exact.
const ATTEMPT_RUNNING: u8 = 0;
const ATTEMPT_ABANDONED: u8 = 1;
const ATTEMPT_DONE: u8 = 2;

/// An in-flight attempt: job index, attempt number, optional deadline,
/// and the shared attempt state ([`ATTEMPT_RUNNING`] et al.).
type InFlight = HashMap<u64, (usize, u32, Option<Instant>, Arc<AtomicU8>)>;

/// Runs `n_jobs` independent jobs with crash isolation: each attempt of
/// `run(job, attempt)` executes on its own detached thread behind
/// `catch_unwind`, bounded by `workers` concurrent attempts.
///
/// A panicking or deadline-overrunning attempt is retried up to
/// `cfg.retries` times with an incremented `attempt`; a job whose
/// attempts are all spent is recorded in
/// [`IsolatedRun::failures`] and leaves `None` in its result slot.
/// Late results from abandoned (timed-out) attempts are discarded.
pub fn run_isolated_jobs<R, F>(
    workers: usize,
    n_jobs: usize,
    cfg: &CampaignConfig,
    run: F,
) -> IsolatedRun<R>
where
    R: Send + 'static,
    F: Fn(usize, u32) -> R + Send + Sync + 'static,
{
    run_isolated_jobs_with(workers, n_jobs, cfg, BatchControl::default(), run)
}

/// [`run_isolated_jobs`] with durability hooks: jobs listed in
/// `control.prefilled` are taken as already done, `control.on_result`
/// observes every fresh completion (for journaling), and
/// `control.stop` requests a graceful early exit — pending jobs are
/// dropped, in-flight attempts drain normally, and the returned batch
/// is marked [`IsolatedRun::interrupted`].
///
/// During a stop, a failing or deadline-overrunning in-flight attempt
/// is neither retried nor recorded as a failure: the job simply stays
/// incomplete, so a resumed batch reruns it from attempt 0 exactly as
/// an uninterrupted batch would have.
pub fn run_isolated_jobs_with<R, F>(
    workers: usize,
    n_jobs: usize,
    cfg: &CampaignConfig,
    mut control: BatchControl<'_, R>,
    run: F,
) -> IsolatedRun<R>
where
    R: Send + 'static,
    F: Fn(usize, u32) -> R + Send + Sync + 'static,
{
    let workers = workers.max(1);
    let run = Arc::new(run);
    let (tx, rx) = mpsc::channel::<(u64, Result<R, String>, Duration)>();

    let mut results: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
    for (job, r) in control.prefilled.drain() {
        if job < n_jobs {
            results[job] = Some(r);
        }
    }
    let mut pending: VecDeque<(usize, u32)> = (0..n_jobs)
        .filter(|j| results[*j].is_none())
        .map(|j| (j, 0))
        .collect();
    let mut failures: Vec<IsolatedFailure> = Vec::new();
    let mut in_flight: InFlight = HashMap::new();
    let mut next_gen: u64 = 0;
    let mut stopped = false;

    let telemetry = control.telemetry.clone();
    let abandoned_live = Arc::new(AtomicU64::new(0));
    let cap = cfg.max_abandoned.max(1) as u64;
    let mut cap_warned = false;

    let give_up_telemetry = telemetry.clone();
    let mut give_up = |job: usize, attempt: u32, failure: JobFailure| {
        if let Some(t) = &give_up_telemetry {
            t.job_failed();
        }
        failures.push(IsolatedFailure {
            job,
            attempts: attempt + 1,
            failure,
        });
    };

    while !pending.is_empty() || !in_flight.is_empty() {
        if !stopped && control.stop.is_some_and(|s| s()) {
            stopped = true;
            pending.clear();
            if in_flight.is_empty() {
                break;
            }
        }

        // Launch until every worker slot is busy, unless live abandoned
        // threads have reached the cap.
        if abandoned_live.load(Ordering::Relaxed) < cap {
            cap_warned = false;
        }
        while !stopped && in_flight.len() < workers && abandoned_live.load(Ordering::Relaxed) < cap
        {
            let Some((job, attempt)) = pending.pop_front() else {
                break;
            };
            let gen = next_gen;
            next_gen += 1;
            let deadline = cfg.deadline.map(|d| Instant::now() + d);
            let state = Arc::new(AtomicU8::new(ATTEMPT_RUNNING));
            in_flight.insert(gen, (job, attempt, deadline, Arc::clone(&state)));
            let tx = tx.clone();
            let run = Arc::clone(&run);
            let live = Arc::clone(&abandoned_live);
            let thread_telemetry = telemetry.clone();
            std::thread::spawn(move || {
                let started = Instant::now();
                let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| run(job, attempt)))
                    .map_err(panic_message);
                let wall = started.elapsed();
                // AcqRel pairs with the coordinator's expiry swap: if we
                // see ABANDONED, its live increment is visible, so the
                // decrement below cannot transiently underflow.
                if state.swap(ATTEMPT_DONE, Ordering::AcqRel) == ATTEMPT_ABANDONED {
                    live.fetch_sub(1, Ordering::Relaxed);
                    if let Some(t) = &thread_telemetry {
                        t.abandoned_finished();
                    }
                }
                // The receiver may have moved on (abandoned attempt
                // after campaign end); a dead channel is fine.
                let _ = tx.send((gen, outcome, wall));
            });
        }
        let capped = !stopped
            && !pending.is_empty()
            && in_flight.len() < workers
            && abandoned_live.load(Ordering::Relaxed) >= cap;
        if capped && !cap_warned {
            cap_warned = true;
            if let Some(t) = &telemetry {
                t.abandoned_cap_hit();
            }
            eprintln!(
                "warning: campaign: {} abandoned attempts still running (cap {cap}); \
                 pausing new launches until one finishes",
                abandoned_live.load(Ordering::Relaxed)
            );
        }

        // Wait for the next completion, until the earliest deadline, or
        // for at most one stop-poll interval when a stop condition is
        // installed and not yet triggered (or launches are paused at the
        // abandoned cap and must be re-checked).
        let earliest = in_flight.values().filter_map(|(_, _, d, _)| *d).min();
        let poll =
            ((control.stop.is_some() && !stopped) || capped).then(|| Instant::now() + STOP_POLL);
        let wake = match (earliest, poll) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let message = match wake {
            Some(at) => {
                let now = Instant::now();
                if at <= now {
                    Err(mpsc::RecvTimeoutError::Timeout)
                } else {
                    rx.recv_timeout(at - now)
                }
            }
            None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
        };

        match message {
            Ok((gen, outcome, wall)) => {
                // An unknown generation is a late result from an attempt
                // already abandoned on deadline: drop it.
                let Some((job, attempt, _, _)) = in_flight.remove(&gen) else {
                    continue;
                };
                match outcome {
                    Ok(r) => {
                        if let Some(t) = &telemetry {
                            // Generation as shard selector: attempt
                            // threads are ephemeral and carry no worker
                            // index, but generations spread evenly.
                            t.job_completed(gen as usize, wall);
                        }
                        if let Some(cb) = control.on_result.as_mut() {
                            cb(job, &r);
                        }
                        results[job] = Some(r);
                    }
                    Err(msg) => {
                        if stopped {
                            // Leave the job incomplete; a resume reruns
                            // it from attempt 0.
                        } else if attempt < cfg.retries {
                            if let Some(t) = &telemetry {
                                t.job_retried();
                            }
                            pending.push_back((job, attempt + 1));
                        } else {
                            give_up(job, attempt, JobFailure::Panicked(msg));
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // Abandon every attempt past its deadline; the threads
                // keep running but their results will be ignored. (A
                // wake-up with nothing expired was just a stop or cap
                // poll.)
                let now = Instant::now();
                let expired: Vec<u64> = in_flight
                    .iter()
                    .filter(|(_, (_, _, d, _))| d.is_some_and(|at| at <= now))
                    .map(|(gen, _)| *gen)
                    .collect();
                for gen in expired {
                    let (job, attempt, _, state) = in_flight.remove(&gen).expect("expired gen");
                    // Count the attempt live *before* publishing the
                    // ABANDONED state, so the stranded thread's
                    // decrement can never race ahead of the increment.
                    abandoned_live.fetch_add(1, Ordering::Relaxed);
                    if let Some(t) = &telemetry {
                        t.abandoned_attempt();
                    }
                    if state.swap(ATTEMPT_ABANDONED, Ordering::AcqRel) == ATTEMPT_DONE {
                        // The thread beat the deadline processing; its
                        // (discarded) result is in the channel and the
                        // thread is gone, so it was never live.
                        abandoned_live.fetch_sub(1, Ordering::Relaxed);
                        if let Some(t) = &telemetry {
                            t.abandoned_finished();
                        }
                    }
                    if stopped {
                        // As above: incomplete, rerun on resume.
                    } else if attempt < cfg.retries {
                        if let Some(t) = &telemetry {
                            t.job_retried();
                        }
                        pending.push_back((job, attempt + 1));
                    } else {
                        let d = cfg.deadline.expect("timeout implies a deadline");
                        give_up(job, attempt, JobFailure::DeadlineExceeded(d));
                    }
                }
            }
            // The main loop owns a sender, so the channel cannot close.
            Err(mpsc::RecvTimeoutError::Disconnected) => unreachable!("tx held by caller"),
        }
    }

    failures.sort_by_key(|f| f.job);
    IsolatedRun {
        results,
        failures,
        interrupted: stopped,
    }
}

/// One exhausted (point, trial) job of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedJob {
    /// Index into the campaign's grid points.
    pub point: usize,
    /// Trial number within the point.
    pub trial: u32,
    /// Attempts consumed (first try + retries).
    pub attempts: u32,
    /// The last attempt's failure.
    pub failure: JobFailure,
}

impl std::fmt::Display for FailedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "point {} trial {} ({} attempts): {}",
            self.point, self.trial, self.attempts, self.failure
        )
    }
}

/// Partial results of a crash-isolated campaign.
///
/// `aggregates[i]` holds the trials of `points[i]` that survived; a
/// point whose every trial failed has an empty `runs` vector. Metric
/// methods on an empty [`Aggregate`] are meaningless — check
/// [`Aggregate::runs`] (or [`CampaignReport::failures`]) first.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Surviving trials per grid point, in point order.
    pub aggregates: Vec<Aggregate>,
    /// Every job whose attempts were exhausted, sorted by (point, trial).
    pub failures: Vec<FailedJob>,
    /// Total (point × trial) jobs submitted.
    pub total_jobs: usize,
}

impl CampaignReport {
    /// Jobs that produced a result. Counted from the surviving trials
    /// (not inferred from the failure list) so it stays correct for
    /// interrupted campaigns, where jobs may be neither.
    pub fn completed_jobs(&self) -> usize {
        self.aggregates.iter().map(|a| a.runs.len()).sum()
    }

    /// Whether every job completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty() && self.completed_jobs() == self.total_jobs
    }
}

/// Runs an experiment grid like
/// [`run_grid_on`](crate::experiment::run_grid_on), but crash-isolated:
/// a panicking or deadline-overrunning job is retried with a reseeded
/// trial and, if it keeps failing, recorded in the report instead of
/// aborting the campaign.
///
/// Golden passes are warmed on the plain engine first (they depend only
/// on the application and trace, not on any design point, so they
/// cannot be crashed by a bad configuration). With no failures the
/// aggregates are bitwise identical to `run_grid_on` on the same
/// inputs.
pub fn run_campaign_on(
    engine: &Engine,
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
    cfg: &CampaignConfig,
) -> CampaignReport {
    campaign_with_control(engine, points, trace, opts, cfg, BatchControl::default()).0
}

/// [`run_campaign_on`] with passive telemetry attached: declares the
/// job total, then records completions, retries, abandonments,
/// per-trial fault counters and outcome tallies into `telemetry` as the
/// campaign runs. Results are bitwise identical to the uninstrumented
/// call.
pub fn run_campaign_instrumented(
    engine: &Engine,
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
    cfg: &CampaignConfig,
    telemetry: &Arc<Telemetry>,
) -> CampaignReport {
    telemetry.add_total_jobs((points.len() * opts.trials.max(1) as usize) as u64);
    let control = BatchControl {
        telemetry: Some(Arc::clone(telemetry)),
        ..BatchControl::default()
    };
    campaign_with_control(engine, points, trace, opts, cfg, control).0
}

/// Shared campaign core: warms goldens, maps (point, trial) jobs onto
/// the isolated batch driver under `control`, and folds the slots back
/// into a [`CampaignReport`]. Returns the report and whether the batch
/// was interrupted.
fn campaign_with_control(
    engine: &Engine,
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
    cfg: &CampaignConfig,
    control: BatchControl<'_, RunReport>,
) -> (CampaignReport, bool) {
    // With telemetry attached, chain a fault-counter/outcome recorder
    // in front of the caller's completion callback. Rebuilt (rather
    // than mutated) because the chained closure lives on this frame.
    let BatchControl {
        prefilled,
        stop,
        on_result,
        telemetry,
    } = control;
    let mut inner = on_result;
    let mut chained;
    let on_result: Option<OnResult<'_, RunReport>> = match telemetry.clone() {
        Some(t) => {
            chained = move |job: usize, r: &RunReport| {
                t.record_report(job, r);
                if let Some(cb) = inner.as_mut() {
                    cb(job, r);
                }
            };
            Some(&mut chained)
        }
        // Reborrow so the returned option carries this frame's
        // lifetime in both arms.
        None => inner.as_mut().map(|cb| &mut **cb as OnResult<'_, _>),
    };
    let control = BatchControl {
        prefilled,
        stop,
        on_result,
        telemetry,
    };

    let mut kinds: Vec<AppKind> = points.iter().map(|p| p.kind).collect();
    kinds.sort();
    kinds.dedup();
    let goldens: Arc<HashMap<AppKind, Arc<GoldenData>>> = Arc::new(
        kinds
            .iter()
            .copied()
            .zip(engine.map(&kinds, |k| golden_for(*k, trace)))
            .collect(),
    );

    let trials = opts.trials.max(1) as usize;
    let total_jobs = points.len() * trials;
    let base_seed = opts.seed;
    let points_shared: Arc<Vec<GridPoint>> = Arc::new(points.to_vec());
    let trace_shared = Arc::new(trace.clone());

    let isolated = run_isolated_jobs_with(
        engine.jobs(),
        total_jobs,
        cfg,
        control,
        move |job: usize, attempt: u32| {
            let point = &points_shared[job / trials];
            let t = (job % trials) as u64;
            let seed = base_seed
                .wrapping_add(t)
                .wrapping_add(u64::from(attempt).wrapping_mul(RESEED_STRIDE));
            let run_cfg = point.cfg.clone().with_seed(seed);
            ClumsyProcessor::new(run_cfg).run_with_golden(
                point.kind,
                &trace_shared,
                &goldens[&point.kind],
            )
        },
    );

    let mut slots = isolated.results.into_iter();
    let aggregates = points
        .iter()
        .map(|_| Aggregate {
            runs: (0..trials)
                .filter_map(|_| slots.next().expect("job count"))
                .collect(),
        })
        .collect();
    let failures = isolated
        .failures
        .into_iter()
        .map(|f| FailedJob {
            point: f.job / trials,
            trial: (f.job % trials) as u32,
            attempts: f.attempts,
            failure: f.failure,
        })
        .collect();

    (
        CampaignReport {
            aggregates,
            failures,
            total_jobs,
        },
        isolated.interrupted,
    )
}

/// Durability settings for [`run_campaign_durable`].
pub struct DurableOptions {
    /// Journal path (created along with its parent directories).
    pub journal: PathBuf,
    /// Replay an existing journal at that path first, scheduling only
    /// the jobs it does not already record. A missing journal file
    /// simply starts a fresh run.
    pub resume: bool,
    /// Optional graceful-stop condition, polled while the campaign
    /// runs (wire this to [`crate::interrupt::interrupted`]).
    pub stop: Option<Arc<dyn Fn() -> bool + Send + Sync>>,
    /// Optional passive instrumentation, threaded through the batch
    /// driver and the journal writer (record/fsync counters).
    pub telemetry: Option<Arc<Telemetry>>,
}

impl DurableOptions {
    /// Durability at `journal` with every optional knob off: no resume,
    /// no stop condition, no telemetry.
    pub fn new(journal: impl Into<PathBuf>) -> Self {
        DurableOptions {
            journal: journal.into(),
            resume: false,
            stop: None,
            telemetry: None,
        }
    }

    /// Returns the options with resume turned on or off.
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// Returns the options with a graceful-stop condition installed.
    pub fn with_stop(mut self, stop: Arc<dyn Fn() -> bool + Send + Sync>) -> Self {
        self.stop = Some(stop);
        self
    }

    /// Returns the options with passive telemetry attached.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

impl std::fmt::Debug for DurableOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableOptions")
            .field("journal", &self.journal)
            .field("resume", &self.resume)
            .field("stop", &self.stop.is_some())
            .field("telemetry", &self.telemetry.is_some())
            .finish()
    }
}

/// Result of a durable campaign run.
#[derive(Debug)]
pub struct DurableOutcome {
    /// The (possibly partial) campaign report.
    pub report: CampaignReport,
    /// `true` if the run was stopped early with jobs still unscheduled
    /// — rerun with `resume` to finish.
    pub interrupted: bool,
    /// Jobs pre-filled from the journal instead of being rerun.
    pub replayed_jobs: usize,
    /// Corrupt or duplicate journal records that were skipped.
    pub skipped_records: usize,
}

/// FNV-1a hash over the canonical description of a grid: each point's
/// application name and full config debug form. Any change to the grid
/// shape or any design-point parameter changes the hash.
pub fn grid_hash(points: &[GridPoint]) -> u64 {
    let mut canon = String::new();
    for p in points {
        canon.push_str(p.kind.name());
        canon.push('|');
        canon.push_str(&format!("{:?}", p.cfg));
        canon.push(';');
    }
    journal::fnv1a64(canon.as_bytes())
}

/// The journal header identifying a campaign run: its seed, trial
/// count, trace size and grid hash. A resume refuses to proceed unless
/// every field matches.
pub fn campaign_header(
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
) -> JournalHeader {
    JournalHeader {
        version: JOURNAL_VERSION,
        seed: opts.seed,
        trials: opts.trials.max(1),
        scale: trace.packets.len() as u64,
        points: points.len() as u64,
        grid: grid_hash(points),
    }
}

/// [`run_campaign_on`] with crash-safe durability: every completed
/// (point, trial) job is appended to a CRC-checked journal as it
/// finishes, `durable.resume` replays a prior journal (verifying the
/// header and tolerating a torn tail) so only the remaining jobs run,
/// and `durable.stop` allows a graceful interrupt that leaves the
/// journal resumable.
///
/// Because a trial's fault seed derives from `opts.seed` and the trial
/// index alone, a resumed campaign produces a report bitwise identical
/// to an uninterrupted one.
///
/// # Errors
///
/// [`JournalError`] if the journal cannot be written, an existing
/// journal has no valid header, or its header belongs to a different
/// run configuration.
pub fn run_campaign_durable(
    engine: &Engine,
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
    cfg: &CampaignConfig,
    durable: &DurableOptions,
) -> Result<DurableOutcome, JournalError> {
    let header = campaign_header(points, trace, opts);
    let trials = opts.trials.max(1) as usize;
    let total_jobs = points.len() * trials;

    let mut prefilled: HashMap<usize, RunReport> = HashMap::new();
    let mut skipped_records = 0;
    let writer = if durable.resume && durable.journal.exists() {
        let replayed = journal::replay(&durable.journal)?;
        replayed.header.check(&header)?;
        skipped_records = replayed.skipped_records;
        for record in replayed.records {
            if let Record::Job { job, report } = record {
                if job < total_jobs {
                    prefilled.insert(job, *report);
                }
            }
        }
        JournalWriter::resume_with(
            &durable.journal,
            replayed.valid_len,
            durable.telemetry.clone(),
        )?
    } else {
        JournalWriter::create_with(&durable.journal, &header, durable.telemetry.clone())?
    };
    let replayed_jobs = prefilled.len();

    if let Some(t) = &durable.telemetry {
        t.add_total_jobs(total_jobs as u64);
        t.add_replayed_jobs(replayed_jobs as u64);
        // Fold replayed trials into the fault/outcome tallies so the
        // progress view covers the whole campaign, not just the resumed
        // remainder.
        for (job, report) in &prefilled {
            t.record_report(*job, report);
        }
    }

    let stop_fn: Option<Box<dyn Fn() -> bool>> = durable.stop.as_ref().map(|s| {
        let s = Arc::clone(s);
        Box::new(move || s()) as Box<dyn Fn() -> bool>
    });
    let mut on_result = |job: usize, report: &RunReport| writer.append_job(job, report);
    let control = BatchControl {
        prefilled,
        stop: stop_fn.as_deref(),
        on_result: Some(&mut on_result),
        telemetry: durable.telemetry.clone(),
    };

    let (report, stopped) = campaign_with_control(engine, points, trace, opts, cfg, control);
    writer.finish()?;

    let unscheduled = total_jobs - report.completed_jobs() - report.failures.len();
    Ok(DurableOutcome {
        interrupted: stopped && unscheduled > 0,
        report,
        replayed_jobs,
        skipped_records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClumsyConfig;
    use crate::experiment::run_grid_on;

    #[test]
    fn all_jobs_succeed_in_order() {
        let out = run_isolated_jobs(4, 16, &CampaignConfig::default(), |job, _| job * 2);
        assert!(out.failures.is_empty());
        let got: Vec<usize> = out.results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(got, (0..16).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn a_panicking_job_is_recorded_and_the_rest_complete() {
        let cfg = CampaignConfig::default().with_retries(1);
        let out = run_isolated_jobs(3, 10, &cfg, |job, _| {
            assert!(job != 4, "job four always dies");
            job
        });
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.job, 4);
        assert_eq!(f.attempts, 2, "one try plus one retry");
        assert!(
            matches!(&f.failure, JobFailure::Panicked(msg) if msg.contains("job four")),
            "panic message must be captured: {f:?}"
        );
        for (j, r) in out.results.iter().enumerate() {
            if j == 4 {
                assert!(r.is_none());
            } else {
                assert_eq!(*r, Some(j));
            }
        }
    }

    #[test]
    fn a_retry_can_succeed_after_a_flaky_panic() {
        let cfg = CampaignConfig::default().with_retries(2);
        let out = run_isolated_jobs(2, 5, &cfg, |job, attempt| {
            // Job 1 fails on its first two attempts only.
            assert!(job != 1 || attempt >= 2, "flaky");
            (job, attempt)
        });
        assert!(out.failures.is_empty());
        assert_eq!(out.results[1], Some((1, 2)), "third attempt succeeded");
        assert_eq!(out.results[0], Some((0, 0)), "others never retried");
    }

    #[test]
    fn a_sleeping_job_exceeds_its_deadline() {
        let cfg = CampaignConfig::default()
            .with_deadline(Duration::from_millis(60))
            .with_retries(1);
        let out = run_isolated_jobs(4, 6, &cfg, |job, _| {
            if job == 2 {
                std::thread::sleep(Duration::from_millis(600));
            }
            job
        });
        assert_eq!(out.failures.len(), 1);
        let f = &out.failures[0];
        assert_eq!(f.job, 2);
        assert_eq!(f.attempts, 2);
        assert!(matches!(f.failure, JobFailure::DeadlineExceeded(_)));
        for (j, r) in out.results.iter().enumerate() {
            if j != 2 {
                assert_eq!(*r, Some(j), "fast jobs must not be harmed");
            }
        }
    }

    #[test]
    fn failure_free_campaign_matches_run_grid_on() {
        let opts = ExperimentOptions {
            trials: 2,
            ..ExperimentOptions::quick()
        };
        let trace = opts.trace.generate();
        let points = vec![
            GridPoint::new(AppKind::Crc, ClumsyConfig::baseline()),
            GridPoint::new(
                AppKind::Tl,
                ClumsyConfig::baseline().with_static_cycle(0.25),
            ),
        ];
        let engine = Engine::with_jobs(2);
        let grid = run_grid_on(&engine, &points, &trace, &opts);
        let campaign = run_campaign_on(&engine, &points, &trace, &opts, &CampaignConfig::default());
        assert!(campaign.is_complete());
        assert_eq!(campaign.total_jobs, 4);
        assert_eq!(campaign.completed_jobs(), 4);
        assert_eq!(campaign.aggregates, grid, "must be bitwise identical");
    }

    #[test]
    fn campaign_config_display_and_defaults() {
        let cfg = CampaignConfig::default();
        assert_eq!(cfg.deadline, None);
        assert_eq!(cfg.retries, 1);
        let p = JobFailure::Panicked("boom".into());
        assert!(format!("{p}").contains("boom"));
        let d = JobFailure::DeadlineExceeded(Duration::from_millis(250));
        assert!(format!("{d}").contains("250 ms"));
        let fj = FailedJob {
            point: 3,
            trial: 1,
            attempts: 2,
            failure: p,
        };
        assert!(format!("{fj}").contains("point 3 trial 1"));
    }
}
