//! The clumsy processor: golden-vs-measured differential execution.

use crate::config::{ClumsyConfig, FrequencyPlan};
use crate::controller::{Decision, DynamicController};
use crate::report::{FatalInfo, RunReport};
use cache_sim::DetectionScheme;
use netbench::{diff_observations, AppKind, Machine, Observation, Trace};
use std::collections::BTreeMap;

/// Golden (fault-free) reference observations for one app over a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct GoldenData {
    init_obs: Vec<Observation>,
    per_packet: Vec<Vec<Observation>>,
}

/// Runs NetBench applications on a clumsy design point and reports the
/// paper's metrics.
///
/// Each [`ClumsyProcessor::run`] replays the trace twice: a golden pass
/// with fault injection disabled, then a measured pass on the configured
/// design point. Marked values are diffed per packet (§2/§5.2), fatal
/// errors abort the measured pass (§4.1), and delay/energy/fallibility
/// feed the energy–delay²–fallibility² metric (§4.1/§5.4).
///
/// # Examples
///
/// ```
/// use clumsy_core::{ClumsyConfig, ClumsyProcessor};
/// use netbench::{AppKind, TraceConfig};
///
/// let trace = TraceConfig::small().generate();
/// let proc = ClumsyProcessor::new(ClumsyConfig::baseline());
/// let report = proc.run(AppKind::Crc, &trace);
/// // At the full-swing clock essentially nothing goes wrong.
/// assert_eq!(report.packets_completed, trace.packets.len());
/// ```
#[derive(Debug, Clone)]
pub struct ClumsyProcessor {
    cfg: ClumsyConfig,
}

impl ClumsyProcessor {
    /// Creates a processor for the given design point.
    pub fn new(cfg: ClumsyConfig) -> Self {
        ClumsyProcessor { cfg }
    }

    /// The design point in use.
    pub fn config(&self) -> &ClumsyConfig {
        &self.cfg
    }

    /// Computes the golden reference for `kind` over `trace`. Reusable
    /// across design points (the golden pass does not depend on them).
    pub fn golden(kind: AppKind, trace: &Trace) -> GoldenData {
        let mut machine = Machine::strongarm(0);
        machine.set_inject(false);
        let mut app = kind.instantiate(trace);
        machine.set_fuel(app.setup_fuel());
        let init_obs = app
            .setup(&mut machine)
            .expect("golden setup cannot fail without faults");
        machine.writeback_all();
        let mut per_packet = Vec::with_capacity(trace.packets.len());
        for pkt in &trace.packets {
            let view = machine.dma_packet(pkt).expect("packet fits DMA buffer");
            machine.set_fuel(app.fuel_per_packet());
            per_packet.push(
                app.process(&mut machine, view)
                    .expect("golden processing cannot fail without faults"),
            );
        }
        GoldenData {
            init_obs,
            per_packet,
        }
    }

    /// Runs the application, computing the golden reference internally.
    pub fn run(&self, kind: AppKind, trace: &Trace) -> RunReport {
        let golden = Self::golden(kind, trace);
        self.run_with_golden(kind, trace, &golden)
    }

    /// Runs the measured pass against a precomputed golden reference
    /// (grid drivers share one golden pass per app/trace).
    ///
    /// # Panics
    ///
    /// Panics if `golden` was computed for a different trace length.
    pub fn run_with_golden(&self, kind: AppKind, trace: &Trace, golden: &GoldenData) -> RunReport {
        assert_eq!(
            golden.per_packet.len(),
            trace.packets.len(),
            "golden data does not match the trace"
        );
        let mut machine = Machine::with_config(self.cfg.mem.clone(), self.cfg.seed);
        machine.set_fault_planes(self.cfg.planes);
        let mut app = kind.instantiate(trace);
        let fuel = self.cfg.fuel_per_packet.unwrap_or(app.fuel_per_packet());

        // Configure the clock plan.
        let mut controller = match &self.cfg.frequency {
            FrequencyPlan::Static(cr) => {
                machine.set_cycle_free(*cr);
                None
            }
            FrequencyPlan::Dynamic(d) => {
                let ctl = DynamicController::new(d.clone());
                machine.set_cycle_free(ctl.cycle_time());
                Some(ctl)
            }
        };
        let mut freq_trace = vec![(0usize, machine.cycle_time())];

        let mut report = RunReport {
            app: kind.name(),
            packets_attempted: trace.packets.len(),
            packets_completed: 0,
            fatal: None,
            dropped_packets: 0,
            erroneous_packets: 0,
            error_counts: BTreeMap::new(),
            init_obs_total: golden.init_obs.len(),
            init_obs_wrong: 0,
            instructions: 0,
            cycles: 0.0,
            energy: Default::default(),
            stats: Default::default(),
            freq_trace: Vec::new(),
            epoch_faults: Vec::new(),
        };

        // Control plane.
        machine.set_plane(netbench::Plane::Control);
        machine.set_fuel(app.setup_fuel());
        match app.setup(&mut machine) {
            Ok(init_obs) => {
                let diff = diff_observations(&golden.init_obs, &init_obs);
                // Count wrong samples pairwise for a finer probability.
                report.init_obs_wrong = golden
                    .init_obs
                    .iter()
                    .zip(&init_obs)
                    .filter(|(g, m)| g != m)
                    .count()
                    .max(usize::from(diff.has_error()));
            }
            Err(e) => {
                report.fatal = Some(FatalInfo {
                    packet_index: 0,
                    error: e,
                });
                Self::finalize(&self.cfg, &mut report, &machine, freq_trace);
                return report;
            }
        }

        // Tables are stable now: drain them to L2 so strike recovery
        // has a correct copy to restore (write-buffer drain, no stall).
        machine.writeback_all();

        // Data plane.
        machine.set_plane(netbench::Plane::Data);
        let detection = self.cfg.mem.detection;
        let mut faults_seen = Self::fault_count(&machine, detection);
        let mut epoch_acc = 0u64;
        for (idx, pkt) in trace.packets.iter().enumerate() {
            let view = match machine.dma_packet(pkt) {
                Ok(v) => v,
                Err(e) => {
                    report.fatal = Some(FatalInfo {
                        packet_index: idx,
                        error: e,
                    });
                    break;
                }
            };
            machine.set_fuel(fuel);
            match app.process(&mut machine, view) {
                Ok(obs) => {
                    report.packets_completed += 1;
                    let diff = diff_observations(&golden.per_packet[idx], &obs);
                    if diff.has_error() {
                        report.erroneous_packets += 1;
                        for cat in diff.erroneous {
                            *report.error_counts.entry(cat).or_insert(0) += 1;
                        }
                    }
                }
                Err(e) => {
                    if self.cfg.watchdog {
                        // Footnote 3: contain the fatal error — drop the
                        // packet and keep the processor running.
                        report.dropped_packets += 1;
                    } else {
                        report.fatal = Some(FatalInfo {
                            packet_index: idx,
                            error: e,
                        });
                        break;
                    }
                }
            }
            // Dynamic adaptation on the observed fault counter.
            if let Some(ctl) = controller.as_mut() {
                let now = Self::fault_count(&machine, detection);
                let delta = now - faults_seen;
                faults_seen = now;
                epoch_acc += delta;
                match ctl.on_packet(delta) {
                    None => {}
                    Some(decision) => {
                        report.epoch_faults.push(epoch_acc);
                        epoch_acc = 0;
                        if let Decision::Switch(cr) = decision {
                            machine.set_cycle(cr);
                            freq_trace.push((idx + 1, cr));
                        }
                    }
                }
            }
        }

        Self::finalize(&self.cfg, &mut report, &machine, freq_trace);
        report
    }

    /// The fault counter the controller observes: parity detections plus
    /// ECC in-place corrections when detection hardware exists (the
    /// syndrome logic sees a correction just as it sees a detection),
    /// otherwise the injected count (an oracle stand-in; the paper is
    /// silent on the no-detection case).
    pub(crate) fn fault_count(machine: &Machine, detection: DetectionScheme) -> u64 {
        if detection.is_enabled() {
            machine.stats().faults_detected + machine.stats().faults_corrected
        } else {
            machine.stats().faults_injected
        }
    }

    fn finalize(
        cfg: &ClumsyConfig,
        report: &mut RunReport,
        machine: &Machine,
        freq_trace: Vec<(usize, f64)>,
    ) {
        report.instructions = machine.instructions();
        report.cycles = machine.cycles();
        report.stats = *machine.stats();
        let mut energy = machine.energy();
        energy.core_nj += cfg.mem.energy.core_energy(machine.cycles());
        report.energy = energy;
        report.freq_trace = freq_trace;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DynamicConfig;
    use cache_sim::StrikePolicy;
    use fault_model::FaultProbabilityModel;
    use netbench::TraceConfig;

    fn trace() -> Trace {
        TraceConfig::small().generate()
    }

    #[test]
    fn baseline_run_is_clean_for_every_app() {
        let t = trace();
        for kind in AppKind::all() {
            let r = ClumsyProcessor::new(ClumsyConfig::baseline()).run(kind, &t);
            assert_eq!(r.packets_completed, t.packets.len(), "{kind}");
            assert!(r.fatal.is_none(), "{kind}");
            // At Cr = 1 the per-bit fault probability is 2.59e-7, so a
            // handful of faults can land even on a small trace — but
            // the error rate must be negligible.
            assert!(r.erroneous_packets <= 2, "{kind}: {}", r.erroneous_packets);
            assert!(r.fallibility() < 1.02, "{kind}");
        }
    }

    #[test]
    fn overclocking_without_detection_causes_errors() {
        let t = TraceConfig::small().with_packets(400).generate();
        // An aggressive fault model makes errors certain on a small trace.
        let cfg = ClumsyConfig::baseline()
            .with_fault_model(FaultProbabilityModel::new(2e-5, 0.2))
            .with_static_cycle(0.25);
        let r = ClumsyProcessor::new(cfg).run(AppKind::Route, &t);
        assert!(
            r.erroneous_packets > 0 || r.fatal.is_some(),
            "16x fault rate must disturb something"
        );
        assert!(r.fallibility() > 1.0 || r.fatal.is_some());
    }

    #[test]
    fn parity_recovery_reduces_errors() {
        let t = TraceConfig::small().with_packets(400).generate();
        let hot = FaultProbabilityModel::new(2e-6, 0.2);
        let base = ClumsyConfig::baseline()
            .with_fault_model(hot)
            .with_static_cycle(0.25);
        let protected = base
            .clone()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike());
        let mut unprot_clean = 0usize;
        let mut prot_clean = 0usize;
        let mut prot_done = 0usize;
        let mut prot_err = 0usize;
        let mut prot_detected = 0u64;
        let total = 10 * t.packets.len();
        for seed in 0..10u64 {
            let r1 = ClumsyProcessor::new(base.clone().with_seed(seed)).run(AppKind::Route, &t);
            let r2 =
                ClumsyProcessor::new(protected.clone().with_seed(seed)).run(AppKind::Route, &t);
            unprot_clean += r1.packets_completed - r1.erroneous_packets;
            prot_clean += r2.packets_completed - r2.erroneous_packets;
            prot_done += r2.packets_completed;
            prot_err += r2.erroneous_packets;
            prot_detected += r2.stats.faults_detected;
        }
        // Parity + strikes must (a) detect faults, (b) deliver more
        // clean packets than the unprotected design (which loses whole
        // runs to fatal errors and silently corrupts the rest), and
        // (c) keep the protected error rate low (only even-weight
        // corruptions slip past parity).
        assert!(prot_detected > 0, "parity must detect faults");
        assert!(
            prot_clean > unprot_clean,
            "protection must deliver more clean packets: {prot_clean} vs {unprot_clean} of {total}"
        );
        assert!(
            prot_err * 2 < prot_done,
            "most protected packets must be clean: {prot_err}/{prot_done}"
        );
    }

    #[test]
    fn static_overclock_reduces_delay_and_energy() {
        let t = trace();
        let r_full = ClumsyProcessor::new(ClumsyConfig::baseline()).run(AppKind::Tl, &t);
        let r_fast = ClumsyProcessor::new(ClumsyConfig::baseline().with_static_cycle(0.5))
            .run(AppKind::Tl, &t);
        assert!(r_fast.delay_per_packet() < r_full.delay_per_packet());
        assert!(r_fast.energy.l1_nj < r_full.energy.l1_nj);
    }

    #[test]
    fn epoch_faults_are_recorded_for_dynamic_plans() {
        let t = TraceConfig::small().with_packets(450).generate();
        let cfg = ClumsyConfig::baseline().with_dynamic(DynamicConfig::paper());
        let r = ClumsyProcessor::new(cfg).run(AppKind::Tl, &t);
        // 450 packets at 100 per epoch: 4 completed epochs.
        assert_eq!(r.epoch_faults.len(), 4);
        let static_run = ClumsyProcessor::new(ClumsyConfig::baseline()).run(AppKind::Tl, &t);
        assert!(static_run.epoch_faults.is_empty());
    }

    #[test]
    fn dynamic_plan_climbs_when_quiet() {
        let t = TraceConfig::small().with_packets(600).generate();
        let cfg = ClumsyConfig::baseline().with_dynamic(DynamicConfig::paper());
        let r = ClumsyProcessor::new(cfg).run(AppKind::Tl, &t);
        // With the calibrated (tiny) fault rates the controller reaches
        // the fastest level within a few epochs.
        assert!(r.freq_trace.len() >= 3, "trace: {:?}", r.freq_trace);
        let final_cr = r.freq_trace.last().unwrap().1;
        assert!(final_cr <= 0.5, "should have climbed, got {final_cr}");
        assert!(r.stats.freq_switches >= 2);
    }

    #[test]
    fn golden_reuse_matches_internal_golden() {
        let t = trace();
        let golden = ClumsyProcessor::golden(AppKind::Nat, &t);
        let p = ClumsyProcessor::new(ClumsyConfig::baseline());
        let a = p.run(AppKind::Nat, &t);
        let b = p.run_with_golden(AppKind::Nat, &t, &golden);
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_deterministic() {
        let t = trace();
        let cfg = ClumsyConfig::baseline()
            .with_fault_model(FaultProbabilityModel::new(1e-5, 0.2))
            .with_static_cycle(0.25);
        let a = ClumsyProcessor::new(cfg.clone()).run(AppKind::Drr, &t);
        let b = ClumsyProcessor::new(cfg).run(AppKind::Drr, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn watchdog_contains_fatal_errors() {
        // At a rate that reliably kills the radix walk, the watchdog
        // drops packets instead of ending the run.
        let t = TraceConfig::small().with_packets(300).generate();
        // Faults in the data plane only: the watchdog covers packet
        // processing (footnote 3 is about per-packet loops); a processor
        // that cannot even build its tables is legitimately dead.
        let base = ClumsyConfig::baseline()
            .with_fault_model(FaultProbabilityModel::new(2e-4, 0.2))
            .with_planes(netbench::PlaneMask::data_only())
            .with_static_cycle(0.25);
        let mut plain_fatals = 0;
        let mut dog_fatals = 0;
        let mut dog_drops = 0;
        for seed in 0..6u64 {
            let plain = ClumsyProcessor::new(base.clone().with_seed(seed)).run(AppKind::Tl, &t);
            let dog = ClumsyProcessor::new(base.clone().with_seed(seed).with_watchdog())
                .run(AppKind::Tl, &t);
            plain_fatals += usize::from(plain.fatal.is_some());
            dog_fatals += usize::from(dog.fatal.is_some());
            dog_drops += dog.dropped_packets;
            assert_eq!(
                dog.packets_completed + dog.dropped_packets,
                t.packets.len(),
                "watchdog must account for every packet"
            );
        }
        assert!(plain_fatals > 0, "rate must be lethal without watchdog");
        assert_eq!(dog_fatals, 0, "watchdog must contain every fatal");
        assert!(dog_drops > 0, "contained fatals appear as drops");
    }

    #[test]
    fn word_recovery_is_no_worse_than_line_recovery() {
        use cache_sim::RecoveryGranularity;
        let t = TraceConfig::small().with_packets(400).generate();
        let mk = |granularity| {
            ClumsyConfig::baseline()
                .with_fault_model(FaultProbabilityModel::new(2e-6, 0.2))
                .with_detection(DetectionScheme::Parity)
                .with_strikes(StrikePolicy::one_strike())
                .with_recovery(granularity)
                .with_static_cycle(0.25)
        };
        let mut line_err = 0usize;
        let mut word_err = 0usize;
        for seed in 0..6u64 {
            line_err += ClumsyProcessor::new(mk(RecoveryGranularity::Line).with_seed(seed))
                .run(AppKind::Md5, &t)
                .erroneous_packets;
            word_err += ClumsyProcessor::new(mk(RecoveryGranularity::Word).with_seed(seed))
                .run(AppKind::Md5, &t)
                .erroneous_packets;
        }
        assert!(
            word_err <= line_err,
            "sub-block repair must not lose more data: {word_err} vs {line_err}"
        );
    }

    #[test]
    fn different_seeds_give_different_fault_patterns() {
        let t = TraceConfig::small().with_packets(300).generate();
        let cfg = ClumsyConfig::baseline()
            .with_fault_model(FaultProbabilityModel::new(3e-5, 0.2))
            .with_static_cycle(0.25);
        let a = ClumsyProcessor::new(cfg.clone().with_seed(1)).run(AppKind::Crc, &t);
        let b = ClumsyProcessor::new(cfg.with_seed(2)).run(AppKind::Crc, &t);
        assert_ne!(
            (a.stats.faults_injected, a.erroneous_packets),
            (b.stats.faults_injected, b.erroneous_packets)
        );
    }
}
