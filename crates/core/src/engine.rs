//! Shared experiment execution engine.
//!
//! The grid drivers in [`crate::experiment`] flatten their whole
//! (application × configuration × trial) grid into independent jobs and
//! hand them to an [`Engine`]: a bounded work-stealing thread pool built
//! on scoped threads. Each worker owns a deque seeded round-robin with
//! job indices; it pops from the front of its own deque and, when that
//! runs dry, steals from the back of a victim's. The calling thread
//! participates as worker 0, so an engine with one job slot runs the
//! grid inline on the caller — no threads, no locks touched per job.
//!
//! Results are written into their job's slot, so [`Engine::map`] is
//! order-preserving: the output is bitwise independent of the worker
//! count and of steal timing. Combined with per-trial seeding this makes
//! the parallel drivers produce `RunReport`s identical to a serial run.
//!
//! The module also hosts the golden-run memo: [`golden_for`] caches
//! [`ClumsyProcessor::golden`] per (application, trace fingerprint), so
//! a grid touching one trace computes each application's golden pass
//! once instead of once per configuration.

use crate::processor::{ClumsyProcessor, GoldenData};
use crate::telemetry::{Stopwatch, Telemetry};
use netbench::{AppKind, Trace};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "CLUMSY_JOBS";

/// Bounded work-stealing executor for experiment grids.
///
/// # Examples
///
/// ```
/// use clumsy_core::Engine;
///
/// let engine = Engine::with_jobs(4);
/// let squares = engine.map(&[1u64, 2, 3, 4, 5], |x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    jobs: usize,
    telemetry: Option<Arc<Telemetry>>,
}

impl Engine {
    /// An engine with exactly `jobs` workers (clamped to at least 1).
    /// One worker means the caller runs every job inline, in order.
    pub fn with_jobs(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            telemetry: None,
        }
    }

    /// Returns the engine with passive telemetry attached: every
    /// [`Engine::map`] job is counted on its worker's shard and its
    /// wall time accumulated. Telemetry never affects scheduling,
    /// ordering or results.
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// An engine sized from the environment: `CLUMSY_JOBS` when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        if let Ok(v) = std::env::var(JOBS_ENV) {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return Engine::with_jobs(n);
                }
            }
        }
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Engine::with_jobs(n)
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` across the pool, preserving input order.
    ///
    /// Jobs are independent; `f` must not rely on any cross-item
    /// execution order. Propagates the first worker panic.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items
                .iter()
                .map(|item| {
                    let timed = self.telemetry.as_deref().map(|_| Stopwatch::start());
                    let r = f(item);
                    if let (Some(t), Some(sw)) = (self.telemetry.as_deref(), timed) {
                        t.engine_job(0, sw.elapsed());
                    }
                    r
                })
                .collect();
        }

        // Per-worker deques, seeded round-robin so early items start
        // immediately on every worker.
        let deques: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..n).step_by(workers).collect()))
            .collect();
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        // A deque or slot only holds plain indices/results, so a lock
        // poisoned by a panicking sibling is still structurally sound:
        // recover the guard and keep draining instead of cascading the
        // panic through every worker.
        let run_worker = |me: usize| {
            loop {
                // Own work first (front of own deque)...
                let job = deques[me]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .pop_front();
                let job = match job {
                    Some(j) => Some(j),
                    // ...then steal from the back of the busiest victim.
                    None => deques
                        .iter()
                        .enumerate()
                        .filter(|(v, _)| *v != me)
                        .max_by_key(|(_, d)| d.lock().unwrap_or_else(|e| e.into_inner()).len())
                        .and_then(|(_, d)| d.lock().unwrap_or_else(|e| e.into_inner()).pop_back()),
                };
                match job {
                    Some(j) => {
                        let timed = self.telemetry.as_deref().map(|_| Stopwatch::start());
                        let r = f(&items[j]);
                        if let (Some(t), Some(sw)) = (self.telemetry.as_deref(), timed) {
                            t.engine_job(me, sw.elapsed());
                        }
                        *slots[j].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                    }
                    // Every deque is empty: a single batch is submitted
                    // up front, so there is nothing left to wait for.
                    None => break,
                }
            }
        };

        std::thread::scope(|scope| {
            for w in 1..workers {
                let run_worker = &run_worker;
                scope.spawn(move || run_worker(w));
            }
            run_worker(0);
        });

        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("job finished without a result")
            })
            .collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::from_env()
    }
}

/// Upper bound on memoized golden runs; reaching it evicts everything
/// (grids reuse a handful of traces, so this is a leak guard, not LRU).
const GOLDEN_CACHE_CAP: usize = 64;

/// Golden runs keyed by (application, [`Trace::fingerprint`]).
type GoldenMap = HashMap<(AppKind, u64), Arc<GoldenData>>;

fn golden_cache() -> &'static Mutex<GoldenMap> {
    static CACHE: OnceLock<Mutex<GoldenMap>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the golden (fault-free) run of `kind` on `trace`, memoized
/// per (application, [`Trace::fingerprint`]).
///
/// Golden runs disable fault injection and draw no randomness, so the
/// result depends only on the key; concurrent misses may compute the
/// same golden twice but always agree.
pub fn golden_for(kind: AppKind, trace: &Trace) -> Arc<GoldenData> {
    let key = (kind, trace.fingerprint());
    // The map's entries are immutable once inserted, so a poisoned lock
    // (a worker panicked mid-warm) still holds a usable cache.
    if let Some(hit) = golden_cache()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(&key)
    {
        return Arc::clone(hit);
    }
    // Compute outside the lock so warming different apps in parallel
    // actually overlaps.
    let golden = Arc::new(ClumsyProcessor::golden(kind, trace));
    let mut cache = golden_cache().lock().unwrap_or_else(|e| e.into_inner());
    if cache.len() >= GOLDEN_CACHE_CAP {
        cache.clear();
    }
    Arc::clone(cache.entry(key).or_insert(golden))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbench::TraceConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 128] {
            let got = Engine::with_jobs(jobs).map(&items, |x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_handles_empty_and_single_inputs() {
        let e = Engine::with_jobs(4);
        assert_eq!(e.map(&[] as &[u32], |x| *x), Vec::<u32>::new());
        assert_eq!(e.map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn map_runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..500).collect();
        let got = Engine::with_jobs(7).map(&items, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            *i
        });
        assert_eq!(counter.load(Ordering::Relaxed), items.len());
        assert_eq!(got, items);
    }

    #[test]
    fn with_jobs_clamps_to_one() {
        assert_eq!(Engine::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn jobs_env_overrides_parallelism() {
        // Env mutation is process-global; keep this the only test that
        // touches JOBS_ENV.
        std::env::set_var(JOBS_ENV, "3");
        assert_eq!(Engine::from_env().jobs(), 3);
        std::env::set_var(JOBS_ENV, "not a number");
        assert!(Engine::from_env().jobs() >= 1);
        std::env::remove_var(JOBS_ENV);
        assert!(Engine::from_env().jobs() >= 1);
    }

    #[test]
    fn golden_for_returns_one_shared_instance() {
        let trace = TraceConfig::small().generate();
        let a = golden_for(AppKind::Crc, &trace);
        let b = golden_for(AppKind::Crc, &trace);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        let other = golden_for(AppKind::Md5, &trace);
        assert!(!Arc::ptr_eq(&a, &other));
    }

    #[test]
    fn golden_for_matches_direct_computation() {
        let trace = TraceConfig::small().generate();
        let cached = golden_for(AppKind::Tl, &trace);
        let direct = ClumsyProcessor::golden(AppKind::Tl, &trace);
        assert_eq!(*cached, direct);
    }
}
