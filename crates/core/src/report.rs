//! Run reports: the paper's measured quantities for one execution.

use cache_sim::MemStats;
use energy_model::{EdfMetric, EnergyBreakdown};
use netbench::{AppError, ErrorCategory};
use std::collections::BTreeMap;
use std::fmt;

/// Details of a fatal error that aborted a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FatalInfo {
    /// Index of the packet whose processing died.
    pub packet_index: usize,
    /// The fatal error.
    pub error: AppError,
}

/// Everything measured during one application run (paper §4.1/§5).
///
/// # Examples
///
/// ```
/// use clumsy_core::{ClumsyConfig, ClumsyProcessor};
/// use netbench::{AppKind, TraceConfig};
///
/// let trace = TraceConfig::small().generate();
/// let report = ClumsyProcessor::new(ClumsyConfig::baseline()).run(AppKind::Tl, &trace);
/// assert_eq!(report.packets_attempted, trace.packets.len());
/// assert!(report.delay_per_packet() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Application name (Table I).
    pub app: &'static str,
    /// Packets offered to the application.
    pub packets_attempted: usize,
    /// Packets processed to completion (all of them unless fatal).
    pub packets_completed: usize,
    /// The fatal error, if one stopped the run.
    pub fatal: Option<FatalInfo>,
    /// Packets dropped by the watchdog after a contained fatal error.
    pub dropped_packets: usize,
    /// Packets whose observations differed from golden in any category.
    pub erroneous_packets: usize,
    /// Per-category count of packets whose observations differed.
    pub error_counts: BTreeMap<ErrorCategory, usize>,
    /// Initialization observations taken at the end of the control plane.
    pub init_obs_total: usize,
    /// Initialization observations that differed from golden.
    pub init_obs_wrong: usize,
    /// Instructions executed (measured run).
    pub instructions: u64,
    /// Core cycles elapsed (measured run).
    pub cycles: f64,
    /// Total energy including core (measured run), in nanojoules.
    pub energy: EnergyBreakdown,
    /// Cache statistics (measured run).
    pub stats: MemStats,
    /// `(packet index, Cr)` at every dynamic frequency switch.
    pub freq_trace: Vec<(usize, f64)>,
    /// Observed fault count per controller epoch (dynamic plans only).
    pub epoch_faults: Vec<u64>,
}

impl RunReport {
    /// The paper's fallibility factor: `1 +` the fraction of completed
    /// packets with any error (§4.1). Watchdog-dropped packets count as
    /// erroneous.
    pub fn fallibility(&self) -> f64 {
        let denom = self.packets_completed + self.dropped_packets;
        if denom == 0 {
            2.0 // every packet failed; cap the factor
        } else {
            1.0 + (self.erroneous_packets + self.dropped_packets) as f64 / denom as f64
        }
    }

    /// Average cycles per successfully processed packet (§5.4 uses the
    /// per-packet average because fatal runs do not finish).
    pub fn delay_per_packet(&self) -> f64 {
        if self.packets_completed == 0 {
            self.cycles.max(1.0)
        } else {
            self.cycles / self.packets_completed as f64
        }
    }

    /// Average energy per successfully processed packet, in nanojoules.
    pub fn energy_per_packet(&self) -> f64 {
        if self.packets_completed == 0 {
            self.energy.total_nj().max(1.0)
        } else {
            self.energy.total_nj() / self.packets_completed as f64
        }
    }

    /// Error probability for one category: the fraction of completed
    /// packets whose observations in that category differed (Figures
    /// 6–7).
    pub fn error_probability(&self, cat: ErrorCategory) -> f64 {
        if self.packets_completed == 0 {
            return 1.0;
        }
        let n = if cat == ErrorCategory::Initialization {
            // Initialization errors are measured over the sampled table
            // observations rather than per packet.
            return if self.init_obs_total == 0 {
                0.0
            } else {
                self.init_obs_wrong as f64 / self.init_obs_total as f64
            };
        } else {
            self.error_counts.get(&cat).copied().unwrap_or(0)
        };
        n as f64 / self.packets_completed as f64
    }

    /// Fatal error probability per attempted packet (Figure 8).
    pub fn fatal_probability(&self) -> f64 {
        if self.packets_attempted == 0 {
            0.0
        } else {
            f64::from(u8::from(self.fatal.is_some())) / self.packets_attempted as f64
        }
    }

    /// The energy–delay–fallibility product under `metric`, using
    /// per-packet energy and delay (§4.1).
    pub fn edf(&self, metric: &EdfMetric) -> f64 {
        metric.product(
            self.energy_per_packet(),
            self.delay_per_packet(),
            self.fallibility(),
        )
    }

    /// This run's EDF relative to a baseline run (the bar heights of
    /// Figures 9–12).
    pub fn edf_relative_to(&self, metric: &EdfMetric, baseline: &RunReport) -> f64 {
        self.edf(metric) / baseline.edf(metric)
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}/{} packets, {} erroneous, fallibility {:.3}, {:.0} cyc/pkt, {:.0} nJ/pkt{}",
            self.app,
            self.packets_completed,
            self.packets_attempted,
            self.erroneous_packets,
            self.fallibility(),
            self.delay_per_packet(),
            self.energy_per_packet(),
            if self.fatal.is_some() { ", FATAL" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blank() -> RunReport {
        RunReport {
            app: "test",
            packets_attempted: 100,
            packets_completed: 100,
            fatal: None,
            dropped_packets: 0,
            erroneous_packets: 0,
            error_counts: BTreeMap::new(),
            init_obs_total: 8,
            init_obs_wrong: 0,
            instructions: 1000,
            cycles: 5000.0,
            energy: EnergyBreakdown {
                core_nj: 10_000.0,
                ..Default::default()
            },
            stats: MemStats::default(),
            freq_trace: Vec::new(),
            epoch_faults: Vec::new(),
        }
    }

    #[test]
    fn clean_run_has_unit_fallibility() {
        assert!((blank().fallibility() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fallibility_counts_erroneous_fraction() {
        let mut r = blank();
        r.erroneous_packets = 25;
        assert!((r.fallibility() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn per_packet_metrics() {
        let r = blank();
        assert!((r.delay_per_packet() - 50.0).abs() < 1e-12);
        assert!((r.energy_per_packet() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn category_probability() {
        let mut r = blank();
        r.error_counts.insert(ErrorCategory::Ttl, 10);
        assert!((r.error_probability(ErrorCategory::Ttl) - 0.1).abs() < 1e-12);
        assert_eq!(r.error_probability(ErrorCategory::Checksum), 0.0);
    }

    #[test]
    fn initialization_probability_uses_samples() {
        let mut r = blank();
        r.init_obs_wrong = 2;
        assert!((r.error_probability(ErrorCategory::Initialization) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dropped_packets_count_as_erroneous() {
        let mut r = blank();
        r.dropped_packets = 10;
        r.packets_completed = 90;
        assert!((r.fallibility() - 1.1).abs() < 1e-12);
    }

    #[test]
    fn fatal_probability_is_per_attempted_packet() {
        let mut r = blank();
        assert_eq!(r.fatal_probability(), 0.0);
        r.fatal = Some(FatalInfo {
            packet_index: 40,
            error: netbench::AppError::Fatal(netbench::FatalError::FuelExhausted { budget: 1 }),
        });
        assert!((r.fatal_probability() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn edf_relative_to_self_is_one() {
        let r = blank();
        let m = EdfMetric::paper();
        assert!((r.edf_relative_to(&m, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_has_key_numbers() {
        let s = format!("{}", blank());
        assert!(s.contains("100/100"));
        assert!(s.contains("fallibility 1.000"));
    }
}
