//! The dynamic frequency-adaptation controller (paper §4).

use crate::config::DynamicConfig;
use std::fmt;

/// A controller decision at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Keep the current frequency.
    Hold,
    /// Switch to the given relative cycle time (higher `Cr` = slower and
    /// safer).
    Switch(f64),
}

/// Epoch-based dynamic frequency controller.
///
/// The processor "records the number of parity failures during execution
/// epochs. ... after the completion of the processing of 100 packets,
/// the processor makes a decision for whether to increase the frequency,
/// to keep it in its current state, or to decrease it depending on the
/// number of faults" (§4). Deciding on a packet count rather than a time
/// interval lets the scheme adapt to the application's packet rate.
///
/// The paper leaves the all-zero case unspecified; we clamp the stored
/// fault count to at least one so a fault-free epoch always reads as
/// "below X2" and the controller can climb out of the safe region.
///
/// With an optional [`SafeModeConfig`](crate::SafeModeConfig) the
/// controller also watches the *absolute* per-epoch fault count: the
/// X1/X2 rule is purely relative, so a slow ramp of detected faults —
/// exactly what a degrading L2 produces — never looks alarming epoch
/// over epoch. Any epoch above the safe-mode threshold clamps straight
/// to the slowest level and holds there for a hysteresis window before
/// the normal climb resumes.
///
/// # Examples
///
/// ```
/// use clumsy_core::{Decision, DynamicController};
/// use clumsy_core::DynamicConfig;
///
/// let mut ctl = DynamicController::new(DynamicConfig::paper());
/// assert_eq!(ctl.cycle_time(), 1.0);
/// // 100 fault-free packets: climb to the next level.
/// let mut decision = Decision::Hold;
/// for _ in 0..100 {
///     if let Some(d) = ctl.on_packet(0) {
///         decision = d;
///     }
/// }
/// assert_eq!(decision, Decision::Switch(0.75));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicController {
    cfg: DynamicConfig,
    level: usize,
    stored_faults: f64,
    packets_in_epoch: u32,
    faults_in_epoch: u64,
    switches: u32,
    safe_hold: u32,
    safe_entries: u32,
}

impl DynamicController {
    /// Creates a controller starting at the slowest (safest) level.
    ///
    /// # Panics
    ///
    /// Panics if the config has no levels or non-monotone levels.
    pub fn new(cfg: DynamicConfig) -> Self {
        assert!(!cfg.levels.is_empty(), "need at least one frequency level");
        assert!(
            cfg.levels.windows(2).all(|w| w[0] > w[1]),
            "levels must be strictly decreasing cycle times"
        );
        assert!(cfg.x1 > cfg.x2, "x1 must exceed x2");
        DynamicController {
            cfg,
            level: 0,
            stored_faults: 1.0,
            packets_in_epoch: 0,
            faults_in_epoch: 0,
            switches: 0,
            safe_hold: 0,
            safe_entries: 0,
        }
    }

    /// Current relative cycle time.
    pub fn cycle_time(&self) -> f64 {
        self.cfg.levels[self.level]
    }

    /// Number of frequency switches decided so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Number of epochs that tripped the safe-mode clamp.
    pub fn safe_mode_entries(&self) -> u32 {
        self.safe_entries
    }

    /// Whether the controller is currently inside a safe-mode hold.
    pub fn in_safe_hold(&self) -> bool {
        self.safe_hold > 0
    }

    /// Records one processed packet and the faults observed during it.
    /// Returns a decision at epoch boundaries (`None` mid-epoch).
    pub fn on_packet(&mut self, faults: u64) -> Option<Decision> {
        self.packets_in_epoch += 1;
        self.faults_in_epoch += faults;
        if self.packets_in_epoch < self.cfg.epoch_packets {
            return None;
        }
        let raw_faults = self.faults_in_epoch;
        let epoch_faults = raw_faults as f64;
        self.packets_in_epoch = 0;
        self.faults_in_epoch = 0;

        if let Some(sm) = self.cfg.safe_mode {
            if raw_faults > sm.threshold {
                // Absolute storm: clamp to the slowest level and re-arm
                // the hysteresis window (re-triggerable mid-hold).
                self.safe_entries += 1;
                self.safe_hold = sm.hold_epochs;
                let decision = if self.level > 0 {
                    self.level = 0;
                    self.stored_faults = epoch_faults;
                    self.switches += 1;
                    Decision::Switch(self.cycle_time())
                } else {
                    Decision::Hold
                };
                return Some(decision);
            }
            if self.safe_hold > 0 {
                // Quiet epoch inside the hold window: stay clamped, do
                // not climb, let the window drain.
                self.safe_hold -= 1;
                return Some(Decision::Hold);
            }
        }

        // Clamp the reference so an all-zero history still allows
        // climbing (see type-level docs).
        let reference = self.stored_faults.max(1.0);
        let decision = if epoch_faults > self.cfg.x1 * reference {
            // Too many faults: reduce frequency (slower, safer).
            if self.level > 0 {
                self.level -= 1;
                self.stored_faults = epoch_faults;
                self.switches += 1;
                Decision::Switch(self.cycle_time())
            } else {
                Decision::Hold
            }
        } else if epoch_faults < self.cfg.x2 * reference {
            // Few faults: increase frequency (faster, riskier).
            if self.level + 1 < self.cfg.levels.len() {
                self.level += 1;
                self.stored_faults = epoch_faults;
                self.switches += 1;
                Decision::Switch(self.cycle_time())
            } else {
                Decision::Hold
            }
        } else {
            Decision::Hold
        };
        Some(decision)
    }
}

impl fmt::Display for DynamicController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic @ Cr={:.2} ({} switches)",
            self.cycle_time(),
            self.switches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DynamicController {
        DynamicController::new(DynamicConfig::paper())
    }

    fn run_epoch(c: &mut DynamicController, faults_per_packet: u64) -> Decision {
        let mut last = Decision::Hold;
        for _ in 0..100 {
            if let Some(d) = c.on_packet(faults_per_packet) {
                last = d;
            }
        }
        last
    }

    #[test]
    fn quiet_epochs_climb_to_fastest() {
        let mut c = ctl();
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.75));
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.5));
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.25));
        // Already fastest: hold.
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold);
        assert_eq!(c.cycle_time(), 0.25);
        assert_eq!(c.switches(), 3);
    }

    #[test]
    fn fault_storm_backs_off() {
        let mut c = ctl();
        run_epoch(&mut c, 0); // -> 0.75, stored = 0 (clamped to 1)
        run_epoch(&mut c, 0); // -> 0.5
                              // 300 faults this epoch >> 2.0 * stored: back off to 0.75.
        assert_eq!(run_epoch(&mut c, 3), Decision::Switch(0.75));
        assert_eq!(c.cycle_time(), 0.75);
    }

    #[test]
    fn steady_fault_rate_holds() {
        let mut c = ctl();
        run_epoch(&mut c, 0); // climb once; stored clamps to 1
                              // Next epoch: 1 fault total = reference → between 0.8 and 2.0.
        let mut decisions = Vec::new();
        for p in 0..100 {
            let f = u64::from(p == 50);
            if let Some(d) = c.on_packet(f) {
                decisions.push(d);
            }
        }
        assert_eq!(decisions, vec![Decision::Hold]);
    }

    #[test]
    fn stored_reference_updates_only_on_switch() {
        let mut c = ctl();
        run_epoch(&mut c, 0); // switch, stored = 0
        run_epoch(&mut c, 1); // 100 faults > 2*1: back off, stored = 100
        assert_eq!(c.cycle_time(), 1.0);
        // 100 faults again: within [80, 200] of stored → hold.
        assert_eq!(run_epoch(&mut c, 1), Decision::Hold);
        // 70 faults < 0.8*100: climb.
        let mut last = Decision::Hold;
        for p in 0..100 {
            if let Some(d) = c.on_packet(u64::from(p < 70)) {
                last = d;
            }
        }
        assert_eq!(last, Decision::Switch(0.75));
    }

    #[test]
    fn decisions_only_at_epoch_boundaries() {
        let mut c = ctl();
        for _ in 0..99 {
            assert_eq!(c.on_packet(0), None);
        }
        assert!(c.on_packet(0).is_some());
    }

    fn safe_ctl() -> DynamicController {
        DynamicController::new(
            DynamicConfig::paper().with_safe_mode(crate::SafeModeConfig::default()),
        )
    }

    #[test]
    fn storm_above_threshold_clamps_to_slowest() {
        let mut c = safe_ctl();
        run_epoch(&mut c, 0); // -> 0.75
        run_epoch(&mut c, 0); // -> 0.5
                              // 100 faults > threshold 10: clamp straight to Cr=1.0,
                              // skipping the X1 rule's one-level step.
        assert_eq!(run_epoch(&mut c, 1), Decision::Switch(1.0));
        assert_eq!(c.cycle_time(), 1.0);
        assert_eq!(c.safe_mode_entries(), 1);
        assert!(c.in_safe_hold());
    }

    #[test]
    fn hold_window_suppresses_the_climb() {
        let mut c = safe_ctl();
        run_epoch(&mut c, 0);
        run_epoch(&mut c, 1); // storm at 0.75: clamp back to 1.0
        assert_eq!(c.cycle_time(), 1.0);
        // Two quiet hold epochs: no climb despite zero faults.
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold);
        assert!(c.in_safe_hold());
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold);
        assert!(!c.in_safe_hold());
        // Hold drained: the normal X1/X2 climb resumes.
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.75));
    }

    #[test]
    fn storm_during_hold_rearms_the_window() {
        let mut c = safe_ctl();
        run_epoch(&mut c, 0);
        run_epoch(&mut c, 1); // clamp, hold = 2
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold); // hold -> 1
        run_epoch(&mut c, 1); // storm mid-hold: re-arm, hold -> 2
        assert_eq!(c.safe_mode_entries(), 2);
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold);
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold);
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.75));
    }

    #[test]
    fn without_safe_mode_absolute_storms_use_the_relative_rule() {
        // The same storm under the plain paper controller only steps one
        // level, which is exactly the gap safe mode closes.
        let mut c = ctl();
        run_epoch(&mut c, 0); // -> 0.75
        run_epoch(&mut c, 0); // -> 0.5
        assert_eq!(run_epoch(&mut c, 1), Decision::Switch(0.75));
        assert_eq!(c.safe_mode_entries(), 0);
    }

    #[test]
    #[should_panic(expected = "decreasing")]
    fn rejects_unsorted_levels() {
        DynamicController::new(DynamicConfig {
            levels: vec![0.25, 0.5],
            ..DynamicConfig::paper()
        });
    }
}
