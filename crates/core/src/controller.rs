//! The dynamic frequency-adaptation controller (paper §4).

use crate::config::DynamicConfig;
use std::fmt;

/// A controller decision at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// Keep the current frequency.
    Hold,
    /// Switch to the given relative cycle time (higher `Cr` = slower and
    /// safer).
    Switch(f64),
}

/// Epoch-based dynamic frequency controller.
///
/// The processor "records the number of parity failures during execution
/// epochs. ... after the completion of the processing of 100 packets,
/// the processor makes a decision for whether to increase the frequency,
/// to keep it in its current state, or to decrease it depending on the
/// number of faults" (§4). Deciding on a packet count rather than a time
/// interval lets the scheme adapt to the application's packet rate.
///
/// The paper leaves the all-zero case unspecified; we clamp the stored
/// fault count to at least one so a fault-free epoch always reads as
/// "below X2" and the controller can climb out of the safe region.
///
/// # Examples
///
/// ```
/// use clumsy_core::{Decision, DynamicController};
/// use clumsy_core::DynamicConfig;
///
/// let mut ctl = DynamicController::new(DynamicConfig::paper());
/// assert_eq!(ctl.cycle_time(), 1.0);
/// // 100 fault-free packets: climb to the next level.
/// let mut decision = Decision::Hold;
/// for _ in 0..100 {
///     if let Some(d) = ctl.on_packet(0) {
///         decision = d;
///     }
/// }
/// assert_eq!(decision, Decision::Switch(0.75));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicController {
    cfg: DynamicConfig,
    level: usize,
    stored_faults: f64,
    packets_in_epoch: u32,
    faults_in_epoch: u64,
    switches: u32,
}

impl DynamicController {
    /// Creates a controller starting at the slowest (safest) level.
    ///
    /// # Panics
    ///
    /// Panics if the config has no levels or non-monotone levels.
    pub fn new(cfg: DynamicConfig) -> Self {
        assert!(!cfg.levels.is_empty(), "need at least one frequency level");
        assert!(
            cfg.levels.windows(2).all(|w| w[0] > w[1]),
            "levels must be strictly decreasing cycle times"
        );
        assert!(cfg.x1 > cfg.x2, "x1 must exceed x2");
        DynamicController {
            cfg,
            level: 0,
            stored_faults: 1.0,
            packets_in_epoch: 0,
            faults_in_epoch: 0,
            switches: 0,
        }
    }

    /// Current relative cycle time.
    pub fn cycle_time(&self) -> f64 {
        self.cfg.levels[self.level]
    }

    /// Number of frequency switches decided so far.
    pub fn switches(&self) -> u32 {
        self.switches
    }

    /// Records one processed packet and the faults observed during it.
    /// Returns a decision at epoch boundaries (`None` mid-epoch).
    pub fn on_packet(&mut self, faults: u64) -> Option<Decision> {
        self.packets_in_epoch += 1;
        self.faults_in_epoch += faults;
        if self.packets_in_epoch < self.cfg.epoch_packets {
            return None;
        }
        let epoch_faults = self.faults_in_epoch as f64;
        self.packets_in_epoch = 0;
        self.faults_in_epoch = 0;

        // Clamp the reference so an all-zero history still allows
        // climbing (see type-level docs).
        let reference = self.stored_faults.max(1.0);
        let decision = if epoch_faults > self.cfg.x1 * reference {
            // Too many faults: reduce frequency (slower, safer).
            if self.level > 0 {
                self.level -= 1;
                self.stored_faults = epoch_faults;
                self.switches += 1;
                Decision::Switch(self.cycle_time())
            } else {
                Decision::Hold
            }
        } else if epoch_faults < self.cfg.x2 * reference {
            // Few faults: increase frequency (faster, riskier).
            if self.level + 1 < self.cfg.levels.len() {
                self.level += 1;
                self.stored_faults = epoch_faults;
                self.switches += 1;
                Decision::Switch(self.cycle_time())
            } else {
                Decision::Hold
            }
        } else {
            Decision::Hold
        };
        Some(decision)
    }
}

impl fmt::Display for DynamicController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dynamic @ Cr={:.2} ({} switches)",
            self.cycle_time(),
            self.switches
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctl() -> DynamicController {
        DynamicController::new(DynamicConfig::paper())
    }

    fn run_epoch(c: &mut DynamicController, faults_per_packet: u64) -> Decision {
        let mut last = Decision::Hold;
        for _ in 0..100 {
            if let Some(d) = c.on_packet(faults_per_packet) {
                last = d;
            }
        }
        last
    }

    #[test]
    fn quiet_epochs_climb_to_fastest() {
        let mut c = ctl();
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.75));
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.5));
        assert_eq!(run_epoch(&mut c, 0), Decision::Switch(0.25));
        // Already fastest: hold.
        assert_eq!(run_epoch(&mut c, 0), Decision::Hold);
        assert_eq!(c.cycle_time(), 0.25);
        assert_eq!(c.switches(), 3);
    }

    #[test]
    fn fault_storm_backs_off() {
        let mut c = ctl();
        run_epoch(&mut c, 0); // -> 0.75, stored = 0 (clamped to 1)
        run_epoch(&mut c, 0); // -> 0.5
                              // 300 faults this epoch >> 2.0 * stored: back off to 0.75.
        assert_eq!(run_epoch(&mut c, 3), Decision::Switch(0.75));
        assert_eq!(c.cycle_time(), 0.75);
    }

    #[test]
    fn steady_fault_rate_holds() {
        let mut c = ctl();
        run_epoch(&mut c, 0); // climb once; stored clamps to 1
                              // Next epoch: 1 fault total = reference → between 0.8 and 2.0.
        let mut decisions = Vec::new();
        for p in 0..100 {
            let f = u64::from(p == 50);
            if let Some(d) = c.on_packet(f) {
                decisions.push(d);
            }
        }
        assert_eq!(decisions, vec![Decision::Hold]);
    }

    #[test]
    fn stored_reference_updates_only_on_switch() {
        let mut c = ctl();
        run_epoch(&mut c, 0); // switch, stored = 0
        run_epoch(&mut c, 1); // 100 faults > 2*1: back off, stored = 100
        assert_eq!(c.cycle_time(), 1.0);
        // 100 faults again: within [80, 200] of stored → hold.
        assert_eq!(run_epoch(&mut c, 1), Decision::Hold);
        // 70 faults < 0.8*100: climb.
        let mut last = Decision::Hold;
        for p in 0..100 {
            if let Some(d) = c.on_packet(u64::from(p < 70)) {
                last = d;
            }
        }
        assert_eq!(last, Decision::Switch(0.75));
    }

    #[test]
    fn decisions_only_at_epoch_boundaries() {
        let mut c = ctl();
        for _ in 0..99 {
            assert_eq!(c.on_packet(0), None);
        }
        assert!(c.on_packet(0).is_some());
    }

    #[test]
    #[should_panic(expected = "decreasing")]
    fn rejects_unsorted_levels() {
        DynamicController::new(DynamicConfig {
            levels: vec![0.25, 0.5],
            ..DynamicConfig::paper()
        });
    }
}
