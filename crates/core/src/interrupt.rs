//! Graceful-interruption support: a process-wide flag set by SIGINT /
//! SIGTERM so long-running campaigns can stop job intake, drain
//! in-flight work, flush their journal and exit resumable.
//!
//! [`install`] registers an async-signal-safe handler (it only stores
//! to an atomic). The first signal requests a graceful stop; a second
//! one aborts immediately, so an operator is never more than two
//! Ctrl-C's away from their prompt. On non-unix targets [`install`] is
//! a no-op and [`interrupted`] simply stays `false`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static INTERRUPTED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

/// Whether a graceful-stop signal has been received.
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Test hook: raise or clear the interrupt flag without a signal.
pub fn set_interrupted(value: bool) {
    INTERRUPTED.store(value, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler (idempotent).
pub fn install() {
    INSTALL.call_once(sys::install);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    use super::INTERRUPTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    // Raw libc signal(2); the crate has no libc dependency and only
    // needs these two registrations. usize carries the handler pointer
    // (or SIG_ERR as !0), matching the C prototype on all unix targets
    // this repo builds on.
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn abort() -> !;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Second signal: the user really means it. abort(2) is
        // async-signal-safe; swap() makes the check race-free.
        if INTERRUPTED.swap(true, Ordering::SeqCst) {
            unsafe { abort() }
        }
    }

    pub(super) fn install() {
        // SAFETY: on_signal only touches an atomic and abort(), both
        // async-signal-safe; the handler address stays valid for the
        // life of the process.
        let handler = on_signal as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub(super) fn install() {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips_and_install_is_idempotent() {
        install();
        install();
        set_interrupted(false);
        assert!(!interrupted());
        set_interrupted(true);
        assert!(interrupted());
        set_interrupted(false);
    }
}
