//! # clumsy-core — Clumsy Packet Processors
//!
//! Reproduction of *"A Case for Clumsy Packet Processors"* (Mallik &
//! Memik, MICRO-37, 2004): a packet processor that deliberately
//! over-clocks its level-1 data cache, trading a quantified increase in
//! hardware fault probability for lower energy and access latency, and
//! relying on the inherent robustness of networking software to absorb
//! the resulting errors.
//!
//! This crate assembles the substrates into the paper's evaluation
//! vehicle:
//!
//! * [`ClumsyConfig`] — the design point: cache clock (static `Cr` or
//!   the dynamic adaptation scheme of §4), detection scheme, strike
//!   policy, fault model, plane masking and trace/seed.
//! * [`DynamicController`] — the epoch-based frequency adaptation
//!   scheme (100 packets per epoch, X1 = 200 %, X2 = 80 %).
//! * [`ClumsyProcessor`] — runs a NetBench application twice (golden and
//!   fault-injected) over the same trace and diffs the marked values,
//!   producing a [`RunReport`] with the paper's metrics: per-category
//!   error probabilities, fatal errors, fallibility, delay, energy, and
//!   the energy–delay²–fallibility² product.
//! * [`experiment`] — grid drivers that regenerate every table and
//!   figure of the paper's evaluation (§5).
//!
//! # Quickstart
//!
//! ```
//! use clumsy_core::{ClumsyConfig, ClumsyProcessor};
//! use netbench::{AppKind, TraceConfig};
//!
//! let trace = TraceConfig::small().generate();
//! // Double the data-cache clock with parity + two-strike recovery —
//! // the paper's best configuration.
//! let cfg = ClumsyConfig::paper_best();
//! let report = ClumsyProcessor::new(cfg).run(AppKind::Route, &trace);
//! assert!(report.packets_completed > 0);
//! assert!(report.fallibility() >= 1.0);
//! ```

// `deny` rather than `forbid`: the interrupt module carries a single
// audited `#[allow(unsafe_code)]` for the raw signal(2) registration.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
mod config;
mod controller;
pub mod engine;
pub mod experiment;
pub mod interrupt;
pub mod journal;
mod processor;
mod report;
pub mod serve;
mod taxonomy;
pub mod telemetry;

pub use campaign::{
    run_campaign_durable, run_campaign_instrumented, run_campaign_on, run_isolated_jobs,
    run_isolated_jobs_with, BatchControl, CampaignConfig, CampaignReport, DurableOptions,
    DurableOutcome, FailedJob, IsolatedFailure, IsolatedRun, JobFailure,
};
pub use config::{ClumsyConfig, DynamicConfig, FrequencyPlan, SafeModeConfig};
pub use controller::{Decision, DynamicController};
pub use engine::{golden_for, Engine};
pub use journal::{atomic_write, JournalError, JournalHeader, JournalWriter};
pub use processor::{ClumsyProcessor, GoldenData};
pub use report::{FatalInfo, RunReport};
pub use serve::{
    flow_shard, run_serve, ClassReport, FlowDirector, FlowTraffic, IngressQueue, OverloadReport,
    PushOutcome, RebalanceConfig, RouteKind, ServeConfig, ServeReport, ShardReport, ShedPolicy,
};
pub use taxonomy::{OutcomeCounts, TrialOutcome};
pub use telemetry::{MetricsFlusher, MetricsSnapshot, ProgressReporter, Stopwatch, Telemetry};

/// The paper's static frequency settings: `Cr` ∈ {1.0, 0.75, 0.5, 0.25}
/// (frequency increases of 0 %, 50 %, 100 %, 300 %).
pub const PAPER_CYCLE_TIMES: [f64; 4] = [1.0, 0.75, 0.5, 0.25];
