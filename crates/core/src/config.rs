//! Design-point configuration for a clumsy packet processor.

use cache_sim::{DetectionScheme, MemConfig, StrikePolicy};
use energy_model::EdfMetric;
use netbench::PlaneMask;
use std::fmt;

/// Safe-mode degradation parameters for the dynamic controller.
///
/// The paper's controller reacts *relatively*: an epoch is compared
/// against the fault count stored at the last switch. Safe mode adds an
/// *absolute* escape hatch for when recovery itself becomes suspect:
/// any epoch whose fault count exceeds `threshold` clamps the clock to
/// the slowest level (`Cr = levels[0]`, normally 1.0) and holds it
/// there for `hold_epochs` epochs of hysteresis before the normal
/// X1/X2 climb resumes. A storm during the hold re-arms the clamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeModeConfig {
    /// Absolute detected-fault count per epoch that trips the clamp.
    pub threshold: u64,
    /// Quiet epochs the controller stays clamped before climbing again.
    pub hold_epochs: u32,
}

impl SafeModeConfig {
    /// Default setting: trip above 10 faults/epoch, hold two epochs.
    pub fn default_setting() -> Self {
        SafeModeConfig {
            threshold: 10,
            hold_epochs: 2,
        }
    }
}

impl Default for SafeModeConfig {
    fn default() -> Self {
        SafeModeConfig::default_setting()
    }
}

impl fmt::Display for SafeModeConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "safe-mode(>{}/epoch, hold {})",
            self.threshold, self.hold_epochs
        )
    }
}

/// The dynamic frequency-adaptation parameters (paper §4).
///
/// After every `epoch_packets` processed packets the controller compares
/// the epoch's fault count against the count stored at the last
/// frequency change: above `x1` (200 %) it reduces the frequency, below
/// `x2` (80 %) it increases it, otherwise it holds. Frequency settings
/// are discrete, stepping through `levels`. An optional
/// [`SafeModeConfig`] adds an absolute fault-rate clamp on top.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicConfig {
    /// Packets per decision epoch (paper: 100).
    pub epoch_packets: u32,
    /// Upper threshold as a fraction (paper: 2.0 for "X1 = 200 %").
    pub x1: f64,
    /// Lower threshold as a fraction (paper: 0.8 for "X2 = 80 %").
    pub x2: f64,
    /// Discrete cycle-time levels, slowest (safest) first.
    pub levels: Vec<f64>,
    /// Optional safe-mode clamp (`None` reproduces the paper exactly).
    pub safe_mode: Option<SafeModeConfig>,
}

impl DynamicConfig {
    /// The paper's best-performing setting (§4).
    pub fn paper() -> Self {
        DynamicConfig {
            epoch_packets: 100,
            x1: 2.0,
            x2: 0.8,
            levels: crate::PAPER_CYCLE_TIMES.to_vec(),
            safe_mode: None,
        }
    }

    /// Returns the config with the safe-mode clamp enabled.
    pub fn with_safe_mode(mut self, safe_mode: SafeModeConfig) -> Self {
        self.safe_mode = Some(safe_mode);
        self
    }
}

impl Default for DynamicConfig {
    fn default() -> Self {
        DynamicConfig::paper()
    }
}

/// How the data-cache clock is chosen.
#[derive(Debug, Clone, PartialEq)]
pub enum FrequencyPlan {
    /// A fixed relative cycle time for the whole run.
    Static(f64),
    /// The epoch-based dynamic adaptation scheme.
    Dynamic(DynamicConfig),
}

impl FrequencyPlan {
    /// The paper's dynamic scheme with default parameters.
    pub fn dynamic() -> Self {
        FrequencyPlan::Dynamic(DynamicConfig::paper())
    }

    /// Short label for reports ("1.00", "0.50", "dynamic").
    pub fn label(&self) -> String {
        match self {
            FrequencyPlan::Static(cr) => format!("{cr:.2}"),
            FrequencyPlan::Dynamic(_) => "dynamic".to_string(),
        }
    }
}

impl fmt::Display for FrequencyPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// A complete clumsy-processor design point.
///
/// # Examples
///
/// ```
/// use cache_sim::{DetectionScheme, StrikePolicy};
/// use clumsy_core::ClumsyConfig;
///
/// let cfg = ClumsyConfig::baseline()
///     .with_detection(DetectionScheme::Parity)
///     .with_strikes(StrikePolicy::three_strike())
///     .with_static_cycle(0.25);
/// assert_eq!(cfg.frequency.label(), "0.25");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClumsyConfig {
    /// Memory-hierarchy configuration (geometry, detection, strikes,
    /// fault model, energy constants).
    pub mem: MemConfig,
    /// Clocking plan for the data cache.
    pub frequency: FrequencyPlan,
    /// Which planes receive fault injection.
    pub planes: PlaneMask,
    /// Seed for fault sampling (trace seeds live in `TraceConfig`).
    pub seed: u64,
    /// Per-packet instruction budget override (`None` = app default).
    pub fuel_per_packet: Option<u64>,
    /// Watchdog recovery (paper footnote 3: *"the processor can be
    /// modified such that we can recover from the error"*): a fatal
    /// error drops the offending packet instead of ending the run.
    pub watchdog: bool,
    /// The comparison metric.
    pub metric: EdfMetric,
}

impl ClumsyConfig {
    /// The baseline every figure normalizes to: full-speed cache, no
    /// detection, faults in both planes.
    pub fn baseline() -> Self {
        ClumsyConfig {
            mem: MemConfig::strongarm(),
            frequency: FrequencyPlan::Static(1.0),
            planes: PlaneMask::both(),
            seed: 0x5EED,
            fuel_per_packet: None,
            watchdog: false,
            metric: EdfMetric::paper(),
        }
    }

    /// The paper's best configuration on average (§5.4 / §7): double
    /// clock (`Cr = 0.5`), parity detection, two-strike recovery.
    pub fn paper_best() -> Self {
        ClumsyConfig::baseline()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike())
            .with_static_cycle(0.5)
    }

    /// Returns the config with a different detection scheme.
    pub fn with_detection(mut self, d: DetectionScheme) -> Self {
        self.mem.detection = d;
        self
    }

    /// Returns the config with a different strike policy.
    pub fn with_strikes(mut self, s: StrikePolicy) -> Self {
        self.mem.strikes = s;
        self
    }

    /// Returns the config with a static cycle time.
    ///
    /// # Panics
    ///
    /// Panics if `cr` is not in `(0, 1]`.
    pub fn with_static_cycle(mut self, cr: f64) -> Self {
        assert!(
            cr.is_finite() && cr > 0.0 && cr <= 1.0,
            "relative cycle time must be in (0, 1], got {cr}"
        );
        self.frequency = FrequencyPlan::Static(cr);
        self
    }

    /// Returns the config with the dynamic frequency plan.
    pub fn with_dynamic(mut self, d: DynamicConfig) -> Self {
        self.frequency = FrequencyPlan::Dynamic(d);
        self
    }

    /// Returns the config with a different strike-recovery granularity
    /// (the footnote-2 sub-block extension).
    pub fn with_recovery(mut self, r: cache_sim::RecoveryGranularity) -> Self {
        self.mem.recovery = r;
        self
    }

    /// Returns the config with different L1 fault-injection targets
    /// (data / tag / parity arrays). The default is the paper's
    /// data-only model; the extra targets are opt-in so default runs
    /// stay bitwise reproducible.
    pub fn with_fault_targets(mut self, targets: cache_sim::FaultTargets) -> Self {
        self.mem.targets = targets;
        self
    }

    /// Returns the config with a different relative L2 cycle time (only
    /// observable when the `l2` fault target is on).
    ///
    /// # Panics
    ///
    /// Panics if `l2_cycle` is not in `(0, 1]`.
    pub fn with_l2_cycle(mut self, l2_cycle: f64) -> Self {
        self.mem = self.mem.with_l2_cycle(l2_cycle);
        self
    }

    /// Returns the config with way-disabling escalation enabled on top
    /// of the strike policy: repeated strikes on one physical slot map
    /// the way out (salvaging dirty data) instead of re-fetching
    /// forever, and fully mapped-out sets are serviced from the L2.
    pub fn with_way_disable(mut self, policy: cache_sim::WayDisablePolicy) -> Self {
        self.mem = self.mem.with_way_disable(policy);
        self
    }

    /// Returns the config with the opt-in persistent/intermittent
    /// fault-site process enabled alongside the transient one.
    pub fn with_persistent(mut self, persistent: fault_model::PersistentSiteConfig) -> Self {
        self.mem = self.mem.with_persistent(persistent);
        self
    }

    /// Returns the config with watchdog fatal-error recovery enabled.
    pub fn with_watchdog(mut self) -> Self {
        self.watchdog = true;
        self
    }

    /// Returns the config with a different plane mask.
    pub fn with_planes(mut self, planes: PlaneMask) -> Self {
        self.planes = planes;
        self
    }

    /// Returns the config with a different fault seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the config with a different fault model.
    pub fn with_fault_model(mut self, model: fault_model::FaultProbabilityModel) -> Self {
        self.mem.fault_model = model;
        self
    }

    /// Returns the config with a different fault-sampling mode. The
    /// default exact per-access path reproduces the recorded paper
    /// numbers bitwise; [`fault_model::SamplingMode::SkipAhead`] is the
    /// statistically identical fast path for large custom sweeps.
    pub fn with_sampling(mut self, sampling: fault_model::SamplingMode) -> Self {
        self.mem.sampling = sampling;
        self
    }

    /// Short label: "parity/two-strike @ 0.50".
    pub fn label(&self) -> String {
        let scheme = if self.mem.way_disable.is_some() {
            format!("{}+way-disable", self.mem.strikes)
        } else {
            self.mem.strikes.to_string()
        };
        format!(
            "{}/{} @ {}",
            self.mem.detection,
            scheme,
            self.frequency.label()
        )
    }
}

impl Default for ClumsyConfig {
    fn default() -> Self {
        ClumsyConfig::baseline()
    }
}

impl fmt::Display for ClumsyConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dynamic_parameters() {
        let d = DynamicConfig::paper();
        assert_eq!(d.epoch_packets, 100);
        assert!((d.x1 - 2.0).abs() < 1e-12);
        assert!((d.x2 - 0.8).abs() < 1e-12);
        assert_eq!(d.levels, vec![1.0, 0.75, 0.5, 0.25]);
        assert_eq!(d.safe_mode, None, "paper controller has no safe mode");
    }

    #[test]
    fn safe_mode_is_opt_in_with_sane_defaults() {
        let s = SafeModeConfig::default();
        assert_eq!(s.threshold, 10);
        assert_eq!(s.hold_epochs, 2);
        let d = DynamicConfig::paper().with_safe_mode(s);
        assert_eq!(d.safe_mode, Some(s));
        assert!(format!("{s}").contains(">10/epoch"));
    }

    #[test]
    fn baseline_is_the_normalization_point() {
        let c = ClumsyConfig::baseline();
        assert_eq!(c.mem.detection, DetectionScheme::None);
        assert_eq!(c.frequency, FrequencyPlan::Static(1.0));
    }

    #[test]
    fn paper_best_is_half_cycle_parity_two_strike() {
        let c = ClumsyConfig::paper_best();
        assert_eq!(c.mem.detection, DetectionScheme::Parity);
        assert_eq!(c.mem.strikes, StrikePolicy::two_strike());
        assert_eq!(c.frequency, FrequencyPlan::Static(0.5));
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(
            ClumsyConfig::paper_best().label(),
            "parity/two-strike @ 0.50"
        );
        assert_eq!(FrequencyPlan::dynamic().label(), "dynamic");
    }

    #[test]
    #[should_panic(expected = "cycle time")]
    fn rejects_overclocking_past_limits() {
        ClumsyConfig::baseline().with_static_cycle(0.0);
    }
}
