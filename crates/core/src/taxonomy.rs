//! Six-way fault-outcome taxonomy for differential trials.
//!
//! Every measured run is compared word-for-word against its golden
//! (fault-free) twin, so each trial can be bucketed by *what the faults
//! actually did to the program*, in the style of the SDC literature:
//!
//! * [`TrialOutcome::Masked`] — faults (if any) never reached an
//!   architecturally observable value; the run matches golden exactly.
//! * [`TrialOutcome::Corrected`] — ECC repaired at least one fault in
//!   place, and the run matches golden with no detect-only event.
//! * [`TrialOutcome::DetectedRecovered`] — detection hardware flagged at
//!   least one fault and the recovery machinery (strikes, L2 restore,
//!   watchdog containment) returned the run to a golden-identical state.
//! * [`TrialOutcome::DetectedFatal`] — the run hit a fatal error (or the
//!   watchdog dropped packets to contain one) but produced no silently
//!   wrong output: the failure is *visible* to the system.
//! * [`TrialOutcome::SilentDataCorruption`] — some packet observation or
//!   initialization table differed from golden with nothing raising an
//!   alarm for it.
//! * [`TrialOutcome::RecoveryFailed`] — the worst bucket: a strike
//!   refetch pulled a corrupted word out of the fallible L2, so the
//!   *recovery path itself* deposited bad data as trusted truth.
//!
//! Classification is most-severe-wins: a run that both dropped a packet
//! and emitted a wrong observation is SDC, not DetectedFatal; a run
//! whose refetch failed is RecoveryFailed even if it also corrupted
//! silently elsewhere.

use crate::report::RunReport;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Outcome class of one differential (measured vs. golden) trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrialOutcome {
    /// No architecturally visible deviation from the golden run.
    Masked,
    /// ECC corrected every observed fault in place; output matches
    /// golden and nothing needed the strike path.
    Corrected,
    /// Faults were detected and fully recovered; output matches golden.
    DetectedRecovered,
    /// The run failed *visibly* (fatal error or watchdog-dropped
    /// packets) without emitting wrong output.
    DetectedFatal,
    /// Output differed from golden with no alarm tied to it.
    SilentDataCorruption,
    /// A strike refetch pulled a corrupted word from the fallible L2:
    /// the recovery machinery itself laundered bad data into trusted
    /// state.
    RecoveryFailed,
}

impl TrialOutcome {
    /// Stable machine-readable label (CSV/JSON field names).
    pub fn label(&self) -> &'static str {
        match self {
            TrialOutcome::Masked => "masked",
            TrialOutcome::Corrected => "corrected",
            TrialOutcome::DetectedRecovered => "detected_recovered",
            TrialOutcome::DetectedFatal => "detected_fatal",
            TrialOutcome::SilentDataCorruption => "sdc",
            TrialOutcome::RecoveryFailed => "recovery_failed",
        }
    }

    /// All outcomes, least to most severe.
    pub fn all() -> [TrialOutcome; 6] {
        [
            TrialOutcome::Masked,
            TrialOutcome::Corrected,
            TrialOutcome::DetectedRecovered,
            TrialOutcome::DetectedFatal,
            TrialOutcome::SilentDataCorruption,
            TrialOutcome::RecoveryFailed,
        ]
    }

    /// Classifies a finished run, most severe bucket first.
    ///
    /// RecoveryFailed needs a failed L2 refetch (classified distinctly
    /// from plain SDC because the *mechanism* differs: the safety net
    /// itself tore); SDC needs any wrong packet observation or
    /// initialization-table sample; DetectedFatal needs a fatal error or
    /// watchdog drops; DetectedRecovered needs at least one detect-only
    /// event; Corrected needs at least one ECC in-place correction;
    /// everything else is Masked.
    pub fn classify(report: &RunReport) -> TrialOutcome {
        if report.stats.recovery_failures > 0 {
            TrialOutcome::RecoveryFailed
        } else if report.erroneous_packets > 0 || report.init_obs_wrong > 0 {
            TrialOutcome::SilentDataCorruption
        } else if report.fatal.is_some() || report.dropped_packets > 0 {
            TrialOutcome::DetectedFatal
        } else if report.stats.faults_detected > 0 {
            TrialOutcome::DetectedRecovered
        } else if report.stats.faults_corrected > 0 {
            TrialOutcome::Corrected
        } else {
            TrialOutcome::Masked
        }
    }
}

impl fmt::Display for TrialOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl RunReport {
    /// This run's [`TrialOutcome`] bucket (see
    /// [`TrialOutcome::classify`]).
    pub fn outcome(&self) -> TrialOutcome {
        TrialOutcome::classify(self)
    }
}

/// Trial counts per outcome class for one design point.
///
/// # Examples
///
/// ```
/// use clumsy_core::{OutcomeCounts, TrialOutcome};
///
/// let mut c = OutcomeCounts::default();
/// c.record(TrialOutcome::Masked);
/// c.record(TrialOutcome::SilentDataCorruption);
/// assert_eq!(c.total(), 2);
/// assert!((c.sdc_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeCounts {
    /// Trials with no visible deviation.
    pub masked: u64,
    /// Trials where ECC corrected every fault in place.
    pub corrected: u64,
    /// Trials detected and fully recovered.
    pub detected_recovered: u64,
    /// Trials that failed visibly without wrong output.
    pub detected_fatal: u64,
    /// Trials with silent data corruption.
    pub sdc: u64,
    /// Trials where a strike refetch pulled corrupted data from the L2.
    pub recovery_failed: u64,
}

impl OutcomeCounts {
    /// Tallies one trial in the given bucket. (Named `record` rather
    /// than `add` so the `Copy` + [`Add`] impl cannot shadow it during
    /// method resolution.)
    pub fn record(&mut self, outcome: TrialOutcome) {
        match outcome {
            TrialOutcome::Masked => self.masked += 1,
            TrialOutcome::Corrected => self.corrected += 1,
            TrialOutcome::DetectedRecovered => self.detected_recovered += 1,
            TrialOutcome::DetectedFatal => self.detected_fatal += 1,
            TrialOutcome::SilentDataCorruption => self.sdc += 1,
            TrialOutcome::RecoveryFailed => self.recovery_failed += 1,
        }
    }

    /// Count in the given bucket.
    pub fn get(&self, outcome: TrialOutcome) -> u64 {
        match outcome {
            TrialOutcome::Masked => self.masked,
            TrialOutcome::Corrected => self.corrected,
            TrialOutcome::DetectedRecovered => self.detected_recovered,
            TrialOutcome::DetectedFatal => self.detected_fatal,
            TrialOutcome::SilentDataCorruption => self.sdc,
            TrialOutcome::RecoveryFailed => self.recovery_failed,
        }
    }

    /// Total classified trials.
    pub fn total(&self) -> u64 {
        self.masked
            + self.corrected
            + self.detected_recovered
            + self.detected_fatal
            + self.sdc
            + self.recovery_failed
    }

    /// Fraction of trials that corrupted data silently (0 if no trials).
    pub fn sdc_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.sdc as f64 / self.total() as f64
        }
    }

    /// Classifies and tallies every run in a slice.
    pub fn from_runs<'a, I>(runs: I) -> OutcomeCounts
    where
        I: IntoIterator<Item = &'a RunReport>,
    {
        let mut counts = OutcomeCounts::default();
        for run in runs {
            counts.record(run.outcome());
        }
        counts
    }
}

impl Add for OutcomeCounts {
    type Output = OutcomeCounts;

    fn add(self, rhs: OutcomeCounts) -> OutcomeCounts {
        OutcomeCounts {
            masked: self.masked + rhs.masked,
            corrected: self.corrected + rhs.corrected,
            detected_recovered: self.detected_recovered + rhs.detected_recovered,
            detected_fatal: self.detected_fatal + rhs.detected_fatal,
            sdc: self.sdc + rhs.sdc,
            recovery_failed: self.recovery_failed + rhs.recovery_failed,
        }
    }
}

impl AddAssign for OutcomeCounts {
    fn add_assign(&mut self, rhs: OutcomeCounts) {
        *self = *self + rhs;
    }
}

impl fmt::Display for OutcomeCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} masked, {} corrected, {} recovered, {} fatal, {} SDC, {} recovery-failed ({} trials)",
            self.masked,
            self.corrected,
            self.detected_recovered,
            self.detected_fatal,
            self.sdc,
            self.recovery_failed,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::FatalInfo;
    use cache_sim::MemStats;
    use energy_model::EnergyBreakdown;
    use std::collections::BTreeMap;

    fn blank() -> RunReport {
        RunReport {
            app: "test",
            packets_attempted: 100,
            packets_completed: 100,
            fatal: None,
            dropped_packets: 0,
            erroneous_packets: 0,
            error_counts: BTreeMap::new(),
            init_obs_total: 8,
            init_obs_wrong: 0,
            instructions: 1000,
            cycles: 5000.0,
            energy: EnergyBreakdown::default(),
            stats: MemStats::default(),
            freq_trace: Vec::new(),
            epoch_faults: Vec::new(),
        }
    }

    #[test]
    fn clean_run_is_masked() {
        assert_eq!(blank().outcome(), TrialOutcome::Masked);
    }

    #[test]
    fn detections_without_deviation_are_recovered() {
        let mut r = blank();
        r.stats.faults_detected = 3;
        assert_eq!(r.outcome(), TrialOutcome::DetectedRecovered);
    }

    #[test]
    fn fatal_and_drops_classify_as_detected_fatal() {
        let mut r = blank();
        r.fatal = Some(FatalInfo {
            packet_index: 1,
            error: netbench::AppError::Fatal(netbench::FatalError::FuelExhausted { budget: 1 }),
        });
        assert_eq!(r.outcome(), TrialOutcome::DetectedFatal);

        let mut r = blank();
        r.dropped_packets = 2;
        assert_eq!(r.outcome(), TrialOutcome::DetectedFatal);
    }

    #[test]
    fn wrong_output_wins_over_everything() {
        let mut r = blank();
        r.erroneous_packets = 1;
        r.dropped_packets = 5;
        r.stats.faults_detected = 9;
        assert_eq!(r.outcome(), TrialOutcome::SilentDataCorruption);

        let mut r = blank();
        r.init_obs_wrong = 1;
        assert_eq!(r.outcome(), TrialOutcome::SilentDataCorruption);
    }

    #[test]
    fn corrections_alone_classify_as_corrected() {
        let mut r = blank();
        r.stats.faults_corrected = 4;
        assert_eq!(r.outcome(), TrialOutcome::Corrected);

        // Any detect-only event outranks pure correction.
        r.stats.faults_detected = 1;
        assert_eq!(r.outcome(), TrialOutcome::DetectedRecovered);
    }

    #[test]
    fn failed_refetch_outranks_even_sdc() {
        let mut r = blank();
        r.stats.recovery_failures = 1;
        assert_eq!(r.outcome(), TrialOutcome::RecoveryFailed);

        r.erroneous_packets = 3;
        r.dropped_packets = 2;
        r.stats.faults_detected = 7;
        assert_eq!(r.outcome(), TrialOutcome::RecoveryFailed);
    }

    #[test]
    fn counts_tally_and_sum() {
        let mut sdc = blank();
        sdc.erroneous_packets = 1;
        let mut rec = blank();
        rec.stats.faults_detected = 1;
        let runs = [blank(), sdc, rec, blank()];
        let c = OutcomeCounts::from_runs(runs.iter());
        assert_eq!(c.masked, 2);
        assert_eq!(c.detected_recovered, 1);
        assert_eq!(c.sdc, 1);
        assert_eq!(c.total(), 4);
        assert!((c.sdc_rate() - 0.25).abs() < 1e-12);
        let doubled = c + c;
        assert_eq!(doubled.total(), 8);
        for o in TrialOutcome::all() {
            assert_eq!(doubled.get(o), 2 * c.get(o));
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = TrialOutcome::all().iter().map(|o| o.label()).collect();
        assert_eq!(
            labels,
            [
                "masked",
                "corrected",
                "detected_recovered",
                "detected_fatal",
                "sdc",
                "recovery_failed"
            ]
        );
        assert_eq!(format!("{}", TrialOutcome::Masked), "masked");
    }

    #[test]
    fn display_counts() {
        let mut c = OutcomeCounts::default();
        c.record(TrialOutcome::Masked);
        assert!(format!("{c}").contains("1 masked"));
    }
}
