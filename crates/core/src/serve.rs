//! `clumsy serve` — a supervised, sharded, never-wedge packet service.
//!
//! Everything before this module runs at *job* granularity: a trace is
//! generated up front, a processor replays it, a report comes back.
//! The paper's clumsy processors are not batch experiments, though —
//! they are packet processors serving live traffic at a sub-critical
//! operating point, eating faults as they come. This module is the
//! stream-granularity engine: an unbounded
//! [`TrafficSource`](netbench::TrafficSource) feeds `N` shards through
//! bounded ingress queues, each shard owning its own golden + measured
//! machine pair, dynamic controller and fault processes, selected by a
//! flow hash so one flow always lands on one shard.
//!
//! The robustness contract is **never wedge, only slow down or shed**:
//!
//! * A full queue applies backpressure to the pump; once the shed
//!   timeout passes the packet is counted as shed instead of queued —
//!   bounded memory, no unbounded allocation.
//! * A panicking shard is caught ([`std::panic::catch_unwind`], the
//!   same isolation the campaign driver uses), its in-flight packet
//!   accounted as abandoned, and the shard rebuilt with reseeded RNG
//!   streams while the other shards keep serving.
//! * A fatal packet error (runaway fuel, corrupted DMA) drops that
//!   packet — watchdog semantics are always on in serve.
//! * Fault storms trip the per-shard safe-mode clamp (when configured)
//!   and permanent faults degrade via way-disable, both *online*.
//!
//! Stopping (SIGTERM via the `stop` closure, or an exhausted packet
//! budget) drains every queue, joins every shard and returns a
//! [`ServeReport`] whose accounting identity —
//! `ingested == processed + dropped + abandoned` — is the proof that
//! no packet was lost untracked or processed twice.

use crate::campaign::{panic_message, RESEED_STRIDE};
use crate::config::{ClumsyConfig, FrequencyPlan};
use crate::controller::{Decision, DynamicController};
use crate::processor::ClumsyProcessor;
use crate::telemetry::Telemetry;
use cache_sim::{DetectionScheme, MemStats};
use netbench::{
    diff_observations, fnv1a_fold, AppError, AppKind, FlowClassifier, Machine, Packet, PacketApp,
    Plane, Trace, TraceConfig, TrafficClass, TrafficSource, FNV_OFFSET,
};
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Mixes the shard index into the base fault seed so sibling shards
/// draw independent streams (an arbitrary odd constant, distinct from
/// [`RESEED_STRIDE`] so shard 1 round 0 never collides with shard 0
/// round 1).
const SHARD_SEED_MIX: u64 = 0x517C_C1B7_2722_0A95;

/// Setup attempts per shard build before the shard gives up on
/// constructing a machine and degrades to shedding its queue. At sane
/// fault rates a control-plane fatal is already rare; eight reseeded
/// tries failing in a row means the operating point cannot boot at all.
const SETUP_RETRY_LIMIT: u64 = 8;

/// What happened to one pushed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued; carries the queue depth after the push (for the
    /// occupancy gauge).
    Enqueued(usize),
    /// The queue stayed full past the shed timeout; the packet was
    /// dropped at ingress.
    Shed,
    /// The packet's flow already holds its per-flow cap worth of queue
    /// slots; shed immediately, without blocking — the elephant pays,
    /// the mice keep their seats.
    ShedFlowCap,
    /// A control-class packet was enqueued into a full queue by
    /// evicting the newest data-class entry. Carries the queue depth
    /// after the swap and the evicted entry's flow, so the pump can
    /// move exactly one data packet from ingested to shed.
    Preempted {
        /// Queue depth after the swap (== capacity).
        depth: usize,
        /// Flow hash of the evicted data-class entry.
        evicted_flow: u64,
    },
    /// The queue is closed (drain in progress); the packet was
    /// discarded and the producer should stop.
    Closed,
}

/// How the shed deadline of a full queue is chosen.
///
/// `Fixed` is PR 8's behavior: every blocked push waits the full
/// configured timeout, so under sustained overload producers stack up
/// a whole timeout deep before the first packet is shed. `Adaptive`
/// scales the deadline by smoothed queue occupancy — an idle queue
/// grants the full timeout (transients are absorbed), a persistently
/// full one shrinks it toward zero so shedding engages early and the
/// pump keeps moving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// The configured shed timeout applies as-is.
    #[default]
    Fixed,
    /// Deadline = `timeout × (1 − smoothed occupancy / capacity)`.
    Adaptive,
}

/// EWMA smoothing shift for queue occupancy: new = old + (sample −
/// old)/8. Instantaneous occupancy is useless for the adaptive policy
/// (it always equals capacity at the moment a push blocks); the EWMA
/// distinguishes a transient burst from sustained pressure.
const OCCUPANCY_EWMA_SHIFT: u32 = 3;

/// DRR quantum in cost units (bytes of payload): one MTU-ish credit
/// per flow per round, so a flow of jumbo packets cannot outrun a flow
/// of minimum-size ones by packet count alone.
const DRR_QUANTUM: u64 = 1500;

/// One queued packet plus its routing metadata. The enqueue timestamp
/// is taken only when telemetry is attached (measurement must stay
/// strictly passive — no clock reads on the silent path).
#[derive(Debug)]
struct Entry {
    pkt: Packet,
    flow: u64,
    class: TrafficClass,
    enqueued: Option<Instant>,
}

/// One flow's FIFO inside a DRR-mode queue, with its deficit credit.
#[derive(Debug)]
struct FlowQueue {
    q: VecDeque<Entry>,
    deficit: u64,
}

/// Cost of dequeuing one entry: payload bytes (floor 1 so zero-length
/// packets still consume credit and the round always advances).
fn entry_cost(e: &Entry) -> u64 {
    (e.pkt.payload.len() as u64).max(1)
}

/// A bounded ingress queue between the traffic pump and one shard:
/// blocking push with a shed timeout on the producer side, blocking
/// pop-until-closed on the consumer side, occupancy high-water mark
/// for the bounded-memory telemetry contract.
///
/// Two dequeue modes share the bound:
///
/// * **FIFO** (no flow cap): exactly PR 8's queue — arrival order is
///   dequeue order, so per-shard digests stay bitwise reproducible.
/// * **DRR** (`flow_cap` set): entries are segregated per flow and
///   dequeued by deficit round robin, and a flow already holding
///   `flow_cap` slots is shed immediately instead of blocking the
///   pump. One elephant can then cost at most `flow_cap` slots of a
///   mouse's latency, not the whole queue.
#[derive(Debug)]
pub struct IngressQueue {
    inner: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
    flow_cap: Option<usize>,
}

#[derive(Debug)]
struct QueueState {
    /// FIFO-mode storage (unused in DRR mode).
    fifo: VecDeque<Entry>,
    /// DRR-mode storage: one bounded FIFO per flow…
    flows: HashMap<u64, FlowQueue>,
    /// …visited in this round-robin order.
    active: VecDeque<u64>,
    /// Total entries across both modes (the capacity bound).
    len: usize,
    closed: bool,
    highwater: usize,
    /// Occupancy EWMA in milli-slots (fixed point ×1000).
    occupancy_milli: u64,
    /// DRR deficit top-ups performed (scheduler-effort gauge).
    drr_topups: u64,
    /// Structural invariants repaired while dequeuing (stale round-robin
    /// slot, empty per-flow queue). Always 0 unless queue state was
    /// corrupted — counted and recovered instead of panicking, because
    /// a panic here runs under the ingress Mutex and would poison it
    /// for every producer, wedging the whole service.
    invariant_repairs: u64,
}

impl QueueState {
    /// Folds the current length into the occupancy EWMA. Called on
    /// every push, pop and shed so the smoothed signal tracks what the
    /// producer actually experiences.
    fn observe_occupancy(&mut self) {
        let sample = self.len as u64 * 1000;
        let old = self.occupancy_milli;
        self.occupancy_milli =
            old - (old >> OCCUPANCY_EWMA_SHIFT) + (sample >> OCCUPANCY_EWMA_SHIFT);
    }
}

impl IngressQueue {
    /// An empty FIFO queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self::with_flow_cap(capacity, None)
    }

    /// An empty queue holding at most `capacity` packets; a flow cap
    /// switches it to per-flow DRR dequeue with at most `cap` queued
    /// packets per flow.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or the cap is zero or ≥ capacity
    /// (a cap the whole queue cannot violate would never bind).
    #[must_use]
    pub fn with_flow_cap(capacity: usize, flow_cap: Option<usize>) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        if let Some(cap) = flow_cap {
            assert!(
                cap >= 1 && cap < capacity,
                "flow cap must be at least 1 and below the queue capacity"
            );
        }
        IngressQueue {
            inner: Mutex::new(QueueState {
                fifo: VecDeque::new(),
                flows: HashMap::new(),
                active: VecDeque::new(),
                len: 0,
                closed: false,
                highwater: 0,
                occupancy_milli: 0,
                drr_topups: 0,
                invariant_repairs: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
            flow_cap,
        }
    }

    /// The shed deadline `policy` would grant right now for a
    /// configured maximum of `max`: the full `max` under
    /// [`ShedPolicy::Fixed`], scaled down by smoothed occupancy under
    /// [`ShedPolicy::Adaptive`].
    #[must_use]
    pub fn shed_deadline(&self, max: Duration, policy: ShedPolicy) -> Duration {
        let state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match policy {
            ShedPolicy::Fixed => max,
            ShedPolicy::Adaptive => Self::adaptive_timeout(&state, self.capacity, max),
        }
    }

    fn adaptive_timeout(state: &QueueState, capacity: usize, max: Duration) -> Duration {
        let frac = state.occupancy_milli as f64 / (capacity as f64 * 1000.0);
        max.mul_f64((1.0 - frac).clamp(0.0, 1.0))
    }

    /// Pushes a packet, blocking while the queue is full. Backpressure
    /// turns into shedding after `shed_timeout`: the packet is dropped
    /// at ingress rather than allocated beyond the bound.
    pub fn push(&self, pkt: Packet, shed_timeout: Duration) -> PushOutcome {
        let flow = flow_hash(&pkt);
        self.push_entry(
            Entry {
                pkt,
                flow,
                class: TrafficClass::Data,
                enqueued: None,
            },
            shed_timeout,
            ShedPolicy::Fixed,
        )
    }

    /// Pushes one entry under `policy`. In DRR mode a data-class flow
    /// at its cap is shed immediately; a full queue blocks until the
    /// policy's deadline, then sheds. Control-class entries are exempt
    /// from the flow cap and, on a full queue, preempt the newest
    /// data-class entry instead of waiting ([`PushOutcome::Preempted`]);
    /// only when the queue holds nothing but control do they block.
    /// Data never evicts control.
    fn push_entry(&self, entry: Entry, max_timeout: Duration, policy: ShedPolicy) -> PushOutcome {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let control = entry.class == TrafficClass::Control;
        if let Some(cap) = self.flow_cap {
            if !control && !state.closed {
                if let Some(fq) = state.flows.get(&entry.flow) {
                    if fq.q.len() >= cap {
                        state.observe_occupancy();
                        return PushOutcome::ShedFlowCap;
                    }
                }
            }
        }
        let timeout = match policy {
            ShedPolicy::Fixed => max_timeout,
            ShedPolicy::Adaptive => Self::adaptive_timeout(&state, self.capacity, max_timeout),
        };
        let deadline = Instant::now() + timeout;
        while state.len >= self.capacity && !state.closed {
            if control {
                if let Some(victim) = Self::evict_newest_data(&mut state, self.flow_cap.is_some()) {
                    let s = &mut *state;
                    Self::insert(s, entry, self.flow_cap.is_none());
                    let depth = s.len;
                    s.highwater = s.highwater.max(depth);
                    s.observe_occupancy();
                    drop(state);
                    self.not_empty.notify_one();
                    return PushOutcome::Preempted {
                        depth,
                        evicted_flow: victim.flow,
                    };
                }
                // Nothing but control queued: control competes with
                // control under ordinary backpressure.
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                state.observe_occupancy();
                return PushOutcome::Shed;
            };
            let (guard, _timeout) = self
                .not_full
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if state.closed {
            return PushOutcome::Closed;
        }
        let s = &mut *state;
        Self::insert(s, entry, self.flow_cap.is_none());
        let depth = s.len;
        s.highwater = s.highwater.max(depth);
        s.observe_occupancy();
        drop(state);
        self.not_empty.notify_one();
        PushOutcome::Enqueued(depth)
    }

    /// Appends one entry to the mode's storage and bumps `len`.
    fn insert(s: &mut QueueState, entry: Entry, fifo: bool) {
        if fifo {
            s.fifo.push_back(entry);
        } else {
            let flow = entry.flow;
            if let Some(fq) = s.flows.get_mut(&flow) {
                fq.q.push_back(entry);
            } else {
                s.flows.insert(
                    flow,
                    FlowQueue {
                        q: VecDeque::from([entry]),
                        deficit: 0,
                    },
                );
                s.active.push_back(flow);
            }
        }
        s.len += 1;
    }

    /// Removes the newest data-class entry to make room for control.
    /// FIFO mode evicts the most recently arrived data entry exactly;
    /// DRR mode evicts the tail of the most backlogged data-class flow
    /// (smallest flow hash on ties) — the deterministic reading of
    /// "newest" once arrival order is only kept per flow. Returns
    /// `None` when no data-class entry is queued (control is never
    /// evicted). `len` is already decremented on `Some`.
    fn evict_newest_data(s: &mut QueueState, drr: bool) -> Option<Entry> {
        if !drr {
            let idx = s.fifo.iter().rposition(|e| e.class == TrafficClass::Data)?;
            let e = s.fifo.remove(idx)?;
            s.len = s.len.saturating_sub(1);
            return Some(e);
        }
        let victim_flow = s
            .flows
            .iter()
            .filter(|(_, fq)| fq.q.back().is_some_and(|e| e.class == TrafficClass::Data))
            .max_by(|(fa, a), (fb, b)| a.q.len().cmp(&b.q.len()).then(fb.cmp(fa)))
            .map(|(&f, _)| f)?;
        let fq = s.flows.get_mut(&victim_flow)?;
        let e = fq.q.pop_back()?;
        if fq.q.is_empty() {
            s.flows.remove(&victim_flow);
            if let Some(pos) = s.active.iter().position(|&f| f == victim_flow) {
                s.active.remove(pos);
            }
        }
        s.len = s.len.saturating_sub(1);
        Some(e)
    }

    /// Dequeues the next entry under the queue's mode. DRR: visit
    /// flows round-robin, topping a flow's deficit up by one quantum
    /// per visit until it can afford its head packet — each topped-up
    /// visit rotates to the next flow, so mice are served while an
    /// elephant saves up. A flow's credit dies with its backlog (no
    /// banking while idle).
    ///
    /// This function is deliberately **total**: it runs while holding
    /// the ingress Mutex, so a violated invariant must never panic —
    /// that would poison the lock and panic every producer, bypassing
    /// shard supervision and wedging the whole service. A stale
    /// round-robin slot or an empty per-flow queue is instead repaired
    /// in place and counted in `invariant_repairs`.
    fn dequeue(s: &mut QueueState, drr: bool) -> Option<Entry> {
        if !drr {
            let e = s.fifo.pop_front()?;
            s.len = s.len.saturating_sub(1);
            return Some(e);
        }
        while let Some(&flow) = s.active.front() {
            let Some(fq) = s.flows.get_mut(&flow) else {
                // Stale slot: the flow's queue is gone. Drop the slot
                // and keep serving.
                s.active.pop_front();
                s.invariant_repairs += 1;
                continue;
            };
            let Some(head) = fq.q.front() else {
                // Empty per-flow queue left behind: retire it.
                s.flows.remove(&flow);
                s.active.pop_front();
                s.invariant_repairs += 1;
                continue;
            };
            let cost = entry_cost(head);
            if fq.deficit < cost {
                fq.deficit += DRR_QUANTUM;
                s.drr_topups += 1;
                s.active.rotate_left(1);
                continue;
            }
            fq.deficit -= cost;
            let Some(e) = fq.q.pop_front() else {
                // Unreachable (front was Some under the same lock), but
                // repairing costs nothing and panicking costs the
                // service.
                s.flows.remove(&flow);
                s.active.pop_front();
                s.invariant_repairs += 1;
                continue;
            };
            if fq.q.is_empty() {
                s.flows.remove(&flow);
                s.active.pop_front();
            }
            s.len = s.len.saturating_sub(1);
            return Some(e);
        }
        None
    }

    /// Pops the next entry, blocking while the queue is empty and
    /// open. Returns `None` only once the queue is closed *and*
    /// drained — the consumer's signal to finish.
    fn pop_entry(&self) -> Option<Entry> {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(e) = Self::dequeue(&mut state, self.flow_cap.is_some()) {
                state.observe_occupancy();
                drop(state);
                self.not_full.notify_one();
                return Some(e);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pops the next packet, blocking while the queue is empty and
    /// open. Returns `None` only once the queue is closed *and*
    /// drained — the consumer's signal to finish.
    pub fn pop(&self) -> Option<Packet> {
        self.pop_entry().map(|e| e.pkt)
    }

    /// Closes the queue: producers get [`PushOutcome::Closed`],
    /// consumers drain what is buffered and then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Highest occupancy the queue ever reached.
    #[must_use]
    pub fn highwater(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .highwater
    }

    /// DRR deficit top-ups performed so far (0 in FIFO mode).
    #[must_use]
    pub fn drr_topups(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drr_topups
    }

    /// Structural invariants repaired during dequeue. Always 0 unless
    /// the queue state was corrupted; a nonzero value means the queue
    /// recovered from damage instead of wedging.
    #[must_use]
    pub fn invariant_repairs(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .invariant_repairs
    }

    /// Test hook: plant a stale round-robin slot (an active entry with
    /// no backing flow queue) to exercise invariant repair.
    #[cfg(test)]
    fn corrupt_stale_active(&self, flow: u64) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        state.active.push_front(flow);
    }

    /// Test hook: plant an empty per-flow queue (an invariant
    /// violation — empty flows must be retired) to exercise repair.
    #[cfg(test)]
    fn corrupt_empty_flow(&self, flow: u64) {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        state.flows.insert(
            flow,
            FlowQueue {
                q: VecDeque::new(),
                deficit: 0,
            },
        );
        state.active.push_front(flow);
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).len
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The flow hash behind shard selection: [`Packet::flow_hash`], the
/// one shared FNV-1a 5-tuple hash. The sharder, the classifier and the
/// [`FlowDirector`] all route by this single implementation, so they
/// can never silently diverge.
fn flow_hash(pkt: &Packet) -> u64 {
    pkt.flow_hash()
}

/// The shard a packet belongs to: a flow hash over the 5-tuple, so one
/// flow's packets always arrive at one shard in order.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn flow_shard(pkt: &Packet, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    usize::try_from(flow_hash(pkt) % shards as u64).expect("shard index fits usize")
}

/// Tuning for skew rebalancing (see [`FlowDirector`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RebalanceConfig {
    /// Queue-occupancy fraction at or above which a shard counts as
    /// hot for one observation.
    pub highwater_frac: f64,
    /// Consecutive hot observations (one per pumped packet) before new
    /// flows are diverted away from the shard.
    pub window: u32,
    /// Pinning-table size bound — bounded memory, like everything else
    /// in serve. Once full, new flows stay on their natural shard.
    pub max_pins: usize,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            highwater_frac: 0.875,
            window: 64,
            max_pins: 4096,
        }
    }
}

/// How [`FlowDirector::route`] placed a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// The natural flow-hash shard.
    Natural,
    /// An already-pinned flow following its pin.
    Pinned,
    /// First packet of a new flow, pinned away from its hot natural
    /// shard by this very call.
    NewPin,
}

/// Routes flows to shards, diverting *new* flows away from
/// persistently hot shards.
///
/// Static flow hashing is blind to skew: two elephant flows that hash
/// to the same shard overload it while siblings idle. The director
/// watches per-shard queue occupancy; when a shard stays above
/// [`RebalanceConfig::highwater_frac`] for a full window, flows making
/// their *first* appearance are pinned to the least-loaded shard
/// instead. Only never-seen flows are eligible — a flow that has
/// already sent a packet routes to the same shard forever (pinned or
/// natural), so per-flow ordering is preserved by construction, not by
/// luck.
#[derive(Debug)]
pub struct FlowDirector {
    shards: usize,
    cfg: RebalanceConfig,
    pinned: HashMap<u64, usize>,
    seen: HashSet<u64>,
    hot_streak: Vec<u32>,
    /// Diversion opportunities lost to a full pin table: a new flow
    /// whose natural shard had been hot for a full window, left on the
    /// hot shard because the table was at `max_pins`.
    pin_table_full: u64,
    /// Whether the full-table warning has been emitted. Pins are never
    /// removed, so one episode spans the rest of the run — the warning
    /// fires once instead of flooding stderr per packet.
    warned_full: bool,
}

impl FlowDirector {
    /// A director over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards < 2` — with one shard there is nowhere to
    /// divert to (the CLI rejects that config with a typed error
    /// before it gets here).
    #[must_use]
    pub fn new(shards: usize, cfg: RebalanceConfig) -> Self {
        assert!(shards >= 2, "rebalancing needs at least two shards");
        FlowDirector {
            shards,
            cfg,
            pinned: HashMap::new(),
            seen: HashSet::new(),
            hot_streak: vec![0; shards],
            pin_table_full: 0,
            warned_full: false,
        }
    }

    /// Records one occupancy sample per shard: `depths[i]` queued of
    /// `capacity`. Extends or resets each shard's hot streak.
    pub fn observe(&mut self, depths: &[usize], capacity: usize) {
        assert_eq!(depths.len(), self.shards, "one depth per shard");
        let hot = ((capacity as f64 * self.cfg.highwater_frac).ceil() as usize).max(1);
        for (streak, &depth) in self.hot_streak.iter_mut().zip(depths) {
            *streak = if depth >= hot {
                streak.saturating_add(1)
            } else {
                0
            };
        }
    }

    /// Routes one packet of `flow` given current queue `depths`.
    /// Pinned flows follow their pin forever; seen-but-unpinned flows
    /// stay natural; a first-sighted flow whose natural shard has been
    /// hot for a full window is pinned to the least-loaded shard.
    pub fn route(&mut self, flow: u64, depths: &[usize]) -> (usize, RouteKind) {
        assert_eq!(depths.len(), self.shards, "one depth per shard");
        let natural = usize::try_from(flow % self.shards as u64).expect("shard index fits usize");
        if let Some(&pin) = self.pinned.get(&flow) {
            return (pin, RouteKind::Pinned);
        }
        if !self.seen.insert(flow) {
            return (natural, RouteKind::Natural);
        }
        if self.hot_streak[natural] >= self.cfg.window {
            if self.pinned.len() >= self.cfg.max_pins {
                // The table is full: diversion silently stopping here
                // was the bug — count every lost opportunity and warn
                // once so operators can see the bound binding.
                self.pin_table_full += 1;
                if !self.warned_full {
                    self.warned_full = true;
                    eprintln!(
                        "serve: rebalance pin table full ({} pins); \
                         new flows stay on their natural shards",
                        self.cfg.max_pins
                    );
                }
            } else {
                let coldest = (0..self.shards)
                    .min_by_key(|&i| depths[i])
                    .expect("at least two shards");
                if coldest != natural {
                    self.pinned.insert(flow, coldest);
                    return (coldest, RouteKind::NewPin);
                }
            }
        }
        (natural, RouteKind::Natural)
    }

    /// Number of flows currently pinned off their natural shard.
    #[must_use]
    pub fn pinned_flows(&self) -> usize {
        self.pinned.len()
    }

    /// Diversion opportunities lost because the pin table was full.
    #[must_use]
    pub fn pin_table_full(&self) -> u64 {
        self.pin_table_full
    }

    /// Number of distinct flows the director has routed.
    #[must_use]
    pub fn seen_flows(&self) -> usize {
        self.seen.len()
    }
}

/// Incremental FNV-1a fold of one packet outcome into a shard digest.
/// Deterministic across runs for the same packet sequence and seeds —
/// the panic-isolation tests compare these to prove sibling shards are
/// untouched by a restart.
fn digest_step(digest: u64, id: u32, verdict: u8) -> u64 {
    let h = if digest == 0 { FNV_OFFSET } else { digest };
    fnv1a_fold(h, id.to_le_bytes().into_iter().chain([verdict]))
}

/// How many pumped packets pass between SLO-trigger evaluations. The
/// histogram read takes the telemetry atomics, so once per packet
/// would be pure overhead; once per 64 keeps the trigger within one
/// queue-depth of the latency it reacts to.
const SLO_CHECK_INTERVAL: u64 = 64;

/// Minimum verdicts in a window before its p99 is trusted. Below this
/// the window is carried forward — a p99 over three samples is noise.
const SLO_MIN_SAMPLES: u64 = 16;

/// Conservative p99 in µs over log2-bucket count deltas
/// (`deltas[i]` = verdicts whose latency fell in bucket `i`, covering
/// `[2^i, 2^(i+1))` µs). Returns the **upper** edge `2^(i+1) − 1` of
/// the bucket holding the p99 sample, so the estimate over-reports
/// latency: the trigger errs toward shedding data, never toward
/// silently missing the budget. (The catch-all top bucket reports its
/// nominal edge — any budget it could under-report is blown anyway.)
/// `None` when the window is empty.
fn histogram_p99_us(deltas: &[u64]) -> Option<u64> {
    let total: u64 = deltas.iter().sum();
    if total == 0 {
        return None;
    }
    // 1-based rank of the p99 sample: the smallest k with
    // k/total ≥ 0.99, i.e. ceil(total·99/100), floored at 1.
    let rank = (total * 99).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (i, &n) in deltas.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Some((1u64 << (i as u32 + 1)) - 1);
        }
    }
    None
}

/// The latency-SLO shed trigger: watches the enqueue→verdict histogram
/// in windows of at least [`SLO_MIN_SAMPLES`] verdicts and goes active
/// while the window's conservative p99 exceeds the budget. While
/// active, the pump gives data-class pushes a zero shed deadline —
/// full queues shed data immediately instead of riding out the
/// backpressure timeout. Control is never tightened.
struct SloTrigger {
    budget_us: u64,
    /// Cumulative bucket counts at the last accepted window edge.
    prev: Vec<u64>,
    active: bool,
    activations: u64,
    shed: u64,
    last_p99_us: u64,
}

impl SloTrigger {
    fn new(budget_us: u64) -> Self {
        SloTrigger {
            budget_us,
            prev: Vec::new(),
            active: false,
            activations: 0,
            shed: 0,
            last_p99_us: 0,
        }
    }

    /// Feeds the current cumulative bucket counts. Windows smaller
    /// than [`SLO_MIN_SAMPLES`] are merged into the next evaluation.
    fn update(&mut self, cumulative: &[u64]) {
        if self.prev.len() != cumulative.len() {
            self.prev = vec![0; cumulative.len()];
        }
        let deltas: Vec<u64> = cumulative
            .iter()
            .zip(&self.prev)
            .map(|(c, p)| c.saturating_sub(*p))
            .collect();
        if deltas.iter().sum::<u64>() < SLO_MIN_SAMPLES {
            return;
        }
        self.prev.copy_from_slice(cumulative);
        let Some(p99) = histogram_p99_us(&deltas) else {
            return;
        };
        self.last_p99_us = p99;
        let blown = p99 > self.budget_us;
        if blown && !self.active {
            self.activations += 1;
        }
        self.active = blown;
    }
}

/// Configuration for [`run_serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards (machine pairs). At least 1.
    pub shards: usize,
    /// Bounded ingress-queue depth per shard. At least 1.
    pub queue_depth: usize,
    /// Total packets to generate before draining; `0` = unbounded
    /// (serve until `stop` reports true).
    pub packet_budget: u64,
    /// The application every shard runs.
    pub app: AppKind,
    /// The design point every shard runs at (clock plan, detection,
    /// strikes, fault processes, seed).
    pub design: ClumsyConfig,
    /// Traffic shape (flows, prefixes, payloads, trace seed); the
    /// packet count inside is ignored — the stream is unbounded.
    pub traffic: TraceConfig,
    /// How long a full queue exerts backpressure before the packet is
    /// shed.
    pub shed_timeout: Duration,
    /// How the shed deadline is derived from `shed_timeout` (fixed, or
    /// scaled down by queue occupancy).
    pub shed_policy: ShedPolicy,
    /// Per-flow queue cap; `Some` switches every ingress queue to
    /// deficit-round-robin dequeue with immediate shedding of flows at
    /// their cap. Must be ≥ 1 and below `queue_depth`. DRR trades the
    /// bitwise-reproducible dequeue order of FIFO mode for elephant
    /// isolation; accounting and per-flow ordering are unaffected.
    pub flow_queue_cap: Option<usize>,
    /// Skew rebalancing; `Some` diverts never-seen flows away from
    /// persistently hot shards. Needs at least two shards.
    pub rebalance: Option<RebalanceConfig>,
    /// Number of flows classified as control (the `n` numerically
    /// lowest flow hashes of the traffic's flow table). `0` disables
    /// classification: every packet is data and the class report is
    /// absent. Control packets are exempt from the flow cap and the
    /// SLO trigger, and preempt queued data on a full queue.
    pub control_flows: usize,
    /// Latency-SLO shed budget in µs over the enqueue→verdict
    /// histogram. `Some(budget)` arms a trigger that sheds data-class
    /// packets immediately (deadline zero) while the windowed
    /// conservative p99 exceeds the budget — shedding on latency, not
    /// just occupancy. Requires the latency histogram, so serve
    /// attaches an internal telemetry sink when none is supplied.
    pub slo_p99_us: Option<u64>,
    /// Publish per-shard `MemStats` deltas to telemetry every this
    /// many packets (and always at drain).
    pub stats_interval: u32,
    /// Test hook: the shard that owns this packet id panics when it
    /// pops it (once per serve run). Exercises the supervisor without
    /// planting bugs.
    pub panic_on_packet: Option<u32>,
}

impl ServeConfig {
    /// A serving setup for `app` at `design`, with 4 shards, depth-1024
    /// queues, paper traffic, a 100 ms shed timeout and no budget.
    #[must_use]
    pub fn new(app: AppKind, design: ClumsyConfig) -> Self {
        ServeConfig {
            shards: 4,
            queue_depth: 1024,
            packet_budget: 0,
            app,
            design,
            traffic: TraceConfig::paper(),
            shed_timeout: Duration::from_millis(100),
            shed_policy: ShedPolicy::Fixed,
            flow_queue_cap: None,
            rebalance: None,
            control_flows: 0,
            slo_p99_us: None,
            stats_interval: 256,
            panic_on_packet: None,
        }
    }

    /// Returns the config with a different shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with a different queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns the config with a packet budget (`0` = unbounded).
    #[must_use]
    pub fn with_packet_budget(mut self, budget: u64) -> Self {
        self.packet_budget = budget;
        self
    }

    /// Returns the config with a different shed timeout.
    #[must_use]
    pub fn with_shed_timeout(mut self, timeout: Duration) -> Self {
        self.shed_timeout = timeout;
        self
    }

    /// Returns the config with a different shed policy.
    #[must_use]
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Returns the config with a per-flow queue cap (enables DRR).
    #[must_use]
    pub fn with_flow_queue_cap(mut self, cap: usize) -> Self {
        self.flow_queue_cap = Some(cap);
        self
    }

    /// Returns the config with skew rebalancing enabled.
    #[must_use]
    pub fn with_rebalance(mut self, rebalance: RebalanceConfig) -> Self {
        self.rebalance = Some(rebalance);
        self
    }

    /// Returns the config with the `n` lowest-hash flows classified as
    /// control (`0` disables classification).
    #[must_use]
    pub fn with_control_flows(mut self, n: usize) -> Self {
        self.control_flows = n;
        self
    }

    /// Returns the config with the latency-SLO shed trigger armed at
    /// `budget_us` (p99 over the enqueue→verdict histogram).
    #[must_use]
    pub fn with_slo_p99_us(mut self, budget_us: u64) -> Self {
        self.slo_p99_us = Some(budget_us);
        self
    }

    /// Returns the config with a different traffic shape.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TraceConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the config with the panic-injection test hook armed.
    #[must_use]
    pub fn with_panic_on_packet(mut self, id: u32) -> Self {
        self.panic_on_packet = Some(id);
        self
    }
}

/// What one shard did over the whole serve run, across every
/// restart generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Packets fully processed (clean or erroneous).
    pub processed: u64,
    /// Processed packets whose marked values diverged from golden.
    pub erroneous: u64,
    /// Packets dropped by the always-on watchdog (fatal error
    /// contained) or by a shard that could not build a machine.
    pub dropped: u64,
    /// In-flight packets lost to a caught panic.
    pub abandoned: u64,
    /// Panics caught by the supervisor.
    pub panics: u64,
    /// Restarts performed (one per caught panic).
    pub restarts: u64,
    /// Reseeded machine builds after a control-plane fatal.
    pub setup_retries: u64,
    /// Epochs that tripped the safe-mode clamp, summed over
    /// generations.
    pub safe_mode_entries: u64,
    /// Faults injected into this shard's measured machine (published
    /// generations only — a generation that dies mid-interval loses
    /// its unpublished tail).
    pub faults_injected: u64,
    /// Faults detected by this shard's detection scheme (same
    /// publication caveat).
    pub faults_detected: u64,
    /// L1 ways this shard's machine mapped out while serving.
    pub ways_disabled: u64,
    /// Order-sensitive FNV digest over `(packet id, outcome)`.
    pub digest: u64,
    /// High-water occupancy of this shard's ingress queue.
    pub queue_highwater: usize,
    /// Relative cycle time when the shard drained (dynamic plans may
    /// have moved it).
    pub final_cycle: f64,
    /// Message of the most recent caught panic, if any.
    pub last_panic: Option<String>,
}

impl ShardReport {
    /// Packets this shard consumed from its queue, however they ended.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.processed + self.dropped + self.abandoned
    }
}

/// One flow's ingress accounting (overload report's top talkers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowTraffic {
    /// FNV-1a flow hash (the flow's identity; the 5-tuple itself is
    /// not retained).
    pub flow: u64,
    /// Packets the pump drew for this flow.
    pub offered: u64,
    /// Packets of this flow shed at ingress (deadline or flow cap).
    pub shed: u64,
}

/// Overload-policy accounting. Present on a [`ServeReport`] only when
/// an overload feature (adaptive shedding, flow caps, rebalancing) was
/// enabled — the default path computes none of this.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadReport {
    /// Packets shed because their flow was at its per-flow cap (a
    /// subset of the report's total `shed`).
    pub shed_flow_cap: u64,
    /// DRR deficit top-ups across all queues.
    pub drr_deficit_topups: u64,
    /// Distinct flows the pump saw.
    pub flows_seen: u64,
    /// Flows pinned off their natural shard by the rebalancer.
    pub flows_pinned: u64,
    /// Packets routed to a pinned (non-natural) shard.
    pub packets_diverted: u64,
    /// Diversion opportunities lost because the rebalance pin table
    /// was full (see [`FlowDirector::pin_table_full`]).
    pub pin_table_full: u64,
    /// Heaviest flows by offered packets, descending (at most eight).
    pub top_flows: Vec<FlowTraffic>,
}

/// Per-class admission accounting plus the latency-SLO trigger's
/// state. Present on a [`ServeReport`] only when classification or the
/// SLO trigger is enabled — the default path computes none of this.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// Control-class packets the pump drew.
    pub control_offered: u64,
    /// Control-class packets that made it into a shard queue
    /// (including by preemption).
    pub control_ingested: u64,
    /// Control-class packets shed at ingress. The whole point of the
    /// class policy is to keep this at zero while data absorbs the
    /// overload.
    pub control_shed: u64,
    /// Data-class packets the pump drew.
    pub data_offered: u64,
    /// Data-class packets shed at ingress (deadline, flow cap, SLO
    /// trigger or preemption).
    pub data_shed: u64,
    /// Data-class packets evicted from a queue by a control-class
    /// preemption (a subset of `data_shed`).
    pub preempt_shed: u64,
    /// The armed SLO budget in µs, if any.
    pub slo_budget_us: Option<u64>,
    /// Times the trigger transitioned inactive → active (windowed p99
    /// crossed the budget).
    pub slo_activations: u64,
    /// Data-class packets shed while the trigger was active (a subset
    /// of `data_shed`).
    pub slo_shed: u64,
    /// Most recent windowed conservative p99 estimate in µs (0 before
    /// the first full window).
    pub slo_last_p99_us: u64,
}

/// The outcome of a serve run: pump-side counts plus one
/// [`ShardReport`] per shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Packets drawn from the traffic source.
    pub generated: u64,
    /// Packets that made it into a shard queue.
    pub ingested: u64,
    /// Packets shed at ingress (backpressure deadline or per-flow
    /// cap).
    pub shed: u64,
    /// Per-shard accounting.
    pub shards: Vec<ShardReport>,
    /// Overload-policy accounting (`None` on the default fixed/FIFO
    /// path, whose output must stay bitwise identical across PRs).
    pub overload: Option<OverloadReport>,
    /// Per-class admission + SLO-trigger accounting (`None` unless
    /// classification or the SLO trigger is enabled).
    pub classes: Option<ClassReport>,
    /// Whether the run stopped via the `stop` closure (as opposed to
    /// exhausting its packet budget).
    pub interrupted: bool,
    /// Wall time of the whole run, pump start to last join.
    pub wall: Duration,
}

impl ServeReport {
    /// Packets fully processed across all shards.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Packets dropped (watchdog) across all shards.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Packets abandoned to panics across all shards.
    #[must_use]
    pub fn abandoned(&self) -> u64 {
        self.shards.iter().map(|s| s.abandoned).sum()
    }

    /// Shard restarts across the run.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// The drain-accounting identity: every generated packet is either
    /// shed at ingress or consumed by exactly one shard, and every
    /// consumed packet is processed, dropped or abandoned. False would
    /// mean a packet was lost untracked or processed twice.
    #[must_use]
    pub fn accounting_holds(&self) -> bool {
        let consumed: u64 = self.shards.iter().map(ShardReport::consumed).sum();
        self.ingested == consumed && self.generated == self.ingested + self.shed
    }

    /// Human-readable multi-line summary (the `clumsy serve` output).
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let secs = self.wall.as_secs_f64();
        let rate = if secs > 0.0 {
            self.processed() as f64 / secs
        } else {
            0.0
        };
        let mut out = format!(
            "served {} packets in {:.2}s ({rate:.0} pkt/s): \
             {} processed, {} shed, {} dropped, {} abandoned, {} restarts\n",
            self.generated,
            secs,
            self.processed(),
            self.shed,
            self.dropped(),
            self.abandoned(),
            self.restarts(),
        );
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>7} {:>6} {:>6} {:>8} {:>7} {:>8} {:>6} {:>18}",
            "shard",
            "processed",
            "errors",
            "drops",
            "aband",
            "restarts",
            "qdepth",
            "faults",
            "Cr",
            "digest"
        );
        for s in &self.shards {
            let _ = writeln!(
                out,
                "{:>5} {:>10} {:>7} {:>6} {:>6} {:>8} {:>7} {:>8} {:>6.2} {:>18}",
                s.shard,
                s.processed,
                s.erroneous,
                s.dropped,
                s.abandoned,
                s.restarts,
                s.queue_highwater,
                s.faults_injected,
                s.final_cycle,
                format!("{:016x}", s.digest),
            );
        }
        let _ = writeln!(
            out,
            "drained: accounting {} ({} ingested = {} consumed)",
            if self.accounting_holds() {
                "ok"
            } else {
                "BROKEN"
            },
            self.ingested,
            self.shards.iter().map(ShardReport::consumed).sum::<u64>(),
        );
        if let Some(o) = &self.overload {
            let _ = writeln!(
                out,
                "overload: shed_flow_cap={} drr_topups={} flows_seen={} \
                 flows_pinned={} packets_diverted={} pin_table_full={}",
                o.shed_flow_cap,
                o.drr_deficit_topups,
                o.flows_seen,
                o.flows_pinned,
                o.packets_diverted,
                o.pin_table_full,
            );
            if let Some(top) = o.top_flows.first() {
                // Asymmetry proof for the soak gates: the heaviest flow
                // versus everyone else. `generated`/`shed` cover every
                // packet, so mice = totals minus the elephant.
                let _ = writeln!(
                    out,
                    "flow shed: elephant={:016x} elephant_shed={} elephant_offered={} \
                     mice_shed={} mice_offered={}",
                    top.flow,
                    top.shed,
                    top.offered,
                    self.shed - top.shed,
                    self.generated - top.offered,
                );
            }
        }
        if let Some(c) = &self.classes {
            let _ = writeln!(
                out,
                "class: control_offered={} control_ingested={} control_shed={} \
                 data_offered={} data_shed={} preempt_shed={}",
                c.control_offered,
                c.control_ingested,
                c.control_shed,
                c.data_offered,
                c.data_shed,
                c.preempt_shed,
            );
            if let Some(budget) = c.slo_budget_us {
                let _ = writeln!(
                    out,
                    "slo: budget_us={} activations={} slo_shed={} last_p99_us={}",
                    budget, c.slo_activations, c.slo_shed, c.slo_last_p99_us,
                );
            }
        }
        out
    }
}

/// How one packet ended inside a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketVerdict {
    /// Marked values matched golden.
    Clean,
    /// Processed, but marked values diverged.
    Erroneous,
    /// Fatal error contained by the watchdog; packet dropped.
    Dropped,
}

/// One generation of a shard: lock-stepped golden + measured machine
/// pair at stream granularity. The golden machine never injects, so
/// both apps see the same packet sequence and the per-packet diff is
/// exactly the batch runner's differential execution, just unbounded.
struct ShardState {
    golden_machine: Machine,
    golden_app: Box<dyn PacketApp>,
    golden_fuel: u64,
    machine: Machine,
    app: Box<dyn PacketApp>,
    fuel: u64,
    controller: Option<DynamicController>,
    detection: DetectionScheme,
    faults_seen: u64,
    published: MemStats,
}

impl ShardState {
    /// Builds both machines and runs both control planes. A fatal in
    /// the measured control plane is an `Err` — the caller retries
    /// with a reseeded stream.
    fn build(cfg: &ServeConfig, context: &Trace, seed: u64) -> Result<ShardState, AppError> {
        // Golden side: mirrors `ClumsyProcessor::golden`.
        let mut golden_machine = Machine::strongarm(0);
        golden_machine.set_inject(false);
        let mut golden_app = cfg.app.instantiate(context);
        golden_machine.set_fuel(golden_app.setup_fuel());
        golden_app
            .setup(&mut golden_machine)
            .expect("golden setup cannot fail without faults");
        let golden_fuel = golden_app.fuel_per_packet();

        // Measured side: mirrors `ClumsyProcessor::run_with_golden`.
        let mut machine = Machine::with_config(cfg.design.mem.clone(), seed);
        machine.set_fault_planes(cfg.design.planes);
        let mut app = cfg.app.instantiate(context);
        let fuel = cfg.design.fuel_per_packet.unwrap_or(app.fuel_per_packet());
        let controller = match &cfg.design.frequency {
            FrequencyPlan::Static(cr) => {
                machine.set_cycle_free(*cr);
                None
            }
            FrequencyPlan::Dynamic(d) => {
                let ctl = DynamicController::new(d.clone());
                machine.set_cycle_free(ctl.cycle_time());
                Some(ctl)
            }
        };
        machine.set_plane(Plane::Control);
        machine.set_fuel(app.setup_fuel());
        app.setup(&mut machine)?;
        machine.writeback_all();
        machine.set_plane(Plane::Data);
        let detection = cfg.design.mem.detection;
        let faults_seen = ClumsyProcessor::fault_count(&machine, detection);
        let published = *machine.stats();
        Ok(ShardState {
            golden_machine,
            golden_app,
            golden_fuel,
            machine,
            app,
            fuel,
            controller,
            detection,
            faults_seen,
            published,
        })
    }

    /// Runs one packet through both machines and classifies it.
    fn process_packet(&mut self, pkt: &Packet) -> PacketVerdict {
        let view = self
            .golden_machine
            .dma_packet(pkt)
            .expect("packet fits DMA buffer");
        self.golden_machine.set_fuel(self.golden_fuel);
        let golden_obs = self
            .golden_app
            .process(&mut self.golden_machine, view)
            .expect("golden processing cannot fail without faults");

        let verdict = match self.machine.dma_packet(pkt) {
            // Never wedge: a fatal in serve always takes the watchdog
            // path (drop the packet, keep the machine alive).
            Err(_) => PacketVerdict::Dropped,
            Ok(view) => {
                self.machine.set_fuel(self.fuel);
                match self.app.process(&mut self.machine, view) {
                    Ok(obs) => {
                        if diff_observations(&golden_obs, &obs).has_error() {
                            PacketVerdict::Erroneous
                        } else {
                            PacketVerdict::Clean
                        }
                    }
                    Err(_) => PacketVerdict::Dropped,
                }
            }
        };

        // Dynamic adaptation on the observed fault counter, exactly as
        // in the batch runner — but online, per shard, forever.
        if let Some(ctl) = self.controller.as_mut() {
            let now = ClumsyProcessor::fault_count(&self.machine, self.detection);
            let delta = now - self.faults_seen;
            self.faults_seen = now;
            if let Some(Decision::Switch(cr)) = ctl.on_packet(delta) {
                self.machine.set_cycle(cr);
            }
        }
        verdict
    }

    /// Publishes the fault counters accumulated since the last publish
    /// into telemetry and the shard report.
    fn publish(&mut self, rep: &mut ShardReport, telemetry: Option<&Telemetry>, worker: usize) {
        let now = *self.machine.stats();
        let delta = now.since(&self.published);
        if let Some(t) = telemetry {
            t.record_stats(worker, &delta);
        }
        rep.faults_injected += delta.faults_injected;
        rep.faults_detected += delta.faults_detected;
        rep.ways_disabled += delta.ways_disabled;
        self.published = now;
    }
}

/// Seed for one shard build: base seed, shard mix, and a per-build
/// round multiplied by the campaign reseed stride — every rebuild
/// (setup retry or post-panic restart) draws a fresh stream.
fn shard_seed(base: u64, shard: usize, round: u64) -> u64 {
    base ^ (shard as u64).wrapping_mul(SHARD_SEED_MIX) ^ round.wrapping_mul(RESEED_STRIDE)
}

/// One shard generation: build a machine pair (reseeding past
/// control-plane fatals), then consume the queue until it is closed
/// and drained. Panics propagate to the supervisor.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard: usize,
    cfg: &ServeConfig,
    context: &Trace,
    queue: &IngressQueue,
    rep: &mut ShardReport,
    telemetry: Option<&Telemetry>,
    in_flight: &Cell<Option<u32>>,
    rounds: &Cell<u64>,
    panic_armed: &Cell<bool>,
) {
    let mut state = None;
    for _ in 0..=SETUP_RETRY_LIMIT {
        let round = rounds.replace(rounds.get() + 1);
        match ShardState::build(cfg, context, shard_seed(cfg.design.seed, shard, round)) {
            Ok(s) => {
                state = Some(s);
                break;
            }
            Err(_) => {
                rep.setup_retries += 1;
                if let Some(t) = telemetry {
                    t.shard_setup_retry();
                }
            }
        }
    }
    let Some(mut state) = state else {
        // Never wedge: a shard that cannot boot a machine at this
        // operating point degrades to shedding its queue so the pump
        // and the sibling shards keep moving.
        while queue.pop().is_some() {
            rep.dropped += 1;
            if let Some(t) = telemetry {
                t.packet_dropped(shard);
            }
        }
        return;
    };

    let mut since_publish = 0u32;
    while let Some(entry) = queue.pop_entry() {
        let Entry { pkt, enqueued, .. } = entry;
        in_flight.set(Some(pkt.id));
        if cfg.panic_on_packet == Some(pkt.id) && panic_armed.replace(false) {
            panic!("injected serve test panic on packet {}", pkt.id);
        }
        let verdict = state.process_packet(&pkt);
        if let (Some(t), Some(at)) = (telemetry, enqueued) {
            t.serve_latency(at.elapsed());
        }
        rep.digest = digest_step(rep.digest, pkt.id, verdict as u8);
        match verdict {
            PacketVerdict::Clean => rep.processed += 1,
            PacketVerdict::Erroneous => {
                rep.processed += 1;
                rep.erroneous += 1;
            }
            PacketVerdict::Dropped => rep.dropped += 1,
        }
        if let Some(t) = telemetry {
            match verdict {
                PacketVerdict::Clean => t.packet_processed(shard, false),
                PacketVerdict::Erroneous => t.packet_processed(shard, true),
                PacketVerdict::Dropped => t.packet_dropped(shard),
            }
        }
        in_flight.set(None);
        since_publish += 1;
        if since_publish >= cfg.stats_interval.max(1) {
            state.publish(rep, telemetry, shard);
            since_publish = 0;
        }
    }
    state.publish(rep, telemetry, shard);
    if let Some(ctl) = &state.controller {
        rep.safe_mode_entries += u64::from(ctl.safe_mode_entries());
    }
    rep.final_cycle = state.machine.cycle_time();
}

/// Supervises one shard for the lifetime of the run: every generation
/// runs under [`catch_unwind`]; a panic accounts the in-flight packet
/// as abandoned and restarts the loop with a reseeded stream on the
/// same queue. Only returns once the queue is closed and drained.
fn supervise_shard(
    shard: usize,
    cfg: &ServeConfig,
    context: &Trace,
    queue: &IngressQueue,
    telemetry: Option<&Telemetry>,
) -> ShardReport {
    let mut rep = ShardReport {
        shard,
        final_cycle: 1.0,
        ..ShardReport::default()
    };
    let in_flight = Cell::new(None::<u32>);
    let rounds = Cell::new(0u64);
    let panic_armed = Cell::new(cfg.panic_on_packet.is_some());
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            shard_loop(
                shard,
                cfg,
                context,
                queue,
                &mut rep,
                telemetry,
                &in_flight,
                &rounds,
                &panic_armed,
            );
        }));
        match result {
            Ok(()) => break,
            Err(payload) => {
                rep.panics += 1;
                rep.restarts += 1;
                rep.last_panic = Some(panic_message(payload));
                if in_flight.take().is_some() {
                    rep.abandoned += 1;
                    if let Some(t) = telemetry {
                        t.packet_abandoned();
                    }
                }
                if let Some(t) = telemetry {
                    t.shard_panic();
                    t.shard_restarted();
                }
                // Loop: the next generation rebuilds with the next
                // reseed round and keeps consuming the same queue.
            }
        }
    }
    rep.queue_highwater = queue.highwater();
    rep
}

/// Runs the sharded service: spawns one supervised shard thread per
/// shard, pumps the traffic source through the flow-hash queues on the
/// calling thread, and on `stop` (or an exhausted budget) closes every
/// queue, drains, joins and reports.
///
/// `stop` is polled between packets; SIGTERM handling is the caller's
/// concern (the CLI passes [`crate::interrupt::interrupted`]).
///
/// # Panics
///
/// Panics if `cfg.shards` or `cfg.queue_depth` is zero (shard panics
/// themselves are caught and handled by the supervisor).
pub fn run_serve(
    cfg: &ServeConfig,
    telemetry: Option<&Telemetry>,
    stop: &(dyn Fn() -> bool + Sync),
) -> ServeReport {
    assert!(cfg.shards > 0, "need at least one shard");
    if cfg.rebalance.is_some() {
        assert!(cfg.shards >= 2, "rebalancing needs at least two shards");
    }
    let clock = Instant::now();
    let mut source = TrafficSource::new(&cfg.traffic);

    // The SLO trigger feeds on the enqueue→verdict histogram, which
    // only exists when telemetry is attached; arm an internal sink if
    // the caller supplied none.
    let slo_local;
    let telemetry = match (telemetry, cfg.slo_p99_us) {
        (None, Some(_)) => {
            slo_local = Telemetry::with_shards(cfg.shards);
            Some(&slo_local)
        }
        (t, _) => t,
    };

    // Classifier: the n numerically lowest flow hashes are control.
    let classifier = (cfg.control_flows > 0)
        .then(|| FlowClassifier::lowest_hashes(&source.flow_hashes(), cfg.control_flows));
    let classes_on = classifier.is_some() || cfg.slo_p99_us.is_some();
    let mut slo = cfg.slo_p99_us.map(SloTrigger::new);
    let mut slo_reported_activations = 0u64;
    let mut control_offered = 0u64;
    let mut control_ingested = 0u64;
    let mut control_shed = 0u64;
    let mut data_offered = 0u64;
    let mut data_shed = 0u64;
    let mut preempt_shed = 0u64;

    let context = source.context();
    let queues: Vec<IngressQueue> = (0..cfg.shards)
        .map(|_| IngressQueue::with_flow_cap(cfg.queue_depth, cfg.flow_queue_cap))
        .collect();

    // The overload layer is fully absent on the default path: no flow
    // table, no depth sampling, no clock reads — the PR 8 pump,
    // bitwise.
    let overload_on = cfg.shed_policy != ShedPolicy::Fixed
        || cfg.flow_queue_cap.is_some()
        || cfg.rebalance.is_some();
    let mut director = cfg
        .rebalance
        .clone()
        .map(|r| FlowDirector::new(cfg.shards, r));
    let mut flow_stats: HashMap<u64, (u64, u64)> = HashMap::new(); // (offered, shed)
    let mut depths = vec![0usize; cfg.shards];
    let mut shed_flow_cap = 0u64;
    let mut packets_diverted = 0u64;

    let mut generated = 0u64;
    let mut ingested = 0u64;
    let mut shed = 0u64;
    let mut interrupted = false;

    let shard_reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.shards)
            .map(|i| {
                let queue = &queues[i];
                let context = &context;
                s.spawn(move || supervise_shard(i, cfg, context, queue, telemetry))
            })
            .collect();

        // The pump: draw from the unbounded source, shard by flow
        // hash, push with backpressure-then-shed. The stop poll sits
        // between packets so a signal is honored within one push.
        loop {
            if stop() {
                interrupted = true;
                break;
            }
            if cfg.packet_budget > 0 && generated >= cfg.packet_budget {
                break;
            }
            let pkt = source.next_packet();
            generated += 1;
            let flow = flow_hash(&pkt);
            let class = classifier
                .as_ref()
                .map_or(TrafficClass::Data, |c| c.classify(flow));
            if classes_on {
                match class {
                    TrafficClass::Control => control_offered += 1,
                    TrafficClass::Data => data_offered += 1,
                }
            }
            // Evaluate the SLO trigger on a sampled cadence; while it
            // is active, data-class pushes get a zero deadline (shed
            // on a full queue immediately) and control keeps the full
            // backpressure budget.
            let mut shed_timeout = cfg.shed_timeout;
            if let (Some(s), Some(t)) = (slo.as_mut(), telemetry) {
                if generated.is_multiple_of(SLO_CHECK_INTERVAL) {
                    s.update(&t.serve_latency_bucket_counts());
                    if s.activations > slo_reported_activations {
                        for _ in slo_reported_activations..s.activations {
                            t.slo_activation();
                        }
                        slo_reported_activations = s.activations;
                    }
                    t.set_slo_last_p99_us(s.last_p99_us);
                }
                if s.active && class == TrafficClass::Data {
                    shed_timeout = Duration::ZERO;
                }
            }
            let slo_tightened = shed_timeout.is_zero() && !cfg.shed_timeout.is_zero();
            let shard = if let Some(d) = director.as_mut() {
                for (slot, q) in depths.iter_mut().zip(&queues) {
                    *slot = q.len();
                }
                d.observe(&depths, cfg.queue_depth);
                let (shard, kind) = d.route(flow, &depths);
                match kind {
                    RouteKind::Natural => {}
                    RouteKind::Pinned | RouteKind::NewPin => {
                        packets_diverted += 1;
                        if let Some(t) = telemetry {
                            t.packet_diverted();
                            if kind == RouteKind::NewPin {
                                t.flow_diverted();
                            }
                        }
                    }
                }
                shard
            } else {
                usize::try_from(flow % cfg.shards as u64).expect("shard index fits usize")
            };
            if overload_on {
                flow_stats.entry(flow).or_insert((0, 0)).0 += 1;
            }
            let entry = Entry {
                pkt,
                flow,
                class,
                enqueued: telemetry.map(|_| Instant::now()),
            };
            match queues[shard].push_entry(entry, shed_timeout, cfg.shed_policy) {
                PushOutcome::Enqueued(depth) => {
                    ingested += 1;
                    if class == TrafficClass::Control {
                        control_ingested += 1;
                    }
                    if let Some(t) = telemetry {
                        t.packet_ingested();
                        t.queue_depth_sample(depth as u64);
                    }
                }
                PushOutcome::Preempted {
                    depth,
                    evicted_flow,
                } => {
                    // A control packet entered by evicting one queued
                    // data packet: net ingested is unchanged (+1
                    // control in, −1 data out — the data packet was
                    // already counted when it was enqueued), and the
                    // eviction is one data-class shed attributed to
                    // the evicted flow. Telemetry mirrors this with
                    // monotone counters: no packet_ingested for the
                    // control packet, one packet_shed for the evicted
                    // one, so `generated = ingested + shed` stays
                    // exact on both ledgers.
                    shed += 1;
                    control_ingested += 1;
                    data_shed += 1;
                    preempt_shed += 1;
                    if overload_on {
                        flow_stats.entry(evicted_flow).or_insert((0, 0)).1 += 1;
                    }
                    if let Some(t) = telemetry {
                        t.packet_shed();
                        t.packet_shed_data();
                        t.packet_preempt_shed();
                        t.queue_depth_sample(depth as u64);
                    }
                }
                PushOutcome::Shed => {
                    shed += 1;
                    if classes_on {
                        match class {
                            TrafficClass::Control => control_shed += 1,
                            TrafficClass::Data => data_shed += 1,
                        }
                    }
                    if slo_tightened {
                        if let Some(s) = slo.as_mut() {
                            s.shed += 1;
                        }
                    }
                    if overload_on {
                        flow_stats.entry(flow).or_insert((0, 0)).1 += 1;
                    }
                    if let Some(t) = telemetry {
                        t.packet_shed();
                        if classes_on {
                            match class {
                                TrafficClass::Control => t.packet_shed_control(),
                                TrafficClass::Data => t.packet_shed_data(),
                            }
                        }
                        if slo_tightened {
                            t.packet_shed_slo();
                        }
                    }
                }
                PushOutcome::ShedFlowCap => {
                    shed += 1;
                    shed_flow_cap += 1;
                    if classes_on {
                        // Control is exempt from the flow cap, so this
                        // is always data.
                        data_shed += 1;
                    }
                    flow_stats.entry(flow).or_insert((0, 0)).1 += 1;
                    if let Some(t) = telemetry {
                        t.packet_shed();
                        t.packet_shed_flow_cap();
                        if classes_on {
                            t.packet_shed_data();
                        }
                    }
                }
                PushOutcome::Closed => break,
            }
        }

        // Drain protocol: close every queue; shards finish what is
        // buffered, publish, and return their reports.
        for q in &queues {
            q.close();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard supervisors never panic"))
            .collect::<Vec<ShardReport>>()
    });

    if let Some(t) = telemetry {
        for q in &queues {
            t.queue_depth_sample(q.highwater() as u64);
        }
        let repairs: u64 = queues.iter().map(IngressQueue::invariant_repairs).sum();
        if repairs > 0 {
            t.add_queue_invariant_repairs(repairs);
        }
    }
    let overload = overload_on.then(|| {
        let drr_deficit_topups: u64 = queues.iter().map(IngressQueue::drr_topups).sum();
        let pin_table_full = director.as_ref().map_or(0, FlowDirector::pin_table_full);
        if let Some(t) = telemetry {
            t.add_drr_topups(drr_deficit_topups);
            if pin_table_full > 0 {
                t.add_pin_table_full(pin_table_full);
            }
        }
        let mut top_flows: Vec<FlowTraffic> = flow_stats
            .iter()
            .map(|(&flow, &(offered, shed))| FlowTraffic {
                flow,
                offered,
                shed,
            })
            .collect();
        top_flows.sort_by(|a, b| b.offered.cmp(&a.offered).then(a.flow.cmp(&b.flow)));
        let flows_seen = top_flows.len() as u64;
        top_flows.truncate(8);
        OverloadReport {
            shed_flow_cap,
            drr_deficit_topups,
            flows_seen,
            flows_pinned: director.as_ref().map_or(0, |d| d.pinned_flows() as u64),
            packets_diverted,
            pin_table_full,
            top_flows,
        }
    });
    let classes = classes_on.then(|| ClassReport {
        control_offered,
        control_ingested,
        control_shed,
        data_offered,
        data_shed,
        preempt_shed,
        slo_budget_us: cfg.slo_p99_us,
        slo_activations: slo.as_ref().map_or(0, |s| s.activations),
        slo_shed: slo.as_ref().map_or(0, |s| s.shed),
        slo_last_p99_us: slo.as_ref().map_or(0, |s| s.last_p99_us),
    });
    ServeReport {
        generated,
        ingested,
        shed,
        shards: shard_reports,
        overload,
        classes,
        interrupted,
        wall: clock.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn small_traffic() -> TraceConfig {
        TraceConfig::small()
    }

    fn serve_cfg(budget: u64) -> ServeConfig {
        ServeConfig::new(AppKind::Crc, ClumsyConfig::baseline())
            .with_traffic(small_traffic())
            .with_packet_budget(budget)
            .with_shards(3)
            .with_queue_depth(64)
            // Tests must be deterministic: never shed on scheduler
            // jitter.
            .with_shed_timeout(Duration::from_secs(300))
    }

    #[test]
    fn queue_backpressure_sheds_after_timeout() {
        let q = IngressQueue::new(2);
        let pkt = || Packet {
            id: 0,
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
            ttl: 9,
            payload: vec![0; 8],
        };
        let short = Duration::from_millis(5);
        assert!(matches!(q.push(pkt(), short), PushOutcome::Enqueued(1)));
        assert!(matches!(q.push(pkt(), short), PushOutcome::Enqueued(2)));
        assert_eq!(q.push(pkt(), short), PushOutcome::Shed);
        assert_eq!(q.highwater(), 2);
        q.close();
        assert_eq!(q.push(pkt(), short), PushOutcome::Closed);
        // Close drains what is buffered before signalling the end.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn flow_shard_is_stable_and_in_range() {
        let mut src = TrafficSource::new(&small_traffic());
        for _ in 0..200 {
            let p = src.next_packet();
            let s = flow_shard(&p, 4);
            assert!(s < 4);
            assert_eq!(s, flow_shard(&p, 4), "same packet, same shard");
        }
    }

    #[test]
    fn bounded_serve_accounts_for_every_packet() {
        let report = run_serve(&serve_cfg(400), None, &|| false);
        assert_eq!(report.generated, 400);
        assert_eq!(report.shed, 0);
        assert!(report.accounting_holds(), "{report:?}");
        assert_eq!(report.processed(), 400);
        assert!(!report.interrupted);
        assert_eq!(report.restarts(), 0);
        let summary = report.summary();
        assert!(summary.contains("accounting ok"), "{summary}");
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = serve_cfg(300);
        let a = run_serve(&cfg, None, &|| false);
        let b = run_serve(&cfg, None, &|| false);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.digest, y.digest, "shard {} digest", x.shard);
            assert_eq!(x.processed, y.processed);
        }
    }

    #[test]
    fn stop_drains_and_accounting_still_holds() {
        let polls = AtomicU64::new(0);
        let report = run_serve(&serve_cfg(0), None, &|| {
            polls.fetch_add(1, Ordering::Relaxed) >= 500
        });
        assert!(report.interrupted);
        assert_eq!(report.generated, 500);
        assert!(report.accounting_holds(), "{report:?}");
    }

    #[test]
    fn injected_panic_restarts_only_the_victim_shard() {
        let cfg = serve_cfg(400);
        // Pick a mid-stream packet and find which shard owns it.
        let victim_pkt = TrafficSource::new(&cfg.traffic)
            .nth(200)
            .expect("stream is unbounded");
        let victim = flow_shard(&victim_pkt, cfg.shards);
        let clean = run_serve(&cfg, None, &|| false);
        let faulty = run_serve(
            &cfg.clone().with_panic_on_packet(victim_pkt.id),
            None,
            &|| false,
        );

        assert!(faulty.accounting_holds(), "{faulty:?}");
        assert_eq!(faulty.restarts(), 1);
        assert_eq!(faulty.abandoned(), 1);
        let v = &faulty.shards[victim];
        assert_eq!(v.panics, 1);
        assert_eq!(v.abandoned, 1);
        assert!(
            v.last_panic.as_deref().unwrap_or("").contains("injected"),
            "{:?}",
            v.last_panic
        );
        // The victim lost exactly the in-flight packet but consumed
        // the same queue contents.
        assert_eq!(v.consumed(), clean.shards[victim].consumed());
        // Sibling shards are bitwise untouched by the restart.
        for (f, c) in faulty.shards.iter().zip(&clean.shards) {
            if f.shard == victim {
                continue;
            }
            assert_eq!(f.digest, c.digest, "shard {} digest changed", f.shard);
            assert_eq!(f.processed, c.processed, "shard {}", f.shard);
            assert_eq!(f.restarts, 0, "shard {}", f.shard);
        }
    }

    #[test]
    fn serve_feeds_the_telemetry_counters() {
        let t = Telemetry::with_shards(4);
        let report = run_serve(&serve_cfg(250), Some(&t), &|| false);
        let s = t.snapshot();
        assert_eq!(s.packets_ingested, report.ingested);
        assert_eq!(
            s.packets_processed,
            report.processed(),
            "processed mismatch"
        );
        assert_eq!(s.packets_dropped, report.dropped());
        assert_eq!(s.packets_shed, 0);
        assert!(s.queue_highwater >= 1);
        let json = t.metrics_json();
        for key in [
            "packets_ingested",
            "packets_shed",
            "packets_processed",
            "packets_erroneous",
            "packets_dropped",
            "packets_abandoned",
            "shard_panics",
            "shard_restarts",
            "shard_setup_retries",
            "queue_highwater",
        ] {
            assert!(json.contains(key), "metrics JSON lost {key}");
        }
    }

    /// A synthetic 5-tuple packet: `i` sweeps src/dst addresses so
    /// each index is a distinct flow.
    fn tuple_pkt(i: u32) -> Packet {
        Packet {
            id: i,
            src_ip: 0x0A00_0000 | i,
            dst_ip: 0xC0A8_0000 | i.wrapping_mul(7),
            src_port: 1024 + (i % 40_000) as u16,
            dst_port: 80,
            proto: 6,
            ttl: 64,
            payload: vec![0; 64],
        }
    }

    /// Deliberately colliding fixture: `n` distinct 5-tuples that all
    /// flow-hash to `shard` of `shards` — the worst case static
    /// sharding can see, used by the rebalance tests.
    fn colliding_flows(shard: usize, shards: usize, n: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(n);
        let mut i = 0u32;
        while out.len() < n {
            let p = tuple_pkt(i);
            if flow_shard(&p, shards) == shard {
                out.push(p);
            }
            i = i.checked_add(1).expect("fixture search stays in range");
        }
        out
    }

    #[test]
    fn colliding_fixture_really_collides() {
        let pkts = colliding_flows(1, 4, 32);
        let distinct: std::collections::HashSet<u64> = pkts.iter().map(flow_hash).collect();
        assert_eq!(distinct.len(), 32, "fixture flows must be distinct");
        assert!(pkts.iter().all(|p| flow_shard(p, 4) == 1));
    }

    #[test]
    fn flow_hash_spreads_uniform_tuples_evenly() {
        // Chi-square goodness of fit for FNV-1a 5-tuple sharding over
        // 8192 distinct flows. Critical values at p = 0.001 for
        // df = shards − 1: a hash this bad would fail one in a
        // thousand universes, not this deterministic one.
        const N: usize = 8192;
        for (shards, crit) in [(2usize, 10.83f64), (4, 16.27), (8, 24.32)] {
            let mut counts = vec![0u64; shards];
            for i in 0..N {
                counts[flow_shard(&tuple_pkt(i as u32), shards)] += 1;
            }
            let expected = N as f64 / shards as f64;
            let chi2: f64 = counts
                .iter()
                .map(|&c| {
                    let d = c as f64 - expected;
                    d * d / expected
                })
                .sum();
            assert!(
                chi2 < crit,
                "{shards} shards: chi2 {chi2:.2} >= {crit} ({counts:?})"
            );
        }
    }

    #[test]
    fn adaptive_deadline_shrinks_under_sustained_pressure() {
        let q = IngressQueue::new(4);
        let max = Duration::from_millis(80);
        // Fresh queue: zero smoothed occupancy grants the full budget.
        assert_eq!(q.shed_deadline(max, ShedPolicy::Adaptive), max);
        assert_eq!(q.shed_deadline(max, ShedPolicy::Fixed), max);
        // Fill it and keep observing fullness: the EWMA converges on
        // capacity and the adaptive deadline collapses toward zero.
        let tiny = Duration::from_millis(1);
        for i in 0..4 {
            assert!(matches!(
                q.push(tuple_pkt(i), Duration::from_secs(1)),
                PushOutcome::Enqueued(_)
            ));
        }
        for i in 4..40 {
            assert_eq!(q.push(tuple_pkt(i), tiny), PushOutcome::Shed);
        }
        let squeezed = q.shed_deadline(max, ShedPolicy::Adaptive);
        assert!(
            squeezed < max / 4,
            "deadline {squeezed:?} did not shrink under pressure"
        );
        // Fixed policy is immune to occupancy by definition.
        assert_eq!(q.shed_deadline(max, ShedPolicy::Fixed), max);
    }

    #[test]
    fn drr_serves_mice_ahead_of_an_elephant_backlog() {
        // One elephant flow enqueues 6 near-MTU packets, then two mice
        // one small packet each. FIFO would make the mice wait out the
        // whole elephant backlog; DRR must interleave them into the
        // first quantum round, because each elephant packet nearly
        // exhausts the 1500-byte deficit.
        let q = IngressQueue::with_flow_cap(64, Some(16));
        let long = Duration::from_secs(1);
        let elephant = tuple_pkt(0);
        for i in 0..6u32 {
            let mut p = elephant.clone();
            p.id = 1000 + i; // distinct ids, same 5-tuple
            p.payload = vec![0; 1400];
            assert!(matches!(q.push(p, long), PushOutcome::Enqueued(_)));
        }
        let (ma, mb) = (tuple_pkt(1), tuple_pkt(2));
        assert_ne!(flow_hash(&ma), flow_hash(&elephant));
        assert_ne!(flow_hash(&mb), flow_hash(&elephant));
        assert!(matches!(q.push(ma.clone(), long), PushOutcome::Enqueued(_)));
        assert!(matches!(q.push(mb.clone(), long), PushOutcome::Enqueued(_)));
        q.close();
        let drained: Vec<Packet> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(drained.len(), 8);
        let order: Vec<u64> = drained.iter().map(flow_hash).collect();
        let pos = |h: u64| order.iter().position(|&x| x == h).expect("flow served");
        // Both mice are served before the elephant's last packet.
        let last_elephant = order
            .iter()
            .rposition(|&x| x == flow_hash(&elephant))
            .unwrap();
        assert!(pos(flow_hash(&ma)) < last_elephant, "{order:?}");
        assert!(pos(flow_hash(&mb)) < last_elephant, "{order:?}");
        // Per-flow order is preserved: the elephant's ids ascend.
        let elephant_ids: Vec<u32> = drained
            .iter()
            .filter(|p| flow_hash(p) == flow_hash(&elephant))
            .map(|p| p.id)
            .collect();
        assert!(
            elephant_ids.windows(2).all(|w| w[0] < w[1]),
            "{elephant_ids:?}"
        );
        assert!(q.drr_topups() > 0, "round robin must have topped up");
    }

    #[test]
    fn flow_cap_sheds_the_elephant_not_the_queue() {
        let q = IngressQueue::with_flow_cap(64, Some(4));
        let long = Duration::from_secs(1);
        let elephant = tuple_pkt(0);
        for _ in 0..4 {
            assert!(matches!(
                q.push(elephant.clone(), long),
                PushOutcome::Enqueued(_)
            ));
        }
        // Fifth packet of the same flow: immediate flow-cap shed, no
        // blocking, even though the queue itself has plenty of room.
        let before = Instant::now();
        assert_eq!(q.push(elephant.clone(), long), PushOutcome::ShedFlowCap);
        assert!(before.elapsed() < Duration::from_millis(500));
        // A different flow still gets in.
        let mouse = tuple_pkt(1);
        assert!(matches!(q.push(mouse, long), PushOutcome::Enqueued(5)));
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn director_pins_new_flows_off_a_hot_shard() {
        let mut d = FlowDirector::new(
            4,
            RebalanceConfig {
                highwater_frac: 0.875,
                window: 3,
                max_pins: 100,
            },
        );
        let depths_hot = [60usize, 2, 1, 5]; // shard 0 ≥ 7/8 of 64
                                             // Flows that naturally hash to shard 0.
        let flows: Vec<u64> = colliding_flows(0, 4, 6).iter().map(flow_hash).collect();
        // Before the window fills, first sightings stay natural.
        d.observe(&depths_hot, 64);
        let (s, kind) = d.route(flows[0], &depths_hot);
        assert_eq!((s, kind), (0, RouteKind::Natural));
        d.observe(&depths_hot, 64);
        d.observe(&depths_hot, 64);
        // Window full: a *new* flow is pinned to the coldest shard.
        let (s, kind) = d.route(flows[1], &depths_hot);
        assert_eq!((s, kind), (2, RouteKind::NewPin));
        // The pin is sticky: every later packet of that flow follows
        // it, whatever the depths, so per-flow ordering holds.
        let calm = [0usize, 50, 60, 70];
        d.observe(&calm, 64);
        assert_eq!(d.route(flows[1], &calm), (2, RouteKind::Pinned));
        // The flow seen before the window filled is seen, not new —
        // never diverted, even under pressure.
        d.observe(&depths_hot, 64);
        d.observe(&depths_hot, 64);
        d.observe(&depths_hot, 64);
        assert_eq!(d.route(flows[0], &depths_hot), (0, RouteKind::Natural));
        assert_eq!(d.pinned_flows(), 1);
        assert_eq!(d.seen_flows(), 2);
    }

    #[test]
    fn director_respects_the_pin_table_bound() {
        let mut d = FlowDirector::new(
            2,
            RebalanceConfig {
                highwater_frac: 0.5,
                window: 1,
                max_pins: 2,
            },
        );
        let depths = [64usize, 0];
        let flows: Vec<u64> = colliding_flows(0, 2, 5).iter().map(flow_hash).collect();
        d.observe(&depths, 64);
        for (i, &f) in flows.iter().enumerate() {
            d.observe(&depths, 64);
            let (_, kind) = d.route(f, &depths);
            if i < 2 {
                assert_eq!(kind, RouteKind::NewPin, "flow {i}");
            } else {
                assert_eq!(
                    kind,
                    RouteKind::Natural,
                    "flow {i} must not pin past the bound"
                );
            }
        }
        assert_eq!(d.pinned_flows(), 2);
    }

    #[test]
    fn overload_serve_accounts_and_reports() {
        // All three overload features on, under a genuinely skewed mix.
        let cfg = serve_cfg(600)
            .with_shards(2)
            .with_queue_depth(32)
            .with_flow_queue_cap(4)
            .with_shed_policy(ShedPolicy::Adaptive)
            .with_rebalance(RebalanceConfig::default())
            .with_traffic(TraceConfig::small().with_pattern(netbench::TrafficPattern::Elephant));
        let report = run_serve(&cfg, None, &|| false);
        assert!(report.accounting_holds(), "{report:?}");
        let o = report.overload.as_ref().expect("overload report present");
        assert!(o.flows_seen >= 2, "{o:?}");
        assert!(!o.top_flows.is_empty());
        // Top talker is first and the ordering is by offered count.
        for w in o.top_flows.windows(2) {
            assert!(w[0].offered >= w[1].offered, "{o:?}");
        }
        // Flow-level shed accounting sums into the report total.
        let flow_shed: u64 = o.top_flows.iter().map(|f| f.shed).sum();
        assert!(flow_shed <= report.shed);
        let summary = report.summary();
        assert!(summary.contains("overload: shed_flow_cap="), "{summary}");
        assert!(summary.contains("flow shed: elephant="), "{summary}");
    }

    #[test]
    fn default_path_is_untouched_by_the_overload_layer() {
        // With every overload feature off, the report carries no
        // overload section and the summary is byte-identical to a
        // pre-overload run — the bitwise-stability contract.
        let cfg = serve_cfg(300);
        let report = run_serve(&cfg, None, &|| false);
        assert!(report.overload.is_none());
        let summary = report.summary();
        assert!(!summary.contains("overload:"), "{summary}");
        assert!(!summary.contains("flow shed:"), "{summary}");
        // And digests match a second identical run (determinism).
        let again = run_serve(&cfg, None, &|| false);
        for (a, b) in report.shards.iter().zip(&again.shards) {
            assert_eq!(a.digest, b.digest);
        }
    }

    #[test]
    fn overload_serve_feeds_the_new_telemetry() {
        let t = Telemetry::with_shards(2);
        let cfg = serve_cfg(400)
            .with_shards(2)
            .with_queue_depth(16)
            .with_flow_queue_cap(2)
            .with_traffic(TraceConfig::small().with_pattern(netbench::TrafficPattern::Elephant));
        let report = run_serve(&cfg, Some(&t), &|| false);
        let s = t.snapshot();
        let o = report.overload.as_ref().expect("overload report");
        assert_eq!(s.packets_shed_flow_cap, o.shed_flow_cap);
        assert_eq!(s.drr_deficit_topups, o.drr_deficit_topups);
        // Every processed packet was timed enqueue→verdict.
        assert_eq!(s.serve_latency_us_count, report.processed());
        assert!(s.serve_latency_us_count > 0);
    }

    #[test]
    fn digest_step_chain_is_pinned() {
        // The verdict digest is an FNV-1a fold seeded from FNV_OFFSET;
        // pin a short chain so the shared-hash refactor (and anything
        // after it) cannot silently change recorded shard digests.
        let mut d = 0u64;
        for (id, verdict) in [(1u32, 0u8), (2, 1), (3, 2)] {
            d = digest_step(d, id, verdict);
        }
        assert_eq!(d, 0x275A_EA1C_065C_FB14);
    }

    fn entry_of(pkt: Packet, class: TrafficClass) -> Entry {
        let flow = flow_hash(&pkt);
        Entry {
            pkt,
            flow,
            class,
            enqueued: None,
        }
    }

    #[test]
    fn control_preempts_the_newest_data_entry_in_fifo_mode() {
        let q = IngressQueue::new(2);
        let long = Duration::from_secs(300);
        let (a, b, c) = (tuple_pkt(1), tuple_pkt(2), tuple_pkt(3));
        assert!(matches!(q.push(a.clone(), long), PushOutcome::Enqueued(1)));
        assert!(matches!(q.push(b.clone(), long), PushOutcome::Enqueued(2)));
        // Full queue: a control push evicts the newest data entry
        // instead of waiting out the backpressure deadline.
        let before = Instant::now();
        let out = q.push_entry(
            entry_of(c.clone(), TrafficClass::Control),
            long,
            ShedPolicy::Fixed,
        );
        assert!(before.elapsed() < Duration::from_secs(1));
        assert_eq!(
            out,
            PushOutcome::Preempted {
                depth: 2,
                evicted_flow: flow_hash(&b),
            }
        );
        q.close();
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|p| p.id).collect();
        assert_eq!(drained, vec![a.id, c.id]);
    }

    #[test]
    fn control_preempts_the_most_backlogged_flow_in_drr_mode() {
        let q = IngressQueue::with_flow_cap(4, Some(3));
        let long = Duration::from_secs(300);
        let x = tuple_pkt(1); // 3 packets: the backlogged flow
        let y = tuple_pkt(2); // 1 packet
        for i in 0..3u32 {
            let mut p = x.clone();
            p.id = 100 + i;
            assert!(matches!(q.push(p, long), PushOutcome::Enqueued(_)));
        }
        assert!(matches!(q.push(y.clone(), long), PushOutcome::Enqueued(4)));
        let ctl = entry_of(tuple_pkt(3), TrafficClass::Control);
        let out = q.push_entry(ctl, long, ShedPolicy::Fixed);
        assert_eq!(
            out,
            PushOutcome::Preempted {
                depth: 4,
                evicted_flow: flow_hash(&x),
            }
        );
        // The victim was the *tail* of the backlogged flow: its first
        // two packets and the mouse survive, per-flow order intact.
        q.close();
        let drained: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|p| p.id).collect();
        assert_eq!(drained.len(), 4);
        assert!(drained.contains(&100) && drained.contains(&101));
        assert!(!drained.contains(&102), "{drained:?}");
        assert!(drained.contains(&y.id));
    }

    #[test]
    fn control_never_evicts_control() {
        let q = IngressQueue::new(1);
        let long = Duration::from_secs(300);
        let short = Duration::from_millis(5);
        assert!(matches!(
            q.push_entry(
                entry_of(tuple_pkt(1), TrafficClass::Control),
                long,
                ShedPolicy::Fixed
            ),
            PushOutcome::Enqueued(1)
        ));
        // All-control queue: a second control packet competes under
        // ordinary backpressure and sheds at the deadline.
        assert_eq!(
            q.push_entry(
                entry_of(tuple_pkt(2), TrafficClass::Control),
                short,
                ShedPolicy::Fixed
            ),
            PushOutcome::Shed
        );
        // Data never preempts anything.
        assert_eq!(q.push(tuple_pkt(3), short), PushOutcome::Shed);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn corrupted_drr_state_is_repaired_not_wedged() {
        // Regression for the invariant-panic-under-the-Mutex bug: a
        // stale round-robin slot or an empty per-flow queue used to
        // `expect()` while holding the ingress lock, poisoning it and
        // wedging every producer. Both must now be repaired in place.
        let q = IngressQueue::with_flow_cap(8, Some(4));
        q.corrupt_stale_active(0xDEAD);
        q.corrupt_empty_flow(0xBEEF);
        let p = tuple_pkt(1);
        assert!(matches!(
            q.push(p.clone(), Duration::from_secs(1)),
            PushOutcome::Enqueued(_)
        ));
        q.close();
        let got = q.pop().expect("queue must keep serving past corruption");
        assert_eq!(got.id, p.id);
        assert!(q.pop().is_none());
        assert_eq!(q.invariant_repairs(), 2);
    }

    #[test]
    fn histogram_p99_reports_conservative_upper_edges() {
        assert_eq!(histogram_p99_us(&[]), None);
        assert_eq!(histogram_p99_us(&[0, 0, 0]), None);
        // A single sample in bucket 3 ([8, 16)): rank 1, edge 15.
        assert_eq!(histogram_p99_us(&[0, 0, 0, 1]), Some(15));
        // 100 samples in bucket 0: p99 is the 99th, edge 1.
        assert_eq!(histogram_p99_us(&[100]), Some(1));
        // 98 fast + 2 slow: rank 99 lands in the slow bucket.
        let mut d = vec![0u64; 6];
        d[0] = 98;
        d[5] = 2;
        assert_eq!(histogram_p99_us(&d), Some(63));
        // 99 fast + 1 slow: rank 99 still lands in the fast bucket —
        // the slow sample is exactly the 1% tail the p99 excludes.
        d[0] = 99;
        d[5] = 1;
        assert_eq!(histogram_p99_us(&d), Some(1));
    }

    #[test]
    fn slo_trigger_needs_a_full_window_and_counts_activations() {
        let mut s = SloTrigger::new(100);
        // Too few samples: carried forward, still inactive.
        let mut cum = vec![0u64; 8];
        cum[7] = SLO_MIN_SAMPLES - 1;
        s.update(&cum);
        assert!(!s.active);
        assert_eq!(s.activations, 0);
        // One more slow verdict completes the window; bucket 7's upper
        // edge (255) blows the 100 µs budget.
        cum[7] = SLO_MIN_SAMPLES;
        s.update(&cum);
        assert!(s.active);
        assert_eq!(s.activations, 1);
        assert_eq!(s.last_p99_us, 255);
        // A fast window deactivates without a second activation.
        cum[0] += 64;
        s.update(&cum);
        assert!(!s.active);
        assert_eq!(s.activations, 1);
        assert_eq!(s.last_p99_us, 1);
    }

    #[test]
    fn classified_serve_spares_control_and_accounts_exactly() {
        // Queue depth above the run's total control packet count
        // (~350 of 1500 with 4 of 16 flows marked): a control shed
        // needs an all-control full queue, so the depth makes it
        // structurally impossible whatever the machine speed. The
        // elephant's flow-cap sheds supply the data-class overload.
        let cfg = serve_cfg(1500)
            .with_shards(2)
            .with_queue_depth(512)
            .with_flow_queue_cap(3)
            .with_control_flows(4)
            .with_traffic(TraceConfig::small().with_pattern(netbench::TrafficPattern::Elephant));
        let report = run_serve(&cfg, None, &|| false);
        assert!(report.accounting_holds(), "{report:?}");
        let c = report.classes.as_ref().expect("class report present");
        assert_eq!(c.control_shed, 0, "{c:?}");
        assert!(c.control_offered > 0, "{c:?}");
        assert!(c.data_shed > 0, "overload must bite the data class: {c:?}");
        // The class split is a partition of the totals.
        assert_eq!(c.control_offered + c.data_offered, report.generated);
        assert_eq!(c.control_shed + c.data_shed, report.shed);
        let summary = report.summary();
        assert!(summary.contains("class: control_offered="), "{summary}");
        assert!(!summary.contains("slo:"), "no SLO armed: {summary}");
    }

    #[test]
    fn slo_trigger_fires_in_process_and_reports() {
        // A 1 µs budget is unmeetable: the first full histogram window
        // must activate the trigger, and the summary gains an slo line.
        let t = Telemetry::with_shards(2);
        let cfg = serve_cfg(1500)
            .with_shards(2)
            .with_queue_depth(8)
            .with_slo_p99_us(1)
            .with_traffic(TraceConfig::small().with_pattern(netbench::TrafficPattern::Elephant));
        let report = run_serve(&cfg, Some(&t), &|| false);
        assert!(report.accounting_holds(), "{report:?}");
        let c = report.classes.as_ref().expect("class report present");
        assert_eq!(c.slo_budget_us, Some(1));
        assert!(c.slo_activations > 0, "{c:?}");
        assert!(c.slo_last_p99_us > 1, "{c:?}");
        // No classifier: everything is data, and control stays silent.
        assert_eq!(c.control_offered, 0);
        assert_eq!(c.control_shed, 0);
        let s = t.snapshot();
        assert_eq!(s.slo_trigger_activations, c.slo_activations);
        assert_eq!(s.packets_shed_slo, c.slo_shed);
        assert!(s.slo_last_p99_us > 1);
        let summary = report.summary();
        assert!(summary.contains("slo: budget_us=1"), "{summary}");
    }

    #[test]
    fn slo_without_caller_telemetry_still_triggers() {
        // The histogram lives in telemetry; when the caller passes
        // None the serve path must arm an internal sink rather than
        // silently disabling the trigger.
        let cfg = serve_cfg(1000)
            .with_shards(2)
            .with_queue_depth(8)
            .with_slo_p99_us(1);
        let report = run_serve(&cfg, None, &|| false);
        let c = report.classes.as_ref().expect("class report present");
        assert!(c.slo_activations > 0, "{c:?}");
    }

    #[test]
    fn default_path_carries_no_class_report() {
        let report = run_serve(&serve_cfg(200), None, &|| false);
        assert!(report.classes.is_none());
        let summary = report.summary();
        assert!(!summary.contains("class:"), "{summary}");
        assert!(!summary.contains("slo:"), "{summary}");
    }

    #[test]
    fn director_counts_rejected_pins_when_the_table_fills() {
        let mut d = FlowDirector::new(
            2,
            RebalanceConfig {
                highwater_frac: 0.5,
                window: 1,
                max_pins: 1,
            },
        );
        let depths = [64usize, 0];
        let flows: Vec<u64> = colliding_flows(0, 2, 4).iter().map(flow_hash).collect();
        d.observe(&depths, 64);
        for &f in &flows {
            d.observe(&depths, 64);
            let _ = d.route(f, &depths);
        }
        assert_eq!(d.pinned_flows(), 1);
        // Three new flows wanted pins after the table filled.
        assert_eq!(d.pin_table_full(), 3);
    }

    #[test]
    fn dynamic_plan_serves_online() {
        let mut cfg = serve_cfg(350);
        cfg.design = ClumsyConfig::baseline().with_dynamic(crate::config::DynamicConfig::paper());
        let report = run_serve(&cfg, None, &|| false);
        assert!(report.accounting_holds());
        // With calibrated (tiny) fault rates the controllers climb off
        // the safe level on at least one shard that saw enough packets.
        assert!(
            report.shards.iter().any(|s| s.final_cycle < 1.0),
            "{report:?}"
        );
    }
}
