//! `clumsy serve` — a supervised, sharded, never-wedge packet service.
//!
//! Everything before this module runs at *job* granularity: a trace is
//! generated up front, a processor replays it, a report comes back.
//! The paper's clumsy processors are not batch experiments, though —
//! they are packet processors serving live traffic at a sub-critical
//! operating point, eating faults as they come. This module is the
//! stream-granularity engine: an unbounded
//! [`TrafficSource`](netbench::TrafficSource) feeds `N` shards through
//! bounded ingress queues, each shard owning its own golden + measured
//! machine pair, dynamic controller and fault processes, selected by a
//! flow hash so one flow always lands on one shard.
//!
//! The robustness contract is **never wedge, only slow down or shed**:
//!
//! * A full queue applies backpressure to the pump; once the shed
//!   timeout passes the packet is counted as shed instead of queued —
//!   bounded memory, no unbounded allocation.
//! * A panicking shard is caught ([`std::panic::catch_unwind`], the
//!   same isolation the campaign driver uses), its in-flight packet
//!   accounted as abandoned, and the shard rebuilt with reseeded RNG
//!   streams while the other shards keep serving.
//! * A fatal packet error (runaway fuel, corrupted DMA) drops that
//!   packet — watchdog semantics are always on in serve.
//! * Fault storms trip the per-shard safe-mode clamp (when configured)
//!   and permanent faults degrade via way-disable, both *online*.
//!
//! Stopping (SIGTERM via the `stop` closure, or an exhausted packet
//! budget) drains every queue, joins every shard and returns a
//! [`ServeReport`] whose accounting identity —
//! `ingested == processed + dropped + abandoned` — is the proof that
//! no packet was lost untracked or processed twice.

use crate::campaign::{panic_message, RESEED_STRIDE};
use crate::config::{ClumsyConfig, FrequencyPlan};
use crate::controller::{Decision, DynamicController};
use crate::processor::ClumsyProcessor;
use crate::telemetry::Telemetry;
use cache_sim::{DetectionScheme, MemStats};
use netbench::{
    diff_observations, AppError, AppKind, Machine, Packet, PacketApp, Plane, Trace, TraceConfig,
    TrafficSource,
};
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Mixes the shard index into the base fault seed so sibling shards
/// draw independent streams (an arbitrary odd constant, distinct from
/// [`RESEED_STRIDE`] so shard 1 round 0 never collides with shard 0
/// round 1).
const SHARD_SEED_MIX: u64 = 0x517C_C1B7_2722_0A95;

/// Setup attempts per shard build before the shard gives up on
/// constructing a machine and degrades to shedding its queue. At sane
/// fault rates a control-plane fatal is already rare; eight reseeded
/// tries failing in a row means the operating point cannot boot at all.
const SETUP_RETRY_LIMIT: u64 = 8;

/// What happened to one pushed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued; carries the queue depth after the push (for the
    /// occupancy gauge).
    Enqueued(usize),
    /// The queue stayed full past the shed timeout; the packet was
    /// dropped at ingress.
    Shed,
    /// The queue is closed (drain in progress); the packet was
    /// discarded and the producer should stop.
    Closed,
}

/// A bounded ingress queue between the traffic pump and one shard:
/// blocking push with a shed timeout on the producer side, blocking
/// pop-until-closed on the consumer side, occupancy high-water mark
/// for the bounded-memory telemetry contract.
#[derive(Debug)]
pub struct IngressQueue {
    inner: Mutex<QueueState>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct QueueState {
    buf: VecDeque<Packet>,
    closed: bool,
    highwater: usize,
}

impl IngressQueue {
    /// An empty queue holding at most `capacity` packets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be at least 1");
        IngressQueue {
            inner: Mutex::new(QueueState {
                buf: VecDeque::with_capacity(capacity),
                closed: false,
                highwater: 0,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Pushes a packet, blocking while the queue is full. Backpressure
    /// turns into shedding after `shed_timeout`: the packet is dropped
    /// at ingress rather than allocated beyond the bound.
    pub fn push(&self, pkt: Packet, shed_timeout: Duration) -> PushOutcome {
        let deadline = Instant::now() + shed_timeout;
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while state.buf.len() >= self.capacity && !state.closed {
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return PushOutcome::Shed;
            };
            let (guard, _timeout) = self
                .not_full
                .wait_timeout(state, remaining)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        if state.closed {
            return PushOutcome::Closed;
        }
        state.buf.push_back(pkt);
        let depth = state.buf.len();
        state.highwater = state.highwater.max(depth);
        drop(state);
        self.not_empty.notify_one();
        PushOutcome::Enqueued(depth)
    }

    /// Pops the next packet, blocking while the queue is empty and
    /// open. Returns `None` only once the queue is closed *and*
    /// drained — the consumer's signal to finish.
    pub fn pop(&self) -> Option<Packet> {
        let mut state = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(pkt) = state.buf.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(pkt);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue: producers get [`PushOutcome::Closed`],
    /// consumers drain what is buffered and then see `None`.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Highest occupancy the queue ever reached.
    #[must_use]
    pub fn highwater(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .highwater
    }

    /// Current occupancy.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// FNV-1a over the 5-tuple: the flow hash behind shard selection.
fn flow_hash(pkt: &Packet) -> u64 {
    let mut bytes = [0u8; 13];
    bytes[..4].copy_from_slice(&pkt.src_ip.to_be_bytes());
    bytes[4..8].copy_from_slice(&pkt.dst_ip.to_be_bytes());
    bytes[8..10].copy_from_slice(&pkt.src_port.to_be_bytes());
    bytes[10..12].copy_from_slice(&pkt.dst_port.to_be_bytes());
    bytes[12] = pkt.proto;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The shard a packet belongs to: a flow hash over the 5-tuple, so one
/// flow's packets always arrive at one shard in order.
///
/// # Panics
///
/// Panics if `shards` is zero.
#[must_use]
pub fn flow_shard(pkt: &Packet, shards: usize) -> usize {
    assert!(shards > 0, "need at least one shard");
    usize::try_from(flow_hash(pkt) % shards as u64).expect("shard index fits usize")
}

/// Incremental FNV-1a fold of one packet outcome into a shard digest.
/// Deterministic across runs for the same packet sequence and seeds —
/// the panic-isolation tests compare these to prove sibling shards are
/// untouched by a restart.
fn digest_step(digest: u64, id: u32, verdict: u8) -> u64 {
    let mut h = if digest == 0 {
        0xCBF2_9CE4_8422_2325
    } else {
        digest
    };
    for b in id.to_le_bytes().into_iter().chain([verdict]) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Configuration for [`run_serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of shards (machine pairs). At least 1.
    pub shards: usize,
    /// Bounded ingress-queue depth per shard. At least 1.
    pub queue_depth: usize,
    /// Total packets to generate before draining; `0` = unbounded
    /// (serve until `stop` reports true).
    pub packet_budget: u64,
    /// The application every shard runs.
    pub app: AppKind,
    /// The design point every shard runs at (clock plan, detection,
    /// strikes, fault processes, seed).
    pub design: ClumsyConfig,
    /// Traffic shape (flows, prefixes, payloads, trace seed); the
    /// packet count inside is ignored — the stream is unbounded.
    pub traffic: TraceConfig,
    /// How long a full queue exerts backpressure before the packet is
    /// shed.
    pub shed_timeout: Duration,
    /// Publish per-shard `MemStats` deltas to telemetry every this
    /// many packets (and always at drain).
    pub stats_interval: u32,
    /// Test hook: the shard that owns this packet id panics when it
    /// pops it (once per serve run). Exercises the supervisor without
    /// planting bugs.
    pub panic_on_packet: Option<u32>,
}

impl ServeConfig {
    /// A serving setup for `app` at `design`, with 4 shards, depth-1024
    /// queues, paper traffic, a 100 ms shed timeout and no budget.
    #[must_use]
    pub fn new(app: AppKind, design: ClumsyConfig) -> Self {
        ServeConfig {
            shards: 4,
            queue_depth: 1024,
            packet_budget: 0,
            app,
            design,
            traffic: TraceConfig::paper(),
            shed_timeout: Duration::from_millis(100),
            stats_interval: 256,
            panic_on_packet: None,
        }
    }

    /// Returns the config with a different shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns the config with a different queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Returns the config with a packet budget (`0` = unbounded).
    #[must_use]
    pub fn with_packet_budget(mut self, budget: u64) -> Self {
        self.packet_budget = budget;
        self
    }

    /// Returns the config with a different shed timeout.
    #[must_use]
    pub fn with_shed_timeout(mut self, timeout: Duration) -> Self {
        self.shed_timeout = timeout;
        self
    }

    /// Returns the config with a different traffic shape.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TraceConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Returns the config with the panic-injection test hook armed.
    #[must_use]
    pub fn with_panic_on_packet(mut self, id: u32) -> Self {
        self.panic_on_packet = Some(id);
        self
    }
}

/// What one shard did over the whole serve run, across every
/// restart generation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Packets fully processed (clean or erroneous).
    pub processed: u64,
    /// Processed packets whose marked values diverged from golden.
    pub erroneous: u64,
    /// Packets dropped by the always-on watchdog (fatal error
    /// contained) or by a shard that could not build a machine.
    pub dropped: u64,
    /// In-flight packets lost to a caught panic.
    pub abandoned: u64,
    /// Panics caught by the supervisor.
    pub panics: u64,
    /// Restarts performed (one per caught panic).
    pub restarts: u64,
    /// Reseeded machine builds after a control-plane fatal.
    pub setup_retries: u64,
    /// Epochs that tripped the safe-mode clamp, summed over
    /// generations.
    pub safe_mode_entries: u64,
    /// Faults injected into this shard's measured machine (published
    /// generations only — a generation that dies mid-interval loses
    /// its unpublished tail).
    pub faults_injected: u64,
    /// Faults detected by this shard's detection scheme (same
    /// publication caveat).
    pub faults_detected: u64,
    /// L1 ways this shard's machine mapped out while serving.
    pub ways_disabled: u64,
    /// Order-sensitive FNV digest over `(packet id, outcome)`.
    pub digest: u64,
    /// High-water occupancy of this shard's ingress queue.
    pub queue_highwater: usize,
    /// Relative cycle time when the shard drained (dynamic plans may
    /// have moved it).
    pub final_cycle: f64,
    /// Message of the most recent caught panic, if any.
    pub last_panic: Option<String>,
}

impl ShardReport {
    /// Packets this shard consumed from its queue, however they ended.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.processed + self.dropped + self.abandoned
    }
}

/// The outcome of a serve run: pump-side counts plus one
/// [`ShardReport`] per shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Packets drawn from the traffic source.
    pub generated: u64,
    /// Packets that made it into a shard queue.
    pub ingested: u64,
    /// Packets shed at ingress (backpressure timeout).
    pub shed: u64,
    /// Per-shard accounting.
    pub shards: Vec<ShardReport>,
    /// Whether the run stopped via the `stop` closure (as opposed to
    /// exhausting its packet budget).
    pub interrupted: bool,
    /// Wall time of the whole run, pump start to last join.
    pub wall: Duration,
}

impl ServeReport {
    /// Packets fully processed across all shards.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.shards.iter().map(|s| s.processed).sum()
    }

    /// Packets dropped (watchdog) across all shards.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.shards.iter().map(|s| s.dropped).sum()
    }

    /// Packets abandoned to panics across all shards.
    #[must_use]
    pub fn abandoned(&self) -> u64 {
        self.shards.iter().map(|s| s.abandoned).sum()
    }

    /// Shard restarts across the run.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.shards.iter().map(|s| s.restarts).sum()
    }

    /// The drain-accounting identity: every generated packet is either
    /// shed at ingress or consumed by exactly one shard, and every
    /// consumed packet is processed, dropped or abandoned. False would
    /// mean a packet was lost untracked or processed twice.
    #[must_use]
    pub fn accounting_holds(&self) -> bool {
        let consumed: u64 = self.shards.iter().map(ShardReport::consumed).sum();
        self.ingested == consumed && self.generated == self.ingested + self.shed
    }

    /// Human-readable multi-line summary (the `clumsy serve` output).
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let secs = self.wall.as_secs_f64();
        let rate = if secs > 0.0 {
            self.processed() as f64 / secs
        } else {
            0.0
        };
        let mut out = format!(
            "served {} packets in {:.2}s ({rate:.0} pkt/s): \
             {} processed, {} shed, {} dropped, {} abandoned, {} restarts\n",
            self.generated,
            secs,
            self.processed(),
            self.shed,
            self.dropped(),
            self.abandoned(),
            self.restarts(),
        );
        let _ = writeln!(
            out,
            "{:>5} {:>10} {:>7} {:>6} {:>6} {:>8} {:>7} {:>8} {:>6} {:>18}",
            "shard",
            "processed",
            "errors",
            "drops",
            "aband",
            "restarts",
            "qdepth",
            "faults",
            "Cr",
            "digest"
        );
        for s in &self.shards {
            let _ = writeln!(
                out,
                "{:>5} {:>10} {:>7} {:>6} {:>6} {:>8} {:>7} {:>8} {:>6.2} {:>18}",
                s.shard,
                s.processed,
                s.erroneous,
                s.dropped,
                s.abandoned,
                s.restarts,
                s.queue_highwater,
                s.faults_injected,
                s.final_cycle,
                format!("{:016x}", s.digest),
            );
        }
        let _ = writeln!(
            out,
            "drained: accounting {} ({} ingested = {} consumed)",
            if self.accounting_holds() {
                "ok"
            } else {
                "BROKEN"
            },
            self.ingested,
            self.shards.iter().map(ShardReport::consumed).sum::<u64>(),
        );
        out
    }
}

/// How one packet ended inside a shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketVerdict {
    /// Marked values matched golden.
    Clean,
    /// Processed, but marked values diverged.
    Erroneous,
    /// Fatal error contained by the watchdog; packet dropped.
    Dropped,
}

/// One generation of a shard: lock-stepped golden + measured machine
/// pair at stream granularity. The golden machine never injects, so
/// both apps see the same packet sequence and the per-packet diff is
/// exactly the batch runner's differential execution, just unbounded.
struct ShardState {
    golden_machine: Machine,
    golden_app: Box<dyn PacketApp>,
    golden_fuel: u64,
    machine: Machine,
    app: Box<dyn PacketApp>,
    fuel: u64,
    controller: Option<DynamicController>,
    detection: DetectionScheme,
    faults_seen: u64,
    published: MemStats,
}

impl ShardState {
    /// Builds both machines and runs both control planes. A fatal in
    /// the measured control plane is an `Err` — the caller retries
    /// with a reseeded stream.
    fn build(cfg: &ServeConfig, context: &Trace, seed: u64) -> Result<ShardState, AppError> {
        // Golden side: mirrors `ClumsyProcessor::golden`.
        let mut golden_machine = Machine::strongarm(0);
        golden_machine.set_inject(false);
        let mut golden_app = cfg.app.instantiate(context);
        golden_machine.set_fuel(golden_app.setup_fuel());
        golden_app
            .setup(&mut golden_machine)
            .expect("golden setup cannot fail without faults");
        let golden_fuel = golden_app.fuel_per_packet();

        // Measured side: mirrors `ClumsyProcessor::run_with_golden`.
        let mut machine = Machine::with_config(cfg.design.mem.clone(), seed);
        machine.set_fault_planes(cfg.design.planes);
        let mut app = cfg.app.instantiate(context);
        let fuel = cfg.design.fuel_per_packet.unwrap_or(app.fuel_per_packet());
        let controller = match &cfg.design.frequency {
            FrequencyPlan::Static(cr) => {
                machine.set_cycle_free(*cr);
                None
            }
            FrequencyPlan::Dynamic(d) => {
                let ctl = DynamicController::new(d.clone());
                machine.set_cycle_free(ctl.cycle_time());
                Some(ctl)
            }
        };
        machine.set_plane(Plane::Control);
        machine.set_fuel(app.setup_fuel());
        app.setup(&mut machine)?;
        machine.writeback_all();
        machine.set_plane(Plane::Data);
        let detection = cfg.design.mem.detection;
        let faults_seen = ClumsyProcessor::fault_count(&machine, detection);
        let published = *machine.stats();
        Ok(ShardState {
            golden_machine,
            golden_app,
            golden_fuel,
            machine,
            app,
            fuel,
            controller,
            detection,
            faults_seen,
            published,
        })
    }

    /// Runs one packet through both machines and classifies it.
    fn process_packet(&mut self, pkt: &Packet) -> PacketVerdict {
        let view = self
            .golden_machine
            .dma_packet(pkt)
            .expect("packet fits DMA buffer");
        self.golden_machine.set_fuel(self.golden_fuel);
        let golden_obs = self
            .golden_app
            .process(&mut self.golden_machine, view)
            .expect("golden processing cannot fail without faults");

        let verdict = match self.machine.dma_packet(pkt) {
            // Never wedge: a fatal in serve always takes the watchdog
            // path (drop the packet, keep the machine alive).
            Err(_) => PacketVerdict::Dropped,
            Ok(view) => {
                self.machine.set_fuel(self.fuel);
                match self.app.process(&mut self.machine, view) {
                    Ok(obs) => {
                        if diff_observations(&golden_obs, &obs).has_error() {
                            PacketVerdict::Erroneous
                        } else {
                            PacketVerdict::Clean
                        }
                    }
                    Err(_) => PacketVerdict::Dropped,
                }
            }
        };

        // Dynamic adaptation on the observed fault counter, exactly as
        // in the batch runner — but online, per shard, forever.
        if let Some(ctl) = self.controller.as_mut() {
            let now = ClumsyProcessor::fault_count(&self.machine, self.detection);
            let delta = now - self.faults_seen;
            self.faults_seen = now;
            if let Some(Decision::Switch(cr)) = ctl.on_packet(delta) {
                self.machine.set_cycle(cr);
            }
        }
        verdict
    }

    /// Publishes the fault counters accumulated since the last publish
    /// into telemetry and the shard report.
    fn publish(&mut self, rep: &mut ShardReport, telemetry: Option<&Telemetry>, worker: usize) {
        let now = *self.machine.stats();
        let delta = now.since(&self.published);
        if let Some(t) = telemetry {
            t.record_stats(worker, &delta);
        }
        rep.faults_injected += delta.faults_injected;
        rep.faults_detected += delta.faults_detected;
        rep.ways_disabled += delta.ways_disabled;
        self.published = now;
    }
}

/// Seed for one shard build: base seed, shard mix, and a per-build
/// round multiplied by the campaign reseed stride — every rebuild
/// (setup retry or post-panic restart) draws a fresh stream.
fn shard_seed(base: u64, shard: usize, round: u64) -> u64 {
    base ^ (shard as u64).wrapping_mul(SHARD_SEED_MIX) ^ round.wrapping_mul(RESEED_STRIDE)
}

/// One shard generation: build a machine pair (reseeding past
/// control-plane fatals), then consume the queue until it is closed
/// and drained. Panics propagate to the supervisor.
#[allow(clippy::too_many_arguments)]
fn shard_loop(
    shard: usize,
    cfg: &ServeConfig,
    context: &Trace,
    queue: &IngressQueue,
    rep: &mut ShardReport,
    telemetry: Option<&Telemetry>,
    in_flight: &Cell<Option<u32>>,
    rounds: &Cell<u64>,
    panic_armed: &Cell<bool>,
) {
    let mut state = None;
    for _ in 0..=SETUP_RETRY_LIMIT {
        let round = rounds.replace(rounds.get() + 1);
        match ShardState::build(cfg, context, shard_seed(cfg.design.seed, shard, round)) {
            Ok(s) => {
                state = Some(s);
                break;
            }
            Err(_) => {
                rep.setup_retries += 1;
                if let Some(t) = telemetry {
                    t.shard_setup_retry();
                }
            }
        }
    }
    let Some(mut state) = state else {
        // Never wedge: a shard that cannot boot a machine at this
        // operating point degrades to shedding its queue so the pump
        // and the sibling shards keep moving.
        while queue.pop().is_some() {
            rep.dropped += 1;
            if let Some(t) = telemetry {
                t.packet_dropped(shard);
            }
        }
        return;
    };

    let mut since_publish = 0u32;
    while let Some(pkt) = queue.pop() {
        in_flight.set(Some(pkt.id));
        if cfg.panic_on_packet == Some(pkt.id) && panic_armed.replace(false) {
            panic!("injected serve test panic on packet {}", pkt.id);
        }
        let verdict = state.process_packet(&pkt);
        rep.digest = digest_step(rep.digest, pkt.id, verdict as u8);
        match verdict {
            PacketVerdict::Clean => rep.processed += 1,
            PacketVerdict::Erroneous => {
                rep.processed += 1;
                rep.erroneous += 1;
            }
            PacketVerdict::Dropped => rep.dropped += 1,
        }
        if let Some(t) = telemetry {
            match verdict {
                PacketVerdict::Clean => t.packet_processed(shard, false),
                PacketVerdict::Erroneous => t.packet_processed(shard, true),
                PacketVerdict::Dropped => t.packet_dropped(shard),
            }
        }
        in_flight.set(None);
        since_publish += 1;
        if since_publish >= cfg.stats_interval.max(1) {
            state.publish(rep, telemetry, shard);
            since_publish = 0;
        }
    }
    state.publish(rep, telemetry, shard);
    if let Some(ctl) = &state.controller {
        rep.safe_mode_entries += u64::from(ctl.safe_mode_entries());
    }
    rep.final_cycle = state.machine.cycle_time();
}

/// Supervises one shard for the lifetime of the run: every generation
/// runs under [`catch_unwind`]; a panic accounts the in-flight packet
/// as abandoned and restarts the loop with a reseeded stream on the
/// same queue. Only returns once the queue is closed and drained.
fn supervise_shard(
    shard: usize,
    cfg: &ServeConfig,
    context: &Trace,
    queue: &IngressQueue,
    telemetry: Option<&Telemetry>,
) -> ShardReport {
    let mut rep = ShardReport {
        shard,
        final_cycle: 1.0,
        ..ShardReport::default()
    };
    let in_flight = Cell::new(None::<u32>);
    let rounds = Cell::new(0u64);
    let panic_armed = Cell::new(cfg.panic_on_packet.is_some());
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            shard_loop(
                shard,
                cfg,
                context,
                queue,
                &mut rep,
                telemetry,
                &in_flight,
                &rounds,
                &panic_armed,
            );
        }));
        match result {
            Ok(()) => break,
            Err(payload) => {
                rep.panics += 1;
                rep.restarts += 1;
                rep.last_panic = Some(panic_message(payload));
                if in_flight.take().is_some() {
                    rep.abandoned += 1;
                    if let Some(t) = telemetry {
                        t.packet_abandoned();
                    }
                }
                if let Some(t) = telemetry {
                    t.shard_panic();
                    t.shard_restarted();
                }
                // Loop: the next generation rebuilds with the next
                // reseed round and keeps consuming the same queue.
            }
        }
    }
    rep.queue_highwater = queue.highwater();
    rep
}

/// Runs the sharded service: spawns one supervised shard thread per
/// shard, pumps the traffic source through the flow-hash queues on the
/// calling thread, and on `stop` (or an exhausted budget) closes every
/// queue, drains, joins and reports.
///
/// `stop` is polled between packets; SIGTERM handling is the caller's
/// concern (the CLI passes [`crate::interrupt::interrupted`]).
///
/// # Panics
///
/// Panics if `cfg.shards` or `cfg.queue_depth` is zero (shard panics
/// themselves are caught and handled by the supervisor).
pub fn run_serve(
    cfg: &ServeConfig,
    telemetry: Option<&Telemetry>,
    stop: &(dyn Fn() -> bool + Sync),
) -> ServeReport {
    assert!(cfg.shards > 0, "need at least one shard");
    let clock = Instant::now();
    let mut source = TrafficSource::new(&cfg.traffic);
    let context = source.context();
    let queues: Vec<IngressQueue> = (0..cfg.shards)
        .map(|_| IngressQueue::new(cfg.queue_depth))
        .collect();

    let mut generated = 0u64;
    let mut ingested = 0u64;
    let mut shed = 0u64;
    let mut interrupted = false;

    let shard_reports = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cfg.shards)
            .map(|i| {
                let queue = &queues[i];
                let context = &context;
                s.spawn(move || supervise_shard(i, cfg, context, queue, telemetry))
            })
            .collect();

        // The pump: draw from the unbounded source, shard by flow
        // hash, push with backpressure-then-shed. The stop poll sits
        // between packets so a signal is honored within one push.
        loop {
            if stop() {
                interrupted = true;
                break;
            }
            if cfg.packet_budget > 0 && generated >= cfg.packet_budget {
                break;
            }
            let pkt = source.next_packet();
            generated += 1;
            let shard = flow_shard(&pkt, cfg.shards);
            match queues[shard].push(pkt, cfg.shed_timeout) {
                PushOutcome::Enqueued(depth) => {
                    ingested += 1;
                    if let Some(t) = telemetry {
                        t.packet_ingested();
                        t.queue_depth_sample(depth as u64);
                    }
                }
                PushOutcome::Shed => {
                    shed += 1;
                    if let Some(t) = telemetry {
                        t.packet_shed();
                    }
                }
                PushOutcome::Closed => break,
            }
        }

        // Drain protocol: close every queue; shards finish what is
        // buffered, publish, and return their reports.
        for q in &queues {
            q.close();
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("shard supervisors never panic"))
            .collect::<Vec<ShardReport>>()
    });

    if let Some(t) = telemetry {
        for q in &queues {
            t.queue_depth_sample(q.highwater() as u64);
        }
    }
    ServeReport {
        generated,
        ingested,
        shed,
        shards: shard_reports,
        interrupted,
        wall: clock.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn small_traffic() -> TraceConfig {
        TraceConfig::small()
    }

    fn serve_cfg(budget: u64) -> ServeConfig {
        ServeConfig::new(AppKind::Crc, ClumsyConfig::baseline())
            .with_traffic(small_traffic())
            .with_packet_budget(budget)
            .with_shards(3)
            .with_queue_depth(64)
            // Tests must be deterministic: never shed on scheduler
            // jitter.
            .with_shed_timeout(Duration::from_secs(300))
    }

    #[test]
    fn queue_backpressure_sheds_after_timeout() {
        let q = IngressQueue::new(2);
        let pkt = || Packet {
            id: 0,
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
            proto: 6,
            ttl: 9,
            payload: vec![0; 8],
        };
        let short = Duration::from_millis(5);
        assert!(matches!(q.push(pkt(), short), PushOutcome::Enqueued(1)));
        assert!(matches!(q.push(pkt(), short), PushOutcome::Enqueued(2)));
        assert_eq!(q.push(pkt(), short), PushOutcome::Shed);
        assert_eq!(q.highwater(), 2);
        q.close();
        assert_eq!(q.push(pkt(), short), PushOutcome::Closed);
        // Close drains what is buffered before signalling the end.
        assert!(q.pop().is_some());
        assert!(q.pop().is_some());
        assert!(q.pop().is_none());
    }

    #[test]
    fn flow_shard_is_stable_and_in_range() {
        let mut src = TrafficSource::new(&small_traffic());
        for _ in 0..200 {
            let p = src.next_packet();
            let s = flow_shard(&p, 4);
            assert!(s < 4);
            assert_eq!(s, flow_shard(&p, 4), "same packet, same shard");
        }
    }

    #[test]
    fn bounded_serve_accounts_for_every_packet() {
        let report = run_serve(&serve_cfg(400), None, &|| false);
        assert_eq!(report.generated, 400);
        assert_eq!(report.shed, 0);
        assert!(report.accounting_holds(), "{report:?}");
        assert_eq!(report.processed(), 400);
        assert!(!report.interrupted);
        assert_eq!(report.restarts(), 0);
        let summary = report.summary();
        assert!(summary.contains("accounting ok"), "{summary}");
    }

    #[test]
    fn serve_is_deterministic() {
        let cfg = serve_cfg(300);
        let a = run_serve(&cfg, None, &|| false);
        let b = run_serve(&cfg, None, &|| false);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.digest, y.digest, "shard {} digest", x.shard);
            assert_eq!(x.processed, y.processed);
        }
    }

    #[test]
    fn stop_drains_and_accounting_still_holds() {
        let polls = AtomicU64::new(0);
        let report = run_serve(&serve_cfg(0), None, &|| {
            polls.fetch_add(1, Ordering::Relaxed) >= 500
        });
        assert!(report.interrupted);
        assert_eq!(report.generated, 500);
        assert!(report.accounting_holds(), "{report:?}");
    }

    #[test]
    fn injected_panic_restarts_only_the_victim_shard() {
        let cfg = serve_cfg(400);
        // Pick a mid-stream packet and find which shard owns it.
        let victim_pkt = TrafficSource::new(&cfg.traffic)
            .nth(200)
            .expect("stream is unbounded");
        let victim = flow_shard(&victim_pkt, cfg.shards);
        let clean = run_serve(&cfg, None, &|| false);
        let faulty = run_serve(
            &cfg.clone().with_panic_on_packet(victim_pkt.id),
            None,
            &|| false,
        );

        assert!(faulty.accounting_holds(), "{faulty:?}");
        assert_eq!(faulty.restarts(), 1);
        assert_eq!(faulty.abandoned(), 1);
        let v = &faulty.shards[victim];
        assert_eq!(v.panics, 1);
        assert_eq!(v.abandoned, 1);
        assert!(
            v.last_panic.as_deref().unwrap_or("").contains("injected"),
            "{:?}",
            v.last_panic
        );
        // The victim lost exactly the in-flight packet but consumed
        // the same queue contents.
        assert_eq!(v.consumed(), clean.shards[victim].consumed());
        // Sibling shards are bitwise untouched by the restart.
        for (f, c) in faulty.shards.iter().zip(&clean.shards) {
            if f.shard == victim {
                continue;
            }
            assert_eq!(f.digest, c.digest, "shard {} digest changed", f.shard);
            assert_eq!(f.processed, c.processed, "shard {}", f.shard);
            assert_eq!(f.restarts, 0, "shard {}", f.shard);
        }
    }

    #[test]
    fn serve_feeds_the_telemetry_counters() {
        let t = Telemetry::with_shards(4);
        let report = run_serve(&serve_cfg(250), Some(&t), &|| false);
        let s = t.snapshot();
        assert_eq!(s.packets_ingested, report.ingested);
        assert_eq!(
            s.packets_processed,
            report.processed(),
            "processed mismatch"
        );
        assert_eq!(s.packets_dropped, report.dropped());
        assert_eq!(s.packets_shed, 0);
        assert!(s.queue_highwater >= 1);
        let json = t.metrics_json();
        for key in [
            "packets_ingested",
            "packets_shed",
            "packets_processed",
            "packets_erroneous",
            "packets_dropped",
            "packets_abandoned",
            "shard_panics",
            "shard_restarts",
            "shard_setup_retries",
            "queue_highwater",
        ] {
            assert!(json.contains(key), "metrics JSON lost {key}");
        }
    }

    #[test]
    fn dynamic_plan_serves_online() {
        let mut cfg = serve_cfg(350);
        cfg.design = ClumsyConfig::baseline().with_dynamic(crate::config::DynamicConfig::paper());
        let report = run_serve(&cfg, None, &|| false);
        assert!(report.accounting_holds());
        // With calibrated (tiny) fault rates the controllers climb off
        // the safe level on at least one shard that saw enough packets.
        assert!(
            report.shards.iter().any(|s| s.final_cycle < 1.0),
            "{report:?}"
        );
    }
}
