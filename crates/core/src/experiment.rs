//! Grid drivers that regenerate the paper's tables and figures (§5).
//!
//! Every public function here corresponds to one experiment of the
//! paper's evaluation; the `clumsy-bench` binaries print their output.
//! Figures aggregate several *trials* (identical trace, different fault
//! seeds) because fault injection is stochastic.
//!
//! All drivers flatten their (application × configuration × trial)
//! grid into independent jobs on one [`Engine`] (see [`crate::engine`])
//! instead of nesting per-app threads around serial inner loops. Trial
//! seeds derive only from the grid point (`opts.seed + trial`), and the
//! engine's map is order-preserving, so results are bitwise identical
//! for every worker count — `CLUMSY_JOBS=1` literally runs the same
//! jobs inline in order.

use crate::config::{ClumsyConfig, DynamicConfig};
use crate::engine::{golden_for, Engine};
use crate::processor::{ClumsyProcessor, GoldenData};
use crate::report::RunReport;
use crate::PAPER_CYCLE_TIMES;
use cache_sim::{DetectionScheme, StrikePolicy};
use energy_model::EdfMetric;
use netbench::{AppKind, ErrorCategory, PlaneMask, Trace, TraceConfig};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Scaling knobs shared by all experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Trace generator settings (packet count dominates runtime).
    pub trace: TraceConfig,
    /// Independent fault-seed trials aggregated per configuration.
    pub trials: u32,
    /// Base fault seed.
    pub seed: u64,
}

impl ExperimentOptions {
    /// Default reproduction scale (≈2 000 packets, 3 trials).
    pub fn paper() -> Self {
        ExperimentOptions {
            trace: TraceConfig::paper(),
            trials: 3,
            seed: 0x5EED,
        }
    }

    /// Fast settings for unit tests.
    pub fn quick() -> Self {
        ExperimentOptions {
            trace: TraceConfig::small(),
            trials: 1,
            seed: 0x5EED,
        }
    }

    /// Reads `CLUMSY_PACKETS`, `CLUMSY_TRIALS` and `CLUMSY_SEED` from
    /// the environment to scale the default options (used by the repro
    /// binaries).
    pub fn from_env() -> Self {
        let mut opts = ExperimentOptions::paper();
        if let Ok(p) = std::env::var("CLUMSY_PACKETS") {
            if let Ok(p) = p.parse::<usize>() {
                opts.trace.packets = p.max(1);
            }
        }
        if let Ok(t) = std::env::var("CLUMSY_TRIALS") {
            if let Ok(t) = t.parse::<u32>() {
                opts.trials = t.max(1);
            }
        }
        if let Ok(s) = std::env::var("CLUMSY_SEED") {
            if let Ok(s) = s.parse::<u64>() {
                opts.seed = s;
            }
        }
        opts
    }

    /// `from_env`, except that when `CLUMSY_SEED` is not set the fault
    /// seed defaults to `seed` instead of the global default. Used by
    /// binaries whose figure is recorded at its own fixed seed.
    pub fn from_env_with_seed(seed: u64) -> Self {
        let mut opts = ExperimentOptions::from_env();
        if std::env::var("CLUMSY_SEED").is_err() {
            opts.seed = seed;
        }
        opts
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions::paper()
    }
}

/// Trial-aggregated reports for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// The per-trial reports.
    pub runs: Vec<RunReport>,
}

impl Aggregate {
    fn mean(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        self.runs.iter().map(&f).sum::<f64>() / self.runs.len() as f64
    }

    fn stddev(&self, f: impl Fn(&RunReport) -> f64) -> f64 {
        if self.runs.len() < 2 {
            return 0.0;
        }
        let mean = self.mean(&f);
        let var = self
            .runs
            .iter()
            .map(|r| {
                let d = f(r) - mean;
                d * d
            })
            .sum::<f64>()
            / (self.runs.len() - 1) as f64;
        var.sqrt()
    }

    /// Mean fallibility factor across trials.
    pub fn fallibility(&self) -> f64 {
        self.mean(RunReport::fallibility)
    }

    /// Mean cycles per packet.
    pub fn delay_per_packet(&self) -> f64 {
        self.mean(RunReport::delay_per_packet)
    }

    /// Mean energy per packet, in nanojoules.
    pub fn energy_per_packet(&self) -> f64 {
        self.mean(RunReport::energy_per_packet)
    }

    /// Mean EDF product.
    pub fn edf(&self, metric: &EdfMetric) -> f64 {
        self.mean(|r| r.edf(metric))
    }

    /// Sample standard deviation of the EDF product across trials
    /// (0 for a single trial).
    pub fn edf_stddev(&self, metric: &EdfMetric) -> f64 {
        self.stddev(|r| r.edf(metric))
    }

    /// Sample standard deviation of the fallibility factor.
    pub fn fallibility_stddev(&self) -> f64 {
        self.stddev(RunReport::fallibility)
    }

    /// Pooled per-category error probability across trials.
    pub fn error_probability(&self, cat: ErrorCategory) -> f64 {
        if cat == ErrorCategory::Initialization {
            let wrong: usize = self.runs.iter().map(|r| r.init_obs_wrong).sum();
            let total: usize = self.runs.iter().map(|r| r.init_obs_total).sum();
            return if total == 0 {
                0.0
            } else {
                wrong as f64 / total as f64
            };
        }
        let events: usize = self
            .runs
            .iter()
            .map(|r| r.error_counts.get(&cat).copied().unwrap_or(0))
            .sum();
        let packets: usize = self.runs.iter().map(|r| r.packets_completed).sum();
        if packets == 0 {
            1.0
        } else {
            events as f64 / packets as f64
        }
    }

    /// Per-outcome trial counts (see [`crate::TrialOutcome`]).
    pub fn outcome_counts(&self) -> crate::OutcomeCounts {
        crate::OutcomeCounts::from_runs(self.runs.iter())
    }

    /// Pooled fatal-error probability per attempted packet.
    pub fn fatal_probability(&self) -> f64 {
        let fatals = self.runs.iter().filter(|r| r.fatal.is_some()).count();
        let attempted: usize = self.runs.iter().map(|r| r.packets_attempted).sum();
        if attempted == 0 {
            0.0
        } else {
            fatals as f64 / attempted as f64
        }
    }
}

// ---------------------------------------------------------------------
// The flattened experiment grid
// ---------------------------------------------------------------------

/// One point of an experiment grid: an application under a
/// configuration. A point expands to `opts.trials` independent jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct GridPoint {
    /// The packet application to run.
    pub kind: AppKind,
    /// The processor configuration (its seed is overwritten per trial).
    pub cfg: ClumsyConfig,
}

impl GridPoint {
    /// Convenience constructor.
    pub fn new(kind: AppKind, cfg: ClumsyConfig) -> Self {
        GridPoint { kind, cfg }
    }
}

/// Runs every (point × trial) job of the grid on `engine`, returning
/// one [`Aggregate`] per point, in point order.
///
/// Golden passes are warmed once per distinct application (memoized via
/// [`golden_for`]); measured jobs then share the cached golden behind an
/// [`Arc`]. Trial `t` of any point always runs with seed
/// `opts.seed + t`, so the output is independent of the worker count.
pub fn run_grid_on(
    engine: &Engine,
    points: &[GridPoint],
    trace: &Trace,
    opts: &ExperimentOptions,
) -> Vec<Aggregate> {
    let mut kinds: Vec<AppKind> = points.iter().map(|p| p.kind).collect();
    kinds.sort();
    kinds.dedup();
    let goldens: HashMap<AppKind, Arc<GoldenData>> = kinds
        .iter()
        .copied()
        .zip(engine.map(&kinds, |k| golden_for(*k, trace)))
        .collect();

    let jobs: Vec<(usize, u32)> = (0..points.len())
        .flat_map(|pi| (0..opts.trials).map(move |t| (pi, t)))
        .collect();
    let runs = engine.map(&jobs, |&(pi, t)| {
        let point = &points[pi];
        let cfg = point.cfg.clone().with_seed(opts.seed + u64::from(t));
        ClumsyProcessor::new(cfg).run_with_golden(point.kind, trace, &goldens[&point.kind])
    });

    let mut it = runs.into_iter();
    points
        .iter()
        .map(|_| Aggregate {
            runs: (0..opts.trials)
                .map(|_| it.next().expect("job count"))
                .collect(),
        })
        .collect()
}

/// [`run_grid_on`] with a freshly generated trace and an environment-
/// sized engine.
pub fn run_grid(points: &[GridPoint], opts: &ExperimentOptions) -> Vec<Aggregate> {
    let trace = opts.trace.generate();
    run_grid_on(&Engine::from_env(), points, &trace, opts)
}

/// Runs `trials` measured passes of `kind` under `cfg`, sharing one
/// golden pass.
pub fn run_config(kind: AppKind, cfg: &ClumsyConfig, opts: &ExperimentOptions) -> Aggregate {
    let trace = opts.trace.generate();
    run_config_on_trace(kind, cfg, &trace, opts)
}

/// Like [`run_config`] but on an already generated trace.
pub fn run_config_on_trace(
    kind: AppKind,
    cfg: &ClumsyConfig,
    trace: &Trace,
    opts: &ExperimentOptions,
) -> Aggregate {
    run_grid_on(
        &Engine::from_env(),
        &[GridPoint::new(kind, cfg.clone())],
        trace,
        opts,
    )
    .pop()
    .expect("one point in, one aggregate out")
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

/// One row of the paper's Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Application name.
    pub app: &'static str,
    /// Instructions simulated (measured pass at `Cr = 1`).
    pub instructions: u64,
    /// Data-cache accesses.
    pub cache_accesses: u64,
    /// L1 data-cache miss rate.
    pub miss_rate: f64,
    /// Fallibility factor at `Cr = 0.5` (no detection).
    pub fallibility_half: f64,
    /// Fallibility factor at `Cr = 0.25` (no detection).
    pub fallibility_quarter: f64,
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:>5}  {:>10} inst  {:>10} acc  {:>6.2}% miss  {:.3} @0.5  {:.3} @0.25",
            self.app,
            self.instructions,
            self.cache_accesses,
            self.miss_rate * 100.0,
            self.fallibility_half,
            self.fallibility_quarter
        )
    }
}

/// Regenerates Table I: workload characteristics and fallibility factors
/// at `Cr` = 0.5 and 0.25.
pub fn table1(opts: &ExperimentOptions) -> Vec<Table1Row> {
    let trace = opts.trace.generate();
    table1_on(&Engine::from_env(), &trace, opts)
}

/// [`table1`] on an explicit engine and trace.
pub fn table1_on(engine: &Engine, trace: &Trace, opts: &ExperimentOptions) -> Vec<Table1Row> {
    let configs = [
        ClumsyConfig::baseline(),
        ClumsyConfig::baseline().with_static_cycle(0.5),
        ClumsyConfig::baseline().with_static_cycle(0.25),
    ];
    let points: Vec<GridPoint> = AppKind::all()
        .iter()
        .flat_map(|k| configs.iter().map(|c| GridPoint::new(*k, c.clone())))
        .collect();
    let aggs = run_grid_on(engine, &points, trace, opts);
    AppKind::all()
        .iter()
        .zip(aggs.chunks(configs.len()))
        .map(|(kind, chunk)| {
            let (base, half, quarter) = (&chunk[0], &chunk[1], &chunk[2]);
            let r0 = &base.runs[0];
            Table1Row {
                app: kind.name(),
                instructions: r0.instructions,
                cache_accesses: r0.stats.accesses(),
                miss_rate: r0.stats.miss_rate(),
                fallibility_half: half.fallibility(),
                fallibility_quarter: quarter.fallibility(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 6–7: per-category error probabilities by plane and clock
// ---------------------------------------------------------------------

/// One (plane, clock) cell of Figures 6–7.
#[derive(Debug, Clone, PartialEq)]
pub struct PlaneErrorCell {
    /// Plane label ("control", "data", "both").
    pub plane: &'static str,
    /// Relative cycle time.
    pub cr: f64,
    /// Per-category error probabilities.
    pub categories: Vec<(ErrorCategory, f64)>,
    /// Fatal error probability.
    pub fatal: f64,
}

/// Regenerates Figure 6 (route) or Figure 7 (nat): error probabilities
/// per marked structure, with faults injected in the control plane, the
/// data plane, or both, across the four static clocks.
pub fn plane_error_study(kind: AppKind, opts: &ExperimentOptions) -> Vec<PlaneErrorCell> {
    let trace = opts.trace.generate();
    plane_error_study_on(&Engine::from_env(), kind, &trace, opts)
}

/// [`plane_error_study`] on an explicit engine and trace.
pub fn plane_error_study_on(
    engine: &Engine,
    kind: AppKind,
    trace: &Trace,
    opts: &ExperimentOptions,
) -> Vec<PlaneErrorCell> {
    let planes = [
        ("control", PlaneMask::control_only()),
        ("data", PlaneMask::data_only()),
        ("both", PlaneMask::both()),
    ];
    let labels: Vec<(&'static str, f64)> = planes
        .iter()
        .flat_map(|(label, _)| PAPER_CYCLE_TIMES.iter().map(|cr| (*label, *cr)))
        .collect();
    let points: Vec<GridPoint> = planes
        .iter()
        .flat_map(|(_, mask)| {
            PAPER_CYCLE_TIMES.iter().map(|cr| {
                GridPoint::new(
                    kind,
                    ClumsyConfig::baseline()
                        .with_static_cycle(*cr)
                        .with_planes(*mask),
                )
            })
        })
        .collect();
    let aggs = run_grid_on(engine, &points, trace, opts);
    labels
        .into_iter()
        .zip(aggs)
        .map(|((label, cr), agg)| {
            let mut cats: Vec<ErrorCategory> = agg
                .runs
                .iter()
                .flat_map(|r| r.error_counts.keys().copied())
                .collect();
            cats.push(ErrorCategory::Initialization);
            cats.sort();
            cats.dedup();
            PlaneErrorCell {
                plane: label,
                cr,
                categories: cats
                    .into_iter()
                    .map(|c| (c, agg.error_probability(c)))
                    .collect(),
                fatal: agg.fatal_probability(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 8: fatal error probabilities (no detection)
// ---------------------------------------------------------------------

/// One application's fatal-error probabilities across the four clocks.
#[derive(Debug, Clone, PartialEq)]
pub struct FatalRow {
    /// Application name.
    pub app: &'static str,
    /// Fatal probability at `Cr` = 1.0, 0.75, 0.5, 0.25.
    pub per_cr: [f64; 4],
}

/// Regenerates Figure 8: fatal error probability per application and
/// clock, on the no-detection architecture.
pub fn fatal_study(opts: &ExperimentOptions) -> Vec<FatalRow> {
    let trace = opts.trace.generate();
    fatal_study_on(&Engine::from_env(), &trace, opts)
}

/// [`fatal_study`] on an explicit engine and trace.
pub fn fatal_study_on(engine: &Engine, trace: &Trace, opts: &ExperimentOptions) -> Vec<FatalRow> {
    let points: Vec<GridPoint> = AppKind::all()
        .iter()
        .flat_map(|k| {
            PAPER_CYCLE_TIMES
                .iter()
                .map(|cr| GridPoint::new(*k, ClumsyConfig::baseline().with_static_cycle(*cr)))
        })
        .collect();
    let aggs = run_grid_on(engine, &points, trace, opts);
    AppKind::all()
        .iter()
        .zip(aggs.chunks(PAPER_CYCLE_TIMES.len()))
        .map(|(kind, chunk)| {
            let mut per_cr = [0.0; 4];
            for (slot, agg) in per_cr.iter_mut().zip(chunk) {
                *slot = agg.fatal_probability();
            }
            FatalRow {
                app: kind.name(),
                per_cr,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 9–12: EDF² bars per app × recovery scheme × clock plan
// ---------------------------------------------------------------------

/// The recovery schemes of Figures 9–12, in x-axis order.
pub fn paper_schemes() -> [(&'static str, DetectionScheme, StrikePolicy); 4] {
    [
        (
            "no detection",
            DetectionScheme::None,
            StrikePolicy::one_strike(),
        ),
        (
            "one-strike",
            DetectionScheme::Parity,
            StrikePolicy::one_strike(),
        ),
        (
            "two-strike",
            DetectionScheme::Parity,
            StrikePolicy::two_strike(),
        ),
        (
            "three-strike",
            DetectionScheme::Parity,
            StrikePolicy::three_strike(),
        ),
    ]
}

/// One bar of Figures 9–12.
#[derive(Debug, Clone, PartialEq)]
pub struct EdfBar {
    /// Recovery-scheme label (x-axis group).
    pub scheme: &'static str,
    /// Frequency-plan label ("1.00" ... "0.25", "dynamic").
    pub freq: String,
    /// Energy–delay²–fallibility² relative to the `Cr = 1`/no-detection
    /// baseline.
    pub relative_edf: f64,
    /// Trial spread of the relative EDF (sample stddev / baseline).
    pub relative_edf_stddev: f64,
}

/// The 21 configurations of one Figures 9–12 panel, in output order:
/// the normalization baseline first, then every (scheme, plan) bar.
fn edf_plan() -> Vec<(&'static str, String, ClumsyConfig)> {
    let mut plan = vec![("baseline", "1.00".to_string(), ClumsyConfig::baseline())];
    for (label, detection, strikes) in paper_schemes() {
        let cfg0 = ClumsyConfig::baseline()
            .with_detection(detection)
            .with_strikes(strikes);
        for cr in PAPER_CYCLE_TIMES {
            plan.push((
                label,
                format!("{cr:.2}"),
                cfg0.clone().with_static_cycle(cr),
            ));
        }
        plan.push((
            label,
            "dynamic".to_string(),
            cfg0.clone().with_dynamic(DynamicConfig::paper()),
        ));
    }
    plan
}

/// Regenerates one panel of Figures 9–12: all recovery schemes × all
/// clock plans for `kind`, normalized to the no-detection `Cr = 1` bar.
pub fn edf_study(kind: AppKind, opts: &ExperimentOptions) -> Vec<EdfBar> {
    let trace = opts.trace.generate();
    edf_study_on_trace(kind, &trace, opts)
}

/// [`edf_study`] on a pre-generated trace (shared across apps for the
/// average panel).
pub fn edf_study_on_trace(kind: AppKind, trace: &Trace, opts: &ExperimentOptions) -> Vec<EdfBar> {
    edf_panels_on(&Engine::from_env(), &[kind], trace, opts)
        .pop()
        .expect("one app in, one panel out")
}

/// Regenerates several apps' Figures 9–12 panels in one flattened grid:
/// apps × 21 configurations × trials, all scheduled together so the
/// engine stays saturated across panel boundaries.
pub fn edf_panels_on(
    engine: &Engine,
    apps: &[AppKind],
    trace: &Trace,
    opts: &ExperimentOptions,
) -> Vec<Vec<EdfBar>> {
    let metric = EdfMetric::paper();
    let plan = edf_plan();
    let points: Vec<GridPoint> = apps
        .iter()
        .flat_map(|k| {
            plan.iter()
                .map(|(_, _, cfg)| GridPoint::new(*k, cfg.clone()))
        })
        .collect();
    let aggs = run_grid_on(engine, &points, trace, opts);
    aggs.chunks(plan.len())
        .map(|chunk| {
            let base_edf = chunk[0].edf(&metric);
            chunk[1..]
                .iter()
                .zip(plan[1..].iter())
                .map(|(agg, (scheme, freq, _))| EdfBar {
                    scheme,
                    freq: freq.clone(),
                    relative_edf: agg.edf(&metric) / base_edf,
                    relative_edf_stddev: agg.edf_stddev(&metric) / base_edf,
                })
                .collect()
        })
        .collect()
}

/// Averages per-app panels bar-by-bar (Figure 12(b)).
pub fn average_panels(per_app: &[Vec<EdfBar>]) -> Vec<EdfBar> {
    let n = per_app.len() as f64;
    per_app[0]
        .iter()
        .enumerate()
        .map(|(i, bar)| EdfBar {
            scheme: bar.scheme,
            freq: bar.freq.clone(),
            relative_edf: per_app.iter().map(|v| v[i].relative_edf).sum::<f64>() / n,
            // Propagate the per-app spreads as an RMS (apps independent).
            relative_edf_stddev: (per_app
                .iter()
                .map(|v| v[i].relative_edf_stddev.powi(2))
                .sum::<f64>())
            .sqrt()
                / n,
        })
        .collect()
}

/// Regenerates Figure 12(b): the across-application average of the
/// relative EDF² bars.
pub fn edf_average(opts: &ExperimentOptions) -> Vec<EdfBar> {
    edf_average_on(&Engine::from_env(), opts)
}

/// [`edf_average`] on an explicit engine (the perf baseline uses this
/// to pin the worker count).
pub fn edf_average_on(engine: &Engine, opts: &ExperimentOptions) -> Vec<EdfBar> {
    let trace = opts.trace.generate();
    let per_app = edf_panels_on(engine, &AppKind::all(), &trace, opts);
    average_panels(&per_app)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ExperimentOptions {
        ExperimentOptions::quick()
    }

    #[test]
    fn table1_has_all_apps_in_order() {
        let rows = table1(&quick());
        let names: Vec<&str> = rows.iter().map(|r| r.app).collect();
        assert_eq!(names, ["crc", "tl", "route", "drr", "nat", "md5", "url"]);
        for r in &rows {
            assert!(r.instructions > 0);
            assert!(r.cache_accesses > 0);
            assert!(r.miss_rate > 0.0 && r.miss_rate < 1.0, "{}", r.app);
            assert!(r.fallibility_half >= 1.0);
            assert!(r.fallibility_quarter >= r.fallibility_half - 0.05);
        }
    }

    #[test]
    fn md5_and_url_are_the_heavy_apps() {
        // Table I: url and md5 simulate the most instructions.
        let rows = table1(&quick());
        let inst = |name: &str| {
            rows.iter()
                .find(|r| r.app == name)
                .map(|r| r.instructions)
                .unwrap()
        };
        assert!(inst("md5") > inst("tl"));
        assert!(inst("url") > inst("tl"));
        assert!(inst("crc") > inst("tl"));
    }

    #[test]
    fn plane_study_has_three_planes_by_four_clocks() {
        let cells = plane_error_study(AppKind::Route, &quick());
        assert_eq!(cells.len(), 12);
        assert!(cells.iter().all(|c| (0.0..=1.0).contains(&c.fatal)));
    }

    #[test]
    fn fatal_study_is_zero_at_full_speed() {
        let rows = fatal_study(&quick());
        for r in &rows {
            assert_eq!(r.per_cr[0], 0.0, "{} must not die at Cr = 1", r.app);
        }
    }

    #[test]
    fn edf_bars_have_expected_shape() {
        let bars = edf_study(AppKind::Tl, &quick());
        // 4 schemes x 5 plans.
        assert_eq!(bars.len(), 20);
        // The baseline bar is exactly 1.
        let base = bars
            .iter()
            .find(|b| b.scheme == "no detection" && b.freq == "1.00")
            .unwrap();
        assert!((base.relative_edf - 1.0).abs() < 1e-9);
        assert!(bars.iter().all(|b| b.relative_edf > 0.0));
    }

    #[test]
    fn stddev_is_zero_for_single_trial_and_positive_for_spread() {
        let opts = quick();
        let trace = opts.trace.generate();
        let one = run_config_on_trace(AppKind::Tl, &ClumsyConfig::baseline(), &trace, &opts);
        assert_eq!(one.edf_stddev(&EdfMetric::paper()), 0.0);

        let three = ExperimentOptions {
            trials: 3,
            ..quick()
        };
        let cfg = ClumsyConfig::baseline()
            .with_fault_model(fault_model::FaultProbabilityModel::new(1e-5, 0.2))
            .with_static_cycle(0.25);
        let agg = run_config_on_trace(AppKind::Crc, &cfg, &trace, &three);
        assert!(agg.edf_stddev(&EdfMetric::paper()) > 0.0);
        assert!(agg.fallibility_stddev() >= 0.0);
    }

    #[test]
    fn options_from_env_fall_back_to_paper() {
        // (Env vars are not set in the test environment.)
        let o = ExperimentOptions::from_env();
        assert!(o.trace.packets > 0);
        assert!(o.trials > 0);
    }

    /// The acceptance guarantee of the engine rewrite: for a fixed seed
    /// the parallel grid produces bitwise-identical `RunReport`s to the
    /// serial one (`Engine::with_jobs(1)` runs jobs inline, in order).
    #[test]
    fn parallel_grid_is_bitwise_identical_to_serial() {
        let opts = ExperimentOptions {
            trials: 2,
            ..quick()
        };
        let trace = opts.trace.generate();
        let points: Vec<GridPoint> = [AppKind::Crc, AppKind::Tl, AppKind::Route]
            .iter()
            .flat_map(|k| {
                [
                    ClumsyConfig::baseline(),
                    ClumsyConfig::baseline().with_static_cycle(0.25),
                    ClumsyConfig::baseline()
                        .with_detection(DetectionScheme::Parity)
                        .with_strikes(StrikePolicy::two_strike())
                        .with_static_cycle(0.5),
                ]
                .into_iter()
                .map(|c| GridPoint::new(*k, c))
            })
            .collect();
        let serial = run_grid_on(&Engine::with_jobs(1), &points, &trace, &opts);
        for jobs in [2, 4, 16] {
            let parallel = run_grid_on(&Engine::with_jobs(jobs), &points, &trace, &opts);
            assert_eq!(serial, parallel, "grid diverged at jobs={jobs}");
        }
    }

    #[test]
    fn flattened_panels_match_single_app_study() {
        let opts = quick();
        let trace = opts.trace.generate();
        let panels = edf_panels_on(
            &Engine::with_jobs(4),
            &[AppKind::Tl, AppKind::Crc],
            &trace,
            &opts,
        );
        assert_eq!(panels.len(), 2);
        assert_eq!(panels[0], edf_study_on_trace(AppKind::Tl, &trace, &opts));
        assert_eq!(panels[1], edf_study_on_trace(AppKind::Crc, &trace, &opts));
    }

    #[test]
    fn average_panels_averages_bar_by_bar() {
        let mk = |v: f64| EdfBar {
            scheme: "s",
            freq: "1.00".to_string(),
            relative_edf: v,
            relative_edf_stddev: 0.1,
        };
        let avg = average_panels(&[vec![mk(1.0)], vec![mk(3.0)]]);
        assert_eq!(avg.len(), 1);
        assert!((avg[0].relative_edf - 2.0).abs() < 1e-12);
        // RMS of (0.1, 0.1) over n = 2: sqrt(0.02)/2.
        assert!((avg[0].relative_edf_stddev - 0.02f64.sqrt() / 2.0).abs() < 1e-12);
    }
}
