//! Hand-rolled, zero-dependency campaign telemetry.
//!
//! A million-trial campaign used to be a black box: nothing printed
//! until the CSV landed, and abandoned or retried trials were
//! invisible. This module is the instrumentation layer behind
//! `--progress` and `--metrics`: per-worker atomic counters (jobs
//! completed / retried / abandoned, faults injected by target, strike
//! retries, journal records and fsync latency), monotonic-time span
//! timing into a fixed-bucket latency histogram, and a periodic
//! progress reporter on stderr with rate, ETA and outcome tallies.
//!
//! **Strictly passive.** Telemetry draws no randomness and never feeds
//! back into the simulation: with it off (every hook takes an
//! `Option`), the default path executes bitwise identically — the five
//! pinned digests in `cli/tests/bitwise_regression.rs` and every
//! recorded `results/*.csv` are unchanged. With it on, the only cost is
//! relaxed atomic increments and one monotonic-clock read per job.
//!
//! Counters are sharded: each worker updates its own cache-line-sized
//! [`Counters`] block (selected by worker index), so hot campaigns do
//! not serialize on a shared counter word. [`Telemetry::snapshot`] sums
//! the shards into a consistent-enough view for reporting — counters
//! are monotone, so a snapshot is always a valid past-or-present state.
//!
//! The metrics JSON emitted by [`Telemetry::metrics_json`] is
//! schema-stable (`"schema":"clumsy-metrics-v1"`): integer-only leaf
//! fields with globally unique names, written by callers via
//! [`crate::journal::atomic_write`]. [`parse_metrics`] is the tolerant
//! reader used by tests and CI — it never panics on truncated or
//! garbage input.

use crate::report::RunReport;
use crate::taxonomy::TrialOutcome;
use cache_sim::MemStats;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Schema tag of the metrics JSON; bumped on any incompatible change.
pub const METRICS_SCHEMA: &str = "clumsy-metrics-v1";

/// Number of log2-microsecond latency buckets: bucket `i` counts
/// durations with `floor(log2(us)) == i`, so the histogram spans 1 µs
/// to ~2.3 hours with the last bucket absorbing the tail.
const HIST_BUCKETS: usize = 24;

/// One shard of per-worker counters. Sized past a cache line so
/// adjacent shards do not false-share under concurrent updates.
#[derive(Debug, Default)]
struct Counters {
    jobs_completed: AtomicU64,
    jobs_retried: AtomicU64,
    jobs_abandoned: AtomicU64,
    jobs_failed: AtomicU64,
    faults_injected: AtomicU64,
    tag_faults_injected: AtomicU64,
    parity_faults_injected: AtomicU64,
    l2_faults_injected: AtomicU64,
    faults_detected: AtomicU64,
    faults_corrected: AtomicU64,
    strike_retries: AtomicU64,
    recovery_failures: AtomicU64,
    fast_forward_accesses: AtomicU64,
    slow_path_accesses: AtomicU64,
    ways_disabled: AtomicU64,
    salvage_writebacks: AtomicU64,
    bypass_accesses: AtomicU64,
    outcomes: [AtomicU64; 6],
    journal_records: AtomicU64,
    journal_fsyncs: AtomicU64,
    journal_fsync_us_total: AtomicU64,
    engine_jobs: AtomicU64,
    engine_us_total: AtomicU64,
    packets_ingested: AtomicU64,
    packets_shed: AtomicU64,
    packets_shed_flow_cap: AtomicU64,
    packets_diverted: AtomicU64,
    flows_diverted: AtomicU64,
    drr_deficit_topups: AtomicU64,
    packets_processed: AtomicU64,
    packets_erroneous: AtomicU64,
    packets_dropped: AtomicU64,
    packets_abandoned: AtomicU64,
    shard_panics: AtomicU64,
    shard_restarts: AtomicU64,
    shard_setup_retries: AtomicU64,
    packets_shed_control: AtomicU64,
    packets_shed_data: AtomicU64,
    packets_preempt_shed: AtomicU64,
    packets_shed_slo: AtomicU64,
    slo_trigger_activations: AtomicU64,
    rebalance_pin_table_full: AtomicU64,
    queue_invariant_repairs: AtomicU64,
}

/// Index of `outcome` in the snapshot tally (least to most severe,
/// matching [`TrialOutcome::all`]).
fn outcome_index(outcome: TrialOutcome) -> usize {
    match outcome {
        TrialOutcome::Masked => 0,
        TrialOutcome::Corrected => 1,
        TrialOutcome::DetectedRecovered => 2,
        TrialOutcome::DetectedFatal => 3,
        TrialOutcome::SilentDataCorruption => 4,
        TrialOutcome::RecoveryFailed => 5,
    }
}

/// A monotonic span timer: [`Stopwatch::start`] now, read
/// [`Stopwatch::elapsed`] later. Thin, but it keeps every telemetry
/// duration on the same monotonic clock.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts the span.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Monotonic time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Campaign-wide instrumentation: sharded counters, latency
/// histograms, abandoned-thread gauges and the run clock. Shared
/// across workers as `Arc<Telemetry>`; every update is a relaxed
/// atomic.
#[derive(Debug)]
pub struct Telemetry {
    shards: Box<[Counters]>,
    job_us_buckets: [AtomicU64; HIST_BUCKETS],
    job_us_count: AtomicU64,
    job_us_total: AtomicU64,
    job_us_max: AtomicU64,
    serve_latency_us_buckets: [AtomicU64; HIST_BUCKETS],
    serve_latency_us_count: AtomicU64,
    serve_latency_us_total: AtomicU64,
    serve_latency_us_max: AtomicU64,
    journal_fsync_us_max: AtomicU64,
    abandoned_live: AtomicU64,
    abandoned_peak: AtomicU64,
    abandoned_cap_hits: AtomicU64,
    jobs_total: AtomicU64,
    jobs_replayed: AtomicU64,
    queue_highwater: AtomicU64,
    slo_last_p99_us: AtomicU64,
    started: Instant,
}

/// Histogram bucket for `us` microseconds: `floor(log2(us))`, clamped.
fn bucket_of(us: u64) -> usize {
    let idx = 63 - u64::leading_zeros(us.max(1)) as usize;
    idx.min(HIST_BUCKETS - 1)
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A telemetry block with one counter shard per available core
    /// (clamped to 1..=64).
    #[must_use]
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .clamp(1, 64);
        Telemetry::with_shards(n)
    }

    /// A telemetry block with exactly `shards` counter shards
    /// (clamped to at least 1). Worker `w` updates shard
    /// `w % shards`.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        Telemetry {
            shards: (0..shards.max(1)).map(|_| Counters::default()).collect(),
            job_us_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            job_us_count: AtomicU64::new(0),
            job_us_total: AtomicU64::new(0),
            job_us_max: AtomicU64::new(0),
            serve_latency_us_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            serve_latency_us_count: AtomicU64::new(0),
            serve_latency_us_total: AtomicU64::new(0),
            serve_latency_us_max: AtomicU64::new(0),
            journal_fsync_us_max: AtomicU64::new(0),
            abandoned_live: AtomicU64::new(0),
            abandoned_peak: AtomicU64::new(0),
            abandoned_cap_hits: AtomicU64::new(0),
            jobs_total: AtomicU64::new(0),
            jobs_replayed: AtomicU64::new(0),
            queue_highwater: AtomicU64::new(0),
            slo_last_p99_us: AtomicU64::new(0),
            started: Instant::now(),
        }
    }

    fn shard(&self, worker: usize) -> &Counters {
        &self.shards[worker % self.shards.len()]
    }

    /// Time since this telemetry block was created (the run clock
    /// behind rate and ETA).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Declares `n` more jobs as part of the run (additive, so drivers
    /// running several grids against one block accumulate).
    pub fn add_total_jobs(&self, n: u64) {
        self.jobs_total.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts `n` jobs pre-filled from a journal instead of being run.
    pub fn add_replayed_jobs(&self, n: u64) {
        self.jobs_replayed.fetch_add(n, Ordering::Relaxed);
    }

    /// One freshly completed job on `worker`, with its wall time.
    pub fn job_completed(&self, worker: usize, wall: Duration) {
        self.shard(worker)
            .jobs_completed
            .fetch_add(1, Ordering::Relaxed);
        let us = duration_us(wall);
        self.job_us_buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.job_us_count.fetch_add(1, Ordering::Relaxed);
        self.job_us_total.fetch_add(us, Ordering::Relaxed);
        self.job_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// A failed or expired attempt was queued for a reseeded retry.
    pub fn job_retried(&self) {
        self.shard(0).jobs_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// A job whose every attempt was exhausted.
    pub fn job_failed(&self) {
        self.shard(0).jobs_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// One attempt abandoned on deadline; the stranded thread is now
    /// live-abandoned until it finishes on its own. Returns the new
    /// live count.
    pub fn abandoned_attempt(&self) -> u64 {
        self.shard(0).jobs_abandoned.fetch_add(1, Ordering::Relaxed);
        let live = self.abandoned_live.fetch_add(1, Ordering::Relaxed) + 1;
        self.abandoned_peak.fetch_max(live, Ordering::Relaxed);
        live
    }

    /// A previously abandoned thread ran to completion and unwound.
    pub fn abandoned_finished(&self) {
        // Saturating: a decrement can never outnumber the increments,
        // but stay safe against misuse rather than wrapping to u64::MAX.
        let _ = self
            .abandoned_live
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Live abandoned (deadline-overrun, still running) threads.
    #[must_use]
    pub fn abandoned_live(&self) -> u64 {
        self.abandoned_live.load(Ordering::Relaxed)
    }

    /// The abandoned-attempt concurrency cap paused job launches.
    pub fn abandoned_cap_hit(&self) {
        self.abandoned_cap_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one finished run's fault counters and outcome class into
    /// the tallies. Called on the coordinator for fresh completions.
    pub fn record_report(&self, worker: usize, report: &RunReport) {
        self.record_stats(worker, &report.stats);
        self.shard(worker).outcomes[outcome_index(report.outcome())]
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a block of memory-system counters into the tallies —
    /// whole-run stats for batch jobs, or an interval delta
    /// ([`MemStats::since`]) for the serve path's periodic publishes.
    pub fn record_stats(&self, worker: usize, st: &MemStats) {
        let c = self.shard(worker);
        c.faults_injected
            .fetch_add(st.faults_injected, Ordering::Relaxed);
        c.tag_faults_injected
            .fetch_add(st.tag_faults_injected, Ordering::Relaxed);
        c.parity_faults_injected
            .fetch_add(st.parity_faults_injected, Ordering::Relaxed);
        c.l2_faults_injected
            .fetch_add(st.l2_faults_injected, Ordering::Relaxed);
        c.faults_detected
            .fetch_add(st.faults_detected, Ordering::Relaxed);
        c.faults_corrected
            .fetch_add(st.faults_corrected, Ordering::Relaxed);
        c.strike_retries
            .fetch_add(st.strike_retries, Ordering::Relaxed);
        c.recovery_failures
            .fetch_add(st.recovery_failures, Ordering::Relaxed);
        c.fast_forward_accesses
            .fetch_add(st.fast_forward_accesses, Ordering::Relaxed);
        c.slow_path_accesses
            .fetch_add(st.slow_path_accesses, Ordering::Relaxed);
        c.ways_disabled
            .fetch_add(st.ways_disabled, Ordering::Relaxed);
        c.salvage_writebacks
            .fetch_add(st.salvage_writebacks, Ordering::Relaxed);
        c.bypass_accesses
            .fetch_add(st.bypass_accesses, Ordering::Relaxed);
    }

    /// One packet accepted into a shard's ingress queue.
    pub fn packet_ingested(&self) {
        self.shard(0)
            .packets_ingested
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One packet shed at ingress under backpressure.
    pub fn packet_shed(&self) {
        self.shard(0).packets_shed.fetch_add(1, Ordering::Relaxed);
    }

    /// One packet shed because its flow was at the per-flow queue cap
    /// (a subset of [`Telemetry::packet_shed`], which is also called).
    pub fn packet_shed_flow_cap(&self) {
        self.shard(0)
            .packets_shed_flow_cap
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One packet routed to a pinned (non-natural) shard by the
    /// rebalancer.
    pub fn packet_diverted(&self) {
        self.shard(0)
            .packets_diverted
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One flow pinned away from its hot natural shard.
    pub fn flow_diverted(&self) {
        self.shard(0).flows_diverted.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds `n` DRR deficit top-ups into the tallies (the serve path
    /// publishes the per-queue totals once, at drain).
    pub fn add_drr_topups(&self, n: u64) {
        self.shard(0)
            .drr_deficit_topups
            .fetch_add(n, Ordering::Relaxed);
    }

    /// One packet's enqueue→verdict latency on the serve path.
    pub fn serve_latency(&self, wall: Duration) {
        let us = duration_us(wall);
        self.serve_latency_us_buckets[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.serve_latency_us_count.fetch_add(1, Ordering::Relaxed);
        self.serve_latency_us_total.fetch_add(us, Ordering::Relaxed);
        self.serve_latency_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// One packet fully processed by shard `worker`; `erroneous` marks
    /// a measured run whose marked values diverged from golden.
    pub fn packet_processed(&self, worker: usize, erroneous: bool) {
        let c = self.shard(worker);
        c.packets_processed.fetch_add(1, Ordering::Relaxed);
        if erroneous {
            c.packets_erroneous.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// One packet dropped by shard `worker`'s watchdog (fatal error
    /// contained, machine kept alive).
    pub fn packet_dropped(&self, worker: usize) {
        self.shard(worker)
            .packets_dropped
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One in-flight packet lost to a caught shard panic.
    pub fn packet_abandoned(&self) {
        self.shard(0)
            .packets_abandoned
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One shard panic caught by its supervisor.
    pub fn shard_panic(&self) {
        self.shard(0).shard_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// One shard restarted with reseeded RNG streams after a panic.
    pub fn shard_restarted(&self) {
        self.shard(0).shard_restarts.fetch_add(1, Ordering::Relaxed);
    }

    /// One reseeded machine rebuild after a control-plane fatal.
    pub fn shard_setup_retry(&self) {
        self.shard(0)
            .shard_setup_retries
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Observes an ingress-queue occupancy; the snapshot keeps the
    /// high-water mark (the bounded-memory evidence in the soak).
    pub fn queue_depth_sample(&self, depth: u64) {
        self.queue_highwater.fetch_max(depth, Ordering::Relaxed);
    }

    /// One control-class packet shed at ingress (a subset of
    /// [`Telemetry::packet_shed`], which is also called). Non-zero only
    /// when the class-aware path misbehaves — the smoke jobs assert it
    /// stays at zero.
    pub fn packet_shed_control(&self) {
        self.shard(0)
            .packets_shed_control
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One data-class packet shed at ingress (a subset of
    /// [`Telemetry::packet_shed`], which is also called).
    pub fn packet_shed_data(&self) {
        self.shard(0)
            .packets_shed_data
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One data-class packet evicted from a full queue to admit a
    /// control-class packet (a subset of
    /// [`Telemetry::packet_shed_data`]).
    pub fn packet_preempt_shed(&self) {
        self.shard(0)
            .packets_preempt_shed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// One data-class packet shed under the tightened deadline of an
    /// active latency-SLO trigger (a subset of
    /// [`Telemetry::packet_shed_data`]).
    pub fn packet_shed_slo(&self) {
        self.shard(0)
            .packets_shed_slo
            .fetch_add(1, Ordering::Relaxed);
    }

    /// The latency-SLO trigger transitioned inactive→active once.
    pub fn slo_activation(&self) {
        self.shard(0)
            .slo_trigger_activations
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the most recent windowed p99 estimate (microseconds,
    /// conservative bucket-upper-edge) seen by the SLO trigger. A
    /// gauge: last write wins.
    pub fn set_slo_last_p99_us(&self, us: u64) {
        self.slo_last_p99_us.store(us, Ordering::Relaxed);
    }

    /// Folds `n` rejected rebalance pins (pin table full) into the
    /// tallies; the serve path publishes the total once, at drain.
    pub fn add_pin_table_full(&self, n: u64) {
        self.shard(0)
            .rebalance_pin_table_full
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Folds `n` repaired ingress-queue invariant violations into the
    /// tallies (stale DRR active slots, empty flow queues). Anything
    /// non-zero is a bug being survived rather than wedged on.
    pub fn add_queue_invariant_repairs(&self, n: u64) {
        self.shard(0)
            .queue_invariant_repairs
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Raw cumulative per-bucket loads of the serve enqueue→verdict
    /// histogram, index `i` counting spans with `floor(log2(us)) == i`
    /// (last bucket absorbs the tail). The SLO trigger diffs successive
    /// calls to form sliding windows.
    #[must_use]
    pub fn serve_latency_bucket_counts(&self) -> Vec<u64> {
        self.serve_latency_us_buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// One engine-pool job finished on `worker` after `wall`.
    pub fn engine_job(&self, worker: usize, wall: Duration) {
        let c = self.shard(worker);
        c.engine_jobs.fetch_add(1, Ordering::Relaxed);
        c.engine_us_total
            .fetch_add(duration_us(wall), Ordering::Relaxed);
    }

    /// `n` records queued to the journal writer thread.
    pub fn journal_records(&self, n: u64) {
        self.shard(0)
            .journal_records
            .fetch_add(n, Ordering::Relaxed);
    }

    /// One batched journal fsync took `wall`.
    pub fn journal_fsync(&self, wall: Duration) {
        let us = duration_us(wall);
        let c = self.shard(0);
        c.journal_fsyncs.fetch_add(1, Ordering::Relaxed);
        c.journal_fsync_us_total.fetch_add(us, Ordering::Relaxed);
        self.journal_fsync_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Sums every shard into a plain snapshot.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut s = MetricsSnapshot {
            elapsed: self.elapsed(),
            jobs_total: self.jobs_total.load(Ordering::Relaxed),
            jobs_replayed: self.jobs_replayed.load(Ordering::Relaxed),
            abandoned_live: self.abandoned_live.load(Ordering::Relaxed),
            abandoned_peak: self.abandoned_peak.load(Ordering::Relaxed),
            abandoned_cap_hits: self.abandoned_cap_hits.load(Ordering::Relaxed),
            queue_highwater: self.queue_highwater.load(Ordering::Relaxed),
            slo_last_p99_us: self.slo_last_p99_us.load(Ordering::Relaxed),
            job_us_count: self.job_us_count.load(Ordering::Relaxed),
            job_us_total: self.job_us_total.load(Ordering::Relaxed),
            job_us_max: self.job_us_max.load(Ordering::Relaxed),
            journal_fsync_us_max: self.journal_fsync_us_max.load(Ordering::Relaxed),
            job_us_buckets: self
                .job_us_buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((1u64 << i, n))
                })
                .collect(),
            serve_latency_us_count: self.serve_latency_us_count.load(Ordering::Relaxed),
            serve_latency_us_total: self.serve_latency_us_total.load(Ordering::Relaxed),
            serve_latency_us_max: self.serve_latency_us_max.load(Ordering::Relaxed),
            serve_latency_us_buckets: self
                .serve_latency_us_buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((1u64 << i, n))
                })
                .collect(),
            ..MetricsSnapshot::default()
        };
        for c in self.shards.iter() {
            s.jobs_completed += c.jobs_completed.load(Ordering::Relaxed);
            s.jobs_retried += c.jobs_retried.load(Ordering::Relaxed);
            s.jobs_abandoned += c.jobs_abandoned.load(Ordering::Relaxed);
            s.jobs_failed += c.jobs_failed.load(Ordering::Relaxed);
            s.faults_injected += c.faults_injected.load(Ordering::Relaxed);
            s.tag_faults_injected += c.tag_faults_injected.load(Ordering::Relaxed);
            s.parity_faults_injected += c.parity_faults_injected.load(Ordering::Relaxed);
            s.l2_faults_injected += c.l2_faults_injected.load(Ordering::Relaxed);
            s.faults_detected += c.faults_detected.load(Ordering::Relaxed);
            s.faults_corrected += c.faults_corrected.load(Ordering::Relaxed);
            s.strike_retries += c.strike_retries.load(Ordering::Relaxed);
            s.recovery_failures += c.recovery_failures.load(Ordering::Relaxed);
            s.fast_forward_accesses += c.fast_forward_accesses.load(Ordering::Relaxed);
            s.slow_path_accesses += c.slow_path_accesses.load(Ordering::Relaxed);
            s.ways_disabled += c.ways_disabled.load(Ordering::Relaxed);
            s.salvage_writebacks += c.salvage_writebacks.load(Ordering::Relaxed);
            s.bypass_accesses += c.bypass_accesses.load(Ordering::Relaxed);
            for (tally, bucket) in s.outcomes.iter_mut().zip(c.outcomes.iter()) {
                *tally += bucket.load(Ordering::Relaxed);
            }
            s.journal_records += c.journal_records.load(Ordering::Relaxed);
            s.journal_fsyncs += c.journal_fsyncs.load(Ordering::Relaxed);
            s.journal_fsync_us_total += c.journal_fsync_us_total.load(Ordering::Relaxed);
            s.engine_jobs += c.engine_jobs.load(Ordering::Relaxed);
            s.engine_us_total += c.engine_us_total.load(Ordering::Relaxed);
            s.packets_ingested += c.packets_ingested.load(Ordering::Relaxed);
            s.packets_shed += c.packets_shed.load(Ordering::Relaxed);
            s.packets_shed_flow_cap += c.packets_shed_flow_cap.load(Ordering::Relaxed);
            s.packets_diverted += c.packets_diverted.load(Ordering::Relaxed);
            s.flows_diverted += c.flows_diverted.load(Ordering::Relaxed);
            s.drr_deficit_topups += c.drr_deficit_topups.load(Ordering::Relaxed);
            s.packets_processed += c.packets_processed.load(Ordering::Relaxed);
            s.packets_erroneous += c.packets_erroneous.load(Ordering::Relaxed);
            s.packets_dropped += c.packets_dropped.load(Ordering::Relaxed);
            s.packets_abandoned += c.packets_abandoned.load(Ordering::Relaxed);
            s.shard_panics += c.shard_panics.load(Ordering::Relaxed);
            s.shard_restarts += c.shard_restarts.load(Ordering::Relaxed);
            s.shard_setup_retries += c.shard_setup_retries.load(Ordering::Relaxed);
            s.packets_shed_control += c.packets_shed_control.load(Ordering::Relaxed);
            s.packets_shed_data += c.packets_shed_data.load(Ordering::Relaxed);
            s.packets_preempt_shed += c.packets_preempt_shed.load(Ordering::Relaxed);
            s.packets_shed_slo += c.packets_shed_slo.load(Ordering::Relaxed);
            s.slo_trigger_activations += c.slo_trigger_activations.load(Ordering::Relaxed);
            s.rebalance_pin_table_full += c.rebalance_pin_table_full.load(Ordering::Relaxed);
            s.queue_invariant_repairs += c.queue_invariant_repairs.load(Ordering::Relaxed);
        }
        s
    }

    /// Renders the schema-stable metrics JSON
    /// (`"schema":"clumsy-metrics-v1"`; integer-only leaves with
    /// globally unique names). Callers persist it with
    /// [`crate::journal::atomic_write`].
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// Whole microseconds in `d`, saturating (a span near `u64::MAX` µs is
/// 584 000 years — clamping is theoretical, not practical).
fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// A plain (non-atomic) sum of every counter at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Run-clock time since the telemetry block was created.
    pub elapsed: Duration,
    /// Jobs declared for the run ([`Telemetry::add_total_jobs`]).
    pub jobs_total: u64,
    /// Fresh completions (excludes replayed jobs).
    pub jobs_completed: u64,
    /// Jobs pre-filled from a journal.
    pub jobs_replayed: u64,
    /// Attempts re-queued with a reseeded trial.
    pub jobs_retried: u64,
    /// Attempts abandoned on deadline.
    pub jobs_abandoned: u64,
    /// Jobs whose every attempt was exhausted.
    pub jobs_failed: u64,
    /// Deadline-overrun threads still running right now.
    pub abandoned_live: u64,
    /// High-water mark of [`MetricsSnapshot::abandoned_live`].
    pub abandoned_peak: u64,
    /// Times the abandoned-attempt cap paused launches.
    pub abandoned_cap_hits: u64,
    /// Faults injected, all targets.
    pub faults_injected: u64,
    /// Faults injected into tag bits.
    pub tag_faults_injected: u64,
    /// Faults injected into parity/check bits.
    pub parity_faults_injected: u64,
    /// Faults injected into the L2 data array.
    pub l2_faults_injected: u64,
    /// Faults flagged by the detection scheme.
    pub faults_detected: u64,
    /// Faults corrected in place (SECDED).
    pub faults_corrected: u64,
    /// Strike-path retries.
    pub strike_retries: u64,
    /// Strike refetches that pulled corrupted data back in.
    pub recovery_failures: u64,
    /// Accesses served by the batched fault-free fast path.
    pub fast_forward_accesses: u64,
    /// Accesses that took the full checking path.
    pub slow_path_accesses: u64,
    /// L1 ways mapped out by escalation or explicit fault maps.
    pub ways_disabled: u64,
    /// Dirty lines salvaged through the writeback path at disable time.
    pub salvage_writebacks: u64,
    /// Accesses to fully mapped-out sets serviced from the L2 bypass.
    pub bypass_accesses: u64,
    /// Trial tallies, least to most severe ([`TrialOutcome::all`]).
    pub outcomes: [u64; 6],
    /// Serve: packets accepted into ingress queues.
    pub packets_ingested: u64,
    /// Serve: packets shed at ingress under backpressure.
    pub packets_shed: u64,
    /// Serve: packets shed at the per-flow queue cap (subset of
    /// [`MetricsSnapshot::packets_shed`]).
    pub packets_shed_flow_cap: u64,
    /// Serve: packets routed to a pinned (non-natural) shard.
    pub packets_diverted: u64,
    /// Serve: flows pinned away from hot shards by the rebalancer.
    pub flows_diverted: u64,
    /// Serve: DRR deficit top-ups across all ingress queues.
    pub drr_deficit_topups: u64,
    /// Serve: packets fully processed by shards.
    pub packets_processed: u64,
    /// Serve: processed packets with marked-value divergence.
    pub packets_erroneous: u64,
    /// Serve: packets dropped by shard watchdogs.
    pub packets_dropped: u64,
    /// Serve: in-flight packets lost to caught shard panics.
    pub packets_abandoned: u64,
    /// Serve: shard panics caught by supervisors.
    pub shard_panics: u64,
    /// Serve: shard restarts after caught panics.
    pub shard_restarts: u64,
    /// Serve: reseeded machine rebuilds after control-plane fatals.
    pub shard_setup_retries: u64,
    /// Serve: high-water ingress-queue occupancy.
    pub queue_highwater: u64,
    /// Serve: control-class packets shed at ingress (subset of
    /// [`MetricsSnapshot::packets_shed`]; asserted zero by the smoke
    /// jobs whenever classes are on).
    pub packets_shed_control: u64,
    /// Serve: data-class packets shed at ingress (subset of
    /// [`MetricsSnapshot::packets_shed`]).
    pub packets_shed_data: u64,
    /// Serve: data-class packets evicted to admit control-class
    /// packets (subset of [`MetricsSnapshot::packets_shed_data`]).
    pub packets_preempt_shed: u64,
    /// Serve: data-class packets shed under a tightened SLO deadline
    /// (subset of [`MetricsSnapshot::packets_shed_data`]).
    pub packets_shed_slo: u64,
    /// Serve: latency-SLO trigger inactive→active transitions.
    pub slo_trigger_activations: u64,
    /// Serve: last windowed p99 estimate seen by the SLO trigger
    /// (microseconds, conservative bucket-upper-edge; a gauge).
    pub slo_last_p99_us: u64,
    /// Serve: rebalance pins rejected because the pin table was full.
    pub rebalance_pin_table_full: u64,
    /// Serve: repaired ingress-queue invariant violations (non-zero
    /// means a bug was survived, not wedged on).
    pub queue_invariant_repairs: u64,
    /// Records handed to the journal writer thread.
    pub journal_records: u64,
    /// Batched fsyncs the journal writer issued.
    pub journal_fsyncs: u64,
    /// Total microseconds spent in journal fsyncs.
    pub journal_fsync_us_total: u64,
    /// Slowest single journal fsync, microseconds.
    pub journal_fsync_us_max: u64,
    /// Jobs executed by the engine thread pool.
    pub engine_jobs: u64,
    /// Total microseconds of engine-pool job wall time.
    pub engine_us_total: u64,
    /// Timed campaign jobs (equals fresh completions).
    pub job_us_count: u64,
    /// Total campaign-job wall microseconds.
    pub job_us_total: u64,
    /// Slowest single campaign job, microseconds.
    pub job_us_max: u64,
    /// Non-empty log2 latency buckets as `(floor_us, count)`.
    pub job_us_buckets: Vec<(u64, u64)>,
    /// Serve: packets timed enqueue→verdict.
    pub serve_latency_us_count: u64,
    /// Serve: total enqueue→verdict microseconds.
    pub serve_latency_us_total: u64,
    /// Serve: slowest single enqueue→verdict span, microseconds.
    pub serve_latency_us_max: u64,
    /// Serve: non-empty log2 latency buckets as `(floor_us, count)`.
    pub serve_latency_us_buckets: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Fresh completions per second of run-clock time.
    #[must_use]
    pub fn rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.jobs_completed as f64 / secs
        } else {
            0.0
        }
    }

    /// Estimated seconds to finish the declared jobs at the current
    /// rate; `None` before the first completion or without a total.
    #[must_use]
    pub fn eta_seconds(&self) -> Option<f64> {
        let done = self.jobs_completed + self.jobs_replayed;
        let remaining = self.jobs_total.checked_sub(done)?;
        let rate = self.rate();
        (self.jobs_completed > 0 && rate > 0.0).then(|| remaining as f64 / rate)
    }

    /// The schema-stable metrics JSON (see [`Telemetry::metrics_json`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\n  \"schema\": \"{METRICS_SCHEMA}\",\n  \"elapsed_ms\": {},",
            u64::try_from(self.elapsed.as_millis()).unwrap_or(u64::MAX)
        );
        let _ = write!(
            s,
            "\n  \"jobs\": {{\"jobs_total\": {}, \"jobs_completed\": {}, \"jobs_replayed\": {}, \
             \"jobs_retried\": {}, \"jobs_abandoned\": {}, \"jobs_failed\": {}, \
             \"abandoned_live\": {}, \"abandoned_peak\": {}, \"abandoned_cap_hits\": {}}},",
            self.jobs_total,
            self.jobs_completed,
            self.jobs_replayed,
            self.jobs_retried,
            self.jobs_abandoned,
            self.jobs_failed,
            self.abandoned_live,
            self.abandoned_peak,
            self.abandoned_cap_hits
        );
        let _ = write!(
            s,
            "\n  \"faults\": {{\"faults_injected\": {}, \"tag_faults_injected\": {}, \
             \"parity_faults_injected\": {}, \"l2_faults_injected\": {}, \
             \"faults_detected\": {}, \"faults_corrected\": {}, \"strike_retries\": {}, \
             \"recovery_failures\": {}, \"ways_disabled\": {}, \"salvage_writebacks\": {}, \
             \"bypass_accesses\": {}}},",
            self.faults_injected,
            self.tag_faults_injected,
            self.parity_faults_injected,
            self.l2_faults_injected,
            self.faults_detected,
            self.faults_corrected,
            self.strike_retries,
            self.recovery_failures,
            self.ways_disabled,
            self.salvage_writebacks,
            self.bypass_accesses
        );
        let _ = write!(
            s,
            "\n  \"outcomes\": {{\"outcome_masked\": {}, \"outcome_corrected\": {}, \
             \"outcome_detected_recovered\": {}, \"outcome_detected_fatal\": {}, \
             \"outcome_sdc\": {}, \"outcome_recovery_failed\": {}}},",
            self.outcomes[0],
            self.outcomes[1],
            self.outcomes[2],
            self.outcomes[3],
            self.outcomes[4],
            self.outcomes[5]
        );
        let _ = write!(
            s,
            "\n  \"serve\": {{\"packets_ingested\": {}, \"packets_shed\": {}, \
             \"packets_processed\": {}, \"packets_erroneous\": {}, \
             \"packets_dropped\": {}, \"packets_abandoned\": {}, \
             \"shard_panics\": {}, \"shard_restarts\": {}, \
             \"shard_setup_retries\": {}, \"queue_highwater\": {}, \
             \"packets_shed_flow_cap\": {}, \"packets_diverted\": {}, \
             \"flows_diverted\": {}, \"drr_deficit_topups\": {}, \
             \"serve_latency_us_count\": {}, \"serve_latency_us_total\": {}, \
             \"serve_latency_us_max\": {}, \"serve_latency_us_buckets\": [",
            self.packets_ingested,
            self.packets_shed,
            self.packets_processed,
            self.packets_erroneous,
            self.packets_dropped,
            self.packets_abandoned,
            self.shard_panics,
            self.shard_restarts,
            self.shard_setup_retries,
            self.queue_highwater,
            self.packets_shed_flow_cap,
            self.packets_diverted,
            self.flows_diverted,
            self.drr_deficit_topups,
            self.serve_latency_us_count,
            self.serve_latency_us_total,
            self.serve_latency_us_max
        );
        for (i, (floor, n)) in self.serve_latency_us_buckets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{floor}, {n}]");
        }
        s.push_str("]},");
        let _ = write!(
            s,
            "\n  \"class\": {{\"packets_shed_control\": {}, \"packets_shed_data\": {}, \
             \"packets_preempt_shed\": {}, \"packets_shed_slo\": {}, \
             \"slo_trigger_activations\": {}, \"slo_last_p99_us\": {}, \
             \"rebalance_pin_table_full\": {}, \"queue_invariant_repairs\": {}}},",
            self.packets_shed_control,
            self.packets_shed_data,
            self.packets_preempt_shed,
            self.packets_shed_slo,
            self.slo_trigger_activations,
            self.slo_last_p99_us,
            self.rebalance_pin_table_full,
            self.queue_invariant_repairs
        );
        let _ = write!(
            s,
            "\n  \"journal\": {{\"journal_records\": {}, \"journal_fsyncs\": {}, \
             \"journal_fsync_us_total\": {}, \"journal_fsync_us_max\": {}}},",
            self.journal_records,
            self.journal_fsyncs,
            self.journal_fsync_us_total,
            self.journal_fsync_us_max
        );
        let _ = write!(
            s,
            "\n  \"engine\": {{\"engine_jobs\": {}, \"engine_us_total\": {}, \
             \"fast_forward_accesses\": {}, \"slow_path_accesses\": {}}},",
            self.engine_jobs,
            self.engine_us_total,
            self.fast_forward_accesses,
            self.slow_path_accesses
        );
        let _ = write!(
            s,
            "\n  \"job_time\": {{\"job_us_count\": {}, \"job_us_total\": {}, \
             \"job_us_max\": {}, \"job_us_buckets\": [",
            self.job_us_count, self.job_us_total, self.job_us_max
        );
        for (i, (floor, n)) in self.job_us_buckets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "[{floor}, {n}]");
        }
        s.push_str("]}\n}\n");
        s
    }

    /// One human progress line (the `--progress` format): completion,
    /// rate, ETA, outcome tallies, retry/abandon counts.
    #[must_use]
    pub fn progress_line(&self, label: &str) -> String {
        use std::fmt::Write as _;
        let done = self.jobs_completed + self.jobs_replayed;
        let mut line = format!("[{label}] {done}");
        if self.jobs_total > 0 {
            let pct = 100.0 * done as f64 / self.jobs_total as f64;
            let _ = write!(line, "/{} jobs ({pct:.1}%)", self.jobs_total);
        } else {
            line.push_str(" jobs");
        }
        let _ = write!(line, " | {:.1} jobs/s", self.rate());
        match self.eta_seconds() {
            Some(eta) => {
                let _ = write!(line, " | ETA {eta:.0}s");
            }
            None => line.push_str(" | ETA --"),
        }
        let _ = write!(
            line,
            " | masked {} corrected {} recovered {} fatal {} sdc {} rec_fail {}",
            self.outcomes[0],
            self.outcomes[1],
            self.outcomes[2],
            self.outcomes[3],
            self.outcomes[4],
            self.outcomes[5]
        );
        let _ = write!(
            line,
            " | retried {} abandoned {} (live {})",
            self.jobs_retried, self.jobs_abandoned, self.abandoned_live
        );
        line
    }

    /// Processed packets per second of run-clock time (the serve rate).
    #[must_use]
    pub fn packet_rate(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.packets_processed as f64 / secs
        } else {
            0.0
        }
    }

    /// One human progress line for the open-ended serve path: rate and
    /// outcome tallies, no total and no ETA — the stream is unbounded.
    #[must_use]
    pub fn serve_progress_line(&self, label: &str) -> String {
        format!(
            "[{label}] {} pkts | {:.0} pkt/s | shed {} dropped {} abandoned {} \
             | restarts {} (panics {}) | queue hw {}",
            self.packets_processed,
            self.packet_rate(),
            self.packets_shed,
            self.packets_dropped,
            self.packets_abandoned,
            self.shard_restarts,
            self.shard_panics,
            self.queue_highwater
        )
    }
}

/// Which line format a [`ProgressReporter`] prints.
#[derive(Debug, Clone, Copy)]
enum LineMode {
    /// Bounded campaign: completion fraction, rate, ETA.
    Campaign,
    /// Open-ended serving: packet rate and outcome tallies, no ETA.
    Serve,
}

/// Background thread printing a [`MetricsSnapshot::progress_line`] to
/// stderr every interval. Started behind `--progress`; stopping (or
/// dropping) joins the thread after one final line.
#[derive(Debug)]
pub struct ProgressReporter {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressReporter {
    /// Spawns the reporter: one line per `every` until stopped.
    #[must_use]
    pub fn start(telemetry: Arc<Telemetry>, label: &str, every: Duration) -> Self {
        ProgressReporter::start_mode(telemetry, label, every, LineMode::Campaign)
    }

    /// Spawns the reporter in open-ended mode: rate and outcome
    /// tallies with no job total and no ETA, for jobs whose end is not
    /// known up front (the serve path's unbounded stream).
    #[must_use]
    pub fn start_open_ended(telemetry: Arc<Telemetry>, label: &str, every: Duration) -> Self {
        ProgressReporter::start_mode(telemetry, label, every, LineMode::Serve)
    }

    fn start_mode(telemetry: Arc<Telemetry>, label: &str, every: Duration, mode: LineMode) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let label = label.to_string();
        let line = move || {
            let snap = telemetry.snapshot();
            match mode {
                LineMode::Campaign => snap.progress_line(&label),
                LineMode::Serve => snap.serve_progress_line(&label),
            }
        };
        let handle = std::thread::spawn(move || {
            let (stop, cv) = &*thread_state;
            let mut stopped = stop.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let (guard, timeout) = cv
                    .wait_timeout(stopped, every)
                    .unwrap_or_else(|e| e.into_inner());
                stopped = guard;
                if *stopped {
                    break;
                }
                if timeout.timed_out() {
                    eprintln!("{}", line());
                }
            }
            drop(stopped);
            // One final line so short runs still report something.
            eprintln!("{}", line());
        });
        ProgressReporter {
            state,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and joins its thread (also done on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (stop, cv) = &*self.state;
        *stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Background thread rewriting the `--metrics` JSON file every
/// interval via [`crate::journal::atomic_write`], so an external
/// watcher (or a post-mortem after a kill) always finds a complete,
/// schema-valid snapshot rather than only the final one. Stopping (or
/// dropping) writes one last snapshot and joins the thread.
#[derive(Debug)]
pub struct MetricsFlusher {
    state: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsFlusher {
    /// Spawns the flusher: an immediate write so the file exists from
    /// the start, one atomic rewrite of `path` per `every` until
    /// stopped, plus a final write at stop — the last interval's
    /// window is never lost, however the run ends. Write errors are
    /// reported to stderr once and the thread keeps ticking — a full
    /// disk must not take the serving loop down with it.
    #[must_use]
    pub fn start(telemetry: Arc<Telemetry>, path: PathBuf, every: Duration) -> Self {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_state = Arc::clone(&state);
        let handle = std::thread::spawn(move || {
            let mut warned = false;
            let flush = |warned: &mut bool| {
                if let Err(e) =
                    crate::journal::atomic_write(&path, telemetry.metrics_json().as_bytes())
                {
                    if !*warned {
                        eprintln!("warning: metrics flush to {} failed: {e}", path.display());
                        *warned = true;
                    }
                }
            };
            // A watcher attaching right after launch (or a run killed
            // inside the first interval) still finds a complete,
            // schema-valid snapshot.
            flush(&mut warned);
            let (stop, cv) = &*thread_state;
            let mut stopped = stop.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                let (guard, timeout) = cv
                    .wait_timeout(stopped, every)
                    .unwrap_or_else(|e| e.into_inner());
                stopped = guard;
                if *stopped {
                    break;
                }
                if timeout.timed_out() {
                    flush(&mut warned);
                }
            }
            drop(stopped);
            flush(&mut warned);
        });
        MetricsFlusher {
            state,
            handle: Some(handle),
        }
    }

    /// Stops the flusher after one final write (also done on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (stop, cv) = &*self.state;
        *stop.lock().unwrap_or_else(|e| e.into_inner()) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsFlusher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Tolerant reader for the metrics JSON, used by tests and CI scripts.
///
/// Collects every `"key": <integer>` leaf into a map. Returns `None`
/// when the [`METRICS_SCHEMA`] marker is absent (wrong or mangled
/// schema); never panics, whatever the input — truncated files,
/// garbage bytes and partial writes all simply yield `None` or a
/// partial map.
#[must_use]
pub fn parse_metrics(text: &str) -> Option<std::collections::BTreeMap<String, u64>> {
    if !text.contains(METRICS_SCHEMA) {
        return None;
    }
    let bytes = text.as_bytes();
    let mut map = std::collections::BTreeMap::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        if bytes[pos] != b'"' {
            pos += 1;
            continue;
        }
        let key_start = pos + 1;
        let Some(key_len) = bytes[key_start..].iter().position(|&b| b == b'"') else {
            break;
        };
        let mut after = key_start + key_len + 1;
        // Skip whitespace, require a colon, skip whitespace again.
        while bytes.get(after).is_some_and(|b| b.is_ascii_whitespace()) {
            after += 1;
        }
        if bytes.get(after) != Some(&b':') {
            pos = key_start + key_len + 1;
            continue;
        }
        after += 1;
        while bytes.get(after).is_some_and(|b| b.is_ascii_whitespace()) {
            after += 1;
        }
        let digits_start = after;
        while bytes.get(after).is_some_and(u8::is_ascii_digit) {
            after += 1;
        }
        if after > digits_start && after - digits_start <= 20 {
            if let (Ok(key), Ok(value)) = (
                std::str::from_utf8(&bytes[key_start..key_start + key_len]),
                std::str::from_utf8(&bytes[digits_start..after])
                    .unwrap_or("")
                    .parse::<u64>(),
            ) {
                map.insert(key.to_string(), value);
            }
        }
        pos = after.max(key_start + key_len + 1);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_log2_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn counters_sum_across_shards() {
        let t = Telemetry::with_shards(4);
        t.add_total_jobs(10);
        for w in 0..8 {
            t.job_completed(w, Duration::from_micros(100 + w as u64));
        }
        t.job_retried();
        t.job_failed();
        let s = t.snapshot();
        assert_eq!(s.jobs_total, 10);
        assert_eq!(s.jobs_completed, 8);
        assert_eq!(s.jobs_retried, 1);
        assert_eq!(s.jobs_failed, 1);
        assert_eq!(s.job_us_count, 8);
        assert!(s.job_us_max >= 107);
        assert_eq!(s.job_us_buckets.iter().map(|(_, n)| n).sum::<u64>(), 8);
    }

    #[test]
    fn abandoned_gauges_track_live_and_peak() {
        let t = Telemetry::with_shards(1);
        assert_eq!(t.abandoned_attempt(), 1);
        assert_eq!(t.abandoned_attempt(), 2);
        t.abandoned_finished();
        assert_eq!(t.abandoned_live(), 1);
        t.abandoned_finished();
        t.abandoned_finished(); // extra decrement must saturate, not wrap
        let s = t.snapshot();
        assert_eq!(s.abandoned_live, 0);
        assert_eq!(s.abandoned_peak, 2);
        assert_eq!(s.jobs_abandoned, 2);
    }

    #[test]
    fn metrics_json_round_trips_through_the_tolerant_reader() {
        let t = Telemetry::with_shards(2);
        t.add_total_jobs(4);
        t.job_completed(0, Duration::from_micros(50));
        t.journal_records(3);
        t.journal_fsync(Duration::from_micros(200));
        let json = t.metrics_json();
        assert!(json.contains(METRICS_SCHEMA));
        let map = parse_metrics(&json).expect("schema marker present");
        assert_eq!(map.get("jobs_total"), Some(&4));
        assert_eq!(map.get("jobs_completed"), Some(&1));
        assert_eq!(map.get("journal_records"), Some(&3));
        assert_eq!(map.get("journal_fsyncs"), Some(&1));
        assert!(map.contains_key("journal_fsync_us_total"));
        assert!(map.contains_key("outcome_sdc"));
        assert!(map.contains_key("engine_jobs"));
        assert!(map.contains_key("elapsed_ms"));
        assert!(map.contains_key("ways_disabled"));
        assert!(map.contains_key("salvage_writebacks"));
        assert!(map.contains_key("bypass_accesses"));
    }

    #[test]
    fn parse_metrics_survives_garbage_without_a_schema() {
        assert_eq!(parse_metrics(""), None);
        assert_eq!(parse_metrics("{\"jobs_total\": 3}"), None);
        assert_eq!(parse_metrics("\u{0}\u{1}random bytes"), None);
    }

    #[test]
    fn parse_metrics_tolerates_truncation() {
        let t = Telemetry::with_shards(1);
        t.add_total_jobs(7);
        let json = t.metrics_json();
        // Any prefix long enough to keep the schema marker parses to a
        // (possibly partial) map; shorter prefixes yield None. Nothing
        // panics either way.
        for cut in 0..json.len() {
            let _ = parse_metrics(&json[..cut]);
        }
    }

    #[test]
    fn progress_line_reports_completion_and_eta() {
        let t = Telemetry::with_shards(1);
        t.add_total_jobs(10);
        t.job_completed(0, Duration::from_micros(10));
        let line = t.snapshot().progress_line("unit");
        assert!(line.starts_with("[unit] 1/10 jobs"));
        assert!(line.contains("jobs/s"));
        assert!(line.contains("masked"));
        let bare = Telemetry::with_shards(1).snapshot().progress_line("x");
        assert!(bare.contains("ETA --"), "{bare}");
    }

    #[test]
    fn progress_reporter_stops_cleanly() {
        let t = Arc::new(Telemetry::new());
        let r = ProgressReporter::start(Arc::clone(&t), "unit", Duration::from_secs(60));
        r.stop(); // must not hang waiting for the first tick
        let r = ProgressReporter::start_open_ended(t, "serve", Duration::from_secs(60));
        r.stop();
    }

    #[test]
    fn serve_progress_line_has_rate_but_no_eta() {
        let t = Telemetry::with_shards(2);
        t.packet_ingested();
        t.packet_processed(0, false);
        t.packet_processed(1, true);
        t.packet_dropped(0);
        t.packet_abandoned();
        t.shard_panic();
        t.shard_restarted();
        t.queue_depth_sample(17);
        let s = t.snapshot();
        assert_eq!(s.packets_processed, 2);
        assert_eq!(s.packets_erroneous, 1);
        assert_eq!(s.queue_highwater, 17);
        let line = s.serve_progress_line("serve");
        assert!(line.starts_with("[serve] 2 pkts"), "{line}");
        assert!(line.contains("pkt/s"), "{line}");
        assert!(line.contains("queue hw 17"), "{line}");
        assert!(
            !line.contains("ETA"),
            "no ETA on an unbounded stream: {line}"
        );
    }

    #[test]
    fn serve_counters_survive_the_json_round_trip() {
        let t = Telemetry::with_shards(1);
        t.packet_ingested();
        t.packet_shed();
        t.packet_processed(0, true);
        t.shard_setup_retry();
        t.queue_depth_sample(5);
        t.queue_depth_sample(3); // high-water keeps the max
        let map = parse_metrics(&t.metrics_json()).expect("schema present");
        assert_eq!(map.get("packets_ingested"), Some(&1));
        assert_eq!(map.get("packets_shed"), Some(&1));
        assert_eq!(map.get("packets_processed"), Some(&1));
        assert_eq!(map.get("packets_erroneous"), Some(&1));
        assert_eq!(map.get("shard_setup_retries"), Some(&1));
        assert_eq!(map.get("queue_highwater"), Some(&5));
        assert_eq!(map.get("shard_panics"), Some(&0));
    }

    #[test]
    fn overload_counters_survive_the_json_round_trip() {
        let t = Telemetry::with_shards(2);
        t.packet_shed();
        t.packet_shed_flow_cap();
        t.packet_diverted();
        t.packet_diverted();
        t.flow_diverted();
        t.add_drr_topups(7);
        t.serve_latency(Duration::from_micros(100));
        t.serve_latency(Duration::from_micros(3000));
        let s = t.snapshot();
        assert_eq!(s.serve_latency_us_count, 2);
        assert_eq!(s.serve_latency_us_total, 3100);
        assert_eq!(s.serve_latency_us_max, 3000);
        assert_eq!(s.serve_latency_us_buckets.len(), 2);
        let map = parse_metrics(&t.metrics_json()).expect("schema present");
        assert_eq!(map.get("packets_shed_flow_cap"), Some(&1));
        assert_eq!(map.get("packets_diverted"), Some(&2));
        assert_eq!(map.get("flows_diverted"), Some(&1));
        assert_eq!(map.get("drr_deficit_topups"), Some(&7));
        assert_eq!(map.get("serve_latency_us_count"), Some(&2));
        assert_eq!(map.get("serve_latency_us_total"), Some(&3100));
        assert_eq!(map.get("serve_latency_us_max"), Some(&3000));
    }

    #[test]
    fn class_counters_survive_the_json_round_trip() {
        let t = Telemetry::with_shards(2);
        t.packet_shed_control();
        t.packet_shed_data();
        t.packet_shed_data();
        t.packet_preempt_shed();
        t.packet_shed_slo();
        t.slo_activation();
        t.set_slo_last_p99_us(2047);
        t.set_slo_last_p99_us(511); // gauge: last write wins
        t.add_pin_table_full(3);
        t.add_queue_invariant_repairs(2);
        let s = t.snapshot();
        assert_eq!(s.packets_shed_control, 1);
        assert_eq!(s.packets_shed_data, 2);
        assert_eq!(s.slo_last_p99_us, 511);
        let map = parse_metrics(&t.metrics_json()).expect("schema present");
        assert_eq!(map.get("packets_shed_control"), Some(&1));
        assert_eq!(map.get("packets_shed_data"), Some(&2));
        assert_eq!(map.get("packets_preempt_shed"), Some(&1));
        assert_eq!(map.get("packets_shed_slo"), Some(&1));
        assert_eq!(map.get("slo_trigger_activations"), Some(&1));
        assert_eq!(map.get("slo_last_p99_us"), Some(&511));
        assert_eq!(map.get("rebalance_pin_table_full"), Some(&3));
        assert_eq!(map.get("queue_invariant_repairs"), Some(&2));
    }

    #[test]
    fn serve_latency_bucket_counts_expose_raw_cumulative_loads() {
        let t = Telemetry::with_shards(1);
        assert!(t.serve_latency_bucket_counts().iter().all(|&n| n == 0));
        t.serve_latency(Duration::from_micros(100)); // bucket 6: [64, 128)
        t.serve_latency(Duration::from_micros(100));
        t.serve_latency(Duration::from_micros(3000)); // bucket 11
        let counts = t.serve_latency_bucket_counts();
        assert_eq!(counts.len(), HIST_BUCKETS);
        assert_eq!(counts[6], 2);
        assert_eq!(counts[11], 1);
        assert_eq!(counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn metrics_flusher_writes_immediately_on_start() {
        let t = Arc::new(Telemetry::with_shards(1));
        t.add_total_jobs(9);
        let dir = std::env::temp_dir().join(format!("clumsy-flush0-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.json");
        // An interval far beyond the test's lifetime: only the startup
        // flush can produce the file.
        let f = MetricsFlusher::start(Arc::clone(&t), path.clone(), Duration::from_secs(3600));
        let deadline = Instant::now() + Duration::from_secs(10);
        while !path.exists() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let text = std::fs::read_to_string(&path).expect("startup flush written");
        let map = parse_metrics(&text).expect("schema-valid snapshot");
        assert_eq!(map.get("jobs_total"), Some(&9));
        f.stop();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_flusher_rewrites_the_file_each_interval() {
        let t = Arc::new(Telemetry::with_shards(1));
        t.add_total_jobs(3);
        let dir = std::env::temp_dir().join(format!("clumsy-flush-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("metrics.json");
        let f = MetricsFlusher::start(Arc::clone(&t), path.clone(), Duration::from_millis(10));
        let deadline = Instant::now() + Duration::from_secs(10);
        // Wait for at least one periodic flush before stopping.
        loop {
            if path.exists() || Instant::now() > deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        t.job_completed(0, Duration::from_micros(10));
        f.stop();
        let text = std::fs::read_to_string(&path).expect("final flush written");
        let map = parse_metrics(&text).expect("schema-valid snapshot");
        // The stop-time flush sees the completion recorded after the
        // first periodic write.
        assert_eq!(map.get("jobs_total"), Some(&3));
        assert_eq!(map.get("jobs_completed"), Some(&1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn record_report_tallies_outcomes() {
        let t = Telemetry::with_shards(1);
        let report = RunReport {
            app: "test",
            packets_attempted: 10,
            packets_completed: 10,
            fatal: None,
            dropped_packets: 0,
            erroneous_packets: 0,
            error_counts: std::collections::BTreeMap::new(),
            init_obs_total: 0,
            init_obs_wrong: 0,
            instructions: 100,
            cycles: 500.0,
            energy: energy_model::EnergyBreakdown::default(),
            stats: cache_sim::MemStats {
                faults_injected: 5,
                faults_detected: 2,
                ..Default::default()
            },
            freq_trace: Vec::new(),
            epoch_faults: Vec::new(),
        };
        t.record_report(0, &report);
        let s = t.snapshot();
        assert_eq!(s.faults_injected, 5);
        assert_eq!(s.faults_detected, 2);
        // detected > 0, nothing worse: detected_recovered.
        assert_eq!(
            s.outcomes[outcome_index(TrialOutcome::DetectedRecovered)],
            1
        );
    }
}
