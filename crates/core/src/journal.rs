//! Crash-safe run journal: append-only records of completed campaign
//! jobs, so a killed process can resume where it left off.
//!
//! A journal is a line-delimited file (`results/journal/<run-id>.jsonl`)
//! whose first line is a [`JournalHeader`] pinning the run's identity
//! (seed, trials, trace fingerprint, grid hash) and whose remaining
//! lines record one completed job each — either a full [`RunReport`]
//! (campaigns) or a completion marker (process-level drivers like
//! `repro_all`). Every line carries a CRC32 of its body:
//!
//! ```text
//! {"crc":<u32>,"body":{...}}\n
//! ```
//!
//! **Torn-tail and corruption policy.** A crash can leave a partial
//! final line (torn tail) and bit rot can corrupt any line. [`replay`]
//! accepts every line whose CRC verifies, skips complete lines that
//! fail CRC or decoding (counted in [`Replay::skipped_records`]), and
//! treats unparseable trailing bytes as a torn tail to be truncated
//! before appending resumes. Duplicate records for the same job keep
//! the first occurrence, so a trial is never double-counted. A journal
//! whose *header* is unreadable is rejected with a structured error —
//! nothing after it can be trusted.
//!
//! **Exactness.** Record bodies round-trip [`RunReport`] bitwise:
//! floats are stored as IEEE-754 bit patterns, so a resumed campaign
//! aggregates byte-identical reports and its CSVs match an
//! uninterrupted run exactly. Because the CRC already guarantees the
//! bytes are exactly what [`encode`] produced, decoding uses a rigid
//! fixed-field-order scanner instead of a general JSON parser.

use crate::report::{FatalInfo, RunReport};
use crate::telemetry::Telemetry;
use netbench::{AppError, AppKind, ErrorCategory, FatalError};
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Seek, Write};
use std::path::{Path, PathBuf};
use std::sync::mpsc;
use std::sync::Arc;

/// Journal format version; bumped on any incompatible change.
/// Version 2 widened the stats array for the L2-fault / ECC counters.
/// Version 3 widened it again for the fast-forward / slow-path split.
pub const JOURNAL_VERSION: u32 = 3;

// ---------------------------------------------------------------------
// Hashes and atomic file replacement
// ---------------------------------------------------------------------

/// CRC-32 (IEEE, reflected) of `bytes` — the per-record checksum.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// FNV-1a 64-bit hash — used to fingerprint grid configurations.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Writes `bytes` to `path` atomically: a temp file in the same
/// directory is written, fsynced, then renamed over the target, so a
/// crash mid-write can never leave a truncated file behind.
///
/// # Errors
///
/// Any I/O failure from creating, writing, syncing or renaming the
/// temporary file (which is cleaned up on failure).
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}",
        name.to_string_lossy(),
        std::process::id()
    ));
    let write = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = fs::remove_file(&tmp);
        return write;
    }
    // Best effort: make the rename itself durable. Opening a directory
    // read-only works on unix; elsewhere the open fails and is ignored.
    if let Ok(d) = fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Structured journal failures. Skippable per-record corruption is
/// *not* an error (see [`replay`]); these are the conditions that make
/// a journal unusable for resuming.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying filesystem operation failed.
    Io {
        /// The journal (or temp-file) path involved.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// The journal's header line is missing or does not verify — the
    /// file cannot be attributed to any run.
    MissingHeader {
        /// The journal path.
        path: PathBuf,
    },
    /// The journal belongs to a different run configuration; resuming
    /// would silently mix results.
    HeaderMismatch {
        /// Which header field differs.
        field: &'static str,
        /// The value recorded in the journal.
        journal: String,
        /// The value the resuming run expects.
        expected: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal I/O failure on {path:?}: {source}")
            }
            JournalError::MissingHeader { path } => {
                write!(f, "journal {path:?} has no readable header")
            }
            JournalError::HeaderMismatch {
                field,
                journal,
                expected,
            } => write!(
                f,
                "journal was recorded for a different run: field `{field}` is {journal} \
                 in the journal but {expected} for this run (refusing to mix results)"
            ),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn io_err(path: &Path, source: io::Error) -> JournalError {
    JournalError::Io {
        path: path.to_path_buf(),
        source,
    }
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

/// Identity of the run a journal belongs to. All fields must match for
/// a resume to proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Journal format version ([`JOURNAL_VERSION`]).
    pub version: u32,
    /// Base fault seed of the run.
    pub seed: u64,
    /// Trials per grid point (1 for marker journals).
    pub trials: u32,
    /// Workload scale: the trace fingerprint for campaigns, the packet
    /// count for process-level drivers.
    pub scale: u64,
    /// Number of grid points (or driver binaries) in the run.
    pub points: u64,
    /// FNV-1a hash of the canonical grid description.
    pub grid: u64,
}

impl JournalHeader {
    /// Verifies this (replayed) header against the header the resuming
    /// run expects, naming the first differing field.
    ///
    /// # Errors
    ///
    /// [`JournalError::HeaderMismatch`] on the first field that
    /// differs.
    pub fn check(&self, expected: &JournalHeader) -> Result<(), JournalError> {
        let fields: [(&'static str, u64, u64); 6] = [
            (
                "version",
                u64::from(self.version),
                u64::from(expected.version),
            ),
            ("seed", self.seed, expected.seed),
            ("trials", u64::from(self.trials), u64::from(expected.trials)),
            ("scale", self.scale, expected.scale),
            ("points", self.points, expected.points),
            ("grid", self.grid, expected.grid),
        ];
        for (field, journal, want) in fields {
            if journal != want {
                return Err(JournalError::HeaderMismatch {
                    field,
                    journal: journal.to_string(),
                    expected: want.to_string(),
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Records and the wire codec
// ---------------------------------------------------------------------

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed campaign job with its full report (boxed: a
    /// `RunReport` dwarfs a marker, and replay holds many records).
    Job {
        /// Flat (point × trial) job index.
        job: usize,
        /// The job's bitwise-exact report.
        report: Box<RunReport>,
    },
    /// A completion marker for a named unit of work (e.g. one
    /// `repro_all` driver binary).
    Marker {
        /// The completed unit's name.
        name: String,
    },
}

fn frame(body: &str) -> Vec<u8> {
    format!("{{\"crc\":{},\"body\":{}}}\n", crc32(body.as_bytes()), body).into_bytes()
}

fn encode_header(h: &JournalHeader) -> Vec<u8> {
    frame(&format!(
        "{{\"kind\":\"header\",\"version\":{},\"seed\":{},\"trials\":{},\"scale\":{},\"points\":{},\"grid\":{}}}",
        h.version, h.seed, h.trials, h.scale, h.points, h.grid
    ))
}

fn encode_fatal(fatal: &Option<FatalInfo>) -> String {
    match fatal {
        None => "null".to_string(),
        Some(info) => {
            let (kind, a, b) = match info.error {
                AppError::Fatal(FatalError::FuelExhausted { budget }) => ("fuel", budget, 0),
                AppError::Fatal(FatalError::MemoryFault(m)) => match m {
                    cache_sim::MemError::OutOfRange { addr, len } => {
                        ("oob", u64::from(addr), u64::from(len))
                    }
                    cache_sim::MemError::Misaligned { addr, align } => {
                        ("misaligned", u64::from(addr), u64::from(align))
                    }
                },
            };
            format!(
                "{{\"packet\":{},\"kind\":\"{kind}\",\"a\":{a},\"b\":{b}}}",
                info.packet_index
            )
        }
    }
}

fn encode_report(r: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(512);
    let _ = write!(
        s,
        "{{\"app\":\"{}\",\"attempted\":{},\"completed\":{},\"fatal\":{},\"dropped\":{},\"erroneous\":{}",
        r.app,
        r.packets_attempted,
        r.packets_completed,
        encode_fatal(&r.fatal),
        r.dropped_packets,
        r.erroneous_packets
    );
    s.push_str(",\"errors\":[");
    for (i, (cat, n)) in r.error_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[\"{}\",{}]", cat.label(), n);
    }
    let _ = write!(
        s,
        "],\"init_total\":{},\"init_wrong\":{},\"instructions\":{},\"cycles\":{}",
        r.init_obs_total,
        r.init_obs_wrong,
        r.instructions,
        r.cycles.to_bits()
    );
    let e = &r.energy;
    let _ = write!(
        s,
        ",\"energy\":[{},{},{},{},{}]",
        e.core_nj.to_bits(),
        e.l1_nj.to_bits(),
        e.l2_nj.to_bits(),
        e.mem_nj.to_bits(),
        e.overhead_nj.to_bits()
    );
    let st = &r.stats;
    let _ = write!(
        s,
        ",\"stats\":[{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}]",
        st.reads,
        st.writes,
        st.l1_hits,
        st.l1_misses,
        st.l2_accesses,
        st.l2_misses,
        st.faults_injected,
        st.tag_faults_injected,
        st.parity_faults_injected,
        st.l2_faults_injected,
        st.faults_detected,
        st.faults_corrected,
        st.recovery_failures,
        st.faults_undetected,
        st.strike_retries,
        st.strike_invalidations,
        st.writebacks,
        st.dirty_drops,
        st.freq_switches,
        st.fast_forward_accesses,
        st.slow_path_accesses,
        st.ways_disabled,
        st.salvage_writebacks,
        st.bypass_accesses
    );
    s.push_str(",\"freq\":[");
    for (i, (idx, cr)) in r.freq_trace.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},{}]", idx, cr.to_bits());
    }
    s.push_str("],\"epochs\":[");
    for (i, n) in r.epoch_faults.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{n}");
    }
    s.push_str("]}");
    s
}

fn encode_job(job: usize, report: &RunReport) -> Vec<u8> {
    frame(&format!(
        "{{\"kind\":\"job\",\"job\":{job},\"report\":{}}}",
        encode_report(report)
    ))
}

fn encode_marker(name: &str) -> Vec<u8> {
    // Names are identifiers (binary names); anything needing escapes is
    // rejected rather than encoded.
    frame(&format!("{{\"kind\":\"mark\",\"name\":\"{name}\"}}"))
}

/// Rigid sequential scanner over a CRC-verified record body. The CRC
/// guarantees the bytes are exactly what the encoder produced, so any
/// deviation is simply an invalid (skippable) record.
struct Scanner<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str) -> Self {
        Scanner {
            s: s.as_bytes(),
            pos: 0,
        }
    }

    fn lit(&mut self, lit: &str) -> Option<()> {
        let end = self.pos.checked_add(lit.len())?;
        if self.s.get(self.pos..end)? == lit.as_bytes() {
            self.pos = end;
            Some(())
        } else {
            None
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn u64_(&mut self) -> Option<u64> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start || self.pos - start > 20 {
            return None;
        }
        std::str::from_utf8(&self.s[start..self.pos])
            .ok()?
            .parse()
            .ok()
    }

    fn usize_(&mut self) -> Option<usize> {
        usize::try_from(self.u64_()?).ok()
    }

    fn f64_(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64_()?))
    }

    /// A quoted string with no escapes (labels and identifiers only).
    fn string(&mut self) -> Option<String> {
        self.lit("\"")?;
        let start = self.pos;
        while self.peek().is_some_and(|b| b != b'"' && b != b'\\') {
            self.pos += 1;
        }
        let out = std::str::from_utf8(&self.s[start..self.pos])
            .ok()?
            .to_string();
        self.lit("\"")?;
        Some(out)
    }

    fn done(&self) -> Option<()> {
        (self.pos == self.s.len()).then_some(())
    }
}

fn app_static_name(name: &str) -> Option<&'static str> {
    AppKind::extended()
        .into_iter()
        .map(|k| k.name())
        .find(|n| *n == name)
}

fn category_from_label(label: &str) -> Option<ErrorCategory> {
    ErrorCategory::all()
        .into_iter()
        .find(|c| c.label() == label)
}

fn decode_fatal(sc: &mut Scanner) -> Option<Option<FatalInfo>> {
    if sc.lit("null").is_some() {
        return Some(None);
    }
    sc.lit("{\"packet\":")?;
    let packet_index = sc.usize_()?;
    sc.lit(",\"kind\":")?;
    let kind = sc.string()?;
    sc.lit(",\"a\":")?;
    let a = sc.u64_()?;
    sc.lit(",\"b\":")?;
    let b = sc.u64_()?;
    sc.lit("}")?;
    let error = match kind.as_str() {
        "fuel" => AppError::Fatal(FatalError::FuelExhausted { budget: a }),
        "oob" => AppError::Fatal(FatalError::MemoryFault(cache_sim::MemError::OutOfRange {
            addr: u32::try_from(a).ok()?,
            len: u32::try_from(b).ok()?,
        })),
        "misaligned" => AppError::Fatal(FatalError::MemoryFault(cache_sim::MemError::Misaligned {
            addr: u32::try_from(a).ok()?,
            align: u32::try_from(b).ok()?,
        })),
        _ => return None,
    };
    Some(Some(FatalInfo {
        packet_index,
        error,
    }))
}

fn decode_report(sc: &mut Scanner) -> Option<RunReport> {
    sc.lit("{\"app\":")?;
    let app = app_static_name(&sc.string()?)?;
    sc.lit(",\"attempted\":")?;
    let packets_attempted = sc.usize_()?;
    sc.lit(",\"completed\":")?;
    let packets_completed = sc.usize_()?;
    sc.lit(",\"fatal\":")?;
    let fatal = decode_fatal(sc)?;
    sc.lit(",\"dropped\":")?;
    let dropped_packets = sc.usize_()?;
    sc.lit(",\"erroneous\":")?;
    let erroneous_packets = sc.usize_()?;
    sc.lit(",\"errors\":[")?;
    let mut error_counts = BTreeMap::new();
    while sc.peek() == Some(b'[') {
        sc.lit("[")?;
        let cat = category_from_label(&sc.string()?)?;
        sc.lit(",")?;
        let n = sc.usize_()?;
        sc.lit("]")?;
        if error_counts.insert(cat, n).is_some() {
            return None; // duplicate key cannot come from the encoder
        }
        if sc.peek() == Some(b',') {
            sc.lit(",")?;
        }
    }
    sc.lit("]")?;
    sc.lit(",\"init_total\":")?;
    let init_obs_total = sc.usize_()?;
    sc.lit(",\"init_wrong\":")?;
    let init_obs_wrong = sc.usize_()?;
    sc.lit(",\"instructions\":")?;
    let instructions = sc.u64_()?;
    sc.lit(",\"cycles\":")?;
    let cycles = sc.f64_()?;
    sc.lit(",\"energy\":[")?;
    let mut nj = [0.0f64; 5];
    for (i, slot) in nj.iter_mut().enumerate() {
        if i > 0 {
            sc.lit(",")?;
        }
        *slot = sc.f64_()?;
    }
    sc.lit("]")?;
    let energy = energy_model::EnergyBreakdown {
        core_nj: nj[0],
        l1_nj: nj[1],
        l2_nj: nj[2],
        mem_nj: nj[3],
        overhead_nj: nj[4],
    };
    sc.lit(",\"stats\":[")?;
    let mut counters = [0u64; 24];
    for (i, slot) in counters.iter_mut().enumerate().take(21) {
        if i > 0 {
            sc.lit(",")?;
        }
        *slot = sc.u64_()?;
    }
    // Degraded-mode counters appended by newer writers; journals from
    // before way-disabling simply stop at 21 entries (counters stay 0).
    for slot in counters[21..].iter_mut() {
        if sc.peek() == Some(b',') {
            sc.lit(",")?;
            *slot = sc.u64_()?;
        }
    }
    sc.lit("]")?;
    let stats = cache_sim::MemStats {
        reads: counters[0],
        writes: counters[1],
        l1_hits: counters[2],
        l1_misses: counters[3],
        l2_accesses: counters[4],
        l2_misses: counters[5],
        faults_injected: counters[6],
        tag_faults_injected: counters[7],
        parity_faults_injected: counters[8],
        l2_faults_injected: counters[9],
        faults_detected: counters[10],
        faults_corrected: counters[11],
        recovery_failures: counters[12],
        faults_undetected: counters[13],
        strike_retries: counters[14],
        strike_invalidations: counters[15],
        writebacks: counters[16],
        dirty_drops: counters[17],
        freq_switches: counters[18],
        fast_forward_accesses: counters[19],
        slow_path_accesses: counters[20],
        ways_disabled: counters[21],
        salvage_writebacks: counters[22],
        bypass_accesses: counters[23],
    };
    sc.lit(",\"freq\":[")?;
    let mut freq_trace = Vec::new();
    while sc.peek() == Some(b'[') {
        sc.lit("[")?;
        let idx = sc.usize_()?;
        sc.lit(",")?;
        let cr = sc.f64_()?;
        sc.lit("]")?;
        freq_trace.push((idx, cr));
        if sc.peek() == Some(b',') {
            sc.lit(",")?;
        }
    }
    sc.lit("]")?;
    sc.lit(",\"epochs\":[")?;
    let mut epoch_faults = Vec::new();
    while sc.peek().is_some_and(|b| b.is_ascii_digit()) {
        epoch_faults.push(sc.u64_()?);
        if sc.peek() == Some(b',') {
            sc.lit(",")?;
        }
    }
    sc.lit("]")?;
    sc.lit("}")?;
    Some(RunReport {
        app,
        packets_attempted,
        packets_completed,
        fatal,
        dropped_packets,
        erroneous_packets,
        error_counts,
        init_obs_total,
        init_obs_wrong,
        instructions,
        cycles,
        energy,
        stats,
        freq_trace,
        epoch_faults,
    })
}

enum Line {
    Header(JournalHeader),
    Rec(Record),
}

/// Validates one complete line (without the trailing newline): CRC
/// frame first, then the rigid body decode.
fn decode_line(line: &[u8]) -> Option<Line> {
    let text = std::str::from_utf8(line).ok()?;
    let rest = text.strip_prefix("{\"crc\":")?;
    let comma = rest.find(',')?;
    let crc: u32 = rest[..comma].parse().ok()?;
    let body = rest[comma..]
        .strip_prefix(",\"body\":")?
        .strip_suffix('}')?;
    if crc32(body.as_bytes()) != crc {
        return None;
    }
    let mut sc = Scanner::new(body);
    if sc.lit("{\"kind\":\"header\",\"version\":").is_some() {
        let version = u32::try_from(sc.u64_()?).ok()?;
        sc.lit(",\"seed\":")?;
        let seed = sc.u64_()?;
        sc.lit(",\"trials\":")?;
        let trials = u32::try_from(sc.u64_()?).ok()?;
        sc.lit(",\"scale\":")?;
        let scale = sc.u64_()?;
        sc.lit(",\"points\":")?;
        let points = sc.u64_()?;
        sc.lit(",\"grid\":")?;
        let grid = sc.u64_()?;
        sc.lit("}")?;
        sc.done()?;
        return Some(Line::Header(JournalHeader {
            version,
            seed,
            trials,
            scale,
            points,
            grid,
        }));
    }
    let mut sc = Scanner::new(body);
    if sc.lit("{\"kind\":\"job\",\"job\":").is_some() {
        let job = sc.usize_()?;
        sc.lit(",\"report\":")?;
        let report = decode_report(&mut sc)?;
        sc.lit("}")?;
        sc.done()?;
        return Some(Line::Rec(Record::Job {
            job,
            report: Box::new(report),
        }));
    }
    let mut sc = Scanner::new(body);
    sc.lit("{\"kind\":\"mark\",\"name\":")?;
    let name = sc.string()?;
    sc.lit("}")?;
    sc.done()?;
    Some(Line::Rec(Record::Marker { name }))
}

// ---------------------------------------------------------------------
// Replay
// ---------------------------------------------------------------------

/// The recovered contents of a journal.
#[derive(Debug)]
pub struct Replay {
    /// The verified header.
    pub header: JournalHeader,
    /// Every valid record, deduplicated (first occurrence wins), in
    /// journal order.
    pub records: Vec<Record>,
    /// Complete lines dropped for CRC/decode failure or duplication.
    pub skipped_records: usize,
    /// Whether unparseable trailing bytes (a torn tail) were dropped.
    pub torn_tail: bool,
    /// Byte length of the journal up to (excluding) the torn tail;
    /// resuming truncates the file here before appending.
    pub valid_len: u64,
}

/// Reads a journal back, tolerating a torn tail and skipping corrupt
/// or duplicate records. Never panics on arbitrary file contents.
///
/// # Errors
///
/// [`JournalError::Io`] if the file cannot be read, and
/// [`JournalError::MissingHeader`] if the first line is not a valid
/// header record (nothing else in the file can be trusted then).
pub fn replay(path: &Path) -> Result<Replay, JournalError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let mut header: Option<JournalHeader> = None;
    let mut records = Vec::new();
    let mut seen_jobs = std::collections::HashSet::new();
    let mut seen_marks = std::collections::HashSet::new();
    let mut skipped_records = 0usize;
    let mut torn_tail = false;
    let mut valid_len = bytes.len() as u64;

    let mut pos = 0usize;
    while pos < bytes.len() {
        let (line, next, complete) = match bytes[pos..].iter().position(|&b| b == b'\n') {
            Some(nl) => (&bytes[pos..pos + nl], pos + nl + 1, true),
            None => (&bytes[pos..], bytes.len(), false),
        };
        let decoded = decode_line(line);
        if header.is_none() {
            // The first line must be the header; anything else means
            // the journal is unattributable.
            match decoded {
                Some(Line::Header(h)) if complete => header = Some(h),
                _ => {
                    return Err(JournalError::MissingHeader {
                        path: path.to_path_buf(),
                    })
                }
            }
            pos = next;
            continue;
        }
        match decoded {
            Some(Line::Rec(Record::Job { job, report })) if complete => {
                if seen_jobs.insert(job) {
                    records.push(Record::Job { job, report });
                } else {
                    skipped_records += 1;
                }
            }
            Some(Line::Rec(Record::Marker { name })) if complete => {
                if seen_marks.insert(name.clone()) {
                    records.push(Record::Marker { name });
                } else {
                    skipped_records += 1;
                }
            }
            Some(Line::Header(_)) if complete => skipped_records += 1,
            _ if !complete => {
                // Unterminated trailing bytes: a torn tail from a
                // crash mid-append. Truncate here on resume.
                torn_tail = true;
                valid_len = pos as u64;
            }
            _ => skipped_records += 1,
        }
        pos = next;
    }

    match header {
        Some(header) => Ok(Replay {
            header,
            records,
            skipped_records,
            torn_tail,
            valid_len,
        }),
        None => Err(JournalError::MissingHeader {
            path: path.to_path_buf(),
        }),
    }
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only journal writer backed by a dedicated thread with
/// batched fsync: records queue on a channel, the writer drains
/// whatever is available, writes it in one `write_all` and issues a
/// single `fsync` per drained batch — so a hot campaign amortizes
/// syncs while an idle one still persists every record promptly.
#[derive(Debug)]
pub struct JournalWriter {
    tx: Option<mpsc::Sender<Vec<u8>>>,
    handle: Option<std::thread::JoinHandle<io::Result<()>>>,
    path: PathBuf,
}

impl JournalWriter {
    /// Starts a fresh journal at `path` (parent directories are
    /// created), writing and syncing the header before returning.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be created or the
    /// header cannot be written.
    pub fn create(path: &Path, header: &JournalHeader) -> Result<Self, JournalError> {
        Self::create_with(path, header, None)
    }

    /// [`create`](JournalWriter::create) with optional passive
    /// telemetry: the writer thread counts queued records and times
    /// each batched fsync into it.
    ///
    /// # Errors
    ///
    /// As [`create`](JournalWriter::create).
    pub fn create_with(
        path: &Path,
        header: &JournalHeader,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self, JournalError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| io_err(path, e))?;
            }
        }
        let mut file = fs::File::create(path).map_err(|e| io_err(path, e))?;
        file.write_all(&encode_header(header))
            .and_then(|()| file.sync_data())
            .map_err(|e| io_err(path, e))?;
        Ok(Self::spawn(file, path, telemetry))
    }

    /// Reopens an existing journal for appending, truncating away a
    /// torn tail first (`valid_len` comes from [`Replay::valid_len`]).
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] if the file cannot be opened or truncated.
    pub fn resume(path: &Path, valid_len: u64) -> Result<Self, JournalError> {
        Self::resume_with(path, valid_len, None)
    }

    /// [`resume`](JournalWriter::resume) with optional passive
    /// telemetry (see [`create_with`](JournalWriter::create_with)).
    ///
    /// # Errors
    ///
    /// As [`resume`](JournalWriter::resume).
    pub fn resume_with(
        path: &Path,
        valid_len: u64,
        telemetry: Option<Arc<Telemetry>>,
    ) -> Result<Self, JournalError> {
        let mut file = fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(valid_len)
            .and_then(|()| file.seek(io::SeekFrom::End(0)).map(|_| ()))
            .map_err(|e| io_err(path, e))?;
        Ok(Self::spawn(file, path, telemetry))
    }

    fn spawn(mut file: fs::File, path: &Path, telemetry: Option<Arc<Telemetry>>) -> Self {
        let (tx, rx) = mpsc::channel::<Vec<u8>>();
        let handle = std::thread::spawn(move || -> io::Result<()> {
            while let Ok(first) = rx.recv() {
                let mut buf = first;
                let mut records = 1u64;
                while let Ok(more) = rx.try_recv() {
                    buf.extend_from_slice(&more);
                    records += 1;
                }
                file.write_all(&buf)?;
                match &telemetry {
                    Some(t) => {
                        let sync = crate::telemetry::Stopwatch::start();
                        file.sync_data()?;
                        t.journal_records(records);
                        t.journal_fsync(sync.elapsed());
                    }
                    None => file.sync_data()?,
                }
            }
            file.sync_all()
        });
        JournalWriter {
            tx: Some(tx),
            handle: Some(handle),
            path: path.to_path_buf(),
        }
    }

    /// Queues a completed-job record. Errors surface at [`finish`].
    ///
    /// [`finish`]: JournalWriter::finish
    pub fn append_job(&self, job: usize, report: &RunReport) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(encode_job(job, report));
        }
    }

    /// Queues a completion marker. `name` must not contain `"` or `\`
    /// (identifiers only); offending names are recorded stripped.
    pub fn append_marker(&self, name: &str) {
        let clean: String = name.chars().filter(|c| *c != '"' && *c != '\\').collect();
        if let Some(tx) = &self.tx {
            let _ = tx.send(encode_marker(&clean));
        }
    }

    /// Flushes everything queued, fsyncs and joins the writer thread.
    ///
    /// # Errors
    ///
    /// [`JournalError::Io`] with the first write/sync failure the
    /// writer thread hit.
    pub fn finish(mut self) -> Result<(), JournalError> {
        self.tx = None; // close the channel; the writer drains and exits
        let handle = self.handle.take().expect("finish runs once");
        match handle.join() {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(io_err(&self.path, e)),
            Err(_) => Err(io_err(
                &self.path,
                io::Error::other("journal writer thread panicked"),
            )),
        }
    }
}

impl Drop for JournalWriter {
    fn drop(&mut self) {
        self.tx = None;
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_path(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "clumsy-journal-{}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed),
            tag
        ))
    }

    fn sample_report(faults: u64) -> RunReport {
        let mut error_counts = BTreeMap::new();
        error_counts.insert(ErrorCategory::Ttl, 3);
        error_counts.insert(ErrorCategory::Checksum, 1);
        RunReport {
            app: "tl",
            packets_attempted: 100,
            packets_completed: 97,
            fatal: Some(FatalInfo {
                packet_index: 97,
                error: AppError::Fatal(FatalError::FuelExhausted { budget: 12345 }),
            }),
            dropped_packets: 2,
            erroneous_packets: 4,
            error_counts,
            init_obs_total: 8,
            init_obs_wrong: 1,
            instructions: 987_654,
            cycles: 1234.5678,
            energy: energy_model::EnergyBreakdown {
                core_nj: 1.5,
                l1_nj: 0.25,
                l2_nj: f64::NAN, // must still round-trip bitwise
                mem_nj: -0.0,
                overhead_nj: 3e-300,
            },
            stats: cache_sim::MemStats {
                reads: 10,
                writes: 20,
                faults_injected: faults,
                ..Default::default()
            },
            freq_trace: vec![(0, 1.0), (100, 0.25)],
            epoch_faults: vec![0, 7, 2],
        }
    }

    fn bitwise_eq(a: &RunReport, b: &RunReport) -> bool {
        // PartialEq is almost enough, but NaN != NaN; compare floats by
        // bit pattern instead.
        encode_report(a) == encode_report(b)
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn report_round_trips_bitwise_including_nan_and_negative_zero() {
        for r in [
            sample_report(5),
            RunReport {
                fatal: None,
                freq_trace: Vec::new(),
                epoch_faults: Vec::new(),
                error_counts: BTreeMap::new(),
                ..sample_report(0)
            },
            RunReport {
                fatal: Some(FatalInfo {
                    packet_index: 3,
                    error: AppError::Fatal(FatalError::MemoryFault(
                        cache_sim::MemError::Misaligned { addr: 13, align: 4 },
                    )),
                }),
                ..sample_report(1)
            },
        ] {
            let body = encode_report(&r);
            let mut sc = Scanner::new(&body);
            let back = decode_report(&mut sc).expect("decodes");
            sc.done().expect("consumed fully");
            assert!(bitwise_eq(&r, &back), "round trip diverged: {body}");
        }
    }

    #[test]
    fn header_and_records_survive_a_write_read_cycle() {
        let path = tmp_path("cycle");
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 42,
            trials: 3,
            scale: 777,
            points: 2,
            grid: 0xDEAD_BEEF,
        };
        let w = JournalWriter::create(&path, &header).unwrap();
        w.append_job(0, &sample_report(1));
        w.append_job(5, &sample_report(2));
        w.append_marker("table1");
        w.finish().unwrap();

        let replay = replay(&path).unwrap();
        assert_eq!(replay.header, header);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.skipped_records, 0);
        assert!(!replay.torn_tail);
        assert!(matches!(&replay.records[0], Record::Job { job: 0, .. }));
        assert!(matches!(&replay.records[1], Record::Job { job: 5, .. }));
        assert!(matches!(&replay.records[2], Record::Marker { name } if name == "table1"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated_and_truncated_on_resume() {
        let path = tmp_path("torn");
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 1,
            trials: 1,
            scale: 1,
            points: 1,
            grid: 1,
        };
        let w = JournalWriter::create(&path, &header).unwrap();
        w.append_job(0, &sample_report(1));
        w.finish().unwrap();
        let clean_len = fs::metadata(&path).unwrap().len();

        // Simulate a crash mid-append: half a record, no newline.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"crc\":123,\"body\":{\"kind\":\"job\",\"jo")
            .unwrap();
        drop(f);

        let r = replay(&path).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.valid_len, clean_len);
        assert_eq!(r.records.len(), 1);

        // Resuming truncates the tail and appends cleanly after it.
        let w = JournalWriter::resume(&path, r.valid_len).unwrap();
        w.append_job(1, &sample_report(2));
        w.finish().unwrap();
        let r2 = replay(&path).unwrap();
        assert!(!r2.torn_tail);
        assert_eq!(r2.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_jobs_are_never_double_counted() {
        let path = tmp_path("dup");
        let header = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 1,
            trials: 1,
            scale: 1,
            points: 1,
            grid: 1,
        };
        let w = JournalWriter::create(&path, &header).unwrap();
        w.append_job(2, &sample_report(1));
        w.append_job(2, &sample_report(9));
        w.finish().unwrap();
        let r = replay(&path).unwrap();
        assert_eq!(r.records.len(), 1, "first record wins");
        assert_eq!(r.skipped_records, 1);
        let Record::Job { report, .. } = &r.records[0] else {
            panic!("job expected");
        };
        assert_eq!(report.stats.faults_injected, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_mismatch_names_the_differing_field() {
        let a = JournalHeader {
            version: JOURNAL_VERSION,
            seed: 10,
            trials: 2,
            scale: 5,
            points: 4,
            grid: 99,
        };
        let mut b = a;
        b.seed = 11;
        let err = a.check(&b).unwrap_err();
        assert!(matches!(
            &err,
            JournalError::HeaderMismatch { field: "seed", .. }
        ));
        assert!(err.to_string().contains("seed"));
        let mut c = a;
        c.grid = 1;
        assert!(matches!(
            a.check(&c).unwrap_err(),
            JournalError::HeaderMismatch { field: "grid", .. }
        ));
        assert!(a.check(&a).is_ok());
    }

    #[test]
    fn missing_or_corrupt_header_is_a_structured_error() {
        let path = tmp_path("nohdr");
        fs::write(&path, b"not a journal at all\n").unwrap();
        assert!(matches!(
            replay(&path).unwrap_err(),
            JournalError::MissingHeader { .. }
        ));
        fs::write(&path, b"").unwrap();
        assert!(matches!(
            replay(&path).unwrap_err(),
            JournalError::MissingHeader { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let path = tmp_path("atomic");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        // No temp litter left behind.
        let dir = path.parent().unwrap();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let litter = fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(&name))
            .count();
        assert_eq!(litter, 1, "only the target file remains");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"a"), fnv1a64(b"b"));
        assert_eq!(fnv1a64(b"grid"), fnv1a64(b"grid"));
    }
}
