//! Criterion benchmarks for the memory-hierarchy simulator itself:
//! how fast the substrate executes cache accesses under the different
//! detection/recovery configurations.

use cache_sim::{DetectionScheme, MemConfig, MemSystem, StrikePolicy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("l1_hit");
    group.throughput(Throughput::Elements(1024));
    for (label, detection) in [
        ("no_detection", DetectionScheme::None),
        ("parity", DetectionScheme::Parity),
    ] {
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            let cfg = MemConfig::strongarm().with_detection(detection);
            let mut mem = MemSystem::new(cfg, 1);
            for i in 0..1024u32 {
                mem.write_u32((i % 512) * 4, i).unwrap();
            }
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..1024u32 {
                    acc = acc.wrapping_add(mem.read_u32((i % 512) * 4).unwrap());
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_miss_path(c: &mut Criterion) {
    c.bench_function("l1_miss_refill", |b| {
        let mut mem = MemSystem::new(MemConfig::strongarm(), 1);
        let mut addr = 0u32;
        b.iter(|| {
            // Stride by one L1 line across a span larger than the cache.
            addr = (addr + 32) % (1 << 20);
            mem.read_u32(addr).unwrap()
        });
    });
}

fn bench_overclocked_fault_path(c: &mut Criterion) {
    c.bench_function("l1_hit_cr_0.25_two_strike", |b| {
        let cfg = MemConfig::strongarm()
            .with_detection(DetectionScheme::Parity)
            .with_strikes(StrikePolicy::two_strike());
        let mut mem = MemSystem::new(cfg, 1);
        mem.set_cycle_free(0.25);
        for i in 0..512u32 {
            mem.write_u32(i * 4, i).unwrap();
        }
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 1) % 512;
            mem.read_u32(i * 4).unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_hits,
    bench_miss_path,
    bench_overclocked_fault_path
);
criterion_main!(benches);
