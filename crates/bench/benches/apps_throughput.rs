//! Criterion benchmarks for the seven NetBench workloads: simulated
//! packets per second through the full machine (cache, faults, fuel).

use clumsy_core::{ClumsyConfig, ClumsyProcessor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netbench::{AppKind, TraceConfig};

fn bench_apps(c: &mut Criterion) {
    let trace = TraceConfig::small().with_packets(100).generate();
    let mut group = c.benchmark_group("app_packets");
    group.throughput(Throughput::Elements(trace.packets.len() as u64));
    group.sample_size(10);
    for kind in AppKind::all() {
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            let golden = ClumsyProcessor::golden(kind, &trace);
            let proc = ClumsyProcessor::new(ClumsyConfig::paper_best());
            b.iter(|| proc.run_with_golden(kind, &trace, &golden));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
