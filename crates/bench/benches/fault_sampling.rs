//! Criterion benchmarks for the fault model: closed-form evaluation,
//! per-access sampling, and the numerical noise integration.

use criterion::{criterion_group, criterion_main, Criterion};
use fault_model::{FaultProbabilityModel, FaultSampler, IntegratedFaultModel};
use std::hint::black_box;

fn bench_closed_form(c: &mut Criterion) {
    let model = FaultProbabilityModel::calibrated();
    c.bench_function("closed_form_eval", |b| {
        let mut cr = 0.25;
        b.iter(|| {
            cr = if cr > 0.9 { 0.25 } else { cr + 0.01 };
            black_box(model.per_bit_at_cycle(cr))
        });
    });
}

fn bench_sampling(c: &mut Criterion) {
    c.bench_function("sampler_per_access", |b| {
        let mut s = FaultSampler::new(FaultProbabilityModel::calibrated(), 3);
        s.set_cycle(0.25);
        b.iter(|| black_box(s.sample(32)));
    });
}

fn bench_integration(c: &mut Criterion) {
    let model = IntegratedFaultModel::calibrated();
    c.bench_function("noise_integration_per_swing", |b| {
        let mut vsr = 0.4;
        b.iter(|| {
            vsr = if vsr > 0.99 { 0.4 } else { vsr + 0.001 };
            black_box(model.per_bit_at_swing(vsr))
        });
    });
}

criterion_group!(
    benches,
    bench_closed_form,
    bench_sampling,
    bench_integration
);
criterion_main!(benches);
