//! Shared helpers for the reproduction harness: table printing, CSV
//! output for every regenerated figure/table, and the process exit
//! codes every harness binary agrees on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Exit status: everything completed.
pub const EXIT_OK: i32 = 0;
/// Exit status: the run finished but something failed — exhausted
/// campaign jobs, a failed driver, or result-file I/O.
pub const EXIT_FAILURES: i32 = 1;
/// Exit status: the invocation itself was wrong — bad flags, an
/// unknown command, or a journal that belongs to a different run
/// configuration (a refused resume).
pub const EXIT_USAGE: i32 = 2;
/// Exit status: interrupted (e.g. SIGINT/SIGTERM) with work left; the
/// journal is resumable with `--resume`.
pub const EXIT_INTERRUPTED: i32 = 3;

/// Maps a journal error onto the shared exit codes: I/O trouble is a
/// runtime failure ([`EXIT_FAILURES`]); a missing or mismatched header
/// means the caller pointed a resume at the wrong journal
/// ([`EXIT_USAGE`]).
pub fn journal_exit_code(err: &clumsy_core::JournalError) -> i32 {
    match err {
        clumsy_core::JournalError::Io { .. } => EXIT_FAILURES,
        clumsy_core::JournalError::MissingHeader { .. }
        | clumsy_core::JournalError::HeaderMismatch { .. } => EXIT_USAGE,
    }
}

/// A failed filesystem operation, carrying the path for context so
/// disk-full and permission errors surface usably instead of as a
/// bare panic.
#[derive(Debug)]
pub struct IoFailure {
    /// The file or directory the operation targeted.
    pub path: PathBuf,
    /// The OS error.
    pub source: std::io::Error,
}

impl std::fmt::Display for IoFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot write {}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for IoFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl IoFailure {
    fn new(path: PathBuf, source: std::io::Error) -> Self {
        IoFailure { path, source }
    }
}

/// Unwraps a result-file operation, printing the failure to stderr and
/// exiting with [`EXIT_FAILURES`] — the benchmark-binary equivalent of
/// `?`.
pub fn or_exit<T>(result: Result<T, IoFailure>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(EXIT_FAILURES);
    })
}

/// Directory the harness writes CSVs into (`results/` at the workspace
/// root, overridable with `CLUMSY_RESULTS`).
///
/// # Errors
///
/// [`IoFailure`] if `CLUMSY_RESULTS` is set but empty (or whitespace),
/// if the working directory is unreadable while locating the workspace
/// root, or if the directory cannot be created. An empty override or a
/// vanished cwd must surface, not silently land CSVs in `"."`.
pub fn results_dir() -> Result<PathBuf, IoFailure> {
    let dir = match std::env::var("CLUMSY_RESULTS") {
        Ok(v) if v.trim().is_empty() => {
            return Err(IoFailure::new(
                PathBuf::from("$CLUMSY_RESULTS"),
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    "CLUMSY_RESULTS is set but empty; unset it or point it at a directory",
                ),
            ));
        }
        Ok(v) => PathBuf::from(v),
        Err(_) => {
            let cwd = std::env::current_dir()
                .map_err(|e| IoFailure::new(PathBuf::from("<current dir>"), e))?;
            workspace_root(&cwd).unwrap_or(cwd).join("results")
        }
    };
    fs::create_dir_all(&dir).map_err(|e| IoFailure::new(dir.clone(), e))?;
    Ok(dir)
}

/// Directory run journals live in (`results/journal/`), created on
/// demand next to the CSVs so campaign state survives any cwd.
///
/// # Errors
///
/// [`IoFailure`] if the directory cannot be created.
pub fn journal_dir() -> Result<PathBuf, IoFailure> {
    let dir = results_dir()?.join("journal");
    fs::create_dir_all(&dir).map_err(|e| IoFailure::new(dir.clone(), e))?;
    Ok(dir)
}

/// Walks up from `start` to the workspace root: the first ancestor whose
/// `Cargo.toml` contains a `[workspace]` table. A crate manifest alone
/// does not qualify, so running from inside `crates/bench/` still lands
/// on the top-level `results/` directory. Returns `None` when no
/// workspace manifest exists on the path (e.g. an installed binary run
/// outside the repo).
fn workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    start.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        let text = fs::read_to_string(&manifest).ok()?;
        text.lines()
            .any(|l| l.trim() == "[workspace]")
            .then(|| dir.to_path_buf())
    })
}

/// Writes a CSV file into [`results_dir`] atomically (temp file +
/// fsync + rename, so a crash mid-write never leaves a truncated CSV),
/// returning its path.
///
/// # Errors
///
/// [`IoFailure`] if the results directory or the file cannot be
/// written.
///
/// # Panics
///
/// Panics if a row width mismatches the header (a programming error,
/// not an I/O condition).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> Result<PathBuf, IoFailure> {
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch in {name}");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    write_file(name, out.as_bytes())
}

/// Atomically writes an arbitrary result file into [`results_dir`],
/// returning its path.
///
/// # Errors
///
/// [`IoFailure`] if the results directory or the file cannot be
/// written.
pub fn write_file(name: &str, bytes: &[u8]) -> Result<PathBuf, IoFailure> {
    let path = results_dir()?.join(name);
    clumsy_core::atomic_write(&path, bytes).map_err(|e| IoFailure::new(path.clone(), e))?;
    Ok(path)
}

/// Pretty-prints a table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a horizontal ASCII bar chart (one bar per labelled value),
/// scaled to `width` characters at `max` (values beyond `max` are
/// clipped and marked, like the paper's out-of-range bars).
pub fn print_bars(title: &str, bars: &[(String, f64)], max: f64, width: usize) {
    assert!(max > 0.0, "bar scale must be positive");
    assert!(width > 0, "bar width must be positive");
    println!("\n-- {title} (scale: {max:.2} = {width} chars) --");
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in bars {
        let clipped = value.min(max);
        let n = ((clipped / max) * width as f64).round() as usize;
        let marker = if *value > max { ">" } else { "" };
        println!(
            "{label:>label_w$} |{bar:<width$}| {value:.3}{marker}",
            bar = "#".repeat(n)
        );
    }
}

/// Shared driver for Figures 6 (route) and 7 (nat): per-structure error
/// probabilities by fault plane and clock.
///
/// # Errors
///
/// [`IoFailure`] if the CSV cannot be written.
pub fn run_plane_error_figure(kind: netbench::AppKind, csv: &str) -> Result<(), IoFailure> {
    use clumsy_core::experiment::{plane_error_study, ExperimentOptions};

    let opts = ExperimentOptions::from_env();
    let cells = plane_error_study(kind, &opts);
    let mut rows = Vec::new();
    for cell in &cells {
        for (cat, p) in &cell.categories {
            rows.push(vec![
                cell.plane.to_string(),
                f(cell.cr),
                cat.label().to_string(),
                f(*p),
            ]);
        }
        rows.push(vec![
            cell.plane.to_string(),
            f(cell.cr),
            "fatal".to_string(),
            f(cell.fatal),
        ]);
    }
    let header = [
        "faults_in_plane",
        "relative_cycle_time",
        "category",
        "error_probability",
    ];
    print_table(
        &format!("Error probability of the {kind} application (Figures 6/7)"),
        &header,
        &rows,
    );
    let path = write_csv(csv, &header, &rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 || v.abs() >= 100_000.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// `CLUMSY_RESULTS` and the cwd are process-global; every test that
    /// touches either serializes on this lock.
    fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert_eq!(f(2.59e-7), "2.590e-7");
    }

    #[test]
    fn bars_do_not_panic_and_clip() {
        print_bars("unit", &[("a".into(), 0.5), ("b".into(), 3.0)], 2.0, 20);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bars_reject_zero_scale() {
        print_bars("bad", &[], 0.0, 10);
    }

    #[test]
    fn workspace_root_skips_crate_manifests() {
        let tmp = std::env::temp_dir().join("clumsy-ws-root-test");
        let nested = tmp.join("crates").join("bench").join("src");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(
            tmp.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        std::fs::write(
            tmp.join("crates").join("bench").join("Cargo.toml"),
            "[package]\nname = \"x\"\n",
        )
        .unwrap();
        // From deep inside a crate, the crate manifest must be skipped
        // in favour of the workspace manifest above it.
        assert_eq!(workspace_root(&nested), Some(tmp.clone()));
        // From the root itself.
        assert_eq!(workspace_root(&tmp), Some(tmp.clone()));
        // A tree with no workspace manifest yields None.
        let bare = tmp.join("crates").join("bench").join("src").join("deep");
        std::fs::create_dir_all(&bare).unwrap();
        std::fs::remove_file(tmp.join("Cargo.toml")).unwrap();
        assert_eq!(workspace_root(&bare), None);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn empty_or_whitespace_results_override_is_rejected() {
        let _guard = env_lock();
        for bad in ["", "   ", "\t\n"] {
            std::env::set_var("CLUMSY_RESULTS", bad);
            let err = results_dir().expect_err("blank override must not be a path");
            assert!(
                err.to_string().contains("CLUMSY_RESULTS"),
                "error must name the variable: {err}"
            );
            assert_eq!(
                err.source.kind(),
                std::io::ErrorKind::InvalidInput,
                "{bad:?}"
            );
        }
        std::env::remove_var("CLUMSY_RESULTS");
    }

    #[test]
    #[cfg(unix)]
    fn unreadable_cwd_is_a_typed_error_not_a_dot_fallback() {
        let _guard = env_lock();
        std::env::remove_var("CLUMSY_RESULTS");
        let original = std::env::current_dir().unwrap();
        let doomed = std::env::temp_dir().join("clumsy-vanishing-cwd");
        std::fs::create_dir_all(&doomed).unwrap();
        std::env::set_current_dir(&doomed).unwrap();
        std::fs::remove_dir(&doomed).unwrap();
        let got = results_dir();
        std::env::set_current_dir(&original).unwrap();
        let err = got.expect_err("a vanished cwd must surface as IoFailure");
        assert!(
            err.to_string().contains("current dir"),
            "error must point at the cwd: {err}"
        );
    }

    #[test]
    fn journal_errors_map_onto_the_shared_exit_codes() {
        let io = clumsy_core::JournalError::Io {
            path: PathBuf::from("j"),
            source: std::io::Error::other("disk"),
        };
        assert_eq!(journal_exit_code(&io), EXIT_FAILURES);
        let missing = clumsy_core::JournalError::MissingHeader {
            path: PathBuf::from("j"),
        };
        assert_eq!(journal_exit_code(&missing), EXIT_USAGE);
        let mismatch = clumsy_core::JournalError::HeaderMismatch {
            field: "seed",
            journal: "1".into(),
            expected: "2".into(),
        };
        assert_eq!(journal_exit_code(&mismatch), EXIT_USAGE);
        assert_eq!(
            [EXIT_OK, EXIT_FAILURES, EXIT_USAGE, EXIT_INTERRUPTED],
            [0, 1, 2, 3],
            "the exit-code table is part of the documented contract"
        );
    }

    #[test]
    fn csv_round_trip() {
        let _guard = env_lock();
        std::env::set_var(
            "CLUMSY_RESULTS",
            std::env::temp_dir().join("clumsy-test-results"),
        );
        let p = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .expect("temp results dir is writable");
        let text = std::fs::read_to_string(p).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let j = journal_dir().expect("journal dir under results");
        assert!(j.ends_with("journal") && j.is_dir());
        std::env::remove_var("CLUMSY_RESULTS");
    }

    #[test]
    fn io_failure_reports_path_and_source() {
        let _guard = env_lock();
        std::env::set_var(
            "CLUMSY_RESULTS",
            std::env::temp_dir().join("clumsy-test-results-ro"),
        );
        // Writing *through a file as if it were a directory* must fail
        // with a typed error, not a panic.
        let dir = std::env::temp_dir().join("clumsy-test-results-ro");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("blocker"), b"x").unwrap();
        let err = write_file("blocker/nested.csv", b"data").expect_err("must fail");
        assert!(err.to_string().contains("nested.csv"));
        assert!(std::error::Error::source(&err).is_some());
        std::env::remove_var("CLUMSY_RESULTS");
    }
}
