//! Shared helpers for the reproduction harness: table printing and CSV
//! output for every regenerated figure/table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::path::PathBuf;

/// Directory the harness writes CSVs into (`results/` at the workspace
/// root, overridable with `CLUMSY_RESULTS`).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("CLUMSY_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            let cwd = std::env::current_dir().expect("cwd is accessible");
            workspace_root(&cwd).unwrap_or(cwd).join("results")
        });
    fs::create_dir_all(&dir).expect("results directory is creatable");
    dir
}

/// Walks up from `start` to the workspace root: the first ancestor whose
/// `Cargo.toml` contains a `[workspace]` table. A crate manifest alone
/// does not qualify, so running from inside `crates/bench/` still lands
/// on the top-level `results/` directory. Returns `None` when no
/// workspace manifest exists on the path (e.g. an installed binary run
/// outside the repo).
fn workspace_root(start: &std::path::Path) -> Option<PathBuf> {
    start.ancestors().find_map(|dir| {
        let manifest = dir.join("Cargo.toml");
        let text = fs::read_to_string(&manifest).ok()?;
        text.lines()
            .any(|l| l.trim() == "[workspace]")
            .then(|| dir.to_path_buf())
    })
}

/// Writes a CSV file into [`results_dir`], returning its path.
///
/// # Panics
///
/// Panics if the file cannot be written or a row width mismatches the
/// header.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let path = results_dir().join(name);
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width mismatch in {name}");
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("results CSV is writable");
    path
}

/// Pretty-prints a table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Renders a horizontal ASCII bar chart (one bar per labelled value),
/// scaled to `width` characters at `max` (values beyond `max` are
/// clipped and marked, like the paper's out-of-range bars).
pub fn print_bars(title: &str, bars: &[(String, f64)], max: f64, width: usize) {
    assert!(max > 0.0, "bar scale must be positive");
    assert!(width > 0, "bar width must be positive");
    println!("\n-- {title} (scale: {max:.2} = {width} chars) --");
    let label_w = bars.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    for (label, value) in bars {
        let clipped = value.min(max);
        let n = ((clipped / max) * width as f64).round() as usize;
        let marker = if *value > max { ">" } else { "" };
        println!(
            "{label:>label_w$} |{bar:<width$}| {value:.3}{marker}",
            bar = "#".repeat(n)
        );
    }
}

/// Shared driver for Figures 6 (route) and 7 (nat): per-structure error
/// probabilities by fault plane and clock.
pub fn run_plane_error_figure(kind: netbench::AppKind, csv: &str) {
    use clumsy_core::experiment::{plane_error_study, ExperimentOptions};

    let opts = ExperimentOptions::from_env();
    let cells = plane_error_study(kind, &opts);
    let mut rows = Vec::new();
    for cell in &cells {
        for (cat, p) in &cell.categories {
            rows.push(vec![
                cell.plane.to_string(),
                f(cell.cr),
                cat.label().to_string(),
                f(*p),
            ]);
        }
        rows.push(vec![
            cell.plane.to_string(),
            f(cell.cr),
            "fatal".to_string(),
            f(cell.fatal),
        ]);
    }
    let header = [
        "faults_in_plane",
        "relative_cycle_time",
        "category",
        "error_probability",
    ];
    print_table(
        &format!("Error probability of the {kind} application (Figures 6/7)"),
        &header,
        &rows,
    );
    let path = write_csv(csv, &header, &rows);
    println!("\nwrote {}", path.display());
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() < 0.001 || v.abs() >= 100_000.0 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert_eq!(f(2.59e-7), "2.590e-7");
    }

    #[test]
    fn bars_do_not_panic_and_clip() {
        print_bars("unit", &[("a".into(), 0.5), ("b".into(), 3.0)], 2.0, 20);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn bars_reject_zero_scale() {
        print_bars("bad", &[], 0.0, 10);
    }

    #[test]
    fn workspace_root_skips_crate_manifests() {
        let tmp = std::env::temp_dir().join("clumsy-ws-root-test");
        let nested = tmp.join("crates").join("bench").join("src");
        std::fs::create_dir_all(&nested).unwrap();
        std::fs::write(
            tmp.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        std::fs::write(
            tmp.join("crates").join("bench").join("Cargo.toml"),
            "[package]\nname = \"x\"\n",
        )
        .unwrap();
        // From deep inside a crate, the crate manifest must be skipped
        // in favour of the workspace manifest above it.
        assert_eq!(workspace_root(&nested), Some(tmp.clone()));
        // From the root itself.
        assert_eq!(workspace_root(&tmp), Some(tmp.clone()));
        // A tree with no workspace manifest yields None.
        let bare = tmp.join("crates").join("bench").join("src").join("deep");
        std::fs::create_dir_all(&bare).unwrap();
        std::fs::remove_file(tmp.join("Cargo.toml")).unwrap();
        assert_eq!(workspace_root(&bare), None);
        std::fs::remove_dir_all(&tmp).ok();
    }

    #[test]
    fn csv_round_trip() {
        std::env::set_var(
            "CLUMSY_RESULTS",
            std::env::temp_dir().join("clumsy-test-results"),
        );
        let p = write_csv(
            "unit_test.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(p).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        std::env::remove_var("CLUMSY_RESULTS");
    }
}
