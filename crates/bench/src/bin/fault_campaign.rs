//! Fault-outcome campaign: runs the paper's (application × strike
//! policy × clock) design space under the crash-isolated campaign
//! driver, classifies every trial with the four-way outcome taxonomy
//! (masked / detected-recovered / detected-fatal / SDC), and records
//! the per-cell SDC-rate CSV.
//!
//! `--smoke` instead runs a tiny self-check of the isolation machinery:
//! a grid with one deliberately panicking design point must still
//! return results for every healthy point and report the failure in the
//! campaign's failure list, exiting 0. The smoke run writes no CSV.
//!
//! `--durable` journals every completed trial to
//! `results/journal/fault_campaign.jsonl` and installs a SIGINT/SIGTERM
//! handler; an interrupted run exits with status 3 and `--resume` picks
//! it up where it stopped, producing a bitwise-identical CSV.
//!
//! `--metrics <path>` writes the telemetry counters as JSON after the
//! run (including an interrupted one); `--progress` prints periodic
//! progress/ETA lines on stderr. Both are strictly passive: the CSV is
//! bitwise identical with or without them.

use clumsy_bench::{journal_exit_code, EXIT_FAILURES, EXIT_INTERRUPTED, EXIT_USAGE};
use clumsy_core::experiment::{paper_schemes, ExperimentOptions, GridPoint};
use clumsy_core::{
    interrupt, run_campaign_durable, run_campaign_instrumented, run_campaign_on, CampaignConfig,
    CampaignReport, ClumsyConfig, DurableOptions, DynamicConfig, Engine, JobFailure,
    ProgressReporter, Telemetry, PAPER_CYCLE_TIMES,
};
use netbench::{AppKind, TraceConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
    } else {
        let durable = args.iter().any(|a| a == "--durable");
        let resume = args.iter().any(|a| a == "--resume");
        let progress = args.iter().any(|a| a == "--progress");
        let metrics = args.iter().position(|a| a == "--metrics").map(|i| {
            args.get(i + 1).map(PathBuf::from).unwrap_or_else(|| {
                eprintln!("error: --metrics needs a path");
                std::process::exit(EXIT_USAGE);
            })
        });
        full(durable || resume, resume, metrics, progress);
    }
}

/// Writes the telemetry counters to `path` (atomic), exiting with the
/// shared runtime-failure status if the write fails.
fn write_metrics(path: &std::path::Path, telemetry: &Arc<Telemetry>) {
    if let Err(e) = clumsy_core::atomic_write(path, telemetry.metrics_json().as_bytes()) {
        eprintln!("error: writing {}: {e}", path.display());
        std::process::exit(EXIT_FAILURES);
    }
    eprintln!("wrote metrics {}", path.display());
}

/// The paper grid for one app set: every scheme × static clock.
fn grid(apps: &[AppKind]) -> (Vec<(&'static str, &'static str, f64)>, Vec<GridPoint>) {
    let mut labels = Vec::new();
    let mut points = Vec::new();
    for app in apps {
        for (scheme, detection, strikes) in paper_schemes() {
            for cr in PAPER_CYCLE_TIMES {
                labels.push((app.name(), scheme, cr));
                points.push(GridPoint::new(
                    *app,
                    ClumsyConfig::baseline()
                        .with_detection(detection)
                        .with_strikes(strikes)
                        .with_static_cycle(cr),
                ));
            }
        }
    }
    (labels, points)
}

fn full(durable: bool, resume: bool, metrics: Option<PathBuf>, progress: bool) {
    let opts = ExperimentOptions::from_env();
    let telemetry = (metrics.is_some() || progress).then(|| Arc::new(Telemetry::new()));
    let mut engine = Engine::from_env();
    if let Some(t) = &telemetry {
        engine = engine.with_telemetry(Arc::clone(t));
    }
    let reporter = telemetry.as_ref().filter(|_| progress).map(|t| {
        ProgressReporter::start(
            Arc::clone(t),
            "fault_campaign",
            std::time::Duration::from_secs(2),
        )
    });
    let trace = opts.trace.generate();
    let (labels, points) = grid(&AppKind::all());
    let report = if durable {
        run_durable(
            &engine,
            &points,
            &trace,
            &opts,
            resume,
            telemetry.as_ref(),
            metrics.as_deref(),
        )
    } else if let Some(t) = &telemetry {
        run_campaign_instrumented(
            &engine,
            &points,
            &trace,
            &opts,
            &CampaignConfig::default(),
            t,
        )
    } else {
        run_campaign_on(&engine, &points, &trace, &opts, &CampaignConfig::default())
    };
    drop(reporter);
    if let (Some(path), Some(t)) = (&metrics, &telemetry) {
        write_metrics(path, t);
    }

    let rows: Vec<Vec<String>> = labels
        .iter()
        .zip(&report.aggregates)
        .map(|(&(app, scheme, cr), agg)| {
            let c = agg.outcome_counts();
            vec![
                app.to_string(),
                format!("{cr:.2}"),
                scheme.to_string(),
                c.total().to_string(),
                c.masked.to_string(),
                c.detected_recovered.to_string(),
                c.detected_fatal.to_string(),
                c.sdc.to_string(),
                clumsy_bench::f(c.sdc_rate()),
            ]
        })
        .collect();
    let header = [
        "app",
        "cr",
        "scheme",
        "trials",
        "masked",
        "detected_recovered",
        "detected_fatal",
        "sdc",
        "sdc_rate",
    ];
    clumsy_bench::print_table(
        "Fault-outcome taxonomy per (app, Cr, strike policy)",
        &header,
        &rows,
    );
    let path = clumsy_bench::or_exit(clumsy_bench::write_csv(
        "fault_campaign.csv",
        &header,
        &rows,
    ));
    println!("\nwrote {}", path.display());

    if !report.is_complete() {
        eprintln!(
            "\n{} of {} jobs failed:",
            report.failures.len(),
            report.total_jobs
        );
        for f in &report.failures {
            let (app, scheme, cr) = labels[f.point];
            eprintln!("  {app}/{scheme}/Cr={cr:.2}: {f}");
        }
        std::process::exit(EXIT_FAILURES);
    }
}

/// Runs the campaign with journaling: interruptions exit 3 leaving a
/// resumable journal; a completed run removes it. Journal I/O failures
/// exit 1; a header/format mismatch (stale or foreign journal) is a
/// usage error and exits 2.
fn run_durable(
    engine: &Engine,
    points: &[GridPoint],
    trace: &netbench::Trace,
    opts: &ExperimentOptions,
    resume: bool,
    telemetry: Option<&Arc<Telemetry>>,
    metrics: Option<&std::path::Path>,
) -> CampaignReport {
    interrupt::install();
    let journal = clumsy_bench::or_exit(clumsy_bench::journal_dir()).join("fault_campaign.jsonl");
    let mut durable = DurableOptions::new(journal.clone())
        .with_resume(resume)
        .with_stop(Arc::new(interrupt::interrupted));
    if let Some(t) = telemetry {
        durable = durable.with_telemetry(Arc::clone(t));
    }
    let outcome = run_campaign_durable(
        engine,
        points,
        trace,
        opts,
        &CampaignConfig::default(),
        &durable,
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(journal_exit_code(&e));
    });
    if outcome.replayed_jobs > 0 {
        eprintln!(
            "resumed: {} of {} jobs replayed from {}",
            outcome.replayed_jobs,
            outcome.report.total_jobs,
            journal.display()
        );
    }
    if outcome.interrupted {
        eprintln!(
            "interrupted after {}/{} jobs; rerun with --resume to finish ({})",
            outcome.report.completed_jobs(),
            outcome.report.total_jobs,
            journal.display()
        );
        // Even an interrupted run leaves its telemetry behind.
        if let (Some(path), Some(t)) = (metrics, telemetry) {
            write_metrics(path, t);
        }
        std::process::exit(EXIT_INTERRUPTED);
    }
    // Finished: the journal has served its purpose.
    std::fs::remove_file(&journal).ok();
    outcome.report
}

fn smoke() {
    let opts = ExperimentOptions {
        trace: TraceConfig::small().with_packets(40),
        trials: 1,
        seed: 0x5EED,
    };
    let trace = opts.trace.generate();
    // The middle point passes grid construction but panics inside its
    // measured run (the dynamic controller rejects an empty level set).
    let points = vec![
        GridPoint::new(AppKind::Crc, ClumsyConfig::baseline()),
        GridPoint::new(
            AppKind::Tl,
            ClumsyConfig::baseline().with_dynamic(DynamicConfig {
                levels: Vec::new(),
                ..DynamicConfig::paper()
            }),
        ),
        GridPoint::new(AppKind::Route, ClumsyConfig::paper_best()),
    ];
    // The poison point's panic is expected — keep it out of the log,
    // then restore the hook so the asserts below stay loud.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let report = run_campaign_on(
        &Engine::from_env(),
        &points,
        &trace,
        &opts,
        &CampaignConfig::default(),
    );
    std::panic::set_hook(prev_hook);

    assert_eq!(report.total_jobs, 3, "one trial per point");
    assert_eq!(report.completed_jobs(), 2, "healthy points must survive");
    assert_eq!(report.aggregates[0].runs.len(), 1);
    assert!(report.aggregates[1].runs.is_empty());
    assert_eq!(report.aggregates[2].runs.len(), 1);
    assert_eq!(report.failures.len(), 1, "the crash must be recorded");
    let failure = &report.failures[0];
    assert_eq!(failure.point, 1);
    assert!(
        matches!(&failure.failure, JobFailure::Panicked(msg) if msg.contains("frequency level")),
        "unexpected failure: {failure}"
    );
    for agg in [&report.aggregates[0], &report.aggregates[2]] {
        let c = agg.outcome_counts();
        assert_eq!(c.total(), 1, "surviving trials classify");
    }
    println!(
        "smoke ok: campaign returned {}/{} jobs and recorded `{}`",
        report.completed_jobs(),
        report.total_jobs,
        failure
    );
}
