//! Sensitivity study: does the headline result survive different
//! traffic-locality regimes? The paper evaluates one trace per
//! application; this sweep re-runs the best-configuration comparison
//! under skewed (edge-router), uniform (core-router) and single-flow
//! (best-locality) traffic.

use clumsy_bench::{f, or_exit, print_table, write_csv};
use clumsy_core::experiment::{run_grid_on, ExperimentOptions, GridPoint};
use clumsy_core::{ClumsyConfig, Engine};
use energy_model::EdfMetric;
use netbench::{AppKind, TrafficPattern};

fn main() {
    // Recorded at the fig9_12_edf fixed seed: this study compares the
    // same knife-edge EDF^2 points as the headline figure (see the
    // comment in that binary).
    let base_opts = ExperimentOptions::from_env_with_seed(118);
    let metric = EdfMetric::paper();
    let patterns = [
        ("skewed", TrafficPattern::Skewed),
        ("uniform", TrafficPattern::Uniform),
        ("single-flow", TrafficPattern::SingleFlow),
    ];
    let mut rows = Vec::new();
    for (label, pattern) in patterns {
        let opts = ExperimentOptions {
            trace: base_opts.trace.clone().with_pattern(pattern),
            ..base_opts.clone()
        };
        let trace = opts.trace.generate();
        // One flat grid per traffic regime: apps x three configurations.
        let points: Vec<GridPoint> = AppKind::all()
            .iter()
            .flat_map(|k| {
                [
                    ClumsyConfig::baseline(),
                    ClumsyConfig::paper_best(),
                    ClumsyConfig::paper_best().with_static_cycle(0.25),
                ]
                .into_iter()
                .map(|c| GridPoint::new(*k, c))
            })
            .collect();
        let aggs = run_grid_on(&Engine::from_env(), &points, &trace, &opts);
        let mut rel_best = 0.0;
        let mut rel_quarter = 0.0;
        let mut miss = 0.0;
        for chunk in aggs.chunks(3) {
            let (baseline, best, quarter) = (&chunk[0], &chunk[1], &chunk[2]);
            let b = baseline.edf(&metric);
            rel_best += best.edf(&metric) / b;
            rel_quarter += quarter.edf(&metric) / b;
            miss += baseline.runs[0].stats.miss_rate();
        }
        let n = AppKind::all().len() as f64;
        rows.push(vec![
            label.to_string(),
            f(miss / n * 100.0),
            f(rel_best / n),
            f(rel_quarter / n),
        ]);
    }
    let header = [
        "traffic",
        "avg_miss_rate_pct",
        "rel_edf2_best_cr_0.5",
        "rel_edf2_cr_0.25",
    ];
    print_table(
        "Sensitivity: headline result vs traffic locality",
        &header,
        &rows,
    );
    println!("\nthe Cr=0.5 optimum should win (or tie) in every regime");
    let path = or_exit(write_csv("sensitivity_traffic.csv", &header, &rows));
    println!("wrote {}", path.display());
}
