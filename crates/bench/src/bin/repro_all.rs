//! Runs every reproduction binary's driver, writing all CSVs under
//! `results/`. Scale with `CLUMSY_PACKETS` / `CLUMSY_TRIALS`.
//!
//! By default the drivers run in sequence with live output. With
//! `--jobs N` (or `CLUMSY_REPRO_JOBS=N`), N drivers run concurrently
//! with captured output replayed as each finishes; the total worker
//! budget (`CLUMSY_JOBS`, default [`std::thread::available_parallelism`])
//! is divided among the children so the machine is not oversubscribed.

use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const BINARIES: &[&str] = &[
    "fig1b_voltage_swing",
    "fig2b_noise_immunity",
    "fig3_noise_distribution",
    "fig4_fault_vs_swing",
    "fig5_fault_vs_cycle",
    "table1",
    "fig6_route_errors",
    "fig7_nat_errors",
    "fig8_fatal_errors",
    "fig9_12_edf",
    "fault_campaign",
    "edx_no_fallibility",
    "cache_energy_sweep",
    "ablation_beta",
    "ablation_epoch",
    "ablation_strike",
    "ablation_quantize",
    "ablation_parity",
    "ablation_memory",
    "extension_recovery",
    "metric_exponents",
    "sensitivity_traffic",
];

fn parse_jobs() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    std::env::var("CLUMSY_REPRO_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

fn worker_budget() -> usize {
    std::env::var("CLUMSY_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

fn main() {
    let exe = std::env::current_exe().expect("own path is known");
    let dir = exe
        .parent()
        .expect("binaries live in a directory")
        .to_path_buf();
    let jobs = parse_jobs().min(BINARIES.len());

    if jobs <= 1 {
        let mut failed = Vec::new();
        for bin in BINARIES {
            println!("\n########## {bin} ##########");
            let status = Command::new(dir.join(bin))
                .status()
                .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
            if !status.success() {
                failed.push(*bin);
            }
        }
        finish(&failed);
        return;
    }

    // Parallel mode: `jobs` runner threads pull the next binary, run it
    // with captured output, and replay that output atomically when the
    // child exits. Each child gets an equal share of the worker budget.
    let child_workers = (worker_budget() / jobs).max(1);
    println!(
        "running {} drivers, {jobs} at a time, {child_workers} worker(s) each",
        BINARIES.len()
    );
    let next = AtomicUsize::new(0);
    let failed: Mutex<Vec<&str>> = Mutex::new(Vec::new());
    let stdout_gate = Mutex::new(());
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bin) = BINARIES.get(i) else { break };
                let output = Command::new(dir.join(bin))
                    .env("CLUMSY_JOBS", child_workers.to_string())
                    .output()
                    .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
                let _gate = stdout_gate.lock().expect("stdout gate poisoned");
                println!("\n########## {bin} ##########");
                print!("{}", String::from_utf8_lossy(&output.stdout));
                eprint!("{}", String::from_utf8_lossy(&output.stderr));
                if !output.status.success() {
                    failed.lock().expect("failure list poisoned").push(bin);
                }
            });
        }
    });
    finish(&failed.into_inner().expect("failure list poisoned"));
}

fn finish(failed: &[&str]) {
    if failed.is_empty() {
        println!("\nall {} reproduction drivers completed", BINARIES.len());
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
