//! Runs every reproduction binary's driver in sequence, writing all
//! CSVs under `results/`. Scale with `CLUMSY_PACKETS` / `CLUMSY_TRIALS`.

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig1b_voltage_swing",
    "fig2b_noise_immunity",
    "fig3_noise_distribution",
    "fig4_fault_vs_swing",
    "fig5_fault_vs_cycle",
    "table1",
    "fig6_route_errors",
    "fig7_nat_errors",
    "fig8_fatal_errors",
    "fig9_12_edf",
    "edx_no_fallibility",
    "cache_energy_sweep",
    "ablation_beta",
    "ablation_epoch",
    "ablation_strike",
    "ablation_quantize",
    "ablation_parity",
    "ablation_memory",
    "extension_recovery",
    "metric_exponents",
    "sensitivity_traffic",
];

fn main() {
    let exe = std::env::current_exe().expect("own path is known");
    let dir = exe.parent().expect("binaries live in a directory");
    let mut failed = Vec::new();
    for bin in BINARIES {
        println!("\n########## {bin} ##########");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            failed.push(*bin);
        }
    }
    if failed.is_empty() {
        println!("\nall {} reproduction drivers completed", BINARIES.len());
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
