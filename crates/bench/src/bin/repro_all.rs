//! Runs every reproduction binary's driver, writing all CSVs under
//! `results/`. Scale with `CLUMSY_PACKETS` / `CLUMSY_TRIALS`.
//!
//! By default the drivers run in sequence with live output. With
//! `--jobs N` (or `CLUMSY_REPRO_JOBS=N`), N drivers run concurrently
//! with captured output replayed as each finishes; the total worker
//! budget (`CLUMSY_JOBS`, default [`std::thread::available_parallelism`])
//! is divided among the children so the machine is not oversubscribed.
//!
//! Each completed driver is recorded in a crash-safe journal
//! (`results/journal/repro_all.jsonl`). On SIGINT/SIGTERM no further
//! drivers are launched, the in-flight ones finish, and the process
//! exits with status 3; `--resume` then skips the drivers the journal
//! already records. The journal header pins `CLUMSY_PACKETS`,
//! `CLUMSY_TRIALS` and `CLUMSY_SEED`, so a resume at a different scale
//! is refused instead of mixing CSVs from different runs.

use clumsy_bench::{journal_exit_code, EXIT_FAILURES, EXIT_INTERRUPTED};
use clumsy_core::experiment::ExperimentOptions;
use clumsy_core::journal::{self, JournalHeader, JournalWriter, Record, JOURNAL_VERSION};
use clumsy_core::{interrupt, Stopwatch};
use std::collections::HashSet;
use std::path::Path;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const BINARIES: &[&str] = &[
    "fig1b_voltage_swing",
    "fig2b_noise_immunity",
    "fig3_noise_distribution",
    "fig4_fault_vs_swing",
    "fig5_fault_vs_cycle",
    "table1",
    "fig6_route_errors",
    "fig7_nat_errors",
    "fig8_fatal_errors",
    "fig9_12_edf",
    "fault_campaign",
    "edx_no_fallibility",
    "cache_energy_sweep",
    "ablation_beta",
    "ablation_epoch",
    "ablation_strike",
    "ablation_quantize",
    "ablation_parity",
    "ablation_memory",
    "extension_recovery",
    "metric_exponents",
    "sensitivity_traffic",
];

fn parse_jobs() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            if let Some(n) = args.next().and_then(|v| v.parse::<usize>().ok()) {
                return n.max(1);
            }
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
    }
    std::env::var("CLUMSY_REPRO_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(1)
}

fn worker_budget() -> usize {
    std::env::var("CLUMSY_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| *n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The journal header identifying this repro run: the workload scale
/// from the environment plus a hash of the driver list.
fn run_header() -> JournalHeader {
    let opts = ExperimentOptions::from_env();
    let grid = journal::fnv1a64(BINARIES.join(",").as_bytes());
    JournalHeader {
        version: JOURNAL_VERSION,
        seed: opts.seed,
        trials: opts.trials.max(1),
        scale: opts.trace.packets as u64,
        points: BINARIES.len() as u64,
        grid,
    }
}

/// Opens the journal, replaying completed-driver markers when
/// `--resume` was given. Exits with context on any journal error.
fn open_journal(resume: bool, path: &Path) -> (JournalWriter, HashSet<String>) {
    let header = run_header();
    let mut done = HashSet::new();
    let refuse = |e: journal::JournalError| -> ! {
        eprintln!("error: {e}");
        // Shared exit-code contract: an I/O failure is a runtime error
        // (1); a header mismatch means the operator resumed the wrong
        // journal, which is a usage error (2).
        std::process::exit(journal_exit_code(&e));
    };
    let writer = if resume && path.exists() {
        let replay = journal::replay(path).unwrap_or_else(|e| refuse(e));
        replay.header.check(&header).unwrap_or_else(|e| refuse(e));
        for record in replay.records {
            if let Record::Marker { name } = record {
                done.insert(name);
            }
        }
        JournalWriter::resume(path, replay.valid_len).unwrap_or_else(|e| refuse(e))
    } else {
        JournalWriter::create(path, &header).unwrap_or_else(|e| refuse(e))
    };
    (writer, done)
}

fn main() {
    interrupt::install();
    let exe = std::env::current_exe().expect("own path is known");
    let dir = exe
        .parent()
        .expect("binaries live in a directory")
        .to_path_buf();
    let jobs = parse_jobs().min(BINARIES.len());
    let resume = std::env::args().skip(1).any(|a| a == "--resume");

    let journal_path = clumsy_bench::or_exit(clumsy_bench::journal_dir()).join("repro_all.jsonl");
    let (writer, done) = open_journal(resume, &journal_path);
    if !done.is_empty() {
        println!(
            "resuming: {} of {} drivers already recorded in {}",
            done.len(),
            BINARIES.len(),
            journal_path.display()
        );
    }
    let todo: Vec<&str> = BINARIES
        .iter()
        .filter(|b| !done.contains(**b))
        .copied()
        .collect();

    if jobs <= 1 {
        let mut failed = Vec::new();
        let mut times: Vec<(&str, Duration)> = Vec::new();
        let mut skipped = false;
        for bin in &todo {
            if interrupt::interrupted() {
                skipped = true;
                break;
            }
            println!("\n########## {bin} ##########");
            let span = Stopwatch::start();
            let status = Command::new(dir.join(bin))
                .status()
                .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
            times.push((bin, span.elapsed()));
            if status.success() {
                writer.append_marker(bin);
            } else {
                failed.push(*bin);
            }
        }
        print_wall_times(&times);
        finish(writer, &journal_path, &failed, skipped);
        return;
    }

    // Parallel mode: `jobs` runner threads pull the next binary, run it
    // with captured output, and replay that output atomically when the
    // child exits. Each child gets an equal share of the worker budget.
    // An interrupt stops the pull loop; children already running finish
    // and are journaled.
    let child_workers = (worker_budget() / jobs).max(1);
    println!(
        "running {} drivers, {jobs} at a time, {child_workers} worker(s) each",
        todo.len()
    );
    let next = AtomicUsize::new(0);
    let failed: Mutex<Vec<&str>> = Mutex::new(Vec::new());
    let times: Mutex<Vec<(&str, Duration)>> = Mutex::new(Vec::new());
    let stdout_gate = Mutex::new(());
    let writer_ref = &writer;
    let todo_ref = &todo;
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                if interrupt::interrupted() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(bin) = todo_ref.get(i) else { break };
                let span = Stopwatch::start();
                let output = Command::new(dir.join(bin))
                    .env("CLUMSY_JOBS", child_workers.to_string())
                    .output()
                    .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
                let wall = span.elapsed();
                times.lock().expect("time list poisoned").push((bin, wall));
                let _gate = stdout_gate.lock().expect("stdout gate poisoned");
                println!("\n########## {bin} ##########");
                print!("{}", String::from_utf8_lossy(&output.stdout));
                eprint!("{}", String::from_utf8_lossy(&output.stderr));
                if output.status.success() {
                    writer_ref.append_marker(bin);
                } else {
                    failed.lock().expect("failure list poisoned").push(bin);
                }
            });
        }
    });
    let skipped = next.load(Ordering::Relaxed) < todo.len();
    print_wall_times(&times.into_inner().expect("time list poisoned"));
    finish(
        writer,
        &journal_path,
        &failed.into_inner().expect("failure list poisoned"),
        skipped,
    );
}

/// Prints the per-driver wall-time table (slowest first) so a slow
/// repro run points straight at the driver that dominates it.
fn print_wall_times(times: &[(&str, Duration)]) {
    if times.is_empty() {
        return;
    }
    let mut sorted: Vec<(&str, Duration)> = times.to_vec();
    sorted.sort_by_key(|&(_, wall)| std::cmp::Reverse(wall));
    let total: Duration = sorted.iter().map(|(_, d)| *d).sum();
    println!(
        "\nper-driver wall time ({} drivers, slowest first):",
        sorted.len()
    );
    for (bin, wall) in &sorted {
        println!("  {:>8.2}s  {bin}", wall.as_secs_f64());
    }
    println!("  {:>8.2}s  total driver time", total.as_secs_f64());
}

fn finish(writer: JournalWriter, journal_path: &Path, failed: &[&str], interrupted: bool) {
    if let Err(e) = writer.finish() {
        eprintln!("error: {e}");
        std::process::exit(EXIT_FAILURES);
    }
    if interrupted {
        eprintln!(
            "\ninterrupted; rerun with --resume to run the remaining drivers ({})",
            journal_path.display()
        );
        std::process::exit(EXIT_INTERRUPTED);
    }
    if failed.is_empty() {
        println!("\nall {} reproduction drivers completed", BINARIES.len());
        // Everything recorded; the journal has served its purpose.
        std::fs::remove_file(journal_path).ok();
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(EXIT_FAILURES);
    }
}
