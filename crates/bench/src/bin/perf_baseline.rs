//! Times the two heaviest grid drivers — `edf_average` (Figure 12(b),
//! the full apps × schemes × plans × trials grid) and `table1` — once on
//! a single-worker engine and once on the environment-sized engine, and
//! records wall-clock, throughput and speedup in `BENCH_engine.json`.
//!
//! Scale with `CLUMSY_PACKETS` / `CLUMSY_TRIALS`; pick the parallel
//! worker count with `CLUMSY_JOBS`. The serial and parallel passes
//! produce bitwise-identical results (asserted here), so the speedup is
//! measured on identical work.
//!
//! A third pass re-runs the parallel grid with the telemetry layer
//! attached and asserts its output is still identical, recording the
//! relative overhead in the JSON — the telemetry-is-passive claim,
//! measured rather than asserted.
//!
//! The run fails (exit 1) if single-core throughput falls below the
//! regression floor: 10× the pre-split recording of 27 387.5 pkt/s at
//! full scale, or a deliberately loose 2× under `--smoke` (a small
//! fixed-scale run sized for CI, which writes `BENCH_engine_smoke.json`
//! so it never clobbers the full-scale artifact). The best pass of the
//! `edf_average` grid is compared against the floor, which keeps the
//! gate meaningful on noisy shared runners without letting a real
//! regression hide.

use clumsy_bench::{or_exit, write_file, EXIT_FAILURES, EXIT_USAGE};
use clumsy_core::experiment::{edf_average_on, table1_on, ExperimentOptions};
use clumsy_core::{golden_for, Engine, Telemetry};
use netbench::AppKind;
use std::sync::Arc;
use std::time::Instant;

/// Number of measured simulation runs in one `edf_average` grid.
const EDF_CONFIGS: usize = 21; // baseline + 4 schemes x (4 static + dynamic)
/// Number of measured simulation runs in one `table1` grid.
const TABLE1_CONFIGS: usize = 3; // baseline, Cr = 0.5, Cr = 0.25

/// Single-core throughput recorded before the functional/timing split
/// (packets per second on the `edf_average` grid at paper scale).
const PRE_SPLIT_PKT_PER_S: f64 = 27_387.5;
/// Full-scale regression floor: the split must hold its 10×.
const FLOOR_FULL: f64 = PRE_SPLIT_PKT_PER_S * 10.0;
/// Smoke-scale floor: ~2× the old recording. Smoke runs are short and
/// jitter-prone, so the gate only catches order-of-magnitude slides.
const FLOOR_SMOKE: f64 = PRE_SPLIT_PKT_PER_S * 2.0;

struct Timing {
    serial_s: f64,
    parallel_s: f64,
    telemetry_s: f64,
    jobs_total: u64,
    packets_total: u64,
}

impl Timing {
    fn speedup(&self) -> f64 {
        self.serial_s / self.parallel_s
    }

    /// Telemetry pass wall time relative to the plain parallel pass;
    /// 1.0 means free, and anything within run-to-run noise is the
    /// "overhead within noise" acceptance bar.
    fn telemetry_overhead(&self) -> f64 {
        self.telemetry_s / self.parallel_s
    }

    fn packets_per_s(&self, elapsed: f64) -> f64 {
        self.packets_total as f64 / elapsed
    }

    /// The fastest of the three identical-output passes — the
    /// noise-robust throughput estimate the regression gate uses.
    fn best_packets_per_s(&self) -> f64 {
        let fastest = self
            .serial_s
            .min(self.parallel_s)
            .min(self.telemetry_s)
            .max(f64::MIN_POSITIVE);
        self.packets_total as f64 / fastest
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"serial_s\": {:.3}, \"parallel_s\": {:.3}, ",
                "\"telemetry_s\": {:.3}, ",
                "\"speedup\": {:.3}, ",
                "\"telemetry_overhead\": {:.3}, ",
                "\"jobs_run\": {}, ",
                "\"packets_simulated\": {}, ",
                "\"packets_per_s_serial\": {:.1}, ",
                "\"packets_per_s_parallel\": {:.1}, ",
                "\"packets_per_s_best\": {:.1}}}"
            ),
            self.serial_s,
            self.parallel_s,
            self.telemetry_s,
            self.speedup(),
            self.telemetry_overhead(),
            self.jobs_total,
            self.packets_total,
            self.packets_per_s(self.serial_s),
            self.packets_per_s(self.parallel_s),
            self.best_packets_per_s(),
        )
    }
}

fn time_driver<T: PartialEq + std::fmt::Debug>(
    name: &str,
    parallel: &Engine,
    configs: usize,
    opts: &ExperimentOptions,
    run: impl Fn(&Engine) -> T,
) -> Timing {
    let serial = Engine::with_jobs(1);
    let t0 = Instant::now();
    let serial_out = run(&serial);
    let serial_s = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel_out = run(parallel);
    let parallel_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial_out, parallel_out,
        "{name}: parallel output diverged from serial"
    );
    // Third pass: the same parallel engine with telemetry attached. The
    // output must not move by a bit, and the wall time says what the
    // counters cost.
    let instrumented = parallel.clone().with_telemetry(Arc::new(Telemetry::new()));
    let t2 = Instant::now();
    let telemetry_out = run(&instrumented);
    let telemetry_s = t2.elapsed().as_secs_f64();
    assert_eq!(
        serial_out, telemetry_out,
        "{name}: telemetry changed the output"
    );
    let jobs_total = (AppKind::all().len() * configs) as u64 * u64::from(opts.trials);
    let timing = Timing {
        serial_s,
        parallel_s,
        telemetry_s,
        jobs_total,
        packets_total: jobs_total * opts.trace.packets as u64,
    };
    println!(
        "{name:>12}: serial {serial_s:.2}s, parallel {parallel_s:.2}s ({:.2}x, {:.0} pkt/s), telemetry {telemetry_s:.2}s ({:.2}x parallel)",
        timing.speedup(),
        timing.packets_per_s(parallel_s),
        timing.telemetry_overhead(),
    );
    timing
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            other => {
                eprintln!("usage: perf_baseline [--smoke] (unknown flag {other:?})");
                std::process::exit(EXIT_USAGE);
            }
        }
    }

    let mut opts = ExperimentOptions::from_env();
    if smoke {
        // Fixed small scale so the CI gate costs seconds and its floor
        // means the same thing on every runner.
        opts.trace.packets = opts.trace.packets.min(200);
        opts.trials = 1;
    }
    let engine = Engine::from_env();
    println!(
        "perf baseline{}: {} packets x {} trials, {} parallel job(s)",
        if smoke { " (smoke)" } else { "" },
        opts.trace.packets,
        opts.trials,
        engine.jobs()
    );
    if engine.jobs() == 1 {
        eprintln!(
            "warning: parallel passes run with a single job (set CLUMSY_JOBS or \
             run on a multi-core host); speedup will read ~1.0 and only the \
             single-core floor is meaningful"
        );
    }

    // Warm the golden memo so both timed passes measure the measured
    // runs, not one-off golden computation.
    let trace = opts.trace.generate();
    engine.map(&AppKind::all(), |k| golden_for(*k, &trace));

    let edf = time_driver("edf_average", &engine, EDF_CONFIGS, &opts, |e| {
        edf_average_on(e, &opts)
    });
    let table1 = time_driver("table1", &engine, TABLE1_CONFIGS, &opts, |e| {
        table1_on(e, &trace, &opts)
    });

    let floor = if smoke { FLOOR_SMOKE } else { FLOOR_FULL };
    let best = edf.best_packets_per_s();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"{}\",\n",
            "  \"packets\": {},\n",
            "  \"trials\": {},\n",
            "  \"jobs_serial\": 1,\n",
            "  \"jobs_parallel\": {},\n",
            "  \"throughput_floor_pkt_per_s\": {:.1},\n",
            "  \"throughput_best_pkt_per_s\": {:.1},\n",
            "  \"edf_average\": {},\n",
            "  \"table1\": {}\n",
            "}}\n"
        ),
        if smoke { "engine-smoke" } else { "engine" },
        opts.trace.packets,
        opts.trials,
        engine.jobs(),
        floor,
        best,
        edf.json(),
        table1.json(),
    );
    let file = if smoke {
        "BENCH_engine_smoke.json"
    } else {
        "BENCH_engine.json"
    };
    let path = or_exit(write_file(file, json.as_bytes()));
    println!("wrote {}", path.display());

    if best < floor {
        eprintln!(
            "perf regression: edf_average best pass {best:.0} pkt/s is below the \
             {floor:.0} pkt/s floor ({}x the pre-split 27387.5 pkt/s recording)",
            if smoke { 2 } else { 10 },
        );
        std::process::exit(EXIT_FAILURES);
    }
    println!(
        "throughput gate: {best:.0} pkt/s >= {floor:.0} pkt/s floor ({:.1}x the pre-split recording)",
        best / PRE_SPLIT_PKT_PER_S
    );
}
